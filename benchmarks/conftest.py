"""Shared helper for the per-table benchmark drivers.

Each ``benchmarks/test_*.py`` regenerates one table/figure of the paper
(see DESIGN.md §4) under pytest-benchmark.  The benchmark *measures the
host cost of the whole simulated experiment* (one round — experiments are
deterministic, so statistical repetition adds nothing) and **prints the
regenerated table**, which is the actual deliverable.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest

from repro.bench.experiments import run_experiment


#: Scale knob: quick by default so CI stays fast; set REPRO_BENCH_SCALE=paper
#: to regenerate the full-size tables recorded in EXPERIMENTS.md.
SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")


@pytest.fixture
def run_table(benchmark):
    """Benchmark one experiment id and print its regenerated table."""

    def runner(exp_id: str):
        result = benchmark.pedantic(
            run_experiment, args=(exp_id,), kwargs={"scale": SCALE},
            rounds=1, iterations=1,
        )
        print(f"\n== {result.exp_id}: {result.title} (scale={SCALE}) ==")
        print(result.text)
        return result

    return runner
