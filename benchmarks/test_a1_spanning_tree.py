"""A1 — collective spanning-tree ablation (rank vs binomial)."""


def test_a1_spanning_tree(run_table):
    result = run_table("a1")
    d = result.data
    assert d["binomial"]["hops"] < d["rank"]["hops"], (
        "binomial tree should cut hop-weighted collective traffic"
    )
