"""A2 — monotonic lazy-propagation batching-interval ablation."""


def test_a2_lazy_interval(run_table):
    result = run_table("a2")
    d = result.data
    intervals = sorted(d)
    # Bigger batching window -> staler bounds -> at least as many nodes.
    assert d[intervals[-1]]["nodes"] >= d[intervals[0]]["nodes"]
    # ...and no more propagation messages.
    assert d[intervals[-1]]["msgs"] <= d[intervals[0]]["msgs"]
