"""A3 — quiescence wave-interval ablation (latency vs probe traffic)."""


def test_a3_qd_interval(run_table):
    result = run_table("a3")
    d = result.data
    intervals = sorted(d)
    assert d[intervals[-1]]["latency"] > d[intervals[0]]["latency"]
    assert d[intervals[-1]]["waves"] <= d[intervals[0]]["waves"]
