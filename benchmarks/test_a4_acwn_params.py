"""A4 — ACWN threshold / hop-budget parameter sweep."""


def test_a4_acwn_params(run_table):
    result = run_table("a4")
    d = result.data
    # A higher forwarding threshold always moves fewer seeds remotely.
    lo = d["(1, 4)"]["remote"]
    hi = d["(8, 4)"]["remote"]
    assert hi < lo
