"""A5 — link-contention ablation: all-to-all vs nearest-neighbor traffic."""


def test_a5_link_contention(run_table):
    result = run_table("a5")
    d = result.data
    sort_slowdown = d["samplesort"]["contended"] / d["samplesort"]["plain"]
    jacobi_slowdown = d["jacobi"]["contended"] / d["jacobi"]["plain"]
    assert sort_slowdown > 1.0, "contention must cost something all-to-all"
    assert sort_slowdown > jacobi_slowdown, (
        "all-to-all should suffer more from link queuing than stencils"
    )
