"""F1 — speedup curves across the three machine classes (figure)."""


def test_f1_speedup_curves(run_table):
    result = run_table("f1")
    for name, series in result.data.items():
        assert series[0] == 1.0, f"{name} not normalized to T1"
