"""F2 — grain size vs parallel efficiency (figure)."""


def test_f2_grainsize_efficiency(run_table):
    result = run_table("f2")
    for app in ("queens", "fib"):
        series = result.data[app]
        assert all(0 < eff <= 1.2 for eff in series.values()), series
