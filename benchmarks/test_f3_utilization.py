"""F3 — per-PE utilization profile under each balancer (figure)."""


def test_f3_utilization_profiles(run_table):
    result = run_table("f3")
    d = result.data
    spread = lambda u: max(u) - min(u)
    assert spread(d["acwn"]) < spread(d["local"])
