"""Host-performance microbenchmarks of the simulator itself.

Unlike the T/F/A drivers (which regenerate the paper's tables in virtual
time), these measure the *host* cost of the machinery — events/second
through the engine, messages/second through the kernel, pool
push/pop throughput — so performance regressions in the simulator are
caught by pytest-benchmark's timing statistics.
"""

import pytest

from repro import Chare, Kernel, entry, make_machine
from repro.apps.nqueens import run_nqueens
from repro.queueing.strategies import make_strategy
from repro.sim.backend import make_backend
from repro.sim.engine import Engine
from repro.util.priority import BitVectorPriority


def test_engine_event_throughput(benchmark):
    def run_10k():
        eng = Engine()
        for i in range(10_000):
            eng.schedule(float(i % 97), lambda: None)
        eng.run()
        return eng.events_fired

    assert benchmark(run_10k) == 10_000


@pytest.mark.parametrize("backend", ["heap", "batch"])
def test_backend_event_throughput(benchmark, backend):
    """Engine backends head to head on the timestamp-cohort workload.

    97 distinct timestamps x ~103 events each: the batch backend drains
    whole cohorts per bucket while the heap pays a log-P pop per event.
    """

    def run_10k():
        eng = make_backend(backend)
        fn = (lambda _: None)
        for i in range(10_000):
            eng.schedule_call(float(i % 97), fn, None)
        eng.run()
        return eng.events_fired

    assert benchmark(run_10k) == 10_000


class _PingPong(Chare):
    def __init__(self, rounds):
        self.rounds = rounds
        self.send(self.thishandle, "ping", 0)

    @entry
    def ping(self, i):
        if i >= self.rounds:
            self.exit(i)
        else:
            self.send(self.thishandle, "ping", i + 1)


def test_kernel_message_throughput(benchmark):
    def run_chain():
        kernel = Kernel(make_machine("ideal", 1))
        return kernel.run(_PingPong, 2_000).result

    assert benchmark(run_chain) == 2_000


class _Fanout(Chare):
    def __init__(self, n):
        self.n = n
        self.seen = 0
        for i in range(n):
            self.create(_FanWorker, self.thishandle)

    @entry
    def done(self):
        self.seen += 1
        if self.seen == self.n:
            self.exit(self.seen)


class _FanWorker(Chare):
    def __init__(self, parent):
        self.send(parent, "done")


def test_kernel_seed_fanout_throughput(benchmark):
    def run_fanout():
        kernel = Kernel(make_machine("ideal", 8), balancer="random")
        return kernel.run(_Fanout, 1_000).result

    assert benchmark(run_fanout) == 1_000


@pytest.mark.parametrize("pes", [1, 4, 32])
def test_kernel_seed_fanout_throughput_scaling(benchmark, pes):
    """Seed throughput across machine sizes (P=8 is the tracked headline)."""

    def run_fanout():
        kernel = Kernel(make_machine("ideal", pes), balancer="random")
        return kernel.run(_Fanout, 1_000).result

    assert benchmark(run_fanout) == 1_000


@pytest.mark.parametrize("backend", ["heap", "batch"])
def test_kernel_seed_fanout_backend(benchmark, backend):
    """Fanout through each engine backend (batch takes the burst lane)."""

    def run_fanout():
        kernel = Kernel(make_machine("ideal", 8), balancer="random",
                        backend=backend)
        return kernel.run(_Fanout, 1_000).result

    assert benchmark(run_fanout) == 1_000


def test_kernel_remote_message_throughput(benchmark):
    """Cross-PE traffic on a real topology: exercises the memoized
    hops/transit tables rather than the src == dst local fast path."""

    def run_remote():
        kernel = Kernel(make_machine("ncube2", 16))
        return kernel.run(_RemotePing, 1_000).result

    assert benchmark(run_remote) == 1_000


class _RemoteEcho(Chare):
    def __init__(self, parent):
        self.parent = parent

    @entry
    def ping(self, i):
        self.send(self.parent, "pong", i)


class _RemotePing(Chare):
    def __init__(self, rounds):
        self.rounds = rounds
        # Pin the echo chare to the far corner of the hypercube so every
        # round crosses the network.
        self.echo = self.create(_RemoteEcho, self.thishandle, pe=15)
        self.send(self.echo, "ping", 0)

    @entry
    def pong(self, i):
        if i >= self.rounds:
            self.exit(i)
        else:
            self.send(self.echo, "ping", i + 1)


def test_priority_pool_throughput(benchmark):
    def churn():
        q = make_strategy("prio")
        for i in range(5_000):
            q.push(i, (i * 2654435761) % 1000)
        total = 0
        while q:
            total += q.pop()
        return total

    assert benchmark(churn) == sum(range(5_000))


@pytest.mark.parametrize("name", ["fifo", "lifo", "bitprio", "priolifo"])
def test_pool_throughput(benchmark, name):
    """Push/pop churn for each queueing strategy (prio has its own test)."""

    def churn():
        q = make_strategy(name)
        for i in range(5_000):
            q.push(i, (i * 2654435761) % 1000)
        total = 0
        while q:
            q.pop()
            total += 1
        return total

    assert benchmark(churn) == 5_000


def test_pool_default_lane_throughput(benchmark):
    """All-unprioritized churn on a prio pool: the deque fast lane."""

    def churn():
        q = make_strategy("prio")
        for i in range(5_000):
            q.push(i)
        total = 0
        while q:
            q.pop()
            total += 1
        return total

    assert benchmark(churn) == 5_000


def test_pool_deep_bitvector_throughput(benchmark):
    """Churn with ~80-bit bitvector priorities (multi-chunk packed keys)."""
    prios = [
        BitVectorPriority(((i * 2654435761) >> b) & 1 for b in range(80))
        for i in range(64)
    ]

    def churn():
        q = make_strategy("bitprio")
        for i in range(5_000):
            q.push(i, prios[i % 64])
        total = 0
        while q:
            q.pop()
            total += 1
        return total

    assert benchmark(churn) == 5_000


def test_pool_mixed_traffic_throughput(benchmark):
    """None / small-int / bitvector interleaved: all three lanes hot."""
    prios = [
        BitVectorPriority(((i * 40503) >> b) & 1 for b in range(12))
        for i in range(16)
    ]

    def churn():
        q = make_strategy("prio")
        for i in range(5_000):
            r = i % 3
            if r == 0:
                q.push(i)
            elif r == 1:
                q.push(i, (i * 2654435761) % 1000)
            else:
                q.push(i, prios[i % 16])
        total = 0
        while q:
            q.pop()
            total += 1
        return total

    assert benchmark(churn) == 5_000


def test_search_bitprio_end_to_end_throughput(benchmark):
    """Full-stack prioritized search: N-queens with bitvector priorities.

    Covers the whole prioritized hot path — send-time key normalization,
    cached keys riding the envelopes, bitprio lane-split pools on every
    PE — with nodes expanded as the op count.
    """

    def run():
        (solutions, nodes), _ = run_nqueens(
            make_machine("ideal", 8), n=7, grainsize=3,
            queueing="bitprio", use_priorities=True,
        )
        assert solutions == 40
        return nodes

    assert benchmark(run) == 552


def test_sparse_kernel_p100k_throughput(benchmark):
    """Full kernel run on a sparse 100,000-PE machine.

    Exercises the O(active) PE plane end to end — construction, seed
    fan-out through the random balancer, teardown — where any O(P) term
    (eager PE lists, counter arrays, balancer tables) would dominate.
    """
    from repro.bench._workloads import Fanout

    def run():
        kernel = Kernel(make_machine("cluster", 100_000, sparse=True),
                        balancer="random")
        result = kernel.run(Fanout, 1_000)
        assert result.result == 1_000
        return result.events

    assert benchmark(run) > 1_000


def test_central_placement_p10k_throughput(benchmark):
    """CentralBalancer decision loop at P=10,000: the O(log P) lazy heap.

    The historical O(P) argmin scan made this ~100x slower; the
    benchmark drives load reports and placements directly, no app.
    """
    from types import SimpleNamespace

    def run():
        kernel = Kernel(make_machine("ideal", 10_000), balancer="central")
        bal = kernel.balancer
        env = SimpleNamespace(hops=0)
        for i in range(2_000):
            bal.note_load(0, (i * 40503) % 63 + 1, (i * 2654435761) % 7)
            bal.on_seed_arrival(0, env)
        return bal.seeds_placed_remote

    assert benchmark(run) > 0
