"""T10 — heterogeneous workstation network: static vs adaptive placement."""


def test_t10_heterogeneous_machines(run_table):
    result = run_table("t10")
    d = result.data
    # Load-aware adaptive placement must beat every load-blind strategy
    # when node speeds differ 4x.
    assert d["acwn"]["time"] < d["roundrobin"]["time"]
    assert d["acwn"]["time"] < d["random"]["time"]
    assert d["acwn"]["util"] > d["random"]["util"]
