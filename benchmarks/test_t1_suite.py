"""T1 — benchmark-suite characteristics table (work, messages, grain)."""


def test_t1_suite_characteristics(run_table):
    result = run_table("t1")
    for app, row in result.data.items():
        assert row["work"] > 0, f"{app} charged no work"
        assert row["msgs"] > 0
