"""T2 — speedup table on the shared-memory bus machine (Symmetry class)."""


def test_t2_shared_memory_speedups(run_table):
    result = run_table("t2")
    for app, d in result.data["apps"].items():
        assert d["speedups"][0] == 1.0
        assert d["speedups"][-1] > 1.0, f"{app} failed to speed up at all"
