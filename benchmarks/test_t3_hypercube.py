"""T3 — speedup table on the iPSC/2-class hypercube."""


def test_t3_hypercube_speedups(run_table):
    result = run_table("t3")
    for app, d in result.data["apps"].items():
        assert d["speedups"][1] > 1.0, f"{app} lost time going parallel"
