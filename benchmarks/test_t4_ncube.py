"""T4 — large-P speedups on the NCUBE-class hypercube."""


def test_t4_large_p_speedups(run_table):
    result = run_table("t4")
    tree = result.data["apps"]["tree"]["speedups"]
    assert tree[-1] > tree[1], "tree stopped scaling with more PEs"
