"""T5 — dynamic load-balancing strategy comparison on the unbalanced tree."""


def test_t5_load_balancing(run_table):
    result = run_table("t5")
    d = result.data
    assert d["local"]["time"] > d["acwn"]["time"], "balancing didn't help"
    assert d["acwn"]["remote_seeds"] < d["random"]["remote_seeds"], (
        "ACWN should contract (move fewer seeds) vs blind random placement"
    )
