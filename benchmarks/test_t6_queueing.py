"""T6 — queueing strategies and branch-and-bound search anomalies."""


def test_t6_queueing_strategies(run_table):
    result = run_table("t6")
    d = result.data
    assert d["('knapsack', 'prio')"]["nodes"] <= d["('knapsack', 'fifo')"]["nodes"]
    assert d["('tsp', 'prio')"]["best"] == d["('tsp', 'fifo')"]["best"]
