"""T7 — monotonic-variable propagation ablation (bound sharing)."""


def test_t7_monotonic_ablation(run_table):
    result = run_table("t7")
    d = result.data
    assert d["off"]["nodes"] >= d["eager"]["nodes"]
    assert d["lazy"]["msgs"] <= d["eager"]["msgs"] or d["lazy"]["msgs"] > 0
    assert d["off"]["msgs"] == 0
