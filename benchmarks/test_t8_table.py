"""T8 — distributed-table throughput vs PE count."""


def test_t8_table_throughput(run_table):
    result = run_table("t8")
    d = result.data
    ps = sorted(d)
    assert d[ps[-1]]["time"] < d[ps[0]]["time"], "no scaling from sharding"
