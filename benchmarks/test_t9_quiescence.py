"""T9 — quiescence-detection overhead and latency."""


def test_t9_quiescence_overhead(run_table):
    result = run_table("t9")
    for p, row in result.data.items():
        assert row["latency"] >= 0, f"negative QD latency at P={p}"
        assert row["waves"] >= 2, "QD must confirm with at least two waves"
