#!/usr/bin/env python
"""Branch-and-bound TSP: monotonic variables, priorities, search anomalies.

Demonstrates the paper's signature machinery for speculative parallelism:

* the incumbent tour cost is a **monotonic** variable every PE caches and
  the runtime propagates, so all workers prune against a near-current bound;
* child nodes carry their lower bound as an integer **priority**, so the
  ``prio`` queueing strategy turns the global pool into best-first search;
* compare FIFO / LIFO / best-first node counts — the queueing strategy
  changes how much *work* the same program does (Table T6's phenomenon).

Run::

    python examples/branch_and_bound.py
"""

from repro import make_machine
from repro.apps.tsp import TspInstance, run_tsp, tsp_seq


def main():
    inst = TspInstance.random(n=9, seed=3)
    best_seq, nodes_seq = tsp_seq(inst)
    print(f"sequential B&B: best tour {best_seq}, {nodes_seq} nodes expanded\n")

    print(f"{'queueing':10s} {'nodes':>8s} {'time (ms)':>10s} {'best':>6s}")
    for queueing in ("fifo", "lifo", "prio"):
        machine = make_machine("ipsc2", 16)
        (best, nodes, pruned), result = run_tsp(
            inst=inst, machine=machine, queueing=queueing
        )
        assert best == best_seq, "wrong optimum!"
        print(f"{queueing:10s} {nodes:8d} {result.time * 1e3:10.2f} {best:6d}")

    print("\nMonotonic-bound propagation ablation (prio queueing, P=16):")
    print(f"{'propagation':12s} {'nodes':>8s} {'bound msgs':>11s}")
    for propagation in ("eager", "lazy", "off"):
        machine = make_machine("ipsc2", 16)
        (best, nodes, _), result = run_tsp(
            inst=inst, machine=machine, propagation=propagation
        )
        assert best == best_seq
        print(f"{propagation:12s} {nodes:8d} "
              f"{result.stats.mono_updates_sent:11d}")


if __name__ == "__main__":
    main()
