#!/usr/bin/env python
"""Jacobi heat diffusion: pinned chares, neighbor messaging, real numpy data.

The statically decomposed member of the family: a grid of block chares,
each pinned to a PE, exchanging boundary strips every iteration.  Shows

* explicit placement (``create(..., pe=...)``) for data-parallel layouts,
* message-driven iteration without barriers (blocks buffer early strips),
* that the simulated program computes *bitwise the same grid* as the
  sequential reference,
* how machine class changes the compute/communicate balance.

Run::

    python examples/jacobi_stencil.py
"""

import numpy as np

from repro import make_machine
from repro.apps.jacobi import jacobi_seq, run_jacobi


def main():
    n, blocks, iterations = 64, 4, 20
    ref_grid, ref_residual = jacobi_seq(n, iterations)
    print(f"grid {n}x{n}, {blocks}x{blocks} blocks, {iterations} iterations")
    print(f"reference residual: {ref_residual:.6f}\n")

    print(f"{'machine':10s} {'P':>3s} {'time (ms)':>10s} {'util %':>7s} {'exact?':>7s}")
    for machine_name, pes in (
        ("ideal", 16),
        ("symmetry", 16),
        ("multimax", 16),
        ("ipsc2", 16),
        ("ncube2", 16),
        ("cluster", 16),
    ):
        machine = make_machine(machine_name, pes)
        (grid, residual), result = run_jacobi(
            machine, n=n, blocks=blocks, iterations=iterations
        )
        exact = np.array_equal(grid, ref_grid)
        assert exact and abs(residual - ref_residual) < 1e-12
        print(
            f"{machine_name:10s} {pes:3d} {result.time * 1e3:10.2f} "
            f"{result.stats.mean_utilization * 100:7.1f} {str(exact):>7s}"
        )

    print("\nScaling on the iPSC/2-class hypercube (8x8 blocks of a 128-grid):")
    print(f"{'P':>4s} {'time (ms)':>10s} {'speedup':>8s}")
    t1 = None
    for pes in (1, 4, 16, 64):
        machine = make_machine("ipsc2", pes)
        _, result = run_jacobi(machine, n=128, blocks=8, iterations=10)
        t1 = t1 or result.time
        print(f"{pes:4d} {result.time * 1e3:10.2f} {t1 / result.time:8.2f}")


if __name__ == "__main__":
    main()
