#!/usr/bin/env python
"""Load-balancing strategies on an unbalanced tree (the T5 story, live).

The same deterministic, highly irregular tree is executed under every seed
placement strategy; the answer never changes, but completion time, idle
fraction and message traffic do.  Shows why the paper ships *pluggable*
balancers and why ACWN was its default on hypercubes.

Run::

    python examples/load_balancing_study.py
"""

from repro import BALANCERS, make_machine
from repro.apps.tree import TreeParams, run_tree, tree_seq


def main():
    params = TreeParams(seed=7, max_depth=12, max_fanout=6, branch_bias=0.98,
                        node_work=150.0)
    nodes, leaves = tree_seq(params)
    print(f"synthetic tree: {nodes} nodes, {leaves} leaves\n")

    for pes in (16, 32):
        print(f"--- ipsc2 hypercube, P={pes} ---")
        print(f"{'strategy':11s} {'time (ms)':>10s} {'util %':>7s} "
              f"{'imbalance':>9s} {'remote seeds':>12s} {'control msgs':>12s}")
        for strategy in BALANCERS:
            machine = make_machine("ipsc2", pes)
            (n, l), result = run_tree(machine, params, balancer=strategy)
            assert (n, l) == (nodes, leaves), "answer must not depend on balancing"
            st = result.stats
            print(
                f"{strategy:11s} {result.time * 1e3:10.2f} "
                f"{st.mean_utilization * 100:7.1f} {st.load_imbalance:9.2f} "
                f"{st.lb_seeds_remote:12d} {st.lb_control_msgs:12d}"
            )
        print()


if __name__ == "__main__":
    main()
