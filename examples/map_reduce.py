#!/usr/bin/env python
"""Map-reduce as a chare pattern (repro.patterns).

The paper closes by noting the model subsumes map-reduce; this example
uses the packaged helper on two machine classes and shows the same call
absorbing a 4x-heterogeneous workstation network without any change —
the balancer does the adaptation.

Run::

    python examples/map_reduce.py
"""

from repro import make_machine, map_reduce, scatter_gather


def collatz_length(n: int) -> int:
    steps = 0
    while n != 1:
        n = n // 2 if n % 2 == 0 else 3 * n + 1
        steps += 1
    return steps


def main():
    items = range(1, 513)
    expected = sum(collatz_length(n) for n in items)

    print("total Collatz steps for n in [1, 512]:", expected, "\n")
    print(f"{'machine':9s} {'P':>3s} {'time (ms)':>10s} {'util %':>7s}")
    for machine_name, pes in (("symmetry", 8), ("ipsc2", 16), ("hetero", 8)):
        machine = make_machine(machine_name, pes)
        total, result = map_reduce(
            machine, items, collatz_length,
            work=lambda n: 5.0 * collatz_length(n),  # cost tracks true work
        )
        assert total == expected
        print(f"{machine_name:9s} {pes:3d} {result.time * 1e3:10.2f} "
              f"{result.stats.mean_utilization * 100:7.1f}")

    print("\nscatter_gather keeps per-item results (first five):")
    pairs, _ = scatter_gather(make_machine("ipsc2", 8), range(1, 6),
                              collatz_length)
    for n, steps in pairs:
        print(f"  collatz({n}) = {steps} steps")


if __name__ == "__main__":
    main()
