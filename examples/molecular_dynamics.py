#!/usr/bin/env python
"""Cell-decomposition molecular dynamics — the NAMD-shaped workload.

One chare per spatial cell; every timestep the cells exchange particle
populations with their 8 periodic neighbors, compute short-range forces,
integrate, and *migrate* particles whose trajectories crossed a cell
boundary.  The parallel trajectories are **bit-identical** to an O(n²)
reference — run this to see it checked live, plus how the machine class
changes the step cost.

Run::

    python examples/molecular_dynamics.py
"""

import numpy as np

from repro import make_machine
from repro.apps.md import MdParams, md_seq, run_md


def main():
    params = MdParams(cells=4, n_particles=96, steps=12, seed=11)
    print(f"{params.n_particles} particles, {params.cells}x{params.cells} "
          f"cells, {params.steps} steps\n")

    ref_pos, ref_vel = md_seq(params)
    print(f"{'machine':10s} {'P':>3s} {'time (ms)':>10s} {'bytes':>9s} "
          f"{'migrations':>10s} {'exact?':>7s}")
    for machine_name, pes in (("ideal", 16), ("symmetry", 16), ("ipsc2", 16)):
        machine = make_machine(machine_name, pes)
        (pos, vel), result = run_md(machine, params)
        exact = np.array_equal(pos, ref_pos) and np.array_equal(vel, ref_vel)
        assert exact, "parallel trajectory diverged!"
        kernel = result.kernel
        migrated = sum(
            kernel.sharing.accumulator_partial("migrations", pe)
            for pe in range(kernel.num_pes)
        )
        print(f"{machine_name:10s} {pes:3d} {result.time * 1e3:10.2f} "
              f"{result.stats.total_bytes_sent:9d} {migrated:10d} "
              f"{str(exact):>7s}")

    print("\nScaling on ipsc2 (16 cells, so P>16 cannot help):")
    t1 = None
    for pes in (1, 2, 4, 8, 16):
        machine = make_machine("ipsc2", pes)
        _, result = run_md(machine, params)
        t1 = t1 or result.time
        print(f"  P={pes:2d}  {result.time * 1e3:8.2f} ms  "
              f"speedup {t1 / result.time:5.2f}")


if __name__ == "__main__":
    main()
