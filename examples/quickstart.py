#!/usr/bin/env python
"""Quickstart: your first Chare Kernel program.

A main chare fans out ``n`` worker chares (placed by the load balancer),
each worker folds its contribution into an accumulator, and quiescence
detection tells the main chare when everything — including messages still
in flight — is finished.  Run::

    python examples/quickstart.py
"""

from repro import Chare, Kernel, entry, make_machine


class Worker(Chare):
    """One unit of work: charge some CPU, contribute to the accumulator."""

    def __init__(self, parent, index):
        self.charge(500)                      # ~500 abstract instructions
        self.accumulate("total", index * index)
        if index == 0:
            self.send(parent, "hello", self.my_pe)


class Main(Chare):
    """Declares shared variables, seeds the workers, collects the answer."""

    def __init__(self, n):
        # Shared abstractions must be declared in the main constructor.
        self.new_accumulator("total", 0, "sum")
        for i in range(n):
            self.create(Worker, self.thishandle, i)   # balancer places these
        self.start_quiescence(self.thishandle, "all_done")

    @entry
    def hello(self, pe):
        print(f"  worker 0 ran on PE {pe}")

    @entry
    def all_done(self):
        # No worker is running and no message is in flight: safe to collect.
        self.collect_accumulator("total", self.thishandle, "report")

    @entry
    def report(self, tag, total):
        self.exit(total)


def main():
    n = 100
    expected = sum(i * i for i in range(n))
    for machine_name, pes in (("symmetry", 8), ("ipsc2", 16)):
        machine = make_machine(machine_name, pes)
        kernel = Kernel(machine, balancer="acwn", seed=1)
        result = kernel.run(Main, n)
        assert result.result == expected, (result.result, expected)
        print(f"{machine_name:9s} P={pes:2d}: sum = {result.result} "
              f"in {result.time * 1e3:.2f} virtual ms")
        print(result.stats.summary())
        print()


if __name__ == "__main__":
    main()
