#!/usr/bin/env python
"""Sample sort: all-to-all communication and the projections timeline.

Runs the five-phase parallel sample sort (local sort → sample → splitters
→ all-to-all → merge) on two machine classes, validates against numpy,
and prints the execution timeline so the phases are visible: the dense
band is the all-to-all, the long '#' runs are local sorts and merges.

Run::

    python examples/sample_sort.py
"""

import numpy as np

from repro import Kernel, make_machine
from repro.apps.samplesort import SampleSortMain
from repro.util.rng import RngStream


def main():
    n, workers = 8192, 8
    data = RngStream(1, "example-sort").generator.standard_normal(n)

    for machine_name in ("symmetry", "ipsc2"):
        machine = make_machine(machine_name, workers)
        kernel = Kernel(machine, timeline=True, seed=2)
        result = kernel.run(SampleSortMain, data, workers, 16)
        assert np.array_equal(result.result, np.sort(data)), "sort is wrong!"
        st = result.stats
        print(f"{machine_name}: sorted {n} keys on {workers} PEs in "
              f"{result.time * 1e3:.2f} virtual ms "
              f"({st.total_bytes_sent} bytes moved, "
              f"util {st.mean_utilization * 100:.0f}%)")
        print(kernel.timeline.render(width=64))
        print()

    print("Scaling (ipsc2, virtual time):")
    t1 = None
    for p in (1, 2, 4, 8, 16):
        machine = make_machine("ipsc2", p)
        kernel = Kernel(machine, seed=2)
        result = kernel.run(SampleSortMain, data, p, 16)
        assert np.array_equal(result.result, np.sort(data))
        t1 = t1 or result.time
        print(f"  P={p:2d}  {result.time * 1e3:8.2f} ms  "
              f"speedup {t1 / result.time:5.2f}")


if __name__ == "__main__":
    main()
