"""Setuptools shim.

``pip install -e .`` needs the ``wheel`` package (PEP 660 editable
wheels); on the fully offline machines this repo targets, that may be
missing.  This shim keeps the legacy path working:

    python setup.py develop        # offline editable install

Configuration lives in pyproject.toml; nothing here duplicates it beyond
what the legacy command needs.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
