"""repro — a Python reproduction of the Charm / Chare Kernel system.

This package reproduces the system described in *"Object oriented parallel
programming: experiments and results"* (SC 1991; the original Charm paper):
a machine-independent, message-driven, object-oriented parallel programming
model with chares, branch-office chares, specific information-sharing
abstractions, pluggable queueing and dynamic load balancing, and quiescence
detection — running on a deterministic discrete-event simulation of the
paper's machine classes (shared-memory bus machines and hypercubes).

Quickstart::

    from repro import Chare, Kernel, entry, make_machine

    class Main(Chare):
        def __init__(self, n):
            self.new_accumulator("count", 0, "sum")
            for i in range(n):
                self.create(Worker, self.thishandle, i)
            self.start_quiescence(self.thishandle, "done")

        @entry
        def done(self):
            self.collect_accumulator("count", self.thishandle, "report")

        @entry
        def report(self, tag, total):
            self.exit(total)

    class Worker(Chare):
        def __init__(self, parent, i):
            self.charge(100)
            self.accumulate("count", i)

    result = Kernel(make_machine("ipsc2", 16)).run(Main, 64)
    print(result.result, result.time)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced tables and figures.
"""

from repro.core import (
    BocHandle,
    BranchOfficeChare,
    Chare,
    ChareHandle,
    Kernel,
    RunResult,
    entry,
)
from repro.faults import FaultConfig, FaultLayer
from repro.machine import Machine, MachineParams, MACHINE_PRESETS, make_machine
from repro.machine.topology import make_topology
from repro.balance import BALANCERS, make_balancer
from repro.queueing import STRATEGIES, make_strategy
from repro.util.priority import BitVectorPriority
from repro.patterns import map_reduce, scatter_gather

__version__ = "1.0.0"

__all__ = [
    "BocHandle",
    "BranchOfficeChare",
    "Chare",
    "ChareHandle",
    "Kernel",
    "RunResult",
    "entry",
    "FaultConfig",
    "FaultLayer",
    "Machine",
    "MachineParams",
    "MACHINE_PRESETS",
    "make_machine",
    "make_topology",
    "BALANCERS",
    "make_balancer",
    "STRATEGIES",
    "make_strategy",
    "BitVectorPriority",
    "map_reduce",
    "scatter_gather",
    "__version__",
]
