"""Benchmark programs (the paper's application suite).

Each module provides:

* a **sequential reference** implementation (ground truth + the T=1 work
  baseline used by speedup tables),
* a **Chare Kernel program** (Main chare + worker chares) exercising a
  characteristic slice of the runtime:

  ==========  ===========================================================
  nqueens     dynamic tree search, accumulator + quiescence detection
  fib         divide & conquer with response combining (no quiescence)
  primes      static decomposition, accumulator reduction
  tsp         branch & bound: monotonic bound, priorities, accumulators
  knapsack    branch & bound (maximization), integer priorities
  jacobi      iterative stencil: pinned chares, neighbor messaging, numpy
  matmul      static data-parallel block multiply with real payloads
  tree        synthetic unbalanced tree — the load-balancing stressor
  histogram   distributed-table workload (insert/find with replies)
  puzzle      IDA* sliding-tile search — repeated quiescence rounds,
              epoch-tagged accumulators, bitvector-friendly priorities
  sor         red-black SOR — convergence-driven iteration (continue/stop
              verdicts every step), doubled ghost exchanges
  samplesort  parallel sample sort — gather/scatter/all-to-all phases
              with data-dependent message sizes
  md          cell-decomposition molecular dynamics — per-step neighbor
              exchange plus data-dependent particle migration
  lu          pipelined dense LU factorization — overlapping pivot-row
              broadcasts (dataflow pipelining)
  serving     open-loop request farm — timed arrival injection, balancer
              placement, admission control, trace-derived tail latency
  ==========  ===========================================================

* a ``run_<name>(machine, **params) -> (answer, RunResult)`` driver used by
  examples, tests and the benchmark harness.
"""

from repro.apps.nqueens import nqueens_seq, run_nqueens
from repro.apps.fib import fib_seq, run_fib
from repro.apps.primes import primes_seq, run_primes
from repro.apps.tsp import TspInstance, tsp_seq, run_tsp
from repro.apps.knapsack import KnapsackInstance, knapsack_seq, run_knapsack
from repro.apps.jacobi import jacobi_seq, run_jacobi
from repro.apps.matmul import run_matmul
from repro.apps.tree import TreeParams, tree_seq, run_tree
from repro.apps.histogram import run_histogram
from repro.apps.puzzle import ida_star_seq, random_puzzle, run_puzzle
from repro.apps.sor import sor_seq, run_sor
from repro.apps.samplesort import run_samplesort
from repro.apps.md import MdParams, md_seq, run_md
from repro.apps.lu import lu_seq, run_lu
from repro.apps.serving import run_serving

__all__ = [
    "nqueens_seq",
    "run_nqueens",
    "fib_seq",
    "run_fib",
    "primes_seq",
    "run_primes",
    "TspInstance",
    "tsp_seq",
    "run_tsp",
    "KnapsackInstance",
    "knapsack_seq",
    "run_knapsack",
    "jacobi_seq",
    "run_jacobi",
    "run_matmul",
    "TreeParams",
    "tree_seq",
    "run_tree",
    "run_histogram",
    "ida_star_seq",
    "random_puzzle",
    "run_puzzle",
    "sor_seq",
    "run_sor",
    "run_samplesort",
    "MdParams",
    "md_seq",
    "run_md",
    "lu_seq",
    "run_lu",
    "run_serving",
]
