"""CLI: run any benchmark app from the command line.

Examples::

    python -m repro.apps queens --machine ipsc2 -P 16 --set n=8 grainsize=3
    python -m repro.apps tree --balancer acwn --queueing lifo
    python -m repro.apps tsp --set n=10 propagation=lazy --timeline
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.harness import APPS
from repro.machine.presets import MACHINE_PRESETS, make_machine


def _parse_value(text: str):
    """Best-effort literal parsing for --set key=value pairs."""
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            pass
    if text in ("true", "True"):
        return True
    if text in ("false", "False"):
        return False
    return text


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.apps",
        description="Run one benchmark application on a simulated machine.",
    )
    parser.add_argument("app", choices=sorted(APPS), help="application name")
    parser.add_argument("--machine", default="ipsc2",
                        choices=sorted(MACHINE_PRESETS))
    parser.add_argument("-P", "--pes", type=int, default=8)
    parser.add_argument("--queueing", default=None)
    parser.add_argument("--balancer", default="random")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--backend", default="",
                        help="engine backend: heap (default) or batch")
    parser.add_argument("--sparse", action="store_true",
                        help="sparse-PE mode: skip the init broadcast and "
                             "materialize only touched ranks (large P)")
    parser.add_argument("--timeline", action="store_true",
                        help="print an ASCII execution timeline")
    parser.add_argument("--set", nargs="*", default=[], metavar="K=V",
                        help="override app parameters (e.g. n=9 grain=4)")
    args = parser.parse_args(argv)

    spec = APPS[args.app]
    params = dict(spec.defaults)
    for pair in args.set:
        if "=" not in pair:
            parser.error(f"--set expects key=value, got {pair!r}")
        key, value = pair.split("=", 1)
        params[key] = _parse_value(value)
    if args.queueing:
        params["queueing"] = args.queueing
    params.setdefault("balancer", args.balancer)

    machine = make_machine(args.machine, args.pes, backend=args.backend,
                           sparse=args.sparse)
    answer, result = spec.runner(
        machine, seed=args.seed, timeline=args.timeline, **params
    )

    print(f"app={args.app} machine={args.machine} P={args.pes} "
          f"queueing={params.get('queueing', 'fifo')} "
          f"balancer={params.get('balancer', '-')}")
    print(f"answer    : {str(answer)[:200]}")
    print(f"virtual   : {result.time * 1e3:.3f} ms")
    print(f"host      : {result.host_seconds:.3f} s "
          f"({result.events} events)")
    print(result.stats.summary())
    if args.timeline and result.kernel.timeline is not None:
        print(result.kernel.timeline.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
