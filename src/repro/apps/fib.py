"""Naive Fibonacci: divide-and-conquer with response combining.

This is the "pure dynamic tree with responses" benchmark: unlike N-queens,
results flow *back up* the chare tree (each node waits for its two
children), so termination is structural and needs no quiescence detection.
It exercises chare-to-parent messaging, response counting, and the load
balancer's behavior on a binary tree whose two halves are very uneven
(fib(n-1) vs fib(n-2)).

``threshold`` is the grain knob: subproblems below it run sequentially.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.chare import Chare, entry
from repro.core.kernel import Kernel, RunResult
from repro.machine.network import Machine

__all__ = ["fib_seq", "FibMain", "run_fib", "CALL_WORK"]

#: Work units per recursive call in the sequential grain.
CALL_WORK = 4.0


def fib_seq(n: int) -> Tuple[int, int]:
    """Return ``(fib(n), calls)`` where calls counts recursion nodes."""
    if n < 0:
        raise ValueError(f"fib undefined for negative n={n}")
    if n < 2:
        return n, 1
    a, ca = fib_seq(n - 1)
    b, cb = fib_seq(n - 2)
    return a + b, ca + cb + 1


class FibNode(Chare):
    """Computes fib(n); replies to its parent's ``result`` entry."""

    def __init__(self, n, parent):
        self.parent = parent
        self.pending = 2
        self.total = 0
        self.charge(CALL_WORK)
        if n < max(2, self._threshold()):  # n<2 is a base case at any grain
            value, calls = fib_seq(n)
            self.charge(CALL_WORK * max(0, calls - 1))
            self.send(parent, "result", value)
            return
        self.create(FibNode, n - 1, self.thishandle)
        self.create(FibNode, n - 2, self.thishandle)

    def _threshold(self) -> int:
        return self.readonly("fib_threshold")

    @entry
    def result(self, value):
        self.charge(CALL_WORK)
        self.total += value
        self.pending -= 1
        if self.pending == 0:
            self.send(self.parent, "result", self.total)


class FibMain(Chare):
    def __init__(self, n, threshold):
        self.set_readonly("fib_threshold", threshold)
        self.create(FibNode, n, self.thishandle)

    @entry
    def result(self, value):
        self.exit(value)


def run_fib(
    machine: Machine,
    n: int = 20,
    threshold: int = 10,
    *,
    queueing: str = "fifo",
    balancer: str = "random",
    seed: int = 0,
    **kernel_kwargs,
) -> Tuple[int, RunResult]:
    """Run parallel fib; returns ``(fib(n), RunResult)``."""
    kernel = Kernel(machine, queueing=queueing, balancer=balancer, seed=seed,
                    **kernel_kwargs)
    result = kernel.run(FibMain, n, threshold)
    return result.result, result
