"""Distributed-table workload (experiment T8).

``workers`` chares each insert a slice of a synthetic key/value stream
into a hash-partitioned distributed table (with acknowledgement replies),
then look every key back up and verify the value round-tripped.  The run
reports ``(inserted, verified, mismatches)`` — mismatches must be zero —
and the harness divides ops by virtual time for the throughput table.

Keys are strings (forcing real hashing/marshalling costs); values are the
classic word-count integers.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.chare import Chare, entry
from repro.core.kernel import Kernel, RunResult
from repro.machine.network import Machine
from repro.util.rng import derive_seed

__all__ = ["run_histogram", "HistogramMain", "OP_WORK"]

OP_WORK = 10.0


def _kv(stream_seed: int, i: int) -> Tuple[str, int]:
    h = derive_seed(stream_seed, "histogram", i)
    return f"key-{h % 100_000:05d}-{i}", int(h % 1_000)


class HistogramWorker(Chare):
    """Insert a key slice with acks, then find each key and verify it."""

    def __init__(self, main, stream_seed, lo, hi):
        self.main = main
        self.stream_seed = stream_seed
        self.lo, self.hi = lo, hi
        self.acks = 0
        self.checked = 0
        self.mismatches = 0
        for i in range(lo, hi):
            key, value = _kv(stream_seed, i)
            self.charge(OP_WORK)
            self.table_insert("hist", key, value, reply_to=self.thishandle,
                              reply_entry="inserted")

    @entry
    def inserted(self, key):
        self.acks += 1
        if self.acks == self.hi - self.lo:
            for i in range(self.lo, self.hi):
                key, _ = _kv(self.stream_seed, i)
                self.charge(OP_WORK)
                self.table_find("hist", key, self.thishandle, "found")

    @entry
    def found(self, key, value):
        self.checked += 1
        i = int(key.rsplit("-", 1)[1])
        _, expected = _kv(self.stream_seed, i)
        if value != expected:
            self.mismatches += 1
        if self.checked == self.hi - self.lo:
            self.send(self.main, "worker_done", self.acks, self.checked,
                      self.mismatches)


class HistogramMain(Chare):
    def __init__(self, items, workers, stream_seed):
        self.new_table("hist")
        self.pending = workers
        self.totals = [0, 0, 0]
        step = (items + workers - 1) // workers
        for w in range(workers):
            lo, hi = w * step, min(items, (w + 1) * step)
            if lo >= hi:
                self.pending -= 1
                continue
            self.create(HistogramWorker, self.thishandle, stream_seed, lo, hi)

    @entry
    def worker_done(self, acks, checked, mismatches):
        self.totals[0] += acks
        self.totals[1] += checked
        self.totals[2] += mismatches
        self.pending -= 1
        if self.pending == 0:
            self.exit(tuple(self.totals))


def run_histogram(
    machine: Machine,
    items: int = 256,
    workers: int = 8,
    *,
    stream_seed: int = 0,
    queueing: str = "fifo",
    balancer: str = "random",
    seed: int = 0,
    **kernel_kwargs,
) -> Tuple[Tuple[int, int, int], RunResult]:
    """Run the table workload; returns ``((inserted, found, bad), RunResult)``."""
    kernel = Kernel(machine, queueing=queueing, balancer=balancer, seed=seed,
                    **kernel_kwargs)
    result = kernel.run(HistogramMain, items, workers, stream_seed)
    return result.result, result
