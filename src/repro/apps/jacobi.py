"""Jacobi relaxation on a 2-D grid of pinned block chares.

The communication-bound, statically decomposed member of the suite (every
machine-comparison table needs one): an ``N x N`` grid is split into
``B x B`` blocks; each block is a chare pinned round-robin to a PE.  Every
iteration a block sends its four boundary strips to its neighbors, waits
for the strips it needs, relaxes its interior with real numpy arithmetic,
and proceeds — classic bulk-synchronous behavior expressed in a purely
message-driven way (no barriers: each block counts the boundary messages
of the iteration it is in, buffering early arrivals).

Validation: the block program computes *exactly* the same grid as
:func:`jacobi_seq` (same iteration count, same update order), so tests can
require bitwise-equal numpy results.

Work model: ``CELL_WORK`` per interior cell per iteration.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.chare import Chare, entry
from repro.core.kernel import Kernel, RunResult
from repro.machine.network import Machine

__all__ = ["jacobi_seq", "JacobiMain", "run_jacobi", "CELL_WORK"]

CELL_WORK = 5.0


def make_grid(n: int) -> np.ndarray:
    """Initial condition: zero interior, hot top edge, cool bottom edge."""
    grid = np.zeros((n, n), dtype=np.float64)
    grid[0, :] = 100.0
    grid[-1, :] = -100.0
    return grid


def jacobi_seq(n: int, iterations: int) -> Tuple[np.ndarray, float]:
    """Reference relaxation; returns final grid and last-step residual."""
    grid = make_grid(n)
    residual = 0.0
    for _ in range(iterations):
        new = grid.copy()
        new[1:-1, 1:-1] = 0.25 * (
            grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
        )
        residual = float(np.max(np.abs(new - grid)))
        grid = new
    return grid, residual


class JacobiBlock(Chare):
    """One block of rows/cols; speaks to up/down/left/right neighbors."""

    def __init__(self, bi, bj, block, iterations, main):
        self.bi, self.bj = bi, bj
        self.grid = block          # includes one ghost ring
        self.iterations = iterations
        self.main = main
        self.iter = 0
        self.neighbors: Dict[str, object] = {}
        self._buffer: Dict[Tuple[int, str], np.ndarray] = {}
        self._needed = 0
        self._wired = False
        self._done = False

    @entry
    def wire(self, neighbors):
        """Receive handles of the (up to four) adjacent blocks and start."""
        self.neighbors = dict(neighbors)
        self._needed = len(self.neighbors)
        self._wired = True
        self._send_boundaries()
        self._maybe_relax()

    def _send_boundaries(self):
        interior = self.grid[1:-1, 1:-1]
        strips = {
            "up": interior[0, :],
            "down": interior[-1, :],
            "left": interior[:, 0],
            "right": interior[:, -1],
        }
        opposite = {"up": "down", "down": "up", "left": "right", "right": "left"}
        for side, handle in self.neighbors.items():
            self.charge(len(strips[side]) * 0.5)
            self.send(handle, "boundary", self.iter, opposite[side], strips[side].copy())

    @entry
    def boundary(self, iteration, side, strip):
        self._buffer[(iteration, side)] = strip
        self._maybe_relax()

    def _maybe_relax(self):
        if not self._wired:
            return  # a neighbor's strip can overtake our wire message
        while True:
            wanted = [(self.iter, side) for side in self.neighbors]
            if self.iter >= self.iterations or not all(
                key in self._buffer for key in wanted
            ):
                break
            for key in wanted:
                self._apply_ghost(key[1], self._buffer.pop(key))
            self._relax()
            if self.iter < self.iterations:
                self._send_boundaries()
        if self.iter >= self.iterations and not self._done:
            self._finish()

    def _apply_ghost(self, side, strip):
        if side == "up":
            self.grid[0, 1:-1] = strip
        elif side == "down":
            self.grid[-1, 1:-1] = strip
        elif side == "left":
            self.grid[1:-1, 0] = strip
        else:
            self.grid[1:-1, -1] = strip

    def _relax(self):
        g = self.grid
        interior = g[1:-1, 1:-1]
        new = 0.25 * (g[:-2, 1:-1] + g[2:, 1:-1] + g[1:-1, :-2] + g[1:-1, 2:])
        # Cells on the *global* grid boundary (sides with no neighbor
        # block) are Dirichlet-fixed, exactly as in jacobi_seq.
        fixed = self._fixed_mask()
        updated = np.where(fixed, interior, new)
        self.charge(CELL_WORK * interior.size)
        if self.iter == self.iterations - 1:
            self.accumulate("residual", float(np.max(np.abs(updated - interior))))
        g[1:-1, 1:-1] = updated
        self.iter += 1

    def _fixed_mask(self) -> np.ndarray:
        h, w = self.grid[1:-1, 1:-1].shape
        mask = np.zeros((h, w), dtype=bool)
        if "up" not in self.neighbors:
            mask[0, :] = True
        if "down" not in self.neighbors:
            mask[-1, :] = True
        if "left" not in self.neighbors:
            mask[:, 0] = True
        if "right" not in self.neighbors:
            mask[:, -1] = True
        return mask

    def _finish(self):
        self._done = True
        self.send(self.main, "block_done", self.bi, self.bj,
                  self.grid[1:-1, 1:-1].copy())


class JacobiMain(Chare):
    def __init__(self, n, blocks, iterations):
        self.new_accumulator("residual", 0.0, "max")
        self.n, self.blocks = n, blocks
        if n % blocks:
            raise ValueError(f"grid size {n} not divisible into {blocks} blocks")
        self.bs = n // blocks
        self.result = np.zeros((n, n))
        self.pending = blocks * blocks
        grid = make_grid(n)
        handles = {}
        pe = 0
        for bi in range(blocks):
            for bj in range(blocks):
                block = np.zeros((self.bs + 2, self.bs + 2))
                block[1:-1, 1:-1] = grid[
                    bi * self.bs : (bi + 1) * self.bs, bj * self.bs : (bj + 1) * self.bs
                ]
                handles[(bi, bj)] = self.create(
                    JacobiBlock, bi, bj, block, iterations, self.thishandle,
                    pe=pe % self.num_pes,
                )
                pe += 1
        for (bi, bj), handle in handles.items():
            nbrs = {}
            if bi > 0:
                nbrs["up"] = handles[(bi - 1, bj)]
            if bi < blocks - 1:
                nbrs["down"] = handles[(bi + 1, bj)]
            if bj > 0:
                nbrs["left"] = handles[(bi, bj - 1)]
            if bj < blocks - 1:
                nbrs["right"] = handles[(bi, bj + 1)]
            self.send(handle, "wire", tuple(nbrs.items()))

    @entry
    def block_done(self, bi, bj, block):
        bs = self.bs
        self.result[bi * bs : (bi + 1) * bs, bj * bs : (bj + 1) * bs] = block
        self.pending -= 1
        if self.pending == 0:
            self.collect_accumulator("residual", self.thishandle, "collected")

    @entry
    def collected(self, tag, residual):
        self.exit((self.result, residual))


def run_jacobi(
    machine: Machine,
    n: int = 32,
    blocks: int = 4,
    iterations: int = 10,
    *,
    queueing: str = "fifo",
    balancer: str = "random",
    seed: int = 0,
    **kernel_kwargs,
) -> Tuple[Tuple[np.ndarray, float], RunResult]:
    """Run block-parallel Jacobi; returns ``((grid, residual), RunResult)``."""
    kernel = Kernel(machine, queueing=queueing, balancer=balancer, seed=seed,
                    **kernel_kwargs)
    result = kernel.run(JacobiMain, n, blocks, iterations)
    return result.result, result
