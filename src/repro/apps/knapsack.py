"""0/1 knapsack by branch and bound (maximization).

The second speculative-search benchmark: same machinery as TSP (monotonic
bound, priority seeds, accumulators), but a *maximization* problem with a
fractional-relaxation upper bound, so it exercises the ``max`` direction of
the monotonic abstraction and much shallower, wider search trees.

Items are pre-sorted by value density; a node is (index, weight_used,
value_so_far).  Child priority is the negated upper bound, so best-first
search under the ``prio`` strategy expands the most promising node first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.chare import Chare, entry
from repro.core.kernel import Kernel, RunResult
from repro.machine.network import Machine
from repro.util.rng import RngStream

__all__ = [
    "KnapsackInstance",
    "knapsack_seq",
    "KnapsackMain",
    "run_knapsack",
    "NODE_WORK",
]

NODE_WORK = 15.0


@dataclass(frozen=True)
class KnapsackInstance:
    """Items sorted by decreasing value/weight density."""

    weights: tuple
    values: tuple
    capacity: int

    @property
    def n(self) -> int:
        return len(self.weights)

    def __wire_size__(self) -> int:
        return 8 * self.n + 8

    @classmethod
    def random(
        cls, n: int, seed: int = 0, max_weight: int = 30, correlation: int = 10
    ) -> "KnapsackInstance":
        """Weakly correlated instances (the classically hard family)."""
        rng = RngStream(seed, "knapsack", n)
        items = []
        for _ in range(n):
            w = rng.randint(1, max_weight + 1)
            v = max(1, w + rng.randint(-correlation, correlation + 1))
            items.append((w, v))
        items.sort(key=lambda wv: wv[1] / wv[0], reverse=True)
        capacity = max(1, sum(w for w, _ in items) // 2)
        return cls(
            tuple(w for w, _ in items), tuple(v for _, v in items), capacity
        )


def _upper_bound(inst: KnapsackInstance, index: int, weight: int, value: int) -> float:
    """Fractional relaxation over the remaining (density-sorted) items."""
    room = inst.capacity - weight
    bound = float(value)
    for i in range(index, inst.n):
        w, v = inst.weights[i], inst.values[i]
        if w <= room:
            room -= w
            bound += v
        else:
            bound += v * (room / w)
            break
    return bound


def knapsack_seq(inst: KnapsackInstance) -> Tuple[int, int]:
    """Optimal value and nodes expanded (sequential depth-first B&B)."""
    best = [0]
    nodes = [0]

    def dfs(index: int, weight: int, value: int) -> None:
        nodes[0] += 1
        if value > best[0]:
            best[0] = value
        if index == inst.n:
            return
        if _upper_bound(inst, index, weight, value) <= best[0]:
            return
        w = inst.weights[index]
        if weight + w <= inst.capacity:
            dfs(index + 1, weight + w, value + inst.values[index])
        dfs(index + 1, weight, value)

    dfs(0, 0, 0)
    return best[0], nodes[0]


class KnapsackNode(Chare):
    def __init__(self, index, weight, value):
        inst: KnapsackInstance = self.readonly("knapsack_instance")
        self.charge(NODE_WORK)
        self.accumulate("nodes", 1)
        if value > 0:
            self.update_monotonic("best", value)
            self.accumulate("best", value)
        if index == inst.n:
            return
        incumbent = self.read_monotonic("best")
        if _upper_bound(inst, index, weight, value) <= incumbent:
            return
        grain = self.readonly("knapsack_grain")
        if inst.n - index <= grain:
            sub_best, sub_nodes = self._solve_seq(inst, index, weight, value, incumbent)
            self.charge(NODE_WORK * sub_nodes)
            self.accumulate("nodes", sub_nodes)
            if sub_best > 0:
                self.update_monotonic("best", sub_best)
                self.accumulate("best", sub_best)
            return
        w = inst.weights[index]
        for take in (True, False):
            if take and weight + w > inst.capacity:
                continue
            nw = weight + w if take else weight
            nv = value + inst.values[index] if take else value
            ub = _upper_bound(inst, index + 1, nw, nv)
            if ub <= incumbent:
                continue
            # Negated bound: larger upper bounds run first under "prio".
            self.create(KnapsackNode, index + 1, nw, nv, priority=-int(ub))

    @staticmethod
    def _solve_seq(inst, index, weight, value, incumbent) -> Tuple[int, int]:
        best = [incumbent]
        nodes = [0]

        def dfs(i, wt, val):
            nodes[0] += 1
            if val > best[0]:
                best[0] = val
            if i == inst.n or _upper_bound(inst, i, wt, val) <= best[0]:
                return
            if wt + inst.weights[i] <= inst.capacity:
                dfs(i + 1, wt + inst.weights[i], val + inst.values[i])
            dfs(i + 1, wt, val)

        dfs(index, weight, value)
        return best[0], nodes[0]


class KnapsackMain(Chare):
    def __init__(self, inst, grain, propagation):
        self.set_readonly("knapsack_instance", inst)
        self.set_readonly("knapsack_grain", grain)
        self.new_monotonic("best", 0, "max", propagation)
        self.new_accumulator("best", 0, "max")
        self.new_accumulator("nodes", 0, "sum")
        self._got = {}
        self.create(KnapsackNode, 0, 0, 0, priority=0)
        self.start_quiescence(self.thishandle, "quiet")

    @entry
    def quiet(self):
        for name in ("best", "nodes"):
            self.collect_accumulator(name, self.thishandle, "collected")

    @entry
    def collected(self, tag, value):
        self._got[tag.split(":")[1]] = value
        if len(self._got) == 2:
            self.exit((self._got["best"], self._got["nodes"]))


def run_knapsack(
    machine: Machine,
    inst: Optional[KnapsackInstance] = None,
    n: int = 24,
    *,
    instance_seed: int = 0,
    grain: int = 12,
    propagation: str = "eager",
    queueing: str = "prio",
    balancer: str = "random",
    seed: int = 0,
    **kernel_kwargs,
) -> Tuple[Tuple[int, int], RunResult]:
    """Run parallel knapsack B&B; returns ``((best, nodes), RunResult)``."""
    if inst is None:
        inst = KnapsackInstance.random(n, instance_seed)
    kernel = Kernel(machine, queueing=queueing, balancer=balancer, seed=seed,
                    **kernel_kwargs)
    result = kernel.run(KnapsackMain, inst, grain, propagation)
    return result.result, result
