"""Pipelined dense LU factorization (no pivoting, row-block chares).

The dense-linear-algebra member of the suite, with a communication
pattern none of the other apps have: a **pipeline of broadcasts**.  Rows
are distributed in contiguous blocks, one chare per block; when row ``k``
becomes final (all pivots ``< k`` applied) its owner broadcasts it, and
every block eliminates below it.  Because row ``k+1`` becomes final the
moment its own block has applied pivot ``k`` — typically long before the
last block has — successive pivot broadcasts overlap: the pipeline.

Pivoting is omitted (as in many early message-driven LU demonstrations);
test matrices are made diagonally dominant so elimination is stable.
The parallel factorization is **bit-identical** to :func:`lu_seq`: every
row update ``row_i -= factor * pivot_row`` is one vectorized operation,
and each row applies pivots in ascending order in both versions.

Work model: ``UPDATE_WORK`` per matrix element touched in an elimination
step.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.chare import Chare, entry
from repro.core.kernel import Kernel, RunResult
from repro.machine.network import Machine
from repro.util.rng import RngStream

__all__ = ["make_matrix", "lu_seq", "LuMain", "run_lu", "UPDATE_WORK"]

UPDATE_WORK = 1.0


def make_matrix(n: int, seed: int = 0) -> np.ndarray:
    """A well-conditioned (diagonally dominant) random matrix."""
    rng = RngStream(seed, "lu", n).generator
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    a[np.arange(n), np.arange(n)] += n
    return a


def lu_seq(a: np.ndarray) -> np.ndarray:
    """In-place-style LU (Doolittle, no pivoting): returns combined LU.

    The unit-lower factors live below the diagonal, U on and above it.
    """
    lu = a.copy()
    n = lu.shape[0]
    for k in range(n - 1):
        pivot_row = lu[k, :].copy()
        for i in range(k + 1, n):
            factor = lu[i, k] / pivot_row[k]
            lu[i, k:] = lu[i, k:] - factor * pivot_row[k:]
            lu[i, k] = factor
    return lu


def split_lu(lu: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Separate a combined LU into (unit-lower L, upper U)."""
    lower = np.tril(lu, -1) + np.eye(lu.shape[0])
    upper = np.triu(lu)
    return lower, upper


class LuBlock(Chare):
    """Owns rows [lo, hi); eliminates below each received pivot row."""

    def __init__(self, index, lo, hi, rows, main):
        self.index = index
        self.lo, self.hi = lo, hi
        self.rows = rows.copy()          # local slab, shape (hi-lo, n)
        self.main = main
        self.peers: List = []
        self._pivots: Dict[int, np.ndarray] = {}
        self.applied = -1                # highest pivot index applied
        self._done = False

    @entry
    def wire(self, peers):
        self.peers = list(peers)
        if self.lo == 0:
            self._emit_pivot(0)
        self._drain()

    @entry
    def pivot(self, k, row):
        self._pivots[k] = np.asarray(row)
        self._drain()

    def _emit_pivot(self, k):
        """Row k is final: broadcast it (and apply locally via the queue)."""
        row = self.rows[k - self.lo, :].copy()
        self.charge(UPDATE_WORK * len(row))
        for j, peer in enumerate(self.peers):
            if j != self.index:
                self.send(peer, "pivot", k, row)
        self._pivots[k] = row

    def _drain(self):
        if not self.peers:
            return
        n = self.rows.shape[1]
        while (self.applied + 1) in self._pivots:
            k = self.applied + 1
            pivot_row = self._pivots.pop(k)
            start = max(self.lo, k + 1)
            touched = 0
            for i in range(start, self.hi):
                r = i - self.lo
                factor = self.rows[r, k] / pivot_row[k]
                self.rows[r, k:] = self.rows[r, k:] - factor * pivot_row[k:]
                self.rows[r, k] = factor
                touched += n - k
            self.charge(UPDATE_WORK * touched)
            self.applied = k
            # Row k+1 becomes final as soon as pivot k is applied to it.
            nxt = k + 1
            if self.lo <= nxt < self.hi and nxt < n - 1:
                self._emit_pivot(nxt)
        self._maybe_finish()

    def _maybe_finish(self):
        n = self.rows.shape[1]
        # Rows in this block need every pivot k < hi-1 applied (the last
        # row of the matrix needs pivot n-2).
        needed = min(self.hi - 1, n - 1) - 1
        if not self._done and self.applied >= needed:
            self._done = True
            self.send(self.main, "block_done", self.lo, self.rows.copy())


class LuMain(Chare):
    def __init__(self, a, blocks):
        n = a.shape[0]
        if n % blocks:
            raise ValueError(f"{n} rows not divisible into {blocks} blocks")
        self.n = n
        self.lu = np.zeros_like(a)
        self.pending = blocks
        bs = n // blocks
        handles = [
            self.create(LuBlock, b, b * bs, (b + 1) * bs,
                        a[b * bs:(b + 1) * bs, :], self.thishandle,
                        pe=b % self.num_pes)
            for b in range(blocks)
        ]
        peers = tuple(handles)
        for h in handles:
            self.send(h, "wire", peers)

    @entry
    def block_done(self, lo, rows):
        self.lu[lo:lo + rows.shape[0], :] = rows
        self.pending -= 1
        if self.pending == 0:
            self.exit(self.lu)


def run_lu(
    machine: Machine,
    n: int = 48,
    blocks: int = 8,
    *,
    data_seed: int = 0,
    queueing: str = "fifo",
    balancer: str = "random",
    seed: int = 0,
    **kernel_kwargs,
) -> Tuple[Tuple[np.ndarray, np.ndarray], RunResult]:
    """Run pipelined LU; returns ``((A, LU_combined), RunResult)``."""
    a = make_matrix(n, data_seed)
    kernel = Kernel(machine, queueing=queueing, balancer=balancer, seed=seed,
                    **kernel_kwargs)
    result = kernel.run(LuMain, a, blocks)
    return (a, result.result), result
