"""Blocked matrix multiply: static data parallelism with heavy payloads.

``C = A @ B`` with matrices split into a ``g x g`` block grid.  The main
chare creates one worker per output block, shipping the needed row-strip
of A and column-strip of B in the constructor message — so unlike the
tree-search apps, here the *data movement* dominates and the network
``beta`` term matters (this app separates the bus and hypercube presets
most sharply).

Work model: ``FLOP_WORK`` per multiply-add, charged by the worker.
Validation: exact equality against ``A @ B`` (same float ops, same order).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.chare import Chare, entry
from repro.core.kernel import Kernel, RunResult
from repro.machine.network import Machine
from repro.util.rng import RngStream

__all__ = ["run_matmul", "MatMulMain", "FLOP_WORK"]

FLOP_WORK = 0.5  # work units per multiply-add


class MatMulWorker(Chare):
    """Computes one output block and sends it home."""

    def __init__(self, bi, bj, a_strip, b_strip, main):
        block = a_strip @ b_strip
        self.charge(FLOP_WORK * a_strip.shape[0] * a_strip.shape[1] * b_strip.shape[1])
        self.send(main, "block_done", bi, bj, block)


class MatMulMain(Chare):
    def __init__(self, a, b, g):
        n = a.shape[0]
        if n % g:
            raise ValueError(f"matrix size {n} not divisible by grid {g}")
        self.bs = n // g
        self.g = g
        self.c = np.zeros_like(a)
        self.pending = g * g
        bs = self.bs
        for bi in range(g):
            for bj in range(g):
                self.create(
                    MatMulWorker,
                    bi,
                    bj,
                    a[bi * bs : (bi + 1) * bs, :],
                    b[:, bj * bs : (bj + 1) * bs],
                    self.thishandle,
                )

    @entry
    def block_done(self, bi, bj, block):
        bs = self.bs
        self.c[bi * bs : (bi + 1) * bs, bj * bs : (bj + 1) * bs] = block
        self.pending -= 1
        if self.pending == 0:
            self.exit(self.c)


def run_matmul(
    machine: Machine,
    n: int = 64,
    g: int = 4,
    *,
    data_seed: int = 0,
    queueing: str = "fifo",
    balancer: str = "random",
    seed: int = 0,
    **kernel_kwargs,
) -> Tuple[Tuple[np.ndarray, np.ndarray, np.ndarray], RunResult]:
    """Run blocked matmul; returns ``((A, B, C), RunResult)``."""
    rng = RngStream(data_seed, "matmul", n)
    a = rng.generator.standard_normal((n, n))
    b = rng.generator.standard_normal((n, n))
    kernel = Kernel(machine, queueing=queueing, balancer=balancer, seed=seed,
                    **kernel_kwargs)
    result = kernel.run(MatMulMain, a, b, g)
    return (a, b, result.result), result
