"""Molecular dynamics by cell decomposition (the NAMD-shaped workload).

The Charm lineage's flagship application class: short-range particle
dynamics where space is decomposed into **cells**, one chare per cell,
and each timestep needs (a) neighbor-cell particle exchange for force
computation and (b) **particle migration** between cells — so unlike the
stencil apps, the communication *payloads and destinations are data
dependent* and change every step.

Model (kept deliberately small but real):

* 2-D periodic box of side ``C * cell``; one chare per cell, pinned
  round-robin; ``n`` particles with unit mass.
* Soft repulsive pair force ``f(r) = k (1 - r/rc)`` for ``r < rc``
  (bounded, smooth — no LJ singularities to destabilize tests), with
  minimum-image convention; ``rc`` equals the cell size so the 8-neighbor
  stencil covers all interactions.
* Symplectic Euler: ``v += F dt; x += v dt`` then periodic wrap.
* Per step, each cell: sends its population to its 8 neighbors; computes
  forces for its own particles once all neighbor populations for that
  step arrived (summing pair contributions in ascending particle-id
  order, which makes the floating-point result **bit-identical** to the
  sequential reference); integrates; then hands off any particle that
  crossed into a neighbor cell (one handoff message per neighbor per
  step, possibly empty, so population is known deterministically).

Validation: :func:`md_seq` computes the same trajectories with an O(n²)
minimum-image loop; tests require exact equality of every position and
velocity after every step.  Work model: ``PAIR_WORK`` per pair examined
plus ``PART_WORK`` per particle per step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.chare import Chare, entry
from repro.core.kernel import Kernel, RunResult
from repro.machine.network import Machine
from repro.util.rng import RngStream

__all__ = ["MdParams", "make_particles", "md_seq", "MdMain", "run_md",
           "PAIR_WORK", "PART_WORK"]

PAIR_WORK = 3.0
PART_WORK = 5.0


@dataclass(frozen=True)
class MdParams:
    """Simulation parameters; box side is ``cells * cell_size``."""

    cells: int = 4           # C x C cell grid
    cell_size: float = 1.0
    n_particles: int = 64
    dt: float = 0.02
    steps: int = 10
    k: float = 20.0          # force stiffness
    seed: int = 0

    def __post_init__(self) -> None:
        if self.cells < 3:
            # With < 3 cells per axis the periodic 8-neighborhood aliases
            # (one cell appears twice), double-counting pair forces.
            raise ValueError("MdParams.cells must be >= 3")

    @property
    def box(self) -> float:
        return self.cells * self.cell_size

    @property
    def cutoff(self) -> float:
        return self.cell_size

    def __wire_size__(self) -> int:
        return 48


def make_particles(params: MdParams) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic initial state: ``(positions[n,2], velocities[n,2])``."""
    rng = RngStream(params.seed, "md", params.n_particles).generator
    pos = rng.uniform(0.0, params.box, size=(params.n_particles, 2))
    vel = rng.normal(0.0, 0.5, size=(params.n_particles, 2))
    # Keep |v| dt well below one cell so migration is at most one cell/step.
    vmax = params.cell_size / (4 * params.dt)
    np.clip(vel, -vmax, vmax, out=vel)
    return pos, vel


def _min_image(delta: np.ndarray, box: float) -> np.ndarray:
    return delta - box * np.round(delta / box)


def _pair_force(delta: np.ndarray, params: MdParams) -> np.ndarray:
    """Soft repulsion along ``delta`` (force on the particle at +delta)."""
    r = float(np.hypot(delta[0], delta[1]))
    if r >= params.cutoff or r == 0.0:
        return np.zeros(2)
    mag = params.k * (1.0 - r / params.cutoff)
    return (delta / r) * mag


def md_seq(params: MdParams) -> Tuple[np.ndarray, np.ndarray]:
    """Reference trajectory: O(n²) minimum-image with the same float order."""
    pos, vel = make_particles(params)
    pos, vel = pos.copy(), vel.copy()
    n = params.n_particles
    for _ in range(params.steps):
        forces = np.zeros_like(pos)
        for i in range(n):
            for j in range(n):
                if j == i:
                    continue
                delta = _min_image(pos[i] - pos[j], params.box)
                forces[i] += _pair_force(delta, params)
        vel = vel + forces * params.dt
        pos = (pos + vel * params.dt) % params.box
    return pos, vel


def _cell_of(x: float, y: float, params: MdParams) -> Tuple[int, int]:
    c = params.cells
    return (int(x // params.cell_size) % c, int(y // params.cell_size) % c)


class MdCell(Chare):
    """One spatial cell: owns its particles; exchanges, computes, migrates."""

    def __init__(self, ci, cj, ids, pos, vel, main):
        self.ci, self.cj = ci, cj
        self.main = main
        # Particle store: id -> (pos, vel); kept sorted at use time.
        self.park: Dict[int, Tuple[np.ndarray, np.ndarray]] = {
            int(i): (p.copy(), v.copy()) for i, p, v in zip(ids, pos, vel)
        }
        self.step = 0
        self.neighbors: List = []       # 8 handles
        self._pops: Dict[int, list] = {}      # step -> received populations
        self._handoffs: Dict[int, list] = {}  # step -> received migrations
        self._wired = False

    @entry
    def wire(self, neighbors):
        self.neighbors = list(neighbors)
        self._wired = True
        self._send_population()
        self._try_compute()

    def _snapshot(self):
        """(id, pos, vel) triples for messaging (ids ascending)."""
        return tuple(
            (i, self.park[i][0].copy(), self.park[i][1].copy())
            for i in sorted(self.park)
        )

    def _send_population(self):
        snap = self._snapshot()
        self.charge(PART_WORK * len(snap))
        for h in self.neighbors:
            self.send(h, "population", self.step, snap)

    @entry
    def population(self, step, snap):
        self._pops.setdefault(step, []).append(snap)
        self._try_compute()

    @entry
    def handoff(self, step, snap):
        self._handoffs.setdefault(step, []).append(snap)
        self._try_compute()

    def _try_compute(self):
        if not self._wired:
            return
        params: MdParams = self.readonly("md_params")
        progressed = True
        while progressed:
            progressed = False
            if (
                self.step < params.steps
                and not self._awaiting_handoffs()
                and len(self._pops.get(self.step, [])) == len(self.neighbors)
            ):
                self._compute_step()
                progressed = True
            # After integrating step k we must collect 8 handoffs before
            # the step-(k+1) population is final.
            elif self._awaiting_handoffs():
                arrivals = self._handoffs.get(self.step - 1, [])
                if len(arrivals) == len(self.neighbors):
                    for snap in arrivals:
                        for i, p, v in snap:
                            self.park[int(i)] = (np.asarray(p), np.asarray(v))
                    del self._handoffs[self.step - 1]
                    self._pending_handoffs = False
                    if self.step < params.steps:
                        self._send_population()
                    progressed = True

    def _awaiting_handoffs(self) -> bool:
        return getattr(self, "_pending_handoffs", False)

    def _compute_step(self):
        from repro.apps.md import _min_image, _pair_force  # self-import ok

        params: MdParams = self.readonly("md_params")
        neighbors_parts = []
        for snap in self._pops.pop(self.step):
            neighbors_parts.extend(snap)
        own = self._snapshot()
        candidates = sorted(
            list(own) + neighbors_parts, key=lambda t: t[0]
        )
        pairs = 0
        new_state: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        for i, pi, vi in own:
            force = np.zeros(2)
            for j, pj, _vj in candidates:
                if j == i:
                    continue
                pairs += 1
                delta = _min_image(np.asarray(pi) - np.asarray(pj), params.box)
                force += _pair_force(delta, params)
            v_new = np.asarray(vi) + force * params.dt
            p_new = (np.asarray(pi) + v_new * params.dt) % params.box
            new_state[int(i)] = (p_new, v_new)
        self.charge(PAIR_WORK * pairs + PART_WORK * len(own))
        # Partition into stay / migrate-per-neighbor-cell.
        stay: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        outbound: Dict[int, list] = {k: [] for k in range(len(self.neighbors))}
        params_cells = params.cells
        for i, (p, v) in new_state.items():
            cell = _cell_of(p[0], p[1], params)
            if cell == (self.ci, self.cj):
                stay[i] = (p, v)
            else:
                idx = self._neighbor_index(cell, params_cells)
                outbound[idx].append((i, p, v))
        self.park = stay
        migrated = sum(len(v) for v in outbound.values())
        if migrated:
            self.accumulate("migrations", migrated)
        for idx, h in enumerate(self.neighbors):
            self.send(h, "handoff", self.step, tuple(outbound[idx]))
        self.step += 1
        self._pending_handoffs = True

    @entry
    def report(self, main):
        """Send the final (post-migration) cell population to the main chare."""
        self.send(main, "cell_state", self._snapshot())

    def _neighbor_index(self, cell: Tuple[int, int], c: int) -> int:
        """Index of ``cell`` within our 8-neighborhood ordering."""
        di = (cell[0] - self.ci + c) % c
        dj = (cell[1] - self.cj + c) % c
        di = di - c if di > c // 2 else di
        dj = dj - c if dj > c // 2 else dj
        order = [(-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 1), (1, -1), (1, 0), (1, 1)]
        try:
            return order.index((di, dj))
        except ValueError:
            raise RuntimeError(
                f"particle moved more than one cell: delta {(di, dj)}"
            ) from None


class MdMain(Chare):
    def __init__(self, params):
        self.set_readonly("md_params", params)
        self.new_accumulator("migrations", 0, "sum")
        self.params = params
        pos, vel = make_particles(params)
        c = params.cells
        buckets: Dict[Tuple[int, int], list] = {
            (i, j): [] for i in range(c) for j in range(c)
        }
        for idx in range(params.n_particles):
            buckets[_cell_of(pos[idx, 0], pos[idx, 1], params)].append(idx)
        self.handles = {}
        pe = 0
        for (ci, cj), ids in buckets.items():
            self.handles[(ci, cj)] = self.create(
                MdCell, ci, cj, tuple(ids), pos[ids], vel[ids],
                self.thishandle, pe=pe % self.num_pes,
            )
            pe += 1
        order = [(-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 1), (1, -1), (1, 0), (1, 1)]
        for (ci, cj), h in self.handles.items():
            nbrs = tuple(
                self.handles[((ci + di) % c, (cj + dj) % c)] for di, dj in order
            )
            self.send(h, "wire", nbrs)
        self.start_quiescence(self.thishandle, "quiet")

    @entry
    def quiet(self):
        # All steps done and all handoffs delivered: collect final state.
        for h in self.handles.values():
            self.send(h, "report", self.thishandle)
        self.pending = len(self.handles)
        self.pos = np.zeros((self.params.n_particles, 2))
        self.vel = np.zeros((self.params.n_particles, 2))

    @entry
    def cell_state(self, snap):
        for i, p, v in snap:
            self.pos[int(i)] = p
            self.vel[int(i)] = v
        self.pending -= 1
        if self.pending == 0:
            self.exit((self.pos, self.vel))


def run_md(
    machine: Machine,
    params: MdParams | None = None,
    *,
    queueing: str = "fifo",
    balancer: str = "random",
    seed: int = 0,
    **kernel_kwargs,
) -> Tuple[Tuple[np.ndarray, np.ndarray], RunResult]:
    """Run cell-decomposition MD; returns ``((pos, vel), RunResult)``."""
    if params is None:
        params = MdParams()
    kernel = Kernel(machine, queueing=queueing, balancer=balancer, seed=seed,
                    **kernel_kwargs)
    result = kernel.run(MdMain, params)
    return result.result, result
