"""N-Queens: count all placements of N nonattacking queens.

The classic Chare Kernel demonstration program: a dynamically growing tree
of fine-grain chares, an accumulator for the solution count, and quiescence
detection for termination (there is no "last message" a node could know
about).

Board state travels as three bitmasks (columns, both diagonal directions),
so messages stay small and the per-node work is uniform.  ``grainsize``
rows from the bottom are searched sequentially inside one chare — the knob
experiment F2 sweeps.

Work model: ``NODE_WORK`` units per search-tree node visited (placement
test + mask updates), both in the chare program and in the sequential
reference, so speedups compare identical total work.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.chare import Chare, entry
from repro.core.kernel import Kernel, RunResult
from repro.machine.network import Machine
from repro.util.priority import BitVectorPriority

__all__ = ["nqueens_seq", "NQueensMain", "run_nqueens", "NODE_WORK"]

#: Abstract work units charged per tree node visited (~tens of instructions).
NODE_WORK = 12.0


def _count_from(n: int, row: int, cols: int, d1: int, d2: int) -> Tuple[int, int]:
    """Sequential count below a partial placement.

    Returns ``(solutions, nodes_visited)``; the node count drives work
    charging so the simulated cost matches the reference cost model.
    """
    if row == n:
        return 1, 1
    solutions = 0
    nodes = 1
    free = ~(cols | d1 | d2) & ((1 << n) - 1)
    while free:
        bit = free & -free
        free ^= bit
        s, v = _count_from(
            n, row + 1, cols | bit, ((d1 | bit) << 1) & ((1 << n) - 1), (d2 | bit) >> 1
        )
        solutions += s
        nodes += v
    return solutions, nodes


def nqueens_seq(n: int) -> Tuple[int, int]:
    """All-solutions count and total nodes for an ``n``-queens board."""
    return _count_from(n, 0, 0, 0, 0)


class NQueensNode(Chare):
    """One internal node of the search tree."""

    def __init__(self, n, row, cols, d1, d2, grainsize, prio):
        self.charge(NODE_WORK)
        mask = (1 << n) - 1
        if n - row <= grainsize:
            solutions, nodes = _count_from(n, row, cols, d1, d2)
            self.charge(NODE_WORK * max(0, nodes - 1))
            if solutions:
                self.accumulate("solutions", solutions)
            self.accumulate("nodes", nodes)
            return
        self.accumulate("nodes", 1)
        free = ~(cols | d1 | d2) & mask
        index = 0
        fanout = bin(free).count("1")
        while free:
            bit = free & -free
            free ^= bit
            child_prio = prio.child(index, fanout) if prio is not None else None
            self.create(
                NQueensNode,
                n,
                row + 1,
                cols | bit,
                ((d1 | bit) << 1) & mask,
                (d2 | bit) >> 1,
                grainsize,
                child_prio,
                priority=child_prio,
            )
            index += 1


class NQueensMain(Chare):
    """Main chare: declares accumulators, seeds the root, detects quiescence."""

    def __init__(self, n, grainsize, use_priorities):
        self.new_accumulator("solutions", 0, "sum")
        self.new_accumulator("nodes", 0, "sum")
        self._partial = {}
        root_prio = BitVectorPriority() if use_priorities else None
        self.create(NQueensNode, n, 0, 0, 0, 0, grainsize, root_prio,
                    priority=root_prio)
        self.start_quiescence(self.thishandle, "quiet")

    @entry
    def quiet(self):
        self.collect_accumulator("solutions", self.thishandle, "collected")
        self.collect_accumulator("nodes", self.thishandle, "collected")

    @entry
    def collected(self, tag, value):
        name = tag.split(":")[1]
        self._partial[name] = value
        if len(self._partial) == 2:
            self.exit((self._partial["solutions"], self._partial["nodes"]))


def run_nqueens(
    machine: Machine,
    n: int = 8,
    grainsize: int = 3,
    *,
    queueing: str = "fifo",
    balancer: str = "random",
    seed: int = 0,
    use_priorities: bool = False,
    **kernel_kwargs,
) -> Tuple[Tuple[int, int], RunResult]:
    """Run parallel N-queens; returns ``((solutions, nodes), RunResult)``."""
    kernel = Kernel(machine, queueing=queueing, balancer=balancer, seed=seed,
                    **kernel_kwargs)
    result = kernel.run(NQueensMain, n, grainsize, use_priorities)
    return result.result, result
