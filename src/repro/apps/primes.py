"""Prime counting by trial division over statically decomposed ranges.

The static-work member of the suite: the main chare splits ``[2, limit)``
into ``chunks`` ranges and creates one worker per range.  Work per
candidate grows with its magnitude (trial division up to sqrt), so equal
ranges carry *unequal* work — with pinned placement (``pin=True``) this
exposes static imbalance; with balancer placement the runtime smooths it.

Counting uses the accumulator abstraction; termination uses quiescence.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.chare import Chare, entry
from repro.core.kernel import Kernel, RunResult
from repro.machine.network import Machine

__all__ = ["primes_seq", "PrimesMain", "run_primes", "DIV_WORK"]

#: Work units per trial division performed.
DIV_WORK = 1.0


def _count_range(lo: int, hi: int) -> Tuple[int, int]:
    """Primes in [lo, hi) and the number of trial divisions performed."""
    count = 0
    divisions = 0
    for x in range(max(lo, 2), hi):
        if x % 2 == 0:
            divisions += 1
            if x == 2:
                count += 1
            continue
        d = 3
        is_prime = True
        while d * d <= x:
            divisions += 1
            if x % d == 0:
                is_prime = False
                break
            d += 2
        if is_prime:
            count += 1
    return count, divisions


def primes_seq(limit: int) -> Tuple[int, int]:
    """Primes below ``limit`` and total trial divisions (work proxy)."""
    return _count_range(2, limit)


class PrimesWorker(Chare):
    def __init__(self, lo, hi):
        count, divisions = _count_range(lo, hi)
        self.charge(DIV_WORK * divisions)
        self.accumulate("primes", count)


class PrimesMain(Chare):
    def __init__(self, limit, chunks, pin):
        self.new_accumulator("primes", 0, "sum")
        step = max(1, (limit - 2 + chunks - 1) // chunks)
        pe = 0
        for lo in range(2, limit, step):
            hi = min(limit, lo + step)
            if pin:
                self.create(PrimesWorker, lo, hi, pe=pe % self.num_pes)
                pe += 1
            else:
                self.create(PrimesWorker, lo, hi)
        self.start_quiescence(self.thishandle, "quiet")

    @entry
    def quiet(self):
        self.collect_accumulator("primes", self.thishandle, "collected")

    @entry
    def collected(self, tag, total):
        self.exit(total)


def run_primes(
    machine: Machine,
    limit: int = 20_000,
    chunks: int = 64,
    *,
    pin: bool = False,
    queueing: str = "fifo",
    balancer: str = "random",
    seed: int = 0,
    **kernel_kwargs,
) -> Tuple[int, RunResult]:
    """Run parallel prime counting; returns ``(count, RunResult)``."""
    kernel = Kernel(machine, queueing=queueing, balancer=balancer, seed=seed,
                    **kernel_kwargs)
    result = kernel.run(PrimesMain, limit, chunks, pin)
    return result.result, result
