"""Sliding-tile puzzle solved by parallel IDA* (iterative deepening A*).

The state-space-search member of the suite, patterned on the Chare Kernel's
15-puzzle program.  Iterative deepening is a sequence of *rounds*: each
round is a cost-bounded depth-first search fanned out as chares, terminated
by **quiescence detection**; if no solution was found the main chare raises
the bound to the smallest f-value that exceeded it and launches the next
round.  This exercises *repeated* QD and accumulator collection, which the
one-shot programs don't.

Design notes on the shared variables (the interesting part):

* the round's cost bound travels **in the seed arguments** (it must *rise*
  between rounds, which no monotonic variable can express);
* ``next_bound`` is a min-accumulator over **epoch-tagged pairs**
  ``(round, f)`` with a custom commutative-associative combiner that
  prefers the newer round — accumulators are cumulative for the whole run,
  so a plain min would get stuck on the previous round's value;
* ``best_solution`` is a min-**monotonic**: once any chare finds a
  solution within the bound, every PE's cached copy lets the rest of the
  round prune immediately.

Boards are ``k x k`` (k=3, the 8-puzzle, by default — 15-puzzle instances
are too deep for CI).  The heuristic is Manhattan distance; node priority
is the f-value.  Work model: ``NODE_WORK`` per node visited, identical in
the sequential reference.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.chare import Chare, entry
from repro.core.kernel import Kernel, RunResult
from repro.machine.network import Machine
from repro.util.rng import RngStream

__all__ = [
    "PuzzleState",
    "goal_state",
    "manhattan",
    "neighbors",
    "random_puzzle",
    "ida_star_seq",
    "PuzzleMain",
    "run_puzzle",
    "NODE_WORK",
]

NODE_WORK = 20.0
_INF = 1 << 30

#: A board is a tuple of k*k ints, 0 = blank, goal = (1, 2, ..., k*k-1, 0).
PuzzleState = Tuple[int, ...]


def goal_state(k: int) -> PuzzleState:
    return tuple(list(range(1, k * k)) + [0])


def manhattan(board: PuzzleState, k: int) -> int:
    """Sum of tile distances from their goal squares (admissible)."""
    total = 0
    for pos, tile in enumerate(board):
        if tile == 0:
            continue
        goal = tile - 1
        total += abs(pos // k - goal // k) + abs(pos % k - goal % k)
    return total


def neighbors(board: PuzzleState, k: int) -> List[PuzzleState]:
    """Boards reachable by one blank move (deterministic order: U,D,L,R)."""
    out = []
    blank = board.index(0)
    r, c = divmod(blank, k)
    for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
        nr, nc = r + dr, c + dc
        if 0 <= nr < k and 0 <= nc < k:
            npos = nr * k + nc
            new = list(board)
            new[blank], new[npos] = new[npos], new[blank]
            out.append(tuple(new))
    return out


def random_puzzle(k: int = 3, moves: int = 20, seed: int = 0) -> PuzzleState:
    """A solvable board: scramble the goal with ``moves`` random moves."""
    rng = RngStream(seed, "puzzle", k, moves)
    board = goal_state(k)
    prev = None
    for _ in range(moves):
        options = [b for b in neighbors(board, k) if b != prev]
        prev = board
        board = options[rng.randint(0, len(options))]
    return board


def _bounded_dfs(
    board: PuzzleState, k: int, g: int, bound: int, path_prev: Optional[PuzzleState]
) -> Tuple[Optional[int], int, int]:
    """Cost-bounded DFS.  Returns (solution_cost|None, next_bound, nodes)."""
    h = manhattan(board, k)
    f = g + h
    if f > bound:
        return None, f, 1
    if h == 0:
        return g, f, 1
    best_next = _INF
    nodes = 1
    for nb in neighbors(board, k):
        if nb == path_prev:
            continue  # never undo the last move
        cost, nxt, sub = _bounded_dfs(nb, k, g + 1, bound, board)
        nodes += sub
        if cost is not None:
            return cost, nxt, nodes
        best_next = min(best_next, nxt)
    return None, best_next, nodes


def ida_star_seq(board: PuzzleState, k: int) -> Tuple[int, int, int]:
    """Sequential IDA*: ``(solution_cost, rounds, total_nodes)``."""
    bound = manhattan(board, k)
    rounds = 0
    total_nodes = 0
    while True:
        rounds += 1
        cost, nxt, nodes = _bounded_dfs(board, k, 0, bound, None)
        total_nodes += nodes
        if cost is not None:
            return cost, rounds, total_nodes
        if nxt >= _INF:
            raise RuntimeError("unsolvable board (parity violation?)")
        bound = nxt


def _epoch_min(a: Tuple[int, int], b: Tuple[int, int]) -> Tuple[int, int]:
    """Combiner for (round, f) pairs: newest round wins; min f within it.

    Commutative and associative, so it is a legal accumulator op; it makes
    a cumulative accumulator behave like a fresh min-accumulator per round.
    """
    if a[0] != b[0]:
        return a if a[0] > b[0] else b
    return a if a[1] <= b[1] else b


class PuzzleNode(Chare):
    """Expand one node of the current round's cost-bounded search."""

    def __init__(self, board, prev, g, bound, round_no):
        k = self.readonly("puzzle_k")
        split = self.readonly("puzzle_split")
        self.charge(NODE_WORK)
        self.accumulate("nodes", 1)
        if self.read_monotonic("best_solution") <= bound:
            return  # someone already solved this round: prune fast
        h = manhattan(board, k)
        f = g + h
        if f > bound:
            self.accumulate("next_bound", (round_no, f))
            return
        if h == 0:
            self.update_monotonic("best_solution", g)
            self.accumulate("solution", g)
            return
        if g >= split:
            cost, nxt, nodes = _bounded_dfs(board, k, g, bound, prev)
            self.charge(NODE_WORK * max(0, nodes - 1))
            self.accumulate("nodes", nodes - 1)
            if cost is not None:
                self.update_monotonic("best_solution", cost)
                self.accumulate("solution", cost)
            else:
                self.accumulate("next_bound", (round_no, nxt))
            return
        for nb in neighbors(board, k):
            if nb == prev:
                continue
            child_f = g + 1 + manhattan(nb, k)
            self.create(PuzzleNode, nb, board, g + 1, bound, round_no,
                        priority=child_f)


class PuzzleMain(Chare):
    """Drives IDA* rounds; each round terminates via quiescence detection."""

    def __init__(self, board, k, split):
        self.set_readonly("puzzle_k", k)
        self.set_readonly("puzzle_split", split)
        self.new_accumulator("nodes", 0, "sum")
        self.new_accumulator("next_bound", (0, _INF), _epoch_min)
        self.new_accumulator("solution", _INF, "min")
        self.new_monotonic("best_solution", _INF, "min", "eager")
        self.board = board
        self.round_no = 0
        self.bound = manhattan(board, k)
        self._launch()

    def _launch(self):
        self.round_no += 1
        self._got = {}
        self.create(PuzzleNode, self.board, None, 0, self.bound, self.round_no,
                    priority=0)
        self.start_quiescence(self.thishandle, "round_done")

    @entry
    def round_done(self):
        for name in ("nodes", "next_bound", "solution"):
            self.collect_accumulator(name, self.thishandle, "collected")

    @entry
    def collected(self, tag, value):
        self._got[tag.split(":")[1]] = value
        if len(self._got) < 3:
            return
        if self._got["solution"] < _INF:
            self.exit((self._got["solution"], self.round_no, self._got["nodes"]))
            return
        epoch, next_bound = self._got["next_bound"]
        if epoch != self.round_no or next_bound >= _INF:
            raise RuntimeError("IDA* round produced no frontier (unsolvable?)")
        self.bound = next_bound
        self._launch()


def run_puzzle(
    machine: Machine,
    board: Optional[PuzzleState] = None,
    k: int = 3,
    *,
    scramble: int = 18,
    instance_seed: int = 0,
    split: int = 4,
    queueing: str = "prio",
    balancer: str = "random",
    seed: int = 0,
    **kernel_kwargs,
) -> Tuple[Tuple[int, int, int], RunResult]:
    """Run parallel IDA*; returns ``((cost, rounds, nodes), RunResult)``.

    ``split`` is the depth beyond which subtrees run sequentially inside
    one chare (the grain knob); ``scramble`` controls instance difficulty.
    """
    if board is None:
        board = random_puzzle(k, scramble, instance_seed)
    kernel = Kernel(machine, queueing=queueing, balancer=balancer, seed=seed,
                    **kernel_kwargs)
    result = kernel.run(PuzzleMain, board, k, split)
    return result.result, result
