"""Parallel sample sort: the all-to-all communication benchmark.

Sorting is the classic stress test for *data movement* (rather than
compute): every phase is communication-shaped differently.

1. **Local sort** — each of ``W`` worker chares sorts its slice
   (``n log n`` work).
2. **Sampling** — each worker sends ``oversample`` regular samples to the
   coordinator (gather).
3. **Splitters** — the coordinator sorts the samples, picks ``W-1``
   splitters, and broadcasts them (scatter).
4. **All-to-all** — each worker partitions its sorted slice by the
   splitters and sends bucket ``j`` to worker ``j``: ``W²`` messages with
   *data-dependent sizes*.
5. **Merge** — each worker k-way-merges what it received and returns its
   bucket to the coordinator, which concatenates.

The result is validated elementwise against ``numpy.sort``.  Work model:
``CMP_WORK`` per comparison-ish step in sort/merge/partition.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.core.chare import Chare, entry
from repro.core.kernel import Kernel, RunResult
from repro.machine.network import Machine
from repro.util.rng import RngStream

__all__ = ["run_samplesort", "SampleSortMain", "CMP_WORK"]

CMP_WORK = 0.8


def _sort_work(n: int) -> float:
    return CMP_WORK * n * max(1.0, math.log2(max(n, 2)))


class SortWorker(Chare):
    """Owns one slice; participates in sample, all-to-all, merge phases."""

    def __init__(self, index, workers, data, main):
        self.index = index
        self.workers = workers
        self.main = main
        self.peers: List = []
        self.data = np.sort(np.asarray(data))
        self.charge(_sort_work(len(self.data)))
        self.received: List[np.ndarray] = []
        self.expected = workers

    @entry
    def sample(self, oversample):
        n = len(self.data)
        if n == 0:
            picks = np.empty(0)
        else:
            idx = np.linspace(0, n - 1, num=min(oversample, n)).astype(int)
            picks = self.data[idx]
        self.charge(CMP_WORK * len(picks))
        self.send(self.main, "got_sample", self.index, picks)

    @entry
    def partition(self, peers, splitters):
        """Split the local slice by the splitters; ship bucket j to peer j."""
        self.peers = list(peers)
        splits = np.asarray(splitters)
        bounds = np.searchsorted(self.data, splits, side="right")
        self.charge(CMP_WORK * (len(self.data) + len(splits)))
        pieces = np.split(self.data, bounds)
        for j, piece in enumerate(pieces):
            self.send(self.peers[j], "bucket", piece)

    @entry
    def bucket(self, piece):
        self.received.append(np.asarray(piece))
        if len(self.received) == self.expected:
            merged = np.sort(np.concatenate(self.received))
            self.charge(_sort_work(len(merged)))
            self.send(self.main, "sorted_bucket", self.index, merged)


class SampleSortMain(Chare):
    def __init__(self, data, workers, oversample):
        self.workers = workers
        self.oversample = oversample
        self.samples: List[Tuple[int, np.ndarray]] = []
        self.buckets: dict = {}
        n = len(data)
        step = (n + workers - 1) // workers
        self.handles = [
            self.create(
                SortWorker, w, workers, data[w * step:(w + 1) * step],
                self.thishandle, pe=w % self.num_pes,
            )
            for w in range(workers)
        ]
        for h in self.handles:
            self.send(h, "sample", oversample)

    @entry
    def got_sample(self, index, picks):
        self.samples.append((index, picks))
        if len(self.samples) < self.workers:
            return
        allsamples = np.sort(np.concatenate([p for _, p in self.samples]))
        self.charge(_sort_work(len(allsamples)))
        # W-1 evenly spaced splitters over the sample distribution.
        if len(allsamples) and self.workers > 1:
            idx = np.linspace(0, len(allsamples) - 1, num=self.workers + 1)
            splitters = allsamples[idx[1:-1].astype(int)]
        else:
            splitters = np.empty(0)
        peers = tuple(self.handles)
        for h in self.handles:
            self.send(h, "partition", peers, splitters)

    @entry
    def sorted_bucket(self, index, merged):
        self.buckets[index] = merged
        if len(self.buckets) < self.workers:
            return
        result = np.concatenate([self.buckets[w] for w in range(self.workers)])
        self.exit(result)


def run_samplesort(
    machine: Machine,
    n: int = 4096,
    workers: int = 8,
    *,
    oversample: int = 16,
    data_seed: int = 0,
    queueing: str = "fifo",
    balancer: str = "random",
    seed: int = 0,
    **kernel_kwargs,
) -> Tuple[Tuple[np.ndarray, np.ndarray], RunResult]:
    """Run sample sort; returns ``((input, sorted_output), RunResult)``."""
    rng = RngStream(data_seed, "samplesort", n)
    data = rng.generator.standard_normal(n)
    kernel = Kernel(machine, queueing=queueing, balancer=balancer, seed=seed,
                    **kernel_kwargs)
    result = kernel.run(SampleSortMain, data, workers, oversample)
    return (data, result.result), result
