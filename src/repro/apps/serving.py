"""Open-loop request-serving workload: a chare server farm under live load.

The paper's applications are closed-world batch programs; this app is the
ROADMAP's "millions of users" scenario in miniature — an **open-loop**
source injects request chares at externally-determined virtual times
(:mod:`repro.workloads.arrivals`) and the farm either keeps up or melts
down; the source never waits.

Structure:

* ``ServingMain`` (PE 0) is both load generator and collector.  It walks a
  precomputed arrival-time list with timed self-messages
  (:meth:`repro.core.chare.Chare.send_at` — one ``tick`` per request, each
  scheduling the next), so generation costs one small execution per
  arrival and the stream is identical on every backend and job count.
* Each ``tick`` creates a ``Request`` chare **seed with no fixed PE** —
  placement goes through whichever load balancer the kernel was built
  with (random / central manager / ACWN / token), which is exactly the
  knob the S-series experiments turn.
* ``Request`` charges its sampled service demand and either creates the
  next pipeline stage (multi-hop requests, again balancer-placed) or
  reports ``done`` to the collector.  With admission control enabled, a
  stage-0 request landing on a PE whose load exceeds the bound is *shed*:
  it pays a small triage cost and reports ``shed`` instead of serving.
* The run exits when every offered request is accounted for — no
  quiescence detection needed, and per-request latency is reconstructed
  afterwards from the causal event log by
  :mod:`repro.metrics.latency` (no kernel-side latency hooks).
* With a telemetry plane attached (``telemetry=`` kernel kwarg,
  :mod:`repro.obs`), the app additionally streams each request's latency
  into an online log-bucketed histogram as it completes — injection is
  stamped at the seed's send departure and completion at the final
  stage's execution end, the exact endpoints the trace walk recovers —
  so tail percentiles stay available at farm sizes where recording every
  event is infeasible (experiment S6).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from repro.core.chare import Chare, entry
from repro.core.kernel import Kernel, RunResult
from repro.machine.network import Machine
from repro.metrics.latency import latency_summary
from repro.workloads.arrivals import (
    ArrivalSpec,
    Poisson,
    ServiceSpec,
    arrival_times,
    service_demands,
)

__all__ = ["run_serving", "SERVING_TRACE_KINDS", "TRIAGE_WORK"]

#: Event kinds the latency analyzer needs; installed by default on every
#: serving run (callers may override via ``trace_events=``).
SERVING_TRACE_KINDS = ("deliver", "exec_begin", "exec_end", "send")

#: Work units charged for inspecting-and-rejecting a shed request.
TRIAGE_WORK = 5.0


class Request(Chare):
    """One request (or one pipeline stage of one): charge demand, hand off."""

    def __init__(self, rid: int, stage: int, demands: Tuple[float, ...]):
        shed_above = self.readonly("serving_admission")
        tel = self._kernel.telemetry
        if stage == 0 and shed_above is not None and self.local_load > shed_above:
            # Admission control: the queue here is already deeper than the
            # bound, so turn the request away after a token triage cost.
            self.charge(TRIAGE_WORK)
            self.send(self.mainhandle, "shed", rid)
            if tel is not None:
                # Online latency: resolved against this execution's true
                # end time by the telemetry exec hook — the same timestamp
                # the trace walk's exec_end carries.
                tel.serving_complete(rid, "shed")
            self.destroy()
            return
        self.charge(demands[stage])
        if stage + 1 < len(demands):
            # Next pipeline stage: a fresh balancer-placed seed, so one
            # request can traverse several PEs of the farm.
            self.create(Request, rid, stage + 1, demands)
        else:
            self.send(self.mainhandle, "done", rid)
            if tel is not None:
                tel.serving_complete(rid, "done")
        self.destroy()


class ServingMain(Chare):
    """Load generator + collector (the farm's 'front end', on PE 0)."""

    def __init__(
        self,
        arrivals: Sequence[float],
        demands: Sequence[Tuple[float, ...]],
        shed_above: Optional[int],
    ):
        self.set_readonly("serving_admission", shed_above)
        self.arrivals = arrivals
        self.demands = demands
        self.n = len(arrivals)
        self.n_done = 0
        self.n_shed = 0
        if self.n == 0:
            self.exit((0, 0))
            return
        self.send_at(arrivals[0], self.thishandle, "tick", 0)

    @entry
    def tick(self, i: int) -> None:
        self.create(Request, i, 0, self.demands[i])
        tel = self._kernel.telemetry
        if tel is not None:
            # Stamp injection at the seed's send departure (tick charges no
            # work, so that is start + overhead_base — exactly the trace
            # walk's inject_t).  Host-side only; the run is unperturbed.
            tel.serving_inject(i)
        if i + 1 < self.n:
            self.send_at(self.arrivals[i + 1], self.thishandle, "tick", i + 1)

    @entry
    def done(self, rid: int) -> None:
        self.n_done += 1
        self._account()

    @entry
    def shed(self, rid: int) -> None:
        self.n_shed += 1
        self._account()

    def _account(self) -> None:
        if self.n_done + self.n_shed == self.n:
            self.exit((self.n_done, self.n_shed))


def run_serving(
    machine: Machine,
    arrivals: ArrivalSpec = Poisson(rate=2000.0, count=200),
    service: ServiceSpec = ServiceSpec(),
    hops: int = 1,
    shed_above: Optional[int] = None,
    *,
    queueing: str = "fifo",
    balancer: str = "random",
    seed: int = 0,
    **kernel_kwargs,
) -> Tuple[Dict[str, Any], RunResult]:
    """Serve one open-loop request stream; returns ``(summary, RunResult)``.

    The summary dict carries the offered/completed/shed counts plus the
    end-to-end latency digest (nearest-rank p50/p95/p99, mean/min/max, and
    the queue-wait / service / transit split) reconstructed from the run's
    event log.  All values are plain scalars, so the answer is picklable
    and cache-stable.  If the caller overrides ``trace_events`` with kinds
    the analyzer cannot use, the latency fields degrade to ``None`` while
    the counts (tracked in-app) stay exact.
    """
    times = arrival_times(arrivals, seed)
    demands = service_demands(service, len(times), hops, seed)
    default_trace = "trace_events" not in kernel_kwargs
    if default_trace:
        kernel_kwargs["trace_events"] = SERVING_TRACE_KINDS
    kernel = Kernel(machine, queueing=queueing, balancer=balancer, seed=seed,
                    **kernel_kwargs)
    result = kernel.run(ServingMain, tuple(times), tuple(demands), shed_above)
    n_done, n_shed = result.result
    log = kernel.events
    digest = latency_summary(log.as_records()) if log is not None else \
        latency_summary(())
    if default_trace and (digest["completed"], digest["shed"]) != (n_done, n_shed):
        raise AssertionError(
            "latency analyzer disagrees with the collector: "
            f"trace saw {digest['completed']}/{digest['shed']} "
            f"done/shed, app counted {n_done}/{n_shed}"
        )
    summary: Dict[str, Any] = {
        "offered": len(times),
        "completed": n_done,
        "shed": n_shed,
    }
    for key, value in digest.items():
        if key not in ("requests", "completed", "shed"):
            summary[key] = value
    if kernel.telemetry is not None:
        # Trace-free latency digest from the online histograms — the lens
        # that still works at P=10⁵ where tracing is infeasible (S6).
        summary["online"] = kernel.telemetry.serving_quantiles()
    return summary, result
