"""Red-black successive over-relaxation (SOR) with convergence detection.

Where :mod:`repro.apps.jacobi` runs a *fixed* number of iterations, SOR
iterates **until converged**, which requires a global decision every
iteration — the bulk-synchronous "iterate / reduce residual / continue or
stop" pattern.  Each iteration is two half-sweeps (red cells, then black
cells), each preceded by a ghost exchange, so the app also doubles the
neighbor traffic per step.

The coordination is main-chare-centric: every block reports its local
residual; the main chare folds them and broadcasts ``continue``/``stop``.
Validation is exact: the block program computes bitwise the same grid as
:func:`sor_seq` for any block decomposition.

Work model: ``CELL_WORK`` per interior cell per half-sweep.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.apps.jacobi import make_grid
from repro.core.chare import Chare, entry
from repro.core.kernel import Kernel, RunResult
from repro.machine.network import Machine

__all__ = ["sor_seq", "SorDriver", "run_sor", "CELL_WORK"]

CELL_WORK = 6.0


def _color_mask(n: int, offset_r: int, offset_c: int, color: int) -> np.ndarray:
    """Checkerboard mask in *global* coordinates for an interior block."""
    rows = np.arange(offset_r, offset_r + n)[:, None]
    cols = np.arange(offset_c, offset_c + n)[None, :]
    return (rows + cols) % 2 == color


def _sweep(grid: np.ndarray, omega: float, color: int) -> float:
    """One in-place half-sweep over the full grid; returns max |delta|."""
    n = grid.shape[0]
    interior = grid[1:-1, 1:-1]
    stencil = 0.25 * (
        grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
    )
    mask = _color_mask(n - 2, 1, 1, color)
    new = interior + omega * (stencil - interior)
    delta = np.where(mask, np.abs(new - interior), 0.0)
    grid[1:-1, 1:-1] = np.where(mask, new, interior)
    return float(delta.max()) if delta.size else 0.0


def sor_seq(
    n: int, tol: float = 1e-3, omega: float = 1.5, max_iters: int = 500
) -> Tuple[np.ndarray, int, float]:
    """Reference SOR; returns ``(grid, iterations, final_residual)``."""
    grid = make_grid(n)
    residual = float("inf")
    iters = 0
    while iters < max_iters:
        r_red = _sweep(grid, omega, 0)
        r_black = _sweep(grid, omega, 1)
        residual = max(r_red, r_black)
        iters += 1
        if residual < tol:
            break
    return grid, iters, residual


class SorBlock(Chare):
    """One block; two ghost exchanges per iteration, residual to main."""

    def __init__(self, bi, bj, block, offset, main, omega):
        self.bi, self.bj = bi, bj
        self.grid = block              # with ghost ring
        self.offset = offset           # global (row, col) of interior [0,0]
        self.main = main
        self.omega = omega
        self.phase = 0                 # 2*iteration + color
        self.neighbors: Dict[str, object] = {}
        self._buffer: Dict[Tuple[int, str], np.ndarray] = {}
        self._wired = False
        self._iter_residual = 0.0

    @entry
    def wire(self, neighbors):
        self.neighbors = dict(neighbors)
        self._wired = True
        self._send_boundaries()
        self._maybe_sweep()

    def _send_boundaries(self):
        interior = self.grid[1:-1, 1:-1]
        strips = {
            "up": interior[0, :], "down": interior[-1, :],
            "left": interior[:, 0], "right": interior[:, -1],
        }
        opposite = {"up": "down", "down": "up", "left": "right", "right": "left"}
        for side, handle in self.neighbors.items():
            self.charge(len(strips[side]) * 0.5)
            self.send(handle, "boundary", self.phase, opposite[side],
                      strips[side].copy())

    @entry
    def boundary(self, phase, side, strip):
        self._buffer[(phase, side)] = strip
        self._maybe_sweep()

    @entry
    def verdict(self, go):
        if go:
            self._send_boundaries()
            self._maybe_sweep()
        else:
            self.send(self.main, "block_result", self.bi, self.bj,
                      self.grid[1:-1, 1:-1].copy())

    def _maybe_sweep(self):
        if not self._wired:
            return
        while True:
            wanted = [(self.phase, side) for side in self.neighbors]
            if not all(key in self._buffer for key in wanted):
                return
            for key in wanted:
                self._apply_ghost(key[1], self._buffer.pop(key))
            color = self.phase % 2
            self._half_sweep(color)
            self.phase += 1
            if self.phase % 2 == 0:
                # Iteration complete: report residual, await the verdict.
                self.send(self.main, "residual", self._iter_residual)
                self._iter_residual = 0.0
                return
            self._send_boundaries()

    def _apply_ghost(self, side, strip):
        g = self.grid
        if side == "up":
            g[0, 1:-1] = strip
        elif side == "down":
            g[-1, 1:-1] = strip
        elif side == "left":
            g[1:-1, 0] = strip
        else:
            g[1:-1, -1] = strip

    def _half_sweep(self, color):
        g = self.grid
        interior = g[1:-1, 1:-1]
        stencil = 0.25 * (
            g[:-2, 1:-1] + g[2:, 1:-1] + g[1:-1, :-2] + g[1:-1, 2:]
        )
        mask = _color_mask(interior.shape[0], self.offset[0], self.offset[1], color)
        fixed = self._fixed_mask()
        update = mask & ~fixed
        new = interior + self.omega * (stencil - interior)
        delta = np.where(update, np.abs(new - interior), 0.0)
        self.charge(CELL_WORK * interior.size)
        self._iter_residual = max(
            self._iter_residual, float(delta.max()) if delta.size else 0.0
        )
        g[1:-1, 1:-1] = np.where(update, new, interior)

    def _fixed_mask(self) -> np.ndarray:
        h, w = self.grid[1:-1, 1:-1].shape
        mask = np.zeros((h, w), dtype=bool)
        if "up" not in self.neighbors:
            mask[0, :] = True
        if "down" not in self.neighbors:
            mask[-1, :] = True
        if "left" not in self.neighbors:
            mask[:, 0] = True
        if "right" not in self.neighbors:
            mask[:, -1] = True
        return mask


class SorDriver(Chare):
    """Main chare: builds and wires the block grid, folds residuals, and
    broadcasts the per-iteration continue/stop verdict."""

    def __init__(self, n, blocks, tol, omega, max_iters):
        if n % blocks:
            raise ValueError(f"grid {n} not divisible into {blocks} blocks")
        self.n, self.blocks = n, blocks
        self.bs = n // blocks
        self.tol, self.max_iters = tol, max_iters
        self.iters = 0
        self.max_residual = 0.0
        self.reports = 0
        self.collected = 0
        self.result_grid = np.zeros((n, n))
        grid = make_grid(n)
        self.handles = {}
        pe = 0
        bs = self.bs
        for bi in range(blocks):
            for bj in range(blocks):
                block = np.zeros((bs + 2, bs + 2))
                block[1:-1, 1:-1] = grid[bi * bs:(bi + 1) * bs, bj * bs:(bj + 1) * bs]
                self.handles[(bi, bj)] = self.create(
                    SorBlock, bi, bj, block, (bi * bs, bj * bs),
                    self.thishandle, omega, pe=pe % self.num_pes,
                )
                pe += 1
        for (bi, bj), handle in self.handles.items():
            nbrs = {}
            if bi > 0:
                nbrs["up"] = self.handles[(bi - 1, bj)]
            if bi < blocks - 1:
                nbrs["down"] = self.handles[(bi + 1, bj)]
            if bj > 0:
                nbrs["left"] = self.handles[(bi, bj - 1)]
            if bj < blocks - 1:
                nbrs["right"] = self.handles[(bi, bj + 1)]
            self.send(handle, "wire", tuple(nbrs.items()))

    @entry
    def residual(self, value):
        self.max_residual = max(self.max_residual, value)
        self.reports += 1
        if self.reports < self.blocks * self.blocks:
            return
        self.reports = 0
        self.iters += 1
        done = self.max_residual < self.tol or self.iters >= self.max_iters
        self.final_residual = self.max_residual
        self.max_residual = 0.0
        self.charge(self.blocks * self.blocks)
        for handle in self.handles.values():
            self.send(handle, "verdict", not done)

    @entry
    def block_result(self, bi, bj, block):
        bs = self.bs
        self.result_grid[bi * bs:(bi + 1) * bs, bj * bs:(bj + 1) * bs] = block
        self.collected += 1
        if self.collected == self.blocks * self.blocks:
            self.exit((self.result_grid, self.iters, self.final_residual))


def run_sor(
    machine: Machine,
    n: int = 32,
    blocks: int = 4,
    *,
    tol: float = 1e-3,
    omega: float = 1.5,
    max_iters: int = 500,
    queueing: str = "fifo",
    balancer: str = "random",
    seed: int = 0,
    **kernel_kwargs,
) -> Tuple[Tuple[np.ndarray, int, float], RunResult]:
    """Run red-black SOR; returns ``((grid, iterations, residual), RunResult)``."""
    kernel = Kernel(machine, queueing=queueing, balancer=balancer, seed=seed,
                    **kernel_kwargs)
    result = kernel.run(SorDriver, n, blocks, tol, omega, max_iters)
    return result.result, result
