"""Synthetic unbalanced tree search (UTS-flavored).

The dedicated load-balancing stressor for experiment T5: a tree whose
shape is determined by per-node deterministic pseudo-randomness (derived
from the node id, *not* from execution order, so every strategy and PE
count explores the identical tree).  Fanout is geometric-ish: a node at
depth ``d < max_depth`` has ``k`` children with probability decaying in
``d``, which concentrates unpredictable bursts of work — exactly the shape
that defeats static placement.

Each node charges ``node_work`` units; the program counts nodes via an
accumulator and terminates by quiescence.  The sequential reference walks
the same tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.chare import Chare, entry
from repro.core.kernel import Kernel, RunResult
from repro.machine.network import Machine
from repro.util.rng import derive_seed

__all__ = ["TreeParams", "tree_seq", "TreeMain", "run_tree"]


@dataclass(frozen=True)
class TreeParams:
    """Shape parameters of the synthetic tree."""

    seed: int = 0
    max_depth: int = 8
    max_fanout: int = 4
    branch_bias: float = 0.92   # probability mass pushed toward branching
    node_work: float = 150.0

    def __wire_size__(self) -> int:
        return 32


def _fanout(params: TreeParams, node_id: int, depth: int) -> int:
    """Deterministic fanout of a node (independent of execution order)."""
    if depth >= params.max_depth:
        return 0
    h = derive_seed(params.seed, "tree-node", node_id, depth)
    u = (h % 10_000) / 10_000.0
    # Thin the tree as it deepens so total size stays finite but bursty.
    p_branch = params.branch_bias * (1.0 - depth / (params.max_depth + 1))
    if u > p_branch:
        return 0
    return 1 + (h >> 16) % params.max_fanout


def _child_id(node_id: int, index: int) -> int:
    return node_id * 7 + index + 1


def tree_seq(params: TreeParams) -> Tuple[int, int]:
    """Total nodes and leaves of the tree (ground truth + work baseline)."""
    nodes = leaves = 0
    stack = [(0, 0)]
    while stack:
        node_id, depth = stack.pop()
        nodes += 1
        k = _fanout(params, node_id, depth)
        if k == 0:
            leaves += 1
        for i in range(k):
            stack.append((_child_id(node_id, i), depth + 1))
    return nodes, leaves


class TreeNode(Chare):
    def __init__(self, node_id, depth):
        params: TreeParams = self.readonly("tree_params")
        self.charge(params.node_work)
        self.accumulate("nodes", 1)
        k = _fanout(params, node_id, depth)
        if k == 0:
            self.accumulate("leaves", 1)
            return
        for i in range(k):
            self.create(TreeNode, _child_id(node_id, i), depth + 1)


class TreeMain(Chare):
    def __init__(self, params):
        self.set_readonly("tree_params", params)
        self.new_accumulator("nodes", 0, "sum")
        self.new_accumulator("leaves", 0, "sum")
        self._got = {}
        self.create(TreeNode, 0, 0)
        self.start_quiescence(self.thishandle, "quiet")

    @entry
    def quiet(self):
        for name in ("nodes", "leaves"):
            self.collect_accumulator(name, self.thishandle, "collected")

    @entry
    def collected(self, tag, value):
        self._got[tag.split(":")[1]] = value
        if len(self._got) == 2:
            self.exit((self._got["nodes"], self._got["leaves"]))


def run_tree(
    machine: Machine,
    params: TreeParams | None = None,
    *,
    queueing: str = "fifo",
    balancer: str = "acwn",
    seed: int = 0,
    **kernel_kwargs,
) -> Tuple[Tuple[int, int], RunResult]:
    """Run the synthetic tree; returns ``((nodes, leaves), RunResult)``."""
    if params is None:
        params = TreeParams()
    kernel = Kernel(machine, queueing=queueing, balancer=balancer, seed=seed,
                    **kernel_kwargs)
    result = kernel.run(TreeMain, params)
    return result.result, result
