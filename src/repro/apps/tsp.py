"""Traveling-salesman by branch and bound.

The speculative-parallelism benchmark: the quality of the global *bound*
and the order the pool is searched decide how many nodes the computation
expands, so this app is the subject of both queueing-strategy experiment
T6 and monotonic-propagation experiment T7.

Structure:

* the distance matrix is a **read-only** variable (replicated at startup),
* the incumbent best tour cost is a **monotonic min** variable used to
  prune; its propagation mode is the T7 knob,
* the exact optimum is *also* tracked by a min-**accumulator**, so the
  answer is provably right even with propagation off,
* expanded-node counts go to a sum-accumulator (T6's measured quantity),
* child nodes are seeds carrying an integer priority = their lower bound,
  so the ``prio`` queueing strategy searches best-first.

The lower bound is the classic cheap one: cost so far + for every
unvisited city (and the current city) half the sum of its two cheapest
edges to other still-relevant cities, rounded down — admissible and
O(n²) per node; the same bound is used by the sequential reference so node
counts are comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.chare import Chare, entry
from repro.core.kernel import Kernel, RunResult
from repro.machine.network import Machine
from repro.util.rng import RngStream

__all__ = ["TspInstance", "tsp_seq", "TspMain", "run_tsp", "NODE_WORK_PER_CITY"]

#: Work units per remaining-city when bounding/expanding one node.
NODE_WORK_PER_CITY = 6.0


@dataclass(frozen=True)
class TspInstance:
    """A symmetric TSP instance with integer distances."""

    dist: tuple  # tuple of tuples (hashable, message-friendly)

    @property
    def n(self) -> int:
        return len(self.dist)

    def __wire_size__(self) -> int:
        # Dense int32 distance matrix on the wire (init broadcast cost).
        return 4 * self.n * self.n

    @classmethod
    def random(cls, n: int, seed: int = 0, lo: int = 10, hi: int = 100) -> "TspInstance":
        rng = RngStream(seed, "tsp", n)
        m = rng.generator.integers(lo, hi, size=(n, n))
        m = np.triu(m, 1)
        m = m + m.T
        return cls(tuple(tuple(int(x) for x in row) for row in m))


def _lower_bound(inst: TspInstance, path: Tuple[int, ...], cost: int) -> int:
    """Admissible bound: path cost + half-sum of two cheapest useful edges."""
    n = inst.n
    visited = set(path)
    frontier = {path[-1], path[0]}
    est = 2 * cost
    for city in range(n):
        if city in visited and city not in frontier:
            continue
        edges = sorted(
            inst.dist[city][other]
            for other in range(n)
            if other != city and (other not in visited or other in frontier)
        )
        if city in frontier:
            est += edges[0] if edges else 0
        else:
            est += sum(edges[:2])
    return est // 2


def tsp_seq(inst: TspInstance) -> Tuple[int, int]:
    """Best tour cost and nodes expanded (sequential depth-first B&B)."""
    n = inst.n
    best = [_greedy_tour(inst)]
    nodes = [0]

    def dfs(path: Tuple[int, ...], cost: int) -> None:
        nodes[0] += 1
        if len(path) == n:
            total = cost + inst.dist[path[-1]][path[0]]
            if total < best[0]:
                best[0] = total
            return
        if _lower_bound(inst, path, cost) >= best[0]:
            return
        last = path[-1]
        children = sorted(
            (inst.dist[last][city], city) for city in range(n) if city not in path
        )
        for d, city in children:
            dfs(path + (city,), cost + d)

    dfs((0,), 0)
    return best[0], nodes[0]


def _solve_subtree(
    inst: TspInstance, path: Tuple[int, ...], cost: int, incumbent: int
) -> Tuple[Optional[int], int]:
    """Depth-first B&B below ``path`` with a fixed starting incumbent.

    Returns ``(best_or_None, nodes_visited)``; ``None`` means nothing in
    this subtree beat the incumbent.
    """
    n = inst.n
    best = [incumbent]
    found = [False]
    nodes = [0]

    def dfs(p: Tuple[int, ...], c: int) -> None:
        nodes[0] += 1
        if len(p) == n:
            total = c + inst.dist[p[-1]][p[0]]
            if total < best[0]:
                best[0] = total
                found[0] = True
            return
        if _lower_bound(inst, p, c) >= best[0]:
            return
        last = p[-1]
        children = sorted(
            (inst.dist[last][city], city) for city in range(n) if city not in p
        )
        for d, city in children:
            dfs(p + (city,), c + d)

    dfs(path, cost)
    return (best[0] if found[0] else None), nodes[0]


def _greedy_tour(inst: TspInstance) -> int:
    """Nearest-neighbor tour cost — the initial incumbent."""
    n = inst.n
    city, cost, seen = 0, 0, {0}
    for _ in range(n - 1):
        d, nxt = min(
            (inst.dist[city][other], other) for other in range(n) if other not in seen
        )
        cost += d
        city = nxt
        seen.add(nxt)
    return cost + inst.dist[city][0]


class TspNode(Chare):
    """Expand one partial tour; prune against the monotonic bound."""

    def __init__(self, path, cost):
        inst: TspInstance = self.readonly("tsp_instance")
        grain = self.readonly("tsp_grain")
        n = inst.n
        remaining = n - len(path)
        self.charge(NODE_WORK_PER_CITY * max(1, remaining + 1))
        self.accumulate("nodes", 1)
        if len(path) == n:
            total = cost + inst.dist[path[-1]][path[0]]
            self.update_monotonic("bound", total)
            self.accumulate("best", total)
            return
        bound = _lower_bound(inst, path, cost)
        if bound >= self.read_monotonic("bound"):
            return
        if remaining <= grain:
            # Sequential tail: solve this subtree inside one chare.
            best, nodes = _solve_subtree(
                inst, path, cost, self.read_monotonic("bound")
            )
            self.charge(NODE_WORK_PER_CITY * (remaining + 1) * nodes)
            self.accumulate("nodes", nodes)
            if best is not None:
                self.update_monotonic("bound", best)
                self.accumulate("best", best)
            return
        last = path[-1]
        for city in range(n):
            if city in path:
                continue
            child_cost = cost + inst.dist[last][city]
            child = path + (city,)
            child_bound = _lower_bound(inst, child, child_cost)
            if child_bound >= self.read_monotonic("bound"):
                self.accumulate("pruned", 1)
                continue
            self.create(TspNode, child, child_cost, priority=child_bound)


class TspMain(Chare):
    def __init__(self, inst, propagation, grain, bound_slack):
        self.set_readonly("tsp_instance", inst)
        self.set_readonly("tsp_grain", grain)
        # bound_slack > 1 starts from a deliberately loose incumbent, so
        # pruning power comes from *discovered* tours travelling through the
        # monotonic variable — the T7 ablation's regime.
        incumbent = int(_greedy_tour(inst) * bound_slack)
        self.new_monotonic("bound", incumbent, "min", propagation)
        self.new_accumulator("best", incumbent, "min")
        self.new_accumulator("nodes", 0, "sum")
        self.new_accumulator("pruned", 0, "sum")
        self._got = {}
        self.create(TspNode, (0,), 0, priority=0)
        self.start_quiescence(self.thishandle, "quiet")

    @entry
    def quiet(self):
        for name in ("best", "nodes", "pruned"):
            self.collect_accumulator(name, self.thishandle, "collected")

    @entry
    def collected(self, tag, value):
        self._got[tag.split(":")[1]] = value
        if len(self._got) == 3:
            self.exit((self._got["best"], self._got["nodes"], self._got["pruned"]))


def run_tsp(
    machine: Machine,
    inst: Optional[TspInstance] = None,
    n: int = 9,
    *,
    instance_seed: int = 0,
    propagation: str = "eager",
    grain: int = 4,
    bound_slack: float = 1.0,
    queueing: str = "prio",
    balancer: str = "random",
    seed: int = 0,
    **kernel_kwargs,
) -> Tuple[Tuple[int, int, int], RunResult]:
    """Run parallel TSP B&B.

    Returns ``((best_cost, nodes_expanded, children_pruned), RunResult)``.
    ``grain`` is the sequential-tail depth: subtrees with at most that many
    unvisited cities are solved inside one chare.
    """
    if inst is None:
        inst = TspInstance.random(n, instance_seed)
    kernel = Kernel(machine, queueing=queueing, balancer=balancer, seed=seed,
                    **kernel_kwargs)
    result = kernel.run(TspMain, inst, propagation, grain, bound_slack)
    return result.result, result
