"""Dynamic load-balancing strategies for chare seeds.

When a chare is created without an explicit PE, its *seed* (creation
message) is routed by the active strategy.  The SC'91 paper's experiments
compare simple randomized placement against adaptive strategies; this
package implements the family:

* ``local``      — keep every seed where it was created (no balancing;
  the degenerate baseline that shows why balancing matters),
* ``random``     — uniform random placement at creation,
* ``roundrobin`` — deterministic cyclic placement,
* ``central``    — a manager PE assigns seeds to the least-loaded PE it
  knows of (bottlenecks at scale),
* ``token``      — receiver-initiated work stealing: idle PEs request
  seeds from random victims,
* ``acwn``       — Adaptive Contracting Within Neighborhood: seeds flow
  to the least-loaded *neighbor* while the neighborhood is unsaturated and
  contract (stay local) once it is; load knowledge comes only from
  piggybacked message headers and idle hints (no oracle),
* ``gradient``   — gradient-model balancing: idle PEs flood a bounded
  proximity gradient and loaded PEs route seeds down it hop by hop.
"""

from repro.balance.base import Balancer
from repro.balance.strategies import (
    LocalBalancer,
    RandomBalancer,
    RoundRobinBalancer,
    CentralBalancer,
    TokenBalancer,
    AcwnBalancer,
    GradientBalancer,
    BALANCERS,
    make_balancer,
)

__all__ = [
    "Balancer",
    "LocalBalancer",
    "RandomBalancer",
    "RoundRobinBalancer",
    "CentralBalancer",
    "TokenBalancer",
    "AcwnBalancer",
    "GradientBalancer",
    "BALANCERS",
    "make_balancer",
]
