"""Balancer interface.

A balancer is a runtime :class:`~repro.core.services.Service` with three
hook points called synchronously by the kernel:

* :meth:`on_new_seed` — a seed was just created on ``src_pe``; return the
  PE to send it to (may be ``src_pe`` itself).
* :meth:`on_seed_arrival` — a seed arrived at ``pe``; return a PE to
  forward it to, or ``None`` to keep it (hop counts are on the envelope).
* :meth:`on_idle` — ``pe`` ran out of work; the balancer may send control
  messages (e.g. steal requests).

Load knowledge must come only from :meth:`note_load` (piggybacked sender
load on every delivered message) and from the balancer's own control
traffic — strategies never read other PEs' queues directly, so the
information structure matches a real distributed implementation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional

from repro.core.messages import Envelope
from repro.core.services import Service

__all__ = ["Balancer"]


class Balancer(Service):
    """Base class: keep-local behavior, piggybacked load table, no control."""

    name = "lb"
    strategy_name = "local"
    # Whether the strategy ever *reads* the piggybacked neighbor-load table
    # (``known`` / ``known_load``).  The base ``note_load`` writes the table
    # on every cross-PE arrival; strategies that never consult it (purely
    # stateless placement) set this False so the kernel can skip the write
    # entirely on the per-message hot path.  Strategies that override
    # ``note_load`` are called regardless of this flag.
    uses_known_table = True

    def bind(self, kernel) -> None:
        super().bind(kernel)
        self.rng = kernel.rng.child("lb")
        # known[observer][subject] = last load value piggybacked to observer.
        # Default-on-touch: observers materialize a row on first use, so a
        # P=10⁶ machine carries only as many rows as there are active PEs.
        self.known: Dict[int, Dict[int, int]] = defaultdict(dict)
        self.seeds_placed_remote = 0
        self.control_msgs = 0

    # ------------------------------------------------------------------- hooks
    def on_new_seed(self, src_pe: int, chare_cls: type) -> int:
        """Choose the first destination for a fresh seed."""
        return src_pe

    def on_seed_arrival(self, pe: int, env: Envelope) -> Optional[int]:
        """Forward an arriving seed (return target PE) or keep it (None)."""
        return None

    def on_idle(self, pe: int) -> None:
        """React to a PE running dry."""

    def note_load(self, observer: int, subject: int, load: int) -> None:
        if observer != subject:
            self.known[observer][subject] = load

    # --------------------------------------------------------------- messaging
    def handle(self, pe: int, op: str, args: tuple) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} received unexpected control op {op!r}"
        )

    # ----------------------------------------------------------------- helpers
    def trace_decision(self, pe: int, name: str, info=None) -> None:
        """Record an ``lb`` event on the kernel's trace (no-op untraced).

        Strategies call this at their decision points (steal requests,
        donations, probes); placement and seed-forwarding decisions are
        recorded by the kernel itself at its delivery hooks.
        """
        kernel = self.kernel
        events = kernel._events
        if events is not None:
            events.record("lb", kernel.engine._now, pe, name=name,
                          parent=events.ctx, info=info)

    def local_load(self, pe: int) -> int:
        """A PE may always inspect its *own* queues."""
        return self.kernel.pes[pe].load

    def known_load(self, observer: int, subject: int, default: int = 0) -> int:
        row = self.known.get(observer)
        return default if row is None else row.get(subject, default)
