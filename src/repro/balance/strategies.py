"""Concrete seed load-balancing strategies (experiment T5's subjects)."""

from __future__ import annotations

from collections import defaultdict
from heapq import heappop, heappush
from typing import Dict, Optional

from repro.balance.base import Balancer
from repro.core.messages import Envelope
from repro.util.errors import ConfigurationError

__all__ = [
    "LocalBalancer",
    "RandomBalancer",
    "RoundRobinBalancer",
    "CentralBalancer",
    "TokenBalancer",
    "AcwnBalancer",
    "BALANCERS",
    "make_balancer",
]


class LocalBalancer(Balancer):
    """No balancing: seeds execute where they are created (baseline)."""

    strategy_name = "local"
    uses_known_table = False


class RandomBalancer(Balancer):
    """Uniform random placement at creation time.

    The paper's observation: surprisingly strong for homogeneous tree
    computations because expectation alone flattens the load, at the price
    of many remote seeds even when the machine is already saturated.
    """

    strategy_name = "random"
    uses_known_table = False

    def bind(self, kernel) -> None:
        super().bind(kernel)
        self._num_pes = kernel.num_pes
        # on_new_seed runs once per created chare, and a single numpy
        # integers() call per draw dominates its cost.  PCG64 produces the
        # identical value stream whether drawn one at a time or as a block
        # (each element consumes the bit stream the same way), so draws are
        # buffered in blocks: same placements, ~10x cheaper per seed.
        self._block: list = []
        self._block_next = 0

    def on_new_seed(self, src_pe: int, chare_cls: type) -> int:
        i = self._block_next
        if i >= len(self._block):
            self._block = self.rng._gen.integers(
                0, self._num_pes, size=256
            ).tolist()
            i = 0
        self._block_next = i + 1
        target = self._block[i]
        if target != src_pe:
            self.seeds_placed_remote += 1
        return target


class RoundRobinBalancer(Balancer):
    """Deterministic cyclic placement (per-creator cursor)."""

    strategy_name = "roundrobin"
    uses_known_table = False

    def bind(self, kernel) -> None:
        super().bind(kernel)
        # Cursor defaults to the creator's own rank on first touch — the
        # same start point the old P-sized prefill gave every PE.
        self._cursor: Dict[int, int] = {}

    def on_new_seed(self, src_pe: int, chare_cls: type) -> int:
        nxt = (self._cursor.get(src_pe, src_pe) + 1) % self.kernel.num_pes
        self._cursor[src_pe] = nxt
        if nxt != src_pe:
            self.seeds_placed_remote += 1
        return nxt


class CentralBalancer(Balancer):
    """Manager-based placement: all seeds route through PE 0.

    The manager assigns each seed to the least-loaded PE it knows of
    (piggybacked loads plus an optimistic count of its own outstanding
    assignments).  Centralization gives the best information but every seed
    pays a trip through PE 0 — the bottleneck experiment T5 exhibits as P
    grows.

    Placement is O(log P), not the O(P) scan it once was: *touched*
    candidates (any rank the manager has assigned to or heard from) sit in
    a lazy min-heap of ``(estimate, rank)`` entries, every never-touched
    rank has estimate 0 by construction and is represented by the single
    lowest such rank (``_frontier``), and PE 0's own estimate is computed
    live.  The minimum over those three ``(estimate, rank)`` tuples
    reproduces the historical scan's result exactly, including its
    lowest-index tie-break.
    """

    strategy_name = "central"

    def bind(self, kernel) -> None:
        super().bind(kernel)
        self._outstanding: Dict[int, int] = defaultdict(int)
        # (est, cand) entries for touched cands >= 1; entries go stale when
        # a cand's estimate changes and are popped lazily on inspection.
        self._heap: list = []
        self._est: Dict[int, int] = {}  # authoritative estimate per cand
        self._frontier = 1  # lowest never-touched rank (touched only grows)

    def _touch(self, cand: int) -> None:
        """Refresh a candidate's estimate after it changed."""
        est = self.known_load(0, cand) + self._outstanding[cand]
        self._est[cand] = est
        heappush(self._heap, (est, cand))

    def on_new_seed(self, src_pe: int, chare_cls: type) -> int:
        return 0

    def note_load(self, observer: int, subject: int, load: int) -> None:
        super().note_load(observer, subject, load)
        if observer == 0:
            # Fresh truth from `subject` supersedes optimistic bookkeeping.
            self._outstanding[subject] = 0
            if subject != 0:
                self._touch(subject)

    def on_seed_arrival(self, pe: int, env: Envelope) -> Optional[int]:
        if pe != 0 or env.hops > 0:
            return None  # already assigned
        n = self.kernel.num_pes
        est = self._est
        f = self._frontier
        while f < n and f in est:
            f += 1
        self._frontier = f
        heap = self._heap
        while heap and est.get(heap[0][1]) != heap[0][0]:
            heappop(heap)  # stale entry: estimate has since changed
        # Lowest (estimate, rank) among: the manager itself, the best
        # touched candidate, and the frontier (every untouched rank has
        # estimate exactly 0 — no piggybacked load, no assignments).
        choices = [(self.local_load(0) + self._outstanding[0], 0)]
        if heap:
            choices.append(heap[0])
        if f < n:
            choices.append((0, f))
        _, best = min(choices)
        self._outstanding[best] += 1
        if best == 0:
            return None
        self._touch(best)
        self.seeds_placed_remote += 1
        return best


class TokenBalancer(Balancer):
    """Receiver-initiated work stealing.

    Seeds stay local; an idle PE sends a steal request to a random victim,
    which donates up to half of its queued (non-fixed) seeds, capped at
    ``max_grab`` — steal-half is what makes the ramp-up phase work when all
    seeds start on one PE.  Failed steals retry with linear backoff up to
    ``max_attempts``, so an idle PE eventually goes quiet instead of
    flooding the machine with probes.  Steal traffic is uncounted control
    traffic.
    """

    strategy_name = "token"

    def __init__(
        self,
        max_attempts: int = 16,
        backoff: float = 150e-6,
        max_grab: int = 8,
    ) -> None:
        super().__init__()
        self.max_attempts = max_attempts
        self.backoff = backoff
        self.max_grab = max_grab

    def bind(self, kernel) -> None:
        super().bind(kernel)
        self._attempts: Dict[int, int] = defaultdict(int)

    def on_seed_arrival(self, pe: int, env: Envelope) -> Optional[int]:
        self._attempts[pe] = 0  # fresh work: reset the probe budget
        return None

    def on_idle(self, pe: int) -> None:
        self._try_steal(pe)

    def _try_steal(self, pe: int) -> None:
        n = self.kernel.num_pes
        if n < 2 or self._attempts[pe] >= self.max_attempts:
            return
        victim = self.rng.randint(0, n - 1)
        if victim >= pe:
            victim += 1
        self._attempts[pe] += 1
        self.control_msgs += 1
        self.kernel.pes[pe].steal_attempts += 1
        self.trace_decision(pe, "steal_req", {"victim": victim})
        self.send(pe, victim, "steal_req", (pe,))

    def handle(self, pe: int, op: str, args: tuple) -> None:
        kernel = self.kernel
        kernel.api_charge(5.0)
        if op == "steal_req":
            (thief,) = args
            state = kernel.pes[pe]
            budget = min(self.max_grab, max(1, len(state.seed_pool) // 2))
            donated = 0
            pinned = []
            while donated < budget:
                seed = state.steal_seed()
                if seed is None:
                    break
                if seed.fixed:
                    pinned.append(seed)  # never migrate pinned seeds
                    continue
                kernel._deliver(seed.forwarded(thief), kernel.now)
                donated += 1
            for seed in pinned:
                state.requeue_seed(seed)
            if donated == 0:
                self.control_msgs += 1
                self.send(pe, thief, "steal_none", ())
            else:
                self._attempts[thief] = 0
                state.steals_satisfied += 1
                self.seeds_placed_remote += donated
                self.trace_decision(pe, "donate",
                                    {"thief": thief, "count": donated})
        elif op == "steal_none":
            if kernel.pes[pe].has_work() or self._attempts[pe] >= self.max_attempts:
                return
            delay = self.backoff * self._attempts[pe]
            kernel.engine.schedule_call(kernel.now + delay, self._retry, pe)
        else:  # pragma: no cover - defensive
            super().handle(pe, op, args)

    def _retry(self, pe: int) -> None:
        state = self.kernel.pes[pe]
        if not state.has_work() and not state.busy:
            self._try_steal(pe)


class AcwnBalancer(Balancer):
    """Adaptive Contracting Within Neighborhood (the paper's strategy).

    A new seed goes to the least-loaded member of the creator's
    topology neighborhood (possibly the creator itself); an arriving seed
    may take further hops while a markedly lighter neighbor is known and
    its hop budget lasts.  As the neighborhood saturates, the comparison
    fails and work *contracts* — stays local — which is what keeps message
    traffic bounded at high load (the behavior T5 measures).

    Load knowledge is piggybacked only.  Idle PEs send a one-shot (cheap,
    uncounted) hint to their neighbors; the hint's only effect is the
    piggybacked zero load in its header.
    """

    strategy_name = "acwn"

    def __init__(self, threshold: int = 2, max_hops: Optional[int] = None) -> None:
        super().__init__()
        if threshold < 1:
            raise ConfigurationError("acwn threshold must be >= 1")
        self.threshold = threshold
        self.max_hops = max_hops

    def bind(self, kernel) -> None:
        super().bind(kernel)
        if self.max_hops is None:
            diam = kernel.machine.topology.diameter() if kernel.num_pes > 1 else 0
            self.max_hops = max(2, diam)

    def _best_neighbor(self, pe: int) -> tuple[Optional[int], int]:
        best, best_load = None, 0
        for nb in self.kernel.machine.neighbors(pe):
            load = self.known_load(pe, nb)
            if best is None or load < best_load:
                best, best_load = nb, load
        return best, best_load

    def on_new_seed(self, src_pe: int, chare_cls: type) -> int:
        best, best_load = self._best_neighbor(src_pe)
        if best is not None and best_load + self.threshold <= self.local_load(src_pe):
            self.known[src_pe][best] = best_load + 1  # optimistic update
            self.seeds_placed_remote += 1
            return best
        return src_pe

    def on_seed_arrival(self, pe: int, env: Envelope) -> Optional[int]:
        if env.hops >= self.max_hops:
            return None
        best, best_load = self._best_neighbor(pe)
        if best is not None and best_load + self.threshold <= self.local_load(pe):
            self.known[pe][best] = best_load + 1
            self.seeds_placed_remote += 1
            return best
        return None

    def on_idle(self, pe: int) -> None:
        for nb in self.kernel.machine.neighbors(pe):
            self.control_msgs += 1
            self.send(pe, nb, "idle_hint", ())

    def handle(self, pe: int, op: str, args: tuple) -> None:
        if op == "idle_hint":
            # The useful payload was the piggybacked load in the header,
            # already folded into the known-load table on arrival.
            self.kernel.api_charge(1.0)
            return
        super().handle(pe, op, args)  # pragma: no cover - defensive


class GradientBalancer(Balancer):
    """Gradient-model balancing (Lin & Keller style, event-driven variant).

    Idle PEs advertise themselves by flooding a bounded-radius *gradient*:
    a control message ``(origin, hops)`` that neighbors re-forward while it
    improves their proximity table.  A loaded PE routes new seeds one hop
    toward the nearest known idle origin; the seed re-evaluates at each hop
    (via the arrival hook), so it descends the gradient until it reaches
    the idle region or its hop budget runs out.

    Staleness control: an origin whose piggybacked load has since been
    observed non-zero is ignored, and proximity entries are dropped once
    used.  All gradient traffic is uncounted control traffic.
    """

    strategy_name = "gradient"

    def __init__(self, radius: int = 2, threshold: int = 2,
                 max_hops: Optional[int] = None) -> None:
        super().__init__()
        if radius < 1:
            raise ConfigurationError("gradient radius must be >= 1")
        self.radius = radius
        self.threshold = threshold
        self.max_hops = max_hops

    def bind(self, kernel) -> None:
        super().bind(kernel)
        # proximity[pe] = {origin: (hops, via_neighbor)}; rows materialize
        # on first gradient contact (per-row insertion order preserved).
        self._prox: Dict[int, Dict[int, tuple]] = defaultdict(dict)
        if self.max_hops is None:
            diam = kernel.machine.topology.diameter() if kernel.num_pes > 1 else 0
            self.max_hops = max(2, diam)

    # ------------------------------------------------------------ the gradient
    def on_idle(self, pe: int) -> None:
        self._prox[pe].clear()
        for nb in self.kernel.machine.neighbors(pe):
            self.control_msgs += 1
            self.send(pe, nb, "grad", (pe, 1))

    def handle(self, pe: int, op: str, args: tuple) -> None:
        if op != "grad":  # pragma: no cover - defensive
            return super().handle(pe, op, args)
        self.kernel.api_charge(2.0)
        origin, hops = args
        if origin == pe:
            return
        known = self._prox[pe].get(origin)
        if known is not None and known[0] <= hops:
            return  # no improvement: damp the flood
        self._prox[pe][origin] = (hops, None)
        if hops < self.radius:
            for nb in self.kernel.machine.neighbors(pe):
                self.control_msgs += 1
                self.send(pe, nb, "grad", (origin, hops + 1))

    # ----------------------------------------------------------- seed routing
    def _descend(self, pe: int) -> Optional[int]:
        """Pick the neighbor one hop down the steepest live gradient."""
        best_origin, best_key = None, None
        for origin, (hops, _) in self._prox[pe].items():
            # Rank by believed load first, then proximity; an origin whose
            # believed load reached the threshold no longer attracts seeds
            # (belief rises optimistically below and is refreshed by
            # piggybacked headers).
            load = self.known_load(pe, origin, default=0)
            if load >= self.threshold:
                continue
            key = (load, hops)
            if best_key is None or key < best_key:
                best_origin, best_key = origin, key
        if best_origin is None:
            return None
        # Optimistically count the seed we are about to route there, so one
        # advertised-idle PE doesn't attract a herd of seeds from here.
        self.known[pe][best_origin] = self.known_load(pe, best_origin) + 1
        topo = self.kernel.machine.topology
        nbrs = self.kernel.machine.neighbors(pe)
        return min(nbrs, key=lambda nb: topo.hops(nb, best_origin))

    def on_new_seed(self, src_pe: int, chare_cls: type) -> int:
        if self.local_load(src_pe) < self.threshold:
            return src_pe
        target = self._descend(src_pe)
        if target is None or target == src_pe:
            return src_pe
        self.seeds_placed_remote += 1
        return target

    def on_seed_arrival(self, pe: int, env: Envelope) -> Optional[int]:
        if env.hops >= (self.max_hops or 2):
            return None
        if self.local_load(pe) < self.threshold:
            return None  # we are the idle region: absorb
        target = self._descend(pe)
        if target is None or target == pe:
            return None
        self.seeds_placed_remote += 1
        return target


BALANCERS = {
    "local": LocalBalancer,
    "random": RandomBalancer,
    "roundrobin": RoundRobinBalancer,
    "central": CentralBalancer,
    "token": TokenBalancer,
    "acwn": AcwnBalancer,
    "gradient": GradientBalancer,
}


def make_balancer(name: str, **kwargs) -> Balancer:
    """Instantiate a balancing strategy by name."""
    try:
        return BALANCERS[name](**kwargs)
    except KeyError:
        raise ConfigurationError(
            f"unknown balancer {name!r}; options: {sorted(BALANCERS)}"
        ) from None
