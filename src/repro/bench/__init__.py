"""Experiment harness: PE sweeps, strategy sweeps, table formatting.

The modules here regenerate the paper's tables and figures (see
EXPERIMENTS.md).  ``python -m repro.bench --exp all`` prints everything;
the files under ``benchmarks/`` drive the same registry via
pytest-benchmark.
"""

from repro.bench.harness import (
    APPS,
    AppSpec,
    measure,
    speedup_sweep,
    SweepResult,
)
from repro.bench.tables import format_table
from repro.bench.experiments import EXPERIMENTS, run_experiment

__all__ = [
    "APPS",
    "AppSpec",
    "measure",
    "speedup_sweep",
    "SweepResult",
    "format_table",
    "EXPERIMENTS",
    "run_experiment",
]
