"""CLI: ``python -m repro.bench --exp t2 [--scale quick]`` or ``--exp all``."""

from __future__ import annotations

import argparse
import sys

from repro.bench.experiments import EXPERIMENTS, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables (T1-T9) and figures (F1-F3).",
    )
    parser.add_argument(
        "--exp",
        default="all",
        help=f"experiment id or 'all'; options: {', '.join(sorted(EXPERIMENTS))}",
    )
    parser.add_argument(
        "--scale",
        default="paper",
        choices=["paper", "quick"],
        help="'paper' = full sizes, 'quick' = reduced CI sizes",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="DIR",
        help="also write one <id>.txt and <id>.json per experiment to DIR",
    )
    args = parser.parse_args(argv)
    ids = sorted(EXPERIMENTS) if args.exp == "all" else [args.exp]
    for exp_id in ids:
        result = run_experiment(exp_id, scale=args.scale)
        print(f"\n== {result.exp_id}: {result.title} ==")
        print(result.text)
        if args.output:
            _write(args.output, result, args.scale)
    return 0


def _write(directory: str, result, scale: str) -> None:
    import json
    import os

    os.makedirs(directory, exist_ok=True)
    base = os.path.join(directory, result.exp_id.lower())
    with open(base + ".txt", "w", encoding="utf-8") as fh:
        fh.write(f"== {result.exp_id}: {result.title} (scale={scale}) ==\n")
        fh.write(result.text + "\n")
    with open(base + ".json", "w", encoding="utf-8") as fh:
        json.dump(
            {"id": result.exp_id, "title": result.title, "scale": scale,
             "data": _jsonable(result.data)},
            fh, indent=2,
        )


def _jsonable(obj):
    """Coerce experiment data to JSON-encodable structures."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(x) for x in obj]
    if isinstance(obj, (int, float, str, bool)) or obj is None:
        return obj
    return str(obj)


if __name__ == "__main__":
    sys.exit(main())
