"""CLI: ``python -m repro.bench --exp t2 [--scale quick] [--jobs N]``.

Regenerates the paper's tables/figures through the parallel sweep
executor: independent runs are sharded across ``--jobs`` warm worker
processes and backed by a content-addressed on-disk result cache keyed
by (run descriptor, source fingerprint), so a re-run after an unrelated
edit replays cached rows.  ``--jobs 1`` is the historical serial path;
``--no-cache`` bypasses the cache entirely.  Results are bit-identical
at any job count — the simulator is deterministic virtual time.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.parallel import SweepExecutor, default_jobs, use_executor


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables (T1-T9) and figures (F1-F3).",
    )
    parser.add_argument(
        "--exp",
        default="all",
        help=f"experiment id or 'all'; options: {', '.join(sorted(EXPERIMENTS))}",
    )
    parser.add_argument(
        "--scale",
        default="paper",
        choices=["paper", "quick"],
        help="'paper' = full sizes, 'quick' = reduced CI sizes",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="DIR",
        help="also write one <id>.txt and <id>.json per experiment to DIR",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the sweep executor "
        "(default: os.cpu_count(); 1 = serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache entirely",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"result-cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-progress",
        action="store_true",
        help="suppress the per-experiment progress/ETA lines on stderr",
    )
    parser.add_argument(
        "--stats-json",
        default=None,
        metavar="PATH",
        help="write executor/cache statistics as JSON to PATH (CI artifact)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="DIR",
        help="record structured event traces and write one <run>.run.json "
        "+ <run>.perfetto.json per run to DIR (tracing is off without "
        "this flag)",
    )
    parser.add_argument(
        "--trace-events",
        default=None,
        metavar="KINDS",
        help="comma-separated event kinds to record (default: all); "
        "implies tracing even without --trace-out",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="DIR",
        help="attach the telemetry plane to every run and write one "
        "<run>.metrics.jsonl + <run>.prom per run to DIR, with a run-health "
        "line on stderr (telemetry is off without --metrics-*)",
    )
    parser.add_argument(
        "--metrics-interval",
        type=float,
        default=None,
        metavar="VSECONDS",
        help="telemetry snapshot period in virtual seconds (default: final "
        "snapshot only); implies telemetry even without --metrics-out",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=["heap", "batch"],
        help="engine backend for every run (default: heap); non-default "
        "backends become part of each run's cache key",
    )
    args = parser.parse_args(argv)
    ids = sorted(EXPERIMENTS) if args.exp == "all" else [args.exp]
    jobs = args.jobs if args.jobs is not None else default_jobs()
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    progress = None if args.no_progress else _progress_printer()
    started = time.perf_counter()
    tracing = args.trace_out is not None or args.trace_events is not None
    trace_kinds = args.trace_events if args.trace_events is not None else "all"
    metrics = (args.metrics_out is not None
               or args.metrics_interval is not None)
    metrics_interval = (args.metrics_interval
                        if args.metrics_interval is not None else 0.0)
    executor = SweepExecutor(jobs=jobs, cache=cache, progress=progress,
                             trace_out=args.trace_out,
                             metrics_out=args.metrics_out)
    from contextlib import ExitStack

    from repro.bench.harness import use_backend, use_telemetry, use_tracing

    with ExitStack() as stack:
        stack.enter_context(executor)
        stack.enter_context(use_executor(executor))
        if tracing:
            stack.enter_context(use_tracing(trace_kinds))
        if metrics:
            stack.enter_context(use_telemetry(metrics_interval))
        if args.backend is not None:
            stack.enter_context(use_backend(args.backend))
        for exp_id in ids:
            result = run_experiment(exp_id, scale=args.scale)
            print(f"\n== {result.exp_id}: {result.title} ==")
            print(result.text)
            if args.output:
                _write(args.output, result, args.scale)
    wall = time.perf_counter() - started
    _summarize(executor, wall, args.stats_json)
    return 0


def _progress_printer():
    """Progress lines on stderr; live \\r updates only on a tty."""
    tty = sys.stderr.isatty()

    def show(event) -> None:
        done, total = event["done"], event["total"]
        msg = (f"[{event['label'] or 'sweep'}] {done}/{total} runs"
               f" ({event['cached']} cached)")
        if event["eta_s"] is not None and not event["final"]:
            msg += f" ETA {event['eta_s']:.1f}s"
        if tty:
            end = "\n" if event["final"] else "\r"
            print(f"\x1b[2K{msg}", end=end, file=sys.stderr, flush=True)
        elif event["final"]:
            print(msg, file=sys.stderr, flush=True)

    return show


def _summarize(executor, wall: float, stats_json) -> None:
    stats = executor.summary()
    stats["total_wall_s"] = round(wall, 3)
    cache = stats.get("cache")
    line = (f"sweep: {stats['runs_executed']} runs executed, "
            f"{stats['runs_cached']} cached, jobs={stats['jobs']}, "
            f"wall {wall:.1f}s")
    if cache is not None:
        line += f", cache hit-rate {cache['hit_rate']:.0%}"
    if "traces_written" in stats:
        line += f", {stats['traces_written']} traces written"
    if "metrics_written" in stats:
        line += f", {stats['metrics_written']} metric streams written"
    print(line, file=sys.stderr)
    if stats_json:
        import json
        import os

        directory = os.path.dirname(stats_json)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(stats_json, "w", encoding="utf-8") as fh:
            json.dump(stats, fh, indent=2)
            fh.write("\n")


def _write(directory: str, result, scale: str) -> None:
    import json
    import os

    os.makedirs(directory, exist_ok=True)
    base = os.path.join(directory, result.exp_id.lower())
    with open(base + ".txt", "w", encoding="utf-8") as fh:
        fh.write(f"== {result.exp_id}: {result.title} (scale={scale}) ==\n")
        fh.write(result.text + "\n")
    with open(base + ".json", "w", encoding="utf-8") as fh:
        json.dump(
            {"id": result.exp_id, "title": result.title, "scale": scale,
             "data": _jsonable(result.data)},
            fh, indent=2,
        )


def _jsonable(obj):
    """Coerce experiment data to JSON-encodable structures."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(x) for x in obj]
    if isinstance(obj, (int, float, str, bool)) or obj is None:
        return obj
    return str(obj)


if __name__ == "__main__":
    sys.exit(main())
