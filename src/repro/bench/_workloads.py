"""Tiny chare programs used by the host-throughput microbenchmarks.

Kept in their own module (rather than inline in ``repro.bench.perf`` or
the pytest files) so the perf reporter, the pytest-benchmark suite and the
CI regression guard all time exactly the same workloads.
"""

from __future__ import annotations

from repro import Chare, entry

__all__ = ["PingPong", "Fanout", "FanWorker"]


class PingPong(Chare):
    """A 1-PE self-message chain: the purest kernel-message hot path."""

    def __init__(self, rounds):
        self.rounds = rounds
        self.send(self.thishandle, "ping", 0)

    @entry
    def ping(self, i):
        if i >= self.rounds:
            self.exit(i)
        else:
            self.send(self.thishandle, "ping", i + 1)


class Fanout(Chare):
    """N balancer-routed seeds, each replying once: the seed hot path."""

    def __init__(self, n):
        self.n = n
        self.seen = 0
        for i in range(n):
            self.create(FanWorker, self.thishandle)

    @entry
    def done(self):
        self.seen += 1
        if self.seen == self.n:
            self.exit(self.seen)


class FanWorker(Chare):
    def __init__(self, parent):
        self.send(parent, "done")
