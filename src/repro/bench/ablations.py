"""Ablation experiments (A-series): the runtime's own design choices.

Where T1–T9/F1–F3 reproduce the paper's evaluation, the A-series probes
the design decisions DESIGN.md calls out, holding the application fixed
and toggling one runtime mechanism:

* **A1** — collective spanning tree: topology-oblivious rank tree vs
  hypercube binomial tree (network load and completion time).
* **A2** — monotonic ``lazy`` batching interval: pruning quality vs
  propagation traffic as the batch window grows.
* **A3** — quiescence wave interval: detection latency vs probe traffic.
* **A4** — ACWN parameters: forwarding threshold and hop budget.
* **A5** — link contention: all-to-all vs nearest-neighbor traffic.

Like the T/F/R series, every arm is expressed as a declarative run
descriptor and submitted through the ambient sweep executor
(``repro.bench.parallel``), so ablations parallelise and cache exactly
like the paper tables.  Kernel-level knobs (``spanning_tree``,
``lazy_interval``, ``qd_interval``), parameterised balancers
(``balancer={"name": ..., ...}``) and machine cost-model overrides
(``machine_scaled={...}``) all travel inside the descriptor.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.apps.tree import TreeParams
from repro.apps.tsp import TspInstance, tsp_seq
from repro.bench.harness import describe, measure_many
from repro.bench.tables import format_table

__all__ = ["exp_a1", "exp_a2", "exp_a3", "exp_a4", "exp_a5"]


def _result_cls():
    from repro.bench.experiments import ExperimentResult

    return ExperimentResult


def exp_a1(scale: str = "paper"):
    """Spanning-tree shape ablation on a hypercube."""
    ExperimentResult = _result_cls()
    pes = 16 if scale == "quick" else 64
    params = (
        TreeParams(seed=11, max_depth=10, max_fanout=5, branch_bias=0.96)
        if scale == "quick"
        else TreeParams(seed=7, max_depth=12, max_fanout=6, branch_bias=0.98)
    )
    headers = ["tree", "time (ms)", "msg hops", "bytes sent"]
    rows = []
    data: Dict[str, Any] = {}
    answers = set()
    tree_names = ("rank", "binomial")
    descs = [
        describe("tree", "ncube2", pes, balancer="acwn",
                 spanning_tree=tree_name, params=params)
        for tree_name in tree_names
    ]
    for tree_name, row in zip(tree_names, measure_many(descs, label="a1")):
        answers.add(row.answer)
        rows.append([tree_name, row.vtime * 1e3,
                     row.stats.total_message_hops,
                     row.stats.total_bytes_sent])
        data[tree_name] = {
            "time": row.vtime,
            "hops": row.stats.total_message_hops,
            "bytes": row.stats.total_bytes_sent,
        }
    assert len(answers) == 1
    return ExperimentResult(
        "A1",
        "collective spanning tree: rank vs binomial",
        format_table(headers, rows,
                     title=f"Unbalanced tree on ncube2 hypercube, P={pes}"),
        data,
    )


def exp_a2(scale: str = "paper"):
    """Monotonic lazy-batching interval ablation (TSP bound sharing)."""
    ExperimentResult = _result_cls()
    pes = 8 if scale == "quick" else 16
    n = 8 if scale == "quick" else 10
    # Same instance the descriptors will rebuild (n + instance_seed=0).
    best_ref, _ = tsp_seq(TspInstance.random(n, 0))
    intervals = [0.05e-3, 0.2e-3, 1e-3, 5e-3]
    headers = ["lazy interval (ms)", "nodes", "time (ms)", "bound msgs"]
    rows = []
    data: Dict[str, Any] = {}
    descs = [
        describe("tsp", "ipsc2", pes, queueing="fifo", propagation="lazy",
                 n=n, instance_seed=0, grain=2, bound_slack=1.6,
                 lazy_interval=interval)
        for interval in intervals
    ]
    for interval, row in zip(intervals, measure_many(descs, label="a2")):
        best, nodes, _ = row.answer
        assert best == best_ref
        rows.append([interval * 1e3, nodes, row.vtime * 1e3,
                     row.stats.mono_updates_sent])
        data[interval] = {
            "nodes": nodes,
            "time": row.vtime,
            "msgs": row.stats.mono_updates_sent,
        }
    return ExperimentResult(
        "A2",
        "monotonic lazy-propagation batching interval",
        format_table(headers, rows,
                     title=f"TSP({n}) B&B, fifo queueing, loose incumbent, P={pes}"),
        data,
    )


def exp_a3(scale: str = "paper"):
    """Quiescence wave-interval ablation: latency vs probe traffic."""
    ExperimentResult = _result_cls()
    pes = 8 if scale == "quick" else 16
    n = 7 if scale == "quick" else 8
    intervals = [0.1e-3, 0.5e-3, 2e-3, 10e-3]
    headers = ["qd interval (ms)", "waves", "system msgs",
               "detect latency (ms)", "total time (ms)"]
    rows = []
    data: Dict[str, Any] = {}
    descs = [
        describe("queens", "ipsc2", pes, n=n, grainsize=3,
                 qd_interval=interval)
        for interval in intervals
    ]
    for interval, row in zip(intervals, measure_many(descs, label="a3")):
        detected = row.stats.qd_detected_at or row.vtime
        latency = detected - (row.qd_work_end or 0.0)
        rows.append([interval * 1e3, row.stats.qd_waves,
                     row.stats.total_system_executed, latency * 1e3,
                     row.vtime * 1e3])
        data[interval] = {
            "waves": row.stats.qd_waves,
            "latency": latency,
            "system": row.stats.total_system_executed,
        }
    return ExperimentResult(
        "A3",
        "quiescence wave interval: latency vs probe traffic",
        format_table(headers, rows, title=f"N-queens({n}) on ipsc2, P={pes}"),
        data,
    )


def exp_a5(scale: str = "paper"):
    """Link-contention ablation: uncontended links vs per-link queuing.

    All-to-all traffic (sample sort) suffers from link serialization far
    more than nearest-neighbor traffic (jacobi) — the reason contention
    modelling matters when comparing communication patterns.
    """
    ExperimentResult = _result_cls()
    pes = 8 if scale == "quick" else 16
    n_sort = 2048 if scale == "quick" else 8192
    n_grid = 16 if scale == "quick" else 32
    headers = ["app", "links", "time (ms)", "slowdown"]
    rows = []
    data: Dict[str, Any] = {}
    contended = {"link_bandwidth": 2.8e6}

    descs = [
        describe("samplesort", "ipsc2", pes, n=n_sort, workers=pes),
        describe("samplesort", "ipsc2", pes, n=n_sort, workers=pes,
                 machine_scaled=contended),
        describe("jacobi", "ipsc2", pes, n=n_grid, blocks=4, iterations=8),
        describe("jacobi", "ipsc2", pes, n=n_grid, blocks=4, iterations=8,
                 machine_scaled=contended),
    ]
    results = measure_many(descs, label="a5")
    for app, (plain, slow) in zip(("samplesort", "jacobi"),
                                  (results[0:2], results[2:4])):
        rows.append([app, "ideal", plain.vtime * 1e3, 1.0])
        rows.append([app, "2.8MB/s", slow.vtime * 1e3,
                     round(slow.vtime / plain.vtime, 2)])
        data[app] = {"plain": plain.vtime, "contended": slow.vtime}

    return ExperimentResult(
        "A5",
        "link contention: all-to-all vs nearest-neighbor",
        format_table(headers, rows,
                     title=f"ipsc2 hypercube P={pes}, per-link queuing"),
        data,
    )


def exp_a4(scale: str = "paper"):
    """ACWN parameter ablation: threshold and hop budget."""
    ExperimentResult = _result_cls()
    pes = 8 if scale == "quick" else 16
    params = (
        TreeParams(seed=11, max_depth=10, max_fanout=5, branch_bias=0.96)
        if scale == "quick"
        else TreeParams(seed=7, max_depth=12, max_fanout=6, branch_bias=0.98)
    )
    headers = ["threshold", "max hops", "time (ms)", "util %", "remote seeds"]
    rows = []
    data: Dict[str, Any] = {}
    answers = set()
    combos = [(threshold, max_hops) for threshold in (1, 2, 4, 8)
              for max_hops in (1, 4)]
    descs = [
        describe("tree", "ipsc2", pes, params=params,
                 balancer={"name": "acwn", "threshold": threshold,
                           "max_hops": max_hops})
        for threshold, max_hops in combos
    ]
    for (threshold, max_hops), row in zip(combos,
                                          measure_many(descs, label="a4")):
        answers.add(row.answer)
        rows.append([threshold, max_hops, row.vtime * 1e3,
                     round(row.stats.mean_utilization * 100, 1),
                     row.stats.lb_seeds_remote])
        data[(threshold, max_hops)] = {
            "time": row.vtime,
            "util": row.stats.mean_utilization,
            "remote": row.stats.lb_seeds_remote,
        }
    assert len(answers) == 1
    return ExperimentResult(
        "A4",
        "ACWN threshold / hop-budget sweep",
        format_table(headers, rows,
                     title=f"Unbalanced tree on ipsc2, P={pes}"),
        {str(k): v for k, v in data.items()},
    )
