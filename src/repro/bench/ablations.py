"""Ablation experiments (A-series): the runtime's own design choices.

Where T1–T9/F1–F3 reproduce the paper's evaluation, the A-series probes
the design decisions DESIGN.md calls out, holding the application fixed
and toggling one runtime mechanism:

* **A1** — collective spanning tree: topology-oblivious rank tree vs
  hypercube binomial tree (network load and completion time).
* **A2** — monotonic ``lazy`` batching interval: pruning quality vs
  propagation traffic as the batch window grows.
* **A3** — quiescence wave interval: detection latency vs probe traffic.
* **A4** — ACWN parameters: forwarding threshold and hop budget.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.apps.nqueens import NQueensMain
from repro.apps.tree import TreeParams, TreeMain
from repro.apps.tsp import TspInstance, TspMain, tsp_seq
from repro.balance import make_balancer
from repro.bench.tables import format_table
from repro.core.kernel import Kernel
from repro.machine.presets import make_machine

__all__ = ["exp_a1", "exp_a2", "exp_a3", "exp_a4", "exp_a5"]


def _result_cls():
    from repro.bench.experiments import ExperimentResult

    return ExperimentResult


def exp_a1(scale: str = "paper"):
    """Spanning-tree shape ablation on a hypercube."""
    ExperimentResult = _result_cls()
    pes = 16 if scale == "quick" else 64
    params = (
        TreeParams(seed=11, max_depth=10, max_fanout=5, branch_bias=0.96)
        if scale == "quick"
        else TreeParams(seed=7, max_depth=12, max_fanout=6, branch_bias=0.98)
    )
    headers = ["tree", "time (ms)", "msg hops", "bytes sent"]
    rows = []
    data: Dict[str, Any] = {}
    answers = set()
    for tree_name in ("rank", "binomial"):
        kernel = Kernel(make_machine("ncube2", pes), balancer="acwn",
                        spanning_tree=tree_name, seed=0)
        res = kernel.run(TreeMain, params)
        answers.add(res.result)
        rows.append([tree_name, res.time * 1e3, kernel.total_message_hops,
                     res.stats.total_bytes_sent])
        data[tree_name] = {
            "time": res.time,
            "hops": kernel.total_message_hops,
            "bytes": res.stats.total_bytes_sent,
        }
    assert len(answers) == 1
    return ExperimentResult(
        "A1",
        "collective spanning tree: rank vs binomial",
        format_table(headers, rows,
                     title=f"Unbalanced tree on ncube2 hypercube, P={pes}"),
        data,
    )


def exp_a2(scale: str = "paper"):
    """Monotonic lazy-batching interval ablation (TSP bound sharing)."""
    ExperimentResult = _result_cls()
    pes = 8 if scale == "quick" else 16
    n = 8 if scale == "quick" else 10
    inst = TspInstance.random(n, 0)
    best_ref, _ = tsp_seq(inst)
    intervals = [0.05e-3, 0.2e-3, 1e-3, 5e-3]
    headers = ["lazy interval (ms)", "nodes", "time (ms)", "bound msgs"]
    rows = []
    data: Dict[str, Any] = {}
    for interval in intervals:
        kernel = Kernel(make_machine("ipsc2", pes), queueing="fifo",
                        lazy_interval=interval, seed=0)
        res = kernel.run(TspMain, inst, "lazy", 2, 1.6)
        best, nodes, _ = res.result
        assert best == best_ref
        rows.append([interval * 1e3, nodes, res.time * 1e3,
                     res.stats.mono_updates_sent])
        data[interval] = {
            "nodes": nodes,
            "time": res.time,
            "msgs": res.stats.mono_updates_sent,
        }
    return ExperimentResult(
        "A2",
        "monotonic lazy-propagation batching interval",
        format_table(headers, rows,
                     title=f"TSP({n}) B&B, fifo queueing, loose incumbent, P={pes}"),
        data,
    )


def exp_a3(scale: str = "paper"):
    """Quiescence wave-interval ablation: latency vs probe traffic."""
    ExperimentResult = _result_cls()
    pes = 8 if scale == "quick" else 16
    n = 7 if scale == "quick" else 8
    intervals = [0.1e-3, 0.5e-3, 2e-3, 10e-3]
    headers = ["qd interval (ms)", "waves", "system msgs",
               "detect latency (ms)", "total time (ms)"]
    rows = []
    data: Dict[str, Any] = {}
    for interval in intervals:
        kernel = Kernel(make_machine("ipsc2", pes), qd_interval=interval, seed=0)
        res = kernel.run(NQueensMain, n, 3, False)
        latency = (kernel.qd.detected_at or res.time) - (
            kernel.qd.work_end_at_detection or 0.0
        )
        rows.append([interval * 1e3, res.stats.qd_waves,
                     res.stats.total_system_executed, latency * 1e3,
                     res.time * 1e3])
        data[interval] = {
            "waves": res.stats.qd_waves,
            "latency": latency,
            "system": res.stats.total_system_executed,
        }
    return ExperimentResult(
        "A3",
        "quiescence wave interval: latency vs probe traffic",
        format_table(headers, rows, title=f"N-queens({n}) on ipsc2, P={pes}"),
        data,
    )


def exp_a5(scale: str = "paper"):
    """Link-contention ablation: uncontended links vs per-link queuing.

    All-to-all traffic (sample sort) suffers from link serialization far
    more than nearest-neighbor traffic (jacobi) — the reason contention
    modelling matters when comparing communication patterns.
    """
    ExperimentResult = _result_cls()
    from repro.apps.jacobi import run_jacobi
    from repro.apps.samplesort import run_samplesort

    pes = 8 if scale == "quick" else 16
    n_sort = 2048 if scale == "quick" else 8192
    n_grid = 16 if scale == "quick" else 32
    headers = ["app", "links", "time (ms)", "slowdown"]
    rows = []
    data: Dict[str, Any] = {}

    def machines():
        plain = make_machine("ipsc2", pes)
        contended = make_machine("ipsc2", pes)
        contended.params = contended.params.scaled(link_bandwidth=2.8e6)
        return plain, contended

    plain, contended = machines()
    _, r0 = run_samplesort(plain, n=n_sort, workers=pes)
    _, r1 = run_samplesort(contended, n=n_sort, workers=pes)
    rows.append(["samplesort", "ideal", r0.time * 1e3, 1.0])
    rows.append(["samplesort", "2.8MB/s", r1.time * 1e3,
                 round(r1.time / r0.time, 2)])
    data["samplesort"] = {"plain": r0.time, "contended": r1.time}

    plain, contended = machines()
    _, r0 = run_jacobi(plain, n=n_grid, blocks=4, iterations=8)
    _, r1 = run_jacobi(contended, n=n_grid, blocks=4, iterations=8)
    rows.append(["jacobi", "ideal", r0.time * 1e3, 1.0])
    rows.append(["jacobi", "2.8MB/s", r1.time * 1e3,
                 round(r1.time / r0.time, 2)])
    data["jacobi"] = {"plain": r0.time, "contended": r1.time}

    return ExperimentResult(
        "A5",
        "link contention: all-to-all vs nearest-neighbor",
        format_table(headers, rows,
                     title=f"ipsc2 hypercube P={pes}, per-link queuing"),
        data,
    )


def exp_a4(scale: str = "paper"):
    """ACWN parameter ablation: threshold and hop budget."""
    ExperimentResult = _result_cls()
    pes = 8 if scale == "quick" else 16
    params = (
        TreeParams(seed=11, max_depth=10, max_fanout=5, branch_bias=0.96)
        if scale == "quick"
        else TreeParams(seed=7, max_depth=12, max_fanout=6, branch_bias=0.98)
    )
    headers = ["threshold", "max hops", "time (ms)", "util %", "remote seeds"]
    rows = []
    data: Dict[str, Any] = {}
    answers = set()
    for threshold in (1, 2, 4, 8):
        for max_hops in (1, 4):
            balancer = make_balancer("acwn", threshold=threshold,
                                     max_hops=max_hops)
            kernel = Kernel(make_machine("ipsc2", pes), balancer=balancer,
                            seed=0)
            res = kernel.run(TreeMain, params)
            answers.add(res.result)
            rows.append([threshold, max_hops, res.time * 1e3,
                         round(res.stats.mean_utilization * 100, 1),
                         res.stats.lb_seeds_remote])
            data[(threshold, max_hops)] = {
                "time": res.time,
                "util": res.stats.mean_utilization,
                "remote": res.stats.lb_seeds_remote,
            }
    assert len(answers) == 1
    return ExperimentResult(
        "A4",
        "ACWN threshold / hop-budget sweep",
        format_table(headers, rows,
                     title=f"Unbalanced tree on ipsc2, P={pes}"),
        {str(k): v for k, v in data.items()},
    )
