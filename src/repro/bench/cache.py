"""Content-addressed on-disk cache for experiment measurement rows.

Every run of the experiment suite is a pure function of its
:class:`~repro.bench.descriptors.RunDescriptor` *and* of the simulator
sources, so a completed row can be replayed from disk as long as neither
changed.  The cache key is ``stable_digest((source_fingerprint(),
descriptor.canonical()))`` — editing any file under ``src/repro`` flips
the fingerprint and silently turns every stale entry into a miss, which
is the only safe failure mode for a results cache.

Entries are pickle files written atomically (temp file + ``os.replace``)
into two-level fan-out directories.  A corrupt, truncated or
version-skewed file is treated as a miss and overwritten on the next
store; it can never crash a sweep or leak a wrong row.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import replace
from typing import Any, Dict, Optional

from repro.bench.descriptors import RunDescriptor
from repro.util.hashing import source_fingerprint

__all__ = ["ResultCache", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".bench_cache"

#: Bump to invalidate every existing cache file on payload-shape changes.
_FORMAT = 1


class ResultCache:
    """Maps run descriptors to completed ``MeasureRow`` payloads on disk."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR,
                 fingerprint: Optional[str] = None) -> None:
        self.root = root
        #: Computed once per cache instance; a long-lived process that edits
        #: its own sources should build a fresh cache handle.
        self.fingerprint = (source_fingerprint() if fingerprint is None
                            else fingerprint)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------ paths
    def key(self, desc: RunDescriptor) -> str:
        return desc.key(self.fingerprint)

    def path(self, desc: RunDescriptor) -> str:
        key = self.key(desc)
        return os.path.join(self.root, key[:2], key + ".pkl")

    # ------------------------------------------------------------------- I/O
    def get(self, desc: RunDescriptor) -> Optional[Any]:
        """The cached row for ``desc``, or ``None`` (counted as a miss)."""
        key = self.key(desc)
        path = os.path.join(self.root, key[:2], key + ".pkl")
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if payload.get("format") != _FORMAT or payload.get("key") != key:
                raise ValueError("cache payload mismatch")
            row = payload["row"]
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Corrupt/truncated/stale-format files are misses, not crashes;
            # the next put() overwrites them.
            self.misses += 1
            return None
        self.hits += 1
        return row

    def put(self, desc: RunDescriptor, row: Any) -> None:
        """Store ``row`` for ``desc`` (atomic write; safe under concurrency)."""
        key = self.key(desc)
        directory = os.path.join(self.root, key[:2])
        os.makedirs(directory, exist_ok=True)
        if getattr(row, "result", None) is not None:
            # Never pickle the live kernel graph; cached rows carry only the
            # declarative projection (stats, answer, timings).
            row = replace(row, result=None)
        payload = {"format": _FORMAT, "key": key, "label": desc.label(),
                   "row": row}
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, os.path.join(directory, key + ".pkl"))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stores += 1

    # ----------------------------------------------------------------- stats
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "fingerprint": self.fingerprint,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": round(self.hit_rate, 4),
        }
