"""Run descriptors: the unit of work of the parallel sweep executor.

Every measurement the experiment suite takes is a pure, deterministic
function of its configuration — app name, machine preset, PE count, seed
and runner parameters.  A :class:`RunDescriptor` captures exactly that
configuration in a picklable, canonically-hashable form, so one run can
be (a) shipped to a warm worker process, (b) keyed into the on-disk
result cache, and (c) named precisely in failure reports.

Descriptors must stay *declarative*: no live objects.  Two parameter
spellings are canonicalised specially so the ablations can route through
the executor:

* ``balancer={"name": "acwn", "threshold": 2, ...}`` — constructed via
  :func:`repro.balance.make_balancer` at execution time.
* ``machine_scaled={"link_bandwidth": 2.8e6}`` — applied to the machine's
  cost model via ``MachineParams.scaled`` at execution time.

The engine backend rides in ``params`` as a plain ``("backend", name)``
entry, but only when it differs from the default heap path — untraced
default-backend descriptors keep the historical "run-v1" canonical shape,
so the existing cache population stays valid while batch-backed rows get
distinct keys (the two backends produce bit-identical virtual time, but a
cache must never conflate configurations).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Tuple

from repro.util.errors import ConfigurationError
from repro.util.hashing import stable_digest

__all__ = ["RunDescriptor", "canonical_value"]


def canonical_value(value: Any) -> Any:
    """Reduce ``value`` to the hashable vocabulary of ``stable_digest``.

    Scalars pass through; dataclasses (TreeParams, MdParams, FaultConfig,
    TspInstance, ...) become tagged field tuples; lists/tuples/dicts
    recurse.  Anything else is rejected — descriptors must stay
    declarative so their hash is meaningful.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if is_dataclass(value) and not isinstance(value, type):
        return (
            "@dc",
            type(value).__qualname__,
            tuple(
                (f.name, canonical_value(getattr(value, f.name)))
                for f in fields(value)
            ),
        )
    if isinstance(value, (list, tuple)):
        tag = "@list" if isinstance(value, list) else "@tuple"
        return (tag, tuple(canonical_value(v) for v in value))
    if isinstance(value, dict):
        return (
            "@dict",
            tuple(sorted((str(k), canonical_value(v)) for k, v in value.items())),
        )
    raise ConfigurationError(
        f"run descriptor parameter of type {type(value).__name__!r} is not "
        "canonicalisable; use scalars, dataclasses, tuples, lists or dicts"
    )


@dataclass(frozen=True)
class RunDescriptor:
    """One independent (app, machine, P, params, seed) simulation run."""

    app: str
    machine: str
    num_pes: int
    seed: int
    #: Normalised runner kwargs, sorted by name (includes queueing/balancer).
    params: Tuple[Tuple[str, Any], ...] = ()
    #: ``MachineParams.scaled`` overrides applied after ``make_machine``.
    machine_scaled: Tuple[Tuple[str, Any], ...] = ()
    #: Structured-event kinds to record (sorted; empty = tracing off).
    #: Part of the cache key: a traced row carries its event payload, so it
    #: must never be replayed for an untraced request (or vice versa).
    trace: Tuple[str, ...] = ()

    # ------------------------------------------------------------- display
    @property
    def queueing(self) -> str:
        return dict(self.params).get("queueing", "fifo")

    @property
    def balancer_label(self) -> str:
        balancer = dict(self.params).get("balancer", "-")
        if isinstance(balancer, dict):
            return str(balancer.get("name", "custom"))
        return str(balancer)

    def label(self) -> str:
        """Compact human-readable identity for progress lines and errors."""
        extras = []
        if self.queueing != "fifo":
            extras.append(self.queueing)
        if self.balancer_label not in ("-", "random"):
            extras.append(self.balancer_label)
        suffix = f" {'/'.join(extras)}" if extras else ""
        return f"{self.app}@{self.machine} P={self.num_pes}{suffix}"

    # ------------------------------------------------------------- hashing
    def canonical(self) -> Tuple[Any, ...]:
        """Stable, hashable projection of the full configuration."""
        base = (
            "run-v1",
            self.app,
            self.machine,
            int(self.num_pes),
            int(self.seed),
            tuple((k, canonical_value(v)) for k, v in self.params),
            tuple((k, canonical_value(v)) for k, v in self.machine_scaled),
        )
        # Untraced descriptors keep the historical "run-v1" shape so the
        # existing cache population stays valid.
        if self.trace:
            return base + (("@trace", tuple(self.trace)),)
        return base

    def key(self, fingerprint: str = "") -> str:
        """Content-addressed cache key: descriptor plus code fingerprint."""
        return stable_digest((fingerprint, self.canonical()))
