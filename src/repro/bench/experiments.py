"""The experiment registry: one function per reproduced table/figure.

Experiment ids follow DESIGN.md §4 (T1–T9, F1–F3).  Every function returns
an :class:`ExperimentResult` whose ``text`` is the printable table(s)/series
and whose ``data`` holds the raw numbers for tests and EXPERIMENTS.md.

Sizes here are the "paper scale" defaults; the pytest-benchmark drivers
under ``benchmarks/`` run reduced sizes via the ``scale='quick'`` knob so
the whole suite stays CI-friendly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

from repro.apps import TreeParams
from repro.bench.harness import (
    APPS,
    describe,
    measure,
    measure_many,
    speedup_sweep,
    sweep_from_rows,
)
from repro.bench.tables import format_series, format_table
from repro.faults import FaultConfig
from repro.util.errors import ConfigurationError

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment"]


@dataclass
class ExperimentResult:
    exp_id: str
    title: str
    text: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"== {self.exp_id}: {self.title} ==\n{self.text}"


# --------------------------------------------------------------------- scales
def _suite(scale: str) -> List[str]:
    if scale == "quick":
        return ["queens", "fib", "primes", "jacobi"]
    return ["queens", "fib", "primes", "tsp", "jacobi", "tree",
            "puzzle", "samplesort", "md"]


def _sizes(scale: str) -> Dict[str, Dict[str, Any]]:
    """Per-app parameter overrides by scale."""
    if scale == "quick":
        return {
            "queens": {"n": 7, "grainsize": 3},
            "fib": {"n": 15, "threshold": 8},
            "primes": {"limit": 4000, "chunks": 32},
            "tsp": {"n": 8, "grain": 4},
            "knapsack": {"n": 18, "grain": 9},
            "jacobi": {"n": 16, "blocks": 4, "iterations": 4},
            "matmul": {"n": 32, "g": 4},
            "tree": {
                "params": TreeParams(seed=11, max_depth=10, max_fanout=5,
                                     branch_bias=0.96, node_work=150.0)
            },
            "histogram": {"items": 96, "workers": 8},
            "puzzle": {"scramble": 16, "instance_seed": 1, "split": 3},
            "sor": {"n": 16, "blocks": 4, "tol": 1e-2, "max_iters": 100},
            "samplesort": {"n": 1024, "workers": 8},
            "lu": {"n": 32, "blocks": 8},
        }
    return {name: {} for name in APPS}


def _speedup_table(
    machine: str,
    pes: Sequence[int],
    scale: str,
    apps: Sequence[str] | None = None,
    sizes: Dict[str, Dict[str, Any]] | None = None,
    label: str = "",
) -> ExperimentResult:
    sizes = _sizes(scale) if sizes is None else sizes
    apps = list(apps) if apps is not None else _suite(scale)
    # One batch across every (app, P) cell: all runs are independent, so a
    # parallel executor overlaps the whole table.
    descs = [
        describe(app, machine, p, **sizes.get(app, {}))
        for app in apps
        for p in pes
    ]
    all_rows = measure_many(descs, label=label or f"speedups@{machine}")
    headers = ["program", "T1 (ms)"] + [f"S(P={p})" for p in pes[1:]]
    rows = []
    data: Dict[str, Any] = {"machine": machine, "pes": list(pes), "apps": {}}
    for idx, app in enumerate(apps):
        chunk = all_rows[idx * len(pes):(idx + 1) * len(pes)]
        sweep = sweep_from_rows(app, machine, pes, chunk)
        assert sweep.consistent(), f"{app} answers diverged across P on {machine}"
        rows.append([app, sweep.t1 * 1e3] + [round(s, 2) for s in sweep.speedups[1:]])
        data["apps"][app] = {
            "times": sweep.times,
            "speedups": sweep.speedups,
            "answer": sweep.answers[0],
        }
    text = format_table(
        headers, rows, title=f"Speedup on {machine} (virtual time, T1 = 1-PE run)"
    )
    return ExperimentResult("", f"speedups on {machine}", text, data)


# ------------------------------------------------------------------------ T1
def exp_t1(scale: str = "paper") -> ExperimentResult:
    """Benchmark-suite characteristics (1 PE, ideal machine)."""
    sizes = _sizes(scale)
    apps = _suite(scale) + (
        ["knapsack", "matmul", "histogram", "sor", "lu"]
        if scale != "quick" else []
    )
    headers = ["program", "work (units)", "app msgs", "grain (units/msg)",
               "bytes sent", "T1 ideal (ms)"]
    rows = []
    data = {}
    descs = [describe(app, "ideal", 1, **sizes.get(app, {})) for app in apps]
    for app, row in zip(apps, measure_many(descs, label="t1")):
        stats = row.stats
        msgs = max(1, stats.total_msgs_executed)
        rows.append(
            [
                app,
                round(stats.total_charged),
                stats.total_msgs_executed,
                round(stats.total_charged / msgs, 1),
                stats.total_bytes_sent,
                row.vtime_ms,
            ]
        )
        data[app] = {
            "work": stats.total_charged,
            "msgs": stats.total_msgs_executed,
            "bytes": stats.total_bytes_sent,
            "t1": row.vtime,
        }
    return ExperimentResult(
        "T1",
        "benchmark suite characteristics",
        format_table(headers, rows, title="Suite characteristics (P=1, ideal machine)"),
        data,
    )


# --------------------------------------------------------------------- T2-T4
def exp_t2(scale: str = "paper") -> ExperimentResult:
    """Speedups on the shared-memory (Sequent Symmetry class) machine."""
    pes = [1, 2, 4, 8] if scale == "quick" else [1, 2, 4, 8, 16]
    res = _speedup_table("symmetry", pes, scale)
    res.exp_id, res.title = "T2", "speedups, shared-memory bus machine"
    return res


def exp_t3(scale: str = "paper") -> ExperimentResult:
    """Speedups on the Intel iPSC/2-class hypercube."""
    pes = [1, 4, 16] if scale == "quick" else [1, 4, 16, 64]
    res = _speedup_table("ipsc2", pes, scale)
    res.exp_id, res.title = "T3", "speedups, iPSC/2-class hypercube"
    return res


def exp_t4(scale: str = "paper") -> ExperimentResult:
    """Large-P speedups on the NCUBE-class hypercube (scalable programs)."""
    if scale == "quick":
        pes, apps = [1, 8, 32], ["queens", "tree"]
    else:
        pes, apps = [1, 16, 64, 256], ["queens", "tree"]
    sizes = _sizes(scale)
    if scale != "quick":
        # Larger instances so 256 PEs have work to share.
        sizes = dict(sizes)
        sizes["queens"] = {"n": 9, "grainsize": 4}
        sizes["tree"] = {
            "params": TreeParams(seed=42, max_depth=14, max_fanout=5,
                                 branch_bias=0.99, node_work=200.0)
        }
    res = _speedup_table("ncube2", pes, scale, apps=apps, sizes=sizes,
                         label="t4")
    data = {"machine": "ncube2", "pes": pes,
            "apps": {app: {"times": d["times"], "speedups": d["speedups"]}
                     for app, d in res.data["apps"].items()}}
    headers = ["program", "T1 (ms)"] + [f"S(P={p})" for p in pes[1:]]
    rows = [
        [app, d["times"][0] * 1e3] + [round(s, 2) for s in d["speedups"][1:]]
        for app, d in data["apps"].items()
    ]
    return ExperimentResult(
        "T4",
        "large-P speedups, NCUBE-class hypercube",
        format_table(headers, rows, title="Speedup on ncube2"),
        data,
    )


# ------------------------------------------------------------------------ T5
def exp_t5(scale: str = "paper") -> ExperimentResult:
    """Load-balancing strategy comparison on the unbalanced tree."""
    strategies = ["local", "random", "roundrobin", "central", "token",
                  "acwn", "gradient"]
    pes = 8 if scale == "quick" else 16
    sizes = _sizes(scale)
    headers = ["strategy", "time (ms)", "mean util %", "imbalance",
               "max gap (ms)", "pool hw", "remote seeds", "control msgs"]
    rows = []
    data: Dict[str, Any] = {}
    answers = set()
    descs = [
        describe("tree", "ipsc2", pes, balancer=strat, **sizes.get("tree", {}))
        for strat in strategies
    ]
    for strat, row in zip(strategies, measure_many(descs, label="t5")):
        st = row.stats
        answers.add(row.answer)
        rows.append(
            [
                strat,
                row.vtime_ms,
                round(st.mean_utilization * 100, 1),
                round(st.load_imbalance, 2),
                round(st.max_idle_gap * 1e3, 3),
                st.pool_high_water,
                st.lb_seeds_remote,
                st.lb_control_msgs,
            ]
        )
        data[strat] = {
            "time": row.vtime,
            "util": st.mean_utilization,
            "imbalance": st.load_imbalance,
            "idle_time": st.total_idle_time,
            "max_idle_gap": st.max_idle_gap,
            "pool_high_water": st.pool_high_water,
            "remote_seeds": st.lb_seeds_remote,
            "control": st.lb_control_msgs,
        }
    assert len(answers) == 1, "tree answer depends on balancer (bug)"
    return ExperimentResult(
        "T5",
        "dynamic load-balancing strategies",
        format_table(
            headers, rows,
            title=f"Unbalanced tree on ipsc2, P={pes} (same tree for all)",
        ),
        data,
    )


# ------------------------------------------------------------------------ T6
def exp_t6(scale: str = "paper") -> ExperimentResult:
    """Queueing strategies on speculative search (B&B anomalies)."""
    pes = 8 if scale == "quick" else 16
    sizes = _sizes(scale)
    headers = ["program", "queueing", "nodes expanded", "time (ms)", "best"]
    rows = []
    data: Dict[str, Any] = {}
    combos = [(app, strat) for app in ("tsp", "knapsack")
              for strat in ("fifo", "lifo", "prio")]
    descs = [
        describe(app, "ipsc2", pes, queueing=strat, **sizes.get(app, {}))
        for app, strat in combos
    ]
    for (app, strat), row in zip(combos, measure_many(descs, label="t6")):
        best, nodes = row.answer[0], row.answer[1]
        rows.append([app, strat, nodes, row.vtime_ms, best])
        data[(app, strat)] = {"nodes": nodes, "time": row.vtime, "best": best}
    return ExperimentResult(
        "T6",
        "queueing strategies and search anomalies",
        format_table(
            headers, rows,
            title=f"Branch & bound on ipsc2, P={pes} "
            "(node counts depend on pool order)",
        ),
        {str(k): v for k, v in data.items()},
    )


# ------------------------------------------------------------------------ T7
def exp_t7(scale: str = "paper") -> ExperimentResult:
    """Monotonic-variable propagation ablation (pruning bound sharing).

    Run in the regime where sharing matters most: FIFO (breadth-ish)
    expansion, a fine grain, and a deliberately loose initial incumbent —
    so containment of speculative work comes *only* from discovered tours
    travelling through the monotonic variable.
    """
    pes = 8 if scale == "quick" else 16
    if scale == "quick":
        tsp_params: Dict[str, Any] = {"n": 8, "grain": 2, "bound_slack": 1.5,
                                      "queueing": "fifo"}
    else:
        tsp_params = {"n": 10, "grain": 2, "bound_slack": 1.6,
                      "queueing": "fifo"}
    headers = ["propagation", "nodes expanded", "time (ms)",
               "bound msgs", "updates applied"]
    rows = []
    data: Dict[str, Any] = {}
    props = ("eager", "lazy", "off")
    descs = [
        describe("tsp", "ipsc2", pes, propagation=prop, **tsp_params)
        for prop in props
    ]
    for prop, row in zip(props, measure_many(descs, label="t7")):
        best, nodes, _ = row.answer
        st = row.stats
        rows.append([prop, nodes, row.vtime_ms, st.mono_updates_sent,
                     st.mono_updates_applied])
        data[prop] = {
            "nodes": nodes,
            "time": row.vtime,
            "msgs": st.mono_updates_sent,
            "best": best,
        }
    return ExperimentResult(
        "T7",
        "monotonic bound propagation ablation",
        format_table(
            headers, rows,
            title=f"TSP B&B on ipsc2, P={pes} (answer identical in all arms)",
        ),
        data,
    )


# ------------------------------------------------------------------------ T8
def exp_t8(scale: str = "paper") -> ExperimentResult:
    """Distributed-table throughput."""
    pes_list = [1, 2, 4, 8] if scale == "quick" else [1, 2, 4, 8, 16, 32]
    sizes = _sizes(scale)
    headers = ["P", "ops", "time (ms)", "ops/ms"]
    rows = []
    data: Dict[str, Any] = {}
    descs = [
        describe("histogram", "ipsc2", p, **sizes.get("histogram", {}))
        for p in pes_list
    ]
    for p, row in zip(pes_list, measure_many(descs, label="t8")):
        inserted, found, bad = row.answer
        assert bad == 0, "table round-trip mismatches"
        ops = inserted + found
        rows.append([p, ops, row.vtime_ms, round(ops / row.vtime_ms, 1)])
        data[p] = {"ops": ops, "time": row.vtime}
    return ExperimentResult(
        "T8",
        "distributed table throughput",
        format_table(headers, rows, title="Histogram workload on ipsc2"),
        data,
    )


# ------------------------------------------------------------------------ T9
def exp_t9(scale: str = "paper") -> ExperimentResult:
    """Quiescence-detection overhead and latency."""
    pes_list = [2, 8] if scale == "quick" else [2, 8, 32]
    sizes = _sizes(scale)
    headers = ["P", "QD waves", "system msgs", "app msgs",
               "work end (ms)", "detected (ms)", "latency (ms)"]
    rows = []
    data: Dict[str, Any] = {}
    descs = [
        describe("queens", "ipsc2", p, **sizes.get("queens", {}))
        for p in pes_list
    ]
    for p, row in zip(pes_list, measure_many(descs, label="t9")):
        st = row.stats
        work_end = row.qd_work_end or row.last_counted_exec_time
        detected = st.qd_detected_at or row.vtime
        rows.append(
            [
                p,
                st.qd_waves,
                st.total_system_executed,
                st.total_msgs_executed,
                work_end * 1e3,
                detected * 1e3,
                (detected - work_end) * 1e3,
            ]
        )
        data[p] = {
            "waves": st.qd_waves,
            "latency": detected - work_end,
            "system": st.total_system_executed,
        }
    return ExperimentResult(
        "T9",
        "quiescence detection overhead",
        format_table(headers, rows, title="N-queens on ipsc2"),
        data,
    )


# ----------------------------------------------------------------------- T10
def exp_t10(scale: str = "paper") -> ExperimentResult:
    """Heterogeneous workstation network: static vs dynamic placement.

    On a machine whose nodes differ 4x in speed, statically partitioned
    work runs at the pace of the slowest node; dynamic seed balancing
    lets fast nodes absorb more of the tree.  This is the portability
    scenario (networks of workstations) the Chare Kernel was built for.
    """
    pes = 8 if scale == "quick" else 16
    sizes = _sizes(scale)
    headers = ["placement", "time (ms)", "mean util %", "imbalance (busy)"]
    rows = []
    data: Dict[str, Any] = {}
    answers = set()
    configs = [
        ("roundrobin (static-ish)", "roundrobin"),
        ("random", "random"),
        ("token (stealing)", "token"),
        ("acwn (adaptive)", "acwn"),
    ]
    descs = [
        describe("tree", "hetero", pes, balancer=balancer,
                 **sizes.get("tree", {}))
        for _, balancer in configs
    ]
    for (label, balancer), row in zip(configs, measure_many(descs, label="t10")):
        st = row.stats
        answers.add(row.answer)
        rows.append([label, row.vtime_ms,
                     round(st.mean_utilization * 100, 1),
                     round(st.load_imbalance, 2)])
        data[balancer] = {"time": row.vtime, "util": st.mean_utilization}
    assert len(answers) == 1
    return ExperimentResult(
        "T10",
        "heterogeneous workstation network",
        format_table(
            headers, rows,
            title=f"Unbalanced tree on hetero (1x/1.5x/2x/4x node speeds), P={pes}",
        ),
        data,
    )


# ------------------------------------------------------------------------ F1
def exp_t11(scale: str = "paper") -> ExperimentResult:
    """Sparse-PE scale curve: the same problem on 10³–10⁶-PE machines.

    The sparse-kernel claim quantified: with O(active) per-PE state, the
    machine's rank count is free — a fixed fib/tree problem touches the
    same handful of ranks whether the machine has 10³ or 10⁶ PEs, and
    host cost tracks the touched set, not P.  ``tree`` additionally
    drives quiescence waves and an accumulator collect over the touched
    snapshot; ``fib`` terminates structurally.  Uses the cluster preset
    (fully connected, O(1) construction) with sparse startup.
    """
    pes_list = ([1_000, 10_000] if scale == "quick"
                else [1_000, 10_000, 100_000, 1_000_000])
    apps = ["fib", "tree"]
    sizes = _sizes("quick")  # fixed problem: the sweep scales P, not work
    descs = [
        describe(app, "cluster", p, sparse=True, **sizes.get(app, {}))
        for app in apps
        for p in pes_list
    ]
    all_rows = measure_many(descs, label="t11")
    headers = ["program", "P", "time (ms)", "executions", "touched PEs",
               "host (s)"]
    rows = []
    data: Dict[str, Any] = {"machine": "cluster", "pes": pes_list,
                            "apps": {}}
    for idx, app in enumerate(apps):
        chunk = all_rows[idx * len(pes_list):(idx + 1) * len(pes_list)]
        answers = {repr(r.answer) for r in chunk}
        assert len(answers) == 1, f"{app} answer depends on machine size"
        series = []
        for p, row in zip(pes_list, chunk):
            st = row.stats
            touched = len(st.pe_rows)
            if p >= 100_000:
                assert touched < p // 100, (
                    f"{app}@P={p} touched {touched} ranks — not O(active)")
            rows.append([app, p, row.vtime_ms,
                         st.total_msgs_executed + st.total_system_executed,
                         touched, round(row.host_seconds, 3)])
            series.append({
                "pes": p,
                "time": row.vtime,
                "executions": (st.total_msgs_executed
                               + st.total_system_executed),
                "touched": touched,
                "host_seconds": row.host_seconds,
            })
        data["apps"][app] = series
    return ExperimentResult(
        "T11",
        "sparse-PE machines: fixed work, P to 10\N{SUPERSCRIPT SIX}",
        format_table(
            headers, rows,
            title="Fixed problem on sparse cluster machines "
                  "(touched = materialized PE ranks)",
        ),
        data,
    )


def exp_f1(scale: str = "paper") -> ExperimentResult:
    """Speedup curves across machine classes (figure: one series per pair)."""
    if scale == "quick":
        pes, apps = [1, 2, 4, 8], ["queens", "jacobi"]
    else:
        pes, apps = [1, 2, 4, 8, 16, 32], ["queens", "jacobi", "tree"]
    sizes = _sizes(scale)
    lines = ["Speedup vs P (series per app x machine):"]
    data: Dict[str, Any] = {}
    pairs = [(machine, app) for machine in ("symmetry", "ipsc2", "ncube2")
             for app in apps]
    descs = [
        describe(app, machine, p, **sizes.get(app, {}))
        for machine, app in pairs
        for p in pes
    ]
    all_rows = measure_many(descs, label="f1")
    for idx, (machine, app) in enumerate(pairs):
        chunk = all_rows[idx * len(pes):(idx + 1) * len(pes)]
        sweep = sweep_from_rows(app, machine, pes, chunk)
        lines.append(format_series(f"{app}@{machine}", pes, sweep.speedups))
        data[f"{app}@{machine}"] = sweep.speedups
    from repro.bench.figures import render_chart

    chart = render_chart(
        {name: list(zip(pes, s)) for name, s in data.items()},
        title="speedup vs P", x_label="P", y_label="speedup",
    )
    lines.append("")
    lines.append(chart)
    return ExperimentResult("F1", "speedup curves across machines",
                            "\n".join(lines), data)


# ------------------------------------------------------------------------ F2
def exp_f2(scale: str = "paper") -> ExperimentResult:
    """Grain size vs efficiency (queens grainsize, fib threshold)."""
    p = 8 if scale == "quick" else 16
    n = 7 if scale == "quick" else 8
    lines = []
    data: Dict[str, Any] = {"queens": {}, "fib": {}}
    grains = [1, 2, 3, 4, 5]
    thresholds = [4, 6, 8, 10] if scale == "quick" else [5, 7, 9, 11, 13]
    fn = 15 if scale == "quick" else 18
    # Every (grain, P) pair is independent; submit the whole figure at once.
    descs = []
    for g in grains:
        descs.append(describe("queens", "ipsc2", 1, n=n, grainsize=g))
        descs.append(describe("queens", "ipsc2", p, n=n, grainsize=g))
    for th in thresholds:
        descs.append(describe("fib", "ipsc2", 1, n=fn, threshold=th))
        descs.append(describe("fib", "ipsc2", p, n=fn, threshold=th))
    rows = iter(measure_many(descs, label="f2"))
    xs, ys = [], []
    for g in grains:
        t1, tp = next(rows).vtime, next(rows).vtime
        eff = t1 / tp / p
        xs.append(g)
        ys.append(round(eff, 3))
        data["queens"][g] = eff
    lines.append(format_series(f"queens(n={n}) efficiency vs grainsize", xs, ys))
    xs, ys = [], []
    for th in thresholds:
        t1, tp = next(rows).vtime, next(rows).vtime
        eff = t1 / tp / p
        xs.append(th)
        ys.append(round(eff, 3))
        data["fib"][th] = eff
    lines.append(format_series(f"fib(n={fn}) efficiency vs threshold", xs, ys))
    return ExperimentResult(
        "F2", f"grain size vs efficiency (P={p}, ipsc2)", "\n".join(lines), data
    )


# ------------------------------------------------------------------------ F3
def exp_f3(scale: str = "paper") -> ExperimentResult:
    """Per-PE utilization profile under each balancer (load-imbalance figure)."""
    pes = 8 if scale == "quick" else 16
    sizes = _sizes(scale)
    lines = [f"Per-PE utilization %, tree on ipsc2 P={pes}:"]
    data: Dict[str, Any] = {}
    strategies = ("local", "random", "central", "token", "acwn", "gradient")
    descs = [
        describe("tree", "ipsc2", pes, balancer=strat, **sizes.get("tree", {}))
        for strat in strategies
    ]
    for strat, row in zip(strategies, measure_many(descs, label="f3")):
        utils = [round(r.utilization * 100, 1) for r in row.stats.pe_rows]
        lines.append(format_series(strat, list(range(pes)), utils))
        data[strat] = utils
    return ExperimentResult("F3", "per-PE utilization by balancer",
                            "\n".join(lines), data)


# ------------------------------------------------------------------------ R1
def exp_r1(scale: str = "paper") -> ExperimentResult:
    """Resilience: completion time vs message-drop rate (repro.faults).

    The message-driven model's robustness claim: because no chare blocks
    waiting for a specific message, an unreliable network costs latency,
    not correctness.  Counted messages ride the kernel's ack/timeout/retry
    protocol with idempotent receive, so every run must produce the exact
    fault-free answer and quiescence detection must still terminate —
    completion time should degrade gracefully as the drop rate climbs.
    """
    pes = 8 if scale == "quick" else 16
    sizes = _sizes(scale)
    drop_rates = [0.0, 0.02, 0.05, 0.10, 0.15]
    headers = ["program", "drop %", "time (ms)", "slowdown", "retries",
               "dropped", "deduped", "QD waves"]
    rows = []
    data: Dict[str, Any] = {"machine": "ncube2", "pes": pes,
                            "drop_rates": drop_rates, "apps": {}}
    combos = [(app, rate) for app in ("fib", "queens") for rate in drop_rates]
    descs = []
    for app, rate in combos:
        kwargs = dict(sizes.get(app, {}))
        if rate > 0.0:
            kwargs["faults"] = FaultConfig(drop_prob=rate)
        descs.append(describe(app, "ncube2", pes, **kwargs))
    all_rows = dict(zip(combos, measure_many(descs, label="r1")))
    for app in ("fib", "queens"):
        base_time = None
        base_answer = None
        series = []
        for rate in drop_rates:
            row = all_rows[(app, rate)]
            st = row.stats
            assert not row.truncated, (
                f"{app} hung at drop rate {rate} (run truncated)")
            if base_time is None:
                base_time, base_answer = row.vtime, row.answer
            assert row.answer == base_answer, (
                f"{app} answer corrupted at drop rate {rate}: "
                f"{row.answer!r} != {base_answer!r}")
            if st.qd_waves:
                assert st.qd_detected_at is not None, (
                    f"{app} QD failed to terminate at drop rate {rate}")
            slowdown = row.vtime / base_time if base_time > 0 else 0.0
            rows.append([app, round(rate * 100, 1), row.vtime_ms,
                         round(slowdown, 2), st.retries, st.msgs_dropped,
                         st.dups_suppressed, st.qd_waves])
            series.append({
                "drop": rate,
                "time": row.vtime,
                "slowdown": slowdown,
                "retries": st.retries,
                "dropped": st.msgs_dropped,
                "deduped": st.dups_suppressed,
                "qd_waves": st.qd_waves,
                "answer_ok": True,
            })
        data["apps"][app] = series
    return ExperimentResult(
        "R1",
        "resilience under message drops",
        format_table(
            headers, rows,
            title=f"Completion time vs drop rate on ncube2, P={pes} "
            "(answers identical to fault-free in every run)",
        ),
        data,
    )


# ------------------------------------------------------------------------ R2
def exp_r2(scale: str = "paper") -> ExperimentResult:
    """Resilience: latency faults — delay spikes, jitter, dups, stalls.

    The non-loss fault family: nothing is retransmitted, so the only
    effect is perturbed timing (plus dedup work for duplicates).  Answers
    must match the fault-free run at every severity.
    """
    pes = 8 if scale == "quick" else 16
    sizes = _sizes(scale)
    levels = [
        ("none", None),
        ("light", FaultConfig(delay_prob=0.02, jitter=10e-6, dup_prob=0.01)),
        ("moderate", FaultConfig(delay_prob=0.08, jitter=30e-6, dup_prob=0.04,
                                 stall_prob=0.005)),
        ("heavy", FaultConfig(delay_prob=0.20, jitter=80e-6, dup_prob=0.10,
                              stall_prob=0.02, slow_pes=(1,),
                              slow_factor=2.0)),
    ]
    headers = ["program", "severity", "time (ms)", "slowdown", "delayed",
               "dup'd", "deduped", "stalls"]
    rows = []
    data: Dict[str, Any] = {"machine": "ncube2", "pes": pes, "apps": {}}
    combos = [(app, label) for app in ("fib", "queens") for label, _ in levels]
    cfg_by_label = dict(levels)
    descs = []
    for app, label in combos:
        kwargs = dict(sizes.get(app, {}))
        if cfg_by_label[label] is not None:
            kwargs["faults"] = cfg_by_label[label]
        descs.append(describe(app, "ncube2", pes, **kwargs))
    all_rows = dict(zip(combos, measure_many(descs, label="r2")))
    for app in ("fib", "queens"):
        base_time = None
        base_answer = None
        series = []
        for label, cfg in levels:
            row = all_rows[(app, label)]
            st = row.stats
            assert not row.truncated, f"{app} hung at severity {label}"
            if base_time is None:
                base_time, base_answer = row.vtime, row.answer
            assert row.answer == base_answer, (
                f"{app} answer corrupted at severity {label}")
            slowdown = row.vtime / base_time if base_time > 0 else 0.0
            rows.append([app, label, row.vtime_ms, round(slowdown, 2),
                         st.msgs_delayed, st.msgs_duplicated,
                         st.dups_suppressed, st.stalls])
            series.append({
                "severity": label,
                "time": row.vtime,
                "slowdown": slowdown,
                "delayed": st.msgs_delayed,
                "duplicated": st.msgs_duplicated,
                "deduped": st.dups_suppressed,
                "stalls": st.stalls,
            })
        data["apps"][app] = series
    return ExperimentResult(
        "R2",
        "resilience under latency faults",
        format_table(
            headers, rows,
            title=f"Delay/jitter/dup/stall severities on ncube2, P={pes}",
        ),
        data,
    )


def _ablation(name: str) -> Callable[..., ExperimentResult]:
    def runner(scale: str = "paper") -> ExperimentResult:
        from repro.bench import ablations

        return getattr(ablations, name)(scale=scale)

    return runner


def _serving(name: str) -> Callable[..., ExperimentResult]:
    def runner(scale: str = "paper") -> ExperimentResult:
        from repro.bench import serving

        return getattr(serving, name)(scale=scale)

    return runner


EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "a1": _ablation("exp_a1"),
    "a2": _ablation("exp_a2"),
    "a3": _ablation("exp_a3"),
    "a4": _ablation("exp_a4"),
    "a5": _ablation("exp_a5"),
    "t1": exp_t1,
    "t2": exp_t2,
    "t3": exp_t3,
    "t4": exp_t4,
    "t5": exp_t5,
    "t6": exp_t6,
    "t7": exp_t7,
    "t8": exp_t8,
    "t9": exp_t9,
    "t10": exp_t10,
    "t11": exp_t11,
    "f1": exp_f1,
    "f2": exp_f2,
    "f3": exp_f3,
    "r1": exp_r1,
    "r2": exp_r2,
    "s1": _serving("exp_s1"),
    "s2": _serving("exp_s2"),
    "s3": _serving("exp_s3"),
    "s4": _serving("exp_s4"),
    "s5": _serving("exp_s5"),
    "s6": _serving("exp_s6"),
}


def run_experiment(exp_id: str, scale: str = "paper") -> ExperimentResult:
    """Run one experiment by id (``t1`` … ``f3``)."""
    try:
        fn = EXPERIMENTS[exp_id.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {exp_id!r}; options: {sorted(EXPERIMENTS)}"
        ) from None
    return fn(scale=scale)
