"""ASCII figure rendering for the F-series experiments.

The paper's figures are speedup/efficiency curves; in a terminal-first
reproduction they render as character plots.  :func:`render_chart` draws
multiple series on one set of axes with automatic scaling and a legend —
enough to *see* the crossovers the tables list.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

__all__ = ["render_chart"]

_MARKS = "ox*+#@%&"


def render_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Plot named (x, y) series as an ASCII chart with a legend.

    Points from different series landing on one cell show the later
    series' mark.  Axes are linear and auto-scaled over all points.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(empty chart)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> Tuple[int, int]:
        cx = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        cy = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        return (height - 1 - cy), cx

    for idx, (name, pts) in enumerate(series.items()):
        mark = _MARKS[idx % len(_MARKS)]
        for x, y in pts:
            r, c = cell(x, y)
            grid[r][c] = mark

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:>10.2f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:>10.2f} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + " └" + "─" * width)
    lines.append(
        " " * 12 + f"{x_lo:<.6g}" + " " * max(1, width - 16) + f"{x_hi:>.6g}"
    )
    lines.append(f"  ({x_label} vs {y_label})")
    for idx, name in enumerate(series):
        lines.append(f"    {_MARKS[idx % len(_MARKS)]} {name}")
    return "\n".join(lines)
