"""Measurement harness.

Wraps the per-app ``run_*`` drivers behind a uniform registry so the
experiment modules can sweep PEs, machines, balancers and queueing
strategies without app-specific code.  All measurements are **virtual
time** from the deterministic simulator; host time is recorded only as a
diagnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.apps import (
    MdParams,
    TreeParams,
    run_md,
    run_fib,
    run_histogram,
    run_jacobi,
    run_lu,
    run_knapsack,
    run_matmul,
    run_nqueens,
    run_primes,
    run_puzzle,
    run_samplesort,
    run_sor,
    run_tree,
    run_tsp,
)
from repro.core.kernel import RunResult
from repro.machine.presets import make_machine
from repro.util.errors import ConfigurationError

__all__ = ["AppSpec", "APPS", "measure", "speedup_sweep", "SweepResult"]


@dataclass(frozen=True)
class AppSpec:
    """One benchmark program plus its default 'paper scale' parameters."""

    name: str
    runner: Callable[..., Tuple[Any, RunResult]]
    defaults: Dict[str, Any]
    #: Which strategies make sense: apps with pinned placement ignore balancers.
    uses_balancer: bool = True
    #: Projection of the answer that must be invariant across P/strategies.
    #: Speculative searches (B&B) legitimately expand different node counts
    #: in different schedules; only the optimum is checked.
    canon: Optional[Callable[[Any], Any]] = None


APPS: Dict[str, AppSpec] = {
    "queens": AppSpec("queens", run_nqueens, {"n": 8, "grainsize": 3}),
    "fib": AppSpec("fib", run_fib, {"n": 18, "threshold": 9}),
    "primes": AppSpec("primes", run_primes, {"limit": 6000, "chunks": 64}),
    "tsp": AppSpec("tsp", run_tsp, {"n": 11, "grain": 5, "queueing": "prio"},
                   canon=lambda a: a[0]),
    "knapsack": AppSpec("knapsack", run_knapsack, {"n": 22, "grain": 11,
                                                   "queueing": "prio"},
                        canon=lambda a: a[0]),
    "jacobi": AppSpec(
        "jacobi", run_jacobi, {"n": 32, "blocks": 4, "iterations": 8},
        uses_balancer=False,
    ),
    "matmul": AppSpec("matmul", run_matmul, {"n": 48, "g": 4}),
    "tree": AppSpec(
        "tree",
        run_tree,
        {"params": TreeParams(seed=7, max_depth=12, max_fanout=6,
                              branch_bias=0.98, node_work=150.0)},
    ),
    "histogram": AppSpec("histogram", run_histogram, {"items": 256, "workers": 16}),
    "puzzle": AppSpec(
        "puzzle",
        run_puzzle,
        {"scramble": 50, "instance_seed": 3, "split": 8, "queueing": "prio"},
        canon=lambda a: (a[0], a[1]),  # node counts vary with schedule
    ),
    "sor": AppSpec(
        "sor", run_sor, {"n": 32, "blocks": 4, "tol": 1e-2, "max_iters": 200},
        uses_balancer=False,
    ),
    "samplesort": AppSpec(
        "samplesort", run_samplesort, {"n": 4096, "workers": 16},
        canon=lambda a: ("ok",),  # validated in-app against numpy elsewhere
    ),
    "md": AppSpec(
        "md",
        run_md,
        {"params": MdParams(cells=4, n_particles=64, steps=10, seed=1)},
        uses_balancer=False,
    ),
    "lu": AppSpec("lu", run_lu, {"n": 64, "blocks": 16}, uses_balancer=False),
}


@dataclass
class MeasureRow:
    """One (app, machine, P, strategies) measurement."""

    app: str
    machine: str
    num_pes: int
    queueing: str
    balancer: str
    vtime: float
    answer: Any
    result: RunResult = field(repr=False)

    @property
    def vtime_ms(self) -> float:
        return self.vtime * 1e3


def measure(
    app: str,
    machine_name: str,
    num_pes: int,
    *,
    queueing: Optional[str] = None,
    balancer: str = "random",
    seed: int = 0,
    **overrides: Any,
) -> MeasureRow:
    """Run one configuration and return its measurement row."""
    try:
        spec = APPS[app]
    except KeyError:
        raise ConfigurationError(
            f"unknown app {app!r}; options: {sorted(APPS)}"
        ) from None
    params = dict(spec.defaults)
    params.update(overrides)
    if queueing is not None:
        params["queueing"] = queueing
    params.setdefault("queueing", "fifo")
    params.setdefault("balancer", balancer)
    machine = make_machine(machine_name, num_pes)
    answer, result = spec.runner(machine, seed=seed, **params)
    return MeasureRow(
        app=app,
        machine=machine_name,
        num_pes=num_pes,
        queueing=params.get("queueing", "fifo"),
        balancer=params.get("balancer", "-"),
        vtime=result.time,
        answer=answer,
        result=result,
    )


@dataclass
class SweepResult:
    """A PE sweep of one app on one machine: the unit of a speedup table."""

    app: str
    machine: str
    pes: List[int]
    times: List[float]          # virtual seconds per P
    answers: List[Any]
    rows: List[MeasureRow]

    @property
    def t1(self) -> float:
        return self.times[0]

    @property
    def speedups(self) -> List[float]:
        return [self.t1 / t if t > 0 else float("nan") for t in self.times]

    @property
    def efficiencies(self) -> List[float]:
        return [s / p for s, p in zip(self.speedups, self.pes)]

    def consistent(self) -> bool:
        """True if every P produced the same answer (determinism check)."""
        import numpy as np

        def canon(a):
            if isinstance(a, tuple):
                return tuple(canon(x) for x in a)
            if isinstance(a, np.ndarray):
                return a.tobytes()
            return a

        first = canon(self.answers[0])
        return all(canon(a) == first for a in self.answers[1:])


def speedup_sweep(
    app: str,
    machine_name: str,
    pes: Sequence[int],
    *,
    queueing: Optional[str] = None,
    balancer: str = "random",
    seed: int = 0,
    **overrides: Any,
) -> SweepResult:
    """Measure an app across PE counts; first entry is the T1 baseline.

    Note: speedups for speculative-search apps (tsp, knapsack) compare the
    *same-strategy* one-PE run, as the paper does — search anomalies (super-
    or sub-linear speedup) are part of the phenomenon, not noise.
    """
    rows = [
        measure(
            app,
            machine_name,
            p,
            queueing=queueing,
            balancer=balancer,
            seed=seed,
            **overrides,
        )
        for p in pes
    ]
    canon = APPS[app].canon or (lambda a: a)
    return SweepResult(
        app=app,
        machine=machine_name,
        pes=list(pes),
        times=[r.vtime for r in rows],
        answers=[_strip_arrays(canon(r.answer)) for r in rows],
        rows=rows,
    )


def _strip_arrays(answer: Any) -> Any:
    """Keep answers comparable/storable (ndarray -> checksum)."""
    import numpy as np

    if isinstance(answer, tuple):
        return tuple(_strip_arrays(a) for a in answer)
    if isinstance(answer, np.ndarray):
        return ("ndarray", answer.shape, float(np.sum(answer)))
    return answer
