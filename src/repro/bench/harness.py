"""Measurement harness.

Wraps the per-app ``run_*`` drivers behind a uniform registry so the
experiment modules can sweep PEs, machines, balancers and queueing
strategies without app-specific code.  All measurements are **virtual
time** from the deterministic simulator; host time is recorded only as a
diagnostic.

Measurements are expressed as declarative
:class:`~repro.bench.descriptors.RunDescriptor`\\ s (:func:`describe`)
and executed through the ambient sweep executor
(:mod:`repro.bench.parallel`), which adds result caching and process-pool
parallelism without changing any virtual-time result.  :func:`measure`
is the one-run convenience wrapper; experiments batch descriptors
through :func:`measure_many` so independent runs can overlap.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.apps import (
    MdParams,
    TreeParams,
    run_md,
    run_fib,
    run_histogram,
    run_jacobi,
    run_lu,
    run_knapsack,
    run_matmul,
    run_nqueens,
    run_primes,
    run_puzzle,
    run_samplesort,
    run_serving,
    run_sor,
    run_tree,
    run_tsp,
)
from repro.bench.descriptors import RunDescriptor
from repro.workloads.arrivals import Poisson, ServiceSpec
from repro.core.kernel import RunResult
from repro.machine.presets import make_machine
from repro.util.errors import ConfigurationError

__all__ = ["AppSpec", "APPS", "describe", "measure", "measure_many",
           "execute_descriptor", "speedup_sweep", "sweep_from_rows",
           "SweepResult", "use_tracing", "current_tracing",
           "use_backend", "current_backend",
           "use_telemetry", "current_telemetry"]


@dataclass(frozen=True)
class AppSpec:
    """One benchmark program plus its default 'paper scale' parameters."""

    name: str
    runner: Callable[..., Tuple[Any, RunResult]]
    defaults: Dict[str, Any]
    #: Which strategies make sense: apps with pinned placement ignore balancers.
    uses_balancer: bool = True
    #: Projection of the answer that must be invariant across P/strategies.
    #: Speculative searches (B&B) legitimately expand different node counts
    #: in different schedules; only the optimum is checked.
    canon: Optional[Callable[[Any], Any]] = None


APPS: Dict[str, AppSpec] = {
    "queens": AppSpec("queens", run_nqueens, {"n": 8, "grainsize": 3}),
    "fib": AppSpec("fib", run_fib, {"n": 18, "threshold": 9}),
    "primes": AppSpec("primes", run_primes, {"limit": 6000, "chunks": 64}),
    "tsp": AppSpec("tsp", run_tsp, {"n": 11, "grain": 5, "queueing": "prio"},
                   canon=lambda a: a[0]),
    "knapsack": AppSpec("knapsack", run_knapsack, {"n": 22, "grain": 11,
                                                   "queueing": "prio"},
                        canon=lambda a: a[0]),
    "jacobi": AppSpec(
        "jacobi", run_jacobi, {"n": 32, "blocks": 4, "iterations": 8},
        uses_balancer=False,
    ),
    "matmul": AppSpec("matmul", run_matmul, {"n": 48, "g": 4}),
    "tree": AppSpec(
        "tree",
        run_tree,
        {"params": TreeParams(seed=7, max_depth=12, max_fanout=6,
                              branch_bias=0.98, node_work=150.0)},
    ),
    "histogram": AppSpec("histogram", run_histogram, {"items": 256, "workers": 16}),
    "puzzle": AppSpec(
        "puzzle",
        run_puzzle,
        {"scramble": 50, "instance_seed": 3, "split": 8, "queueing": "prio"},
        canon=lambda a: (a[0], a[1]),  # node counts vary with schedule
    ),
    "sor": AppSpec(
        "sor", run_sor, {"n": 32, "blocks": 4, "tol": 1e-2, "max_iters": 200},
        uses_balancer=False,
    ),
    "samplesort": AppSpec(
        "samplesort", run_samplesort, {"n": 4096, "workers": 16},
        canon=lambda a: ("ok",),  # validated in-app against numpy elsewhere
    ),
    "md": AppSpec(
        "md",
        run_md,
        {"params": MdParams(cells=4, n_particles=64, steps=10, seed=1)},
        uses_balancer=False,
    ),
    "lu": AppSpec("lu", run_lu, {"n": 64, "blocks": 16}, uses_balancer=False),
    "serving": AppSpec(
        "serving",
        run_serving,
        {"arrivals": Poisson(rate=2000.0, count=160), "service": ServiceSpec()},
        # Latency depends on P and placement by design; only the offered
        # count is configuration-invariant.
        canon=lambda a: (a["offered"],),
    ),
}


# ------------------------------------------------------- ambient tracing
#: Event kinds every subsequently-described run should record, installed
#: by the bench CLI's ``--trace-events`` flag; () means tracing off.
_tracing: Tuple[str, ...] = ()


def current_tracing() -> Tuple[str, ...]:
    """Event kinds ambient ``describe()`` calls will request (() = off)."""
    return _tracing


@contextmanager
def use_tracing(kinds: Any):
    """Trace every run described in this block with the given event kinds.

    ``kinds`` accepts the same spellings as ``Kernel(trace_events=...)``:
    ``True``/``"all"``, an iterable of kind names, or a comma-joined
    string.  Tracing becomes part of each run's descriptor (and therefore
    of its cache key) — it never silently alters untraced measurements.
    """
    from repro.trace.events import normalize_kinds

    global _tracing
    previous = _tracing
    _tracing = normalize_kinds(kinds)
    try:
        yield _tracing
    finally:
        _tracing = previous


# ------------------------------------------------------- ambient backend
#: Engine backend every subsequently-described run should use, installed
#: by the bench CLI's ``--backend`` flag; "" means the default heap path.
_backend: str = ""


def current_backend() -> str:
    """Backend ambient ``describe()`` calls will request ("" = default)."""
    return _backend


@contextmanager
def use_backend(name: str):
    """Run every descriptor described in this block on the given backend.

    ``name`` is an engine backend (``"heap"`` or ``"batch"``); ``""``
    restores the default.  The backend becomes part of each run's
    descriptor (and therefore its cache key) whenever it differs from the
    default, so heap- and batch-backed rows never replay each other.
    """
    from repro.sim.backend import BACKENDS

    if name and name not in BACKENDS:
        raise ConfigurationError(
            f"unknown engine backend {name!r}; options: {sorted(BACKENDS)}"
        )
    global _backend
    previous = _backend
    _backend = name
    try:
        yield _backend
    finally:
        _backend = previous


# ----------------------------------------------------- ambient telemetry
#: Snapshot interval (virtual seconds) every subsequently-described run
#: should attach a telemetry plane with, installed by the bench CLI's
#: ``--metrics-*`` flags; ``None`` means telemetry off, ``0.0`` means a
#: final snapshot only.
_telemetry: Optional[float] = None


def current_telemetry() -> Optional[float]:
    """Telemetry interval ambient ``describe()`` calls will request
    (``None`` = off)."""
    return _telemetry


@contextmanager
def use_telemetry(interval: float = 0.0):
    """Attach a telemetry plane to every run described in this block.

    ``interval`` is the virtual-time snapshot period (``0.0`` = final
    snapshot only).  Telemetry becomes part of each run's descriptor (and
    therefore of its cache key) — untelemetered measurements never replay
    telemetered rows or vice versa.  The plane itself is inert on the
    simulated run: answers, virtual times and event counts are identical
    with it on or off.
    """
    interval = float(interval)
    if interval < 0.0:
        raise ConfigurationError(
            f"telemetry interval must be >= 0, got {interval}"
        )
    global _telemetry
    previous = _telemetry
    _telemetry = interval
    try:
        yield _telemetry
    finally:
        _telemetry = previous


@dataclass
class MeasureRow:
    """One (app, machine, P, strategies) measurement.

    The row is a *picklable projection* of the run: everything the
    experiment tables consume (virtual time, answer, aggregated stats,
    quiescence timings) travels across worker-process and cache
    boundaries.  ``result`` — the live :class:`RunResult` with the full
    kernel graph — is only populated for runs executed inline and is
    ``None`` for rows that came back from a pool worker or the cache.
    """

    app: str
    machine: str
    num_pes: int
    queueing: str
    balancer: str
    vtime: float
    answer: Any
    stats: Any = field(default=None, repr=False)       # TraceReport
    truncated: bool = False
    host_seconds: float = 0.0
    qd_work_end: Optional[float] = None
    last_counted_exec_time: float = 0.0
    result: Optional[RunResult] = field(default=None, repr=False)
    #: Structured-event payload ("repro-trace-v1" dict) when the run was
    #: described with tracing on; plain data, so it survives pool workers
    #: and the result cache.
    trace: Any = field(default=None, repr=False)
    #: Telemetry payload ("repro-metrics-v1" dict) when the run was
    #: described with metrics on; plain data like ``trace``, so it feeds
    #: the exporters/health reporter identically from workers and cache.
    telemetry: Any = field(default=None, repr=False)

    @property
    def vtime_ms(self) -> float:
        return self.vtime * 1e3


def describe(
    app: str,
    machine_name: str,
    num_pes: int,
    *,
    queueing: Optional[str] = None,
    balancer: Any = "random",
    seed: int = 0,
    machine_scaled: Optional[Dict[str, Any]] = None,
    trace: Any = None,
    backend: Optional[str] = None,
    metrics: Any = None,
    **overrides: Any,
) -> RunDescriptor:
    """Normalise one configuration into a declarative run descriptor.

    ``trace`` selects structured-event kinds for this run (same spellings
    as ``Kernel(trace_events=...)``); ``None`` inherits the ambient
    :func:`use_tracing` setting, ``()``/``""`` forces tracing off.

    ``backend`` selects the engine backend; ``None`` inherits the ambient
    :func:`use_backend` setting, ``""`` forces the default heap path.
    Non-default backends join ``params`` (hence the cache key); default
    descriptors keep the historical shape so existing cache entries and
    fixtures stay valid.

    ``metrics`` attaches a telemetry plane: a snapshot interval in virtual
    seconds (``0.0`` = final snapshot only).  ``None`` inherits the
    ambient :func:`use_telemetry` setting, ``False`` forces telemetry off.
    Like non-default backends, telemetry joins ``params`` only when
    enabled, preserving historical cache keys.
    """
    try:
        spec = APPS[app]
    except KeyError:
        raise ConfigurationError(
            f"unknown app {app!r}; options: {sorted(APPS)}"
        ) from None
    params = dict(spec.defaults)
    params.update(overrides)
    if queueing is not None:
        params["queueing"] = queueing
    params.setdefault("queueing", "fifo")
    params.setdefault("balancer", balancer)
    backend_name = _backend if backend is None else backend
    if backend_name and backend_name != "heap":
        params["backend"] = backend_name
    else:
        params.pop("backend", None)
    if metrics is None:
        metrics_interval = _telemetry
    elif metrics is False:
        metrics_interval = None
    else:
        metrics_interval = float(metrics)
        if metrics_interval < 0.0:
            raise ConfigurationError(
                f"telemetry interval must be >= 0, got {metrics_interval}"
            )
    if metrics_interval is not None:
        params["metrics"] = metrics_interval
    else:
        params.pop("metrics", None)
    if trace is None:
        trace_kinds = _tracing
    elif not trace:  # explicit off: (), "", False
        trace_kinds = ()
    else:
        from repro.trace.events import normalize_kinds

        trace_kinds = normalize_kinds(trace)
    return RunDescriptor(
        app=app,
        machine=machine_name,
        num_pes=num_pes,
        seed=seed,
        params=tuple(sorted(params.items(), key=lambda kv: kv[0])),
        machine_scaled=tuple(
            sorted((machine_scaled or {}).items(), key=lambda kv: kv[0])
        ),
        trace=trace_kinds,
    )


def execute_descriptor(desc: RunDescriptor) -> MeasureRow:
    """Actually simulate one descriptor (worker-side; no cache, no pool)."""
    spec = APPS[desc.app]
    params = dict(desc.params)
    balancer = params.get("balancer")
    if isinstance(balancer, dict):
        from repro.balance import make_balancer

        balancer_spec = dict(balancer)
        params["balancer"] = make_balancer(
            balancer_spec.pop("name"), **balancer_spec
        )
    machine = make_machine(desc.machine, desc.num_pes)
    if desc.machine_scaled:
        machine.params = machine.params.scaled(**dict(desc.machine_scaled))
    if desc.trace:
        # Forwarded to Kernel(trace_events=...) via the runner's
        # **kernel_kwargs passthrough (every registered app supports it).
        params["trace_events"] = list(desc.trace)
    metrics_interval = params.pop("metrics", None)
    tel = None
    if metrics_interval is not None:
        from repro.obs import Telemetry, TelemetryConfig

        tel = Telemetry(TelemetryConfig(interval=metrics_interval))
        # Same **kernel_kwargs passthrough as tracing: Kernel(telemetry=...).
        params["telemetry"] = tel
    answer, result = spec.runner(machine, seed=desc.seed, **params)
    kernel = result.kernel
    trace_payload = None
    if desc.trace and kernel is not None and kernel.events is not None:
        log = kernel.events
        trace_payload = {
            "format": "repro-trace-v1",
            "meta": {
                "app": desc.app,
                "machine": desc.machine,
                "num_pes": desc.num_pes,
                "seed": desc.seed,
                "queueing": desc.queueing,
                "balancer": desc.balancer_label,
                "total_time": result.time,
                "kinds": list(log.kinds),
            },
            "events": log.as_records(),
            "dropped": log.dropped,
        }
    telemetry_payload = None
    if tel is not None:
        telemetry_payload = tel.payload(meta={
            "app": desc.app,
            "machine": desc.machine,
            "num_pes": desc.num_pes,
            "seed": desc.seed,
            "queueing": desc.queueing,
            "balancer": desc.balancer_label,
            "total_time": result.time,
        })
    return MeasureRow(
        app=desc.app,
        machine=desc.machine,
        num_pes=desc.num_pes,
        queueing=desc.queueing,
        balancer=desc.balancer_label,
        vtime=result.time,
        answer=answer,
        stats=result.stats,
        truncated=result.truncated,
        host_seconds=result.host_seconds,
        qd_work_end=(None if kernel is None
                     else kernel.qd.work_end_at_detection),
        last_counted_exec_time=(0.0 if kernel is None
                                else kernel.last_counted_exec_time),
        result=result,
        trace=trace_payload,
        telemetry=telemetry_payload,
    )


def measure_many(descs: Sequence[RunDescriptor], label: str = "") -> List[MeasureRow]:
    """Execute a batch of descriptors through the ambient sweep executor."""
    from repro.bench.parallel import current_executor

    return current_executor().run_many(descs, label=label)


def measure(
    app: str,
    machine_name: str,
    num_pes: int,
    *,
    queueing: Optional[str] = None,
    balancer: Any = "random",
    seed: int = 0,
    **overrides: Any,
) -> MeasureRow:
    """Run one configuration and return its measurement row."""
    desc = describe(app, machine_name, num_pes, queueing=queueing,
                    balancer=balancer, seed=seed, **overrides)
    return measure_many([desc])[0]


@dataclass
class SweepResult:
    """A PE sweep of one app on one machine: the unit of a speedup table."""

    app: str
    machine: str
    pes: List[int]
    times: List[float]          # virtual seconds per P
    answers: List[Any]
    rows: List[MeasureRow]

    @property
    def t1(self) -> float:
        return self.times[0]

    @property
    def speedups(self) -> List[float]:
        return [self.t1 / t if t > 0 else float("nan") for t in self.times]

    @property
    def efficiencies(self) -> List[float]:
        return [s / p for s, p in zip(self.speedups, self.pes)]

    def consistent(self) -> bool:
        """True if every P produced the same answer (determinism check)."""
        import numpy as np

        def canon(a):
            if isinstance(a, tuple):
                return tuple(canon(x) for x in a)
            if isinstance(a, np.ndarray):
                return a.tobytes()
            return a

        first = canon(self.answers[0])
        return all(canon(a) == first for a in self.answers[1:])


def sweep_from_rows(
    app: str, machine_name: str, pes: Sequence[int], rows: Sequence[MeasureRow]
) -> SweepResult:
    """Assemble a :class:`SweepResult` from already-executed rows."""
    canon = APPS[app].canon or (lambda a: a)
    return SweepResult(
        app=app,
        machine=machine_name,
        pes=list(pes),
        times=[r.vtime for r in rows],
        answers=[_strip_arrays(canon(r.answer)) for r in rows],
        rows=list(rows),
    )


def speedup_sweep(
    app: str,
    machine_name: str,
    pes: Sequence[int],
    *,
    queueing: Optional[str] = None,
    balancer: str = "random",
    seed: int = 0,
    **overrides: Any,
) -> SweepResult:
    """Measure an app across PE counts; first entry is the T1 baseline.

    The per-P runs are submitted as one batch, so a parallel executor
    overlaps them.  Note: speedups for speculative-search apps (tsp,
    knapsack) compare the *same-strategy* one-PE run, as the paper does —
    search anomalies (super- or sub-linear speedup) are part of the
    phenomenon, not noise.
    """
    descs = [
        describe(
            app,
            machine_name,
            p,
            queueing=queueing,
            balancer=balancer,
            seed=seed,
            **overrides,
        )
        for p in pes
    ]
    rows = measure_many(descs, label=f"{app}@{machine_name}")
    return sweep_from_rows(app, machine_name, pes, rows)


def _strip_arrays(answer: Any) -> Any:
    """Keep answers comparable/storable (ndarray -> checksum)."""
    import numpy as np

    if isinstance(answer, tuple):
        return tuple(_strip_arrays(a) for a in answer)
    if isinstance(answer, np.ndarray):
        return ("ndarray", answer.shape, float(np.sum(answer)))
    return answer
