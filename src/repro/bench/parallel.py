"""Process-pool sweep executor for the experiment suite.

The experiment registry decomposes each table/figure into a batch of
independent :class:`~repro.bench.descriptors.RunDescriptor`\\ s and
submits them here.  The executor:

* replays every descriptor already present in the result cache,
* runs the misses either inline (``jobs=1`` — bit-for-bit the historical
  serial path, same process, same order) or on a pool of warm worker
  processes reused across batches,
* isolates per-run failures: a worker that raises reports the failing
  descriptor and the rest of the batch still completes, after which a
  single :class:`SweepRunError` names every casualty,
* emits progress/ETA events for the bench CLI.

Because every run is deterministic virtual time, the parallel schedule
cannot change any result — the determinism-guard tests assert the
``--jobs N`` tables are byte-identical to serial.

The module-level *current executor* (see :func:`use_executor`) is how the
existing ``measure()``/``speedup_sweep()`` APIs route through the pool
without threading an executor argument through every experiment: the
default is a plain serial executor, so library users and tests keep
today's behaviour unless a CLI (or test) installs a parallel one.
"""

from __future__ import annotations

import os
import time
import traceback
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.bench.cache import ResultCache
from repro.bench.descriptors import RunDescriptor

__all__ = ["SweepExecutor", "SweepRunError", "current_executor",
           "use_executor", "default_jobs"]

#: Per-run wall-clock budget (seconds) before the batch is declared stuck.
DEFAULT_TIMEOUT = 600.0


def default_jobs() -> int:
    return os.cpu_count() or 1


class SweepRunError(RuntimeError):
    """One or more descriptors failed; carries (descriptor, error) pairs."""

    def __init__(self, failures: Sequence[tuple]) -> None:
        self.failures = list(failures)
        lines = [f"{len(self.failures)} sweep run(s) failed:"]
        for desc, error in self.failures:
            label = desc.label() if isinstance(desc, RunDescriptor) else str(desc)
            lines.append(f"  - {label}: {error}")
        super().__init__("\n".join(lines))


def _run_descriptor_guarded(desc: RunDescriptor):
    """Worker-side entry point: execute one descriptor, never raise.

    Returns ``("ok", row)`` with the picklable projection (the live kernel
    is stripped), or ``("err", message, traceback)`` so the parent can
    report the failing descriptor without losing the rest of the batch.
    """
    try:
        from dataclasses import replace

        from repro.bench.harness import execute_descriptor

        row = execute_descriptor(desc)
        return ("ok", replace(row, result=None))
    except Exception as exc:
        return ("err", f"{type(exc).__name__}: {exc}", traceback.format_exc())


class SweepExecutor:
    """Executes descriptor batches with caching, parallelism and isolation.

    ``jobs=1`` never creates a pool: misses run inline via the exact same
    call path the harness used before this executor existed.  ``jobs>1``
    lazily creates one ``ProcessPoolExecutor`` and keeps its workers warm
    for every subsequent batch until :meth:`close`.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        timeout: float = DEFAULT_TIMEOUT,
        progress: Optional[Callable[[Dict[str, Any]], None]] = None,
        trace_out: Optional[str] = None,
        metrics_out: Optional[str] = None,
    ) -> None:
        self.jobs = max(1, int(jobs if jobs is not None else default_jobs()))
        self.cache = cache
        self.timeout = timeout
        self.progress = progress
        #: Directory for structured-event exports: every completed row that
        #: carries a trace payload is written there as a ``.run.json``
        #: (events + sampled metrics) plus a ``.perfetto.json`` twin.
        self.trace_out = trace_out
        #: Directory for telemetry exports: every completed row that
        #: carries a telemetry payload is written there as a
        #: ``.metrics.jsonl`` stream plus a ``.prom`` scrape twin, with a
        #: one-line run-health digest on stderr.
        self.metrics_out = metrics_out
        self._pool = None
        # Lifetime totals, for the CLI/CI summary.
        self.runs_executed = 0
        self.runs_cached = 0
        self.batches = 0
        self.wall_s = 0.0
        self.traces_written = 0
        self.metrics_written = 0

    # -------------------------------------------------------------- lifecycle
    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            self._pool = ProcessPoolExecutor(max_workers=self.jobs,
                                             mp_context=ctx)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- execution
    def run_one(self, desc: RunDescriptor, label: str = ""):
        return self.run_many([desc], label=label)[0]

    def run_many(self, descs: Sequence[RunDescriptor], label: str = "") -> List[Any]:
        """Execute a batch; results are returned in input order."""
        started = time.perf_counter()
        self.batches += 1
        rows: List[Any] = [None] * len(descs)
        pending: List[int] = []
        cached = 0
        for i, desc in enumerate(descs):
            row = self.cache.get(desc) if self.cache is not None else None
            if row is not None:
                rows[i] = row
                cached += 1
            else:
                pending.append(i)
        self.runs_cached += cached
        self._report(label, done=cached, total=len(descs), cached=cached,
                     eta_s=None, final=not pending)
        if pending:
            if self.jobs == 1 or len(pending) == 1:
                self._run_inline(descs, rows, pending, label, cached)
            else:
                self._run_pooled(descs, rows, pending, label, cached)
            self.runs_executed += len(pending)
        if self.trace_out is not None:
            self._write_traces(descs, rows)
        if self.metrics_out is not None:
            self._write_metrics(descs, rows)
        self.wall_s += time.perf_counter() - started
        return rows

    def _write_traces(self, descs, rows) -> None:
        """Export every traced row of the batch under ``trace_out``.

        Cached replays are exported too (their payload travels with the
        row), so re-running a traced sweep always regenerates its files.
        """
        import json
        import re

        os.makedirs(self.trace_out, exist_ok=True)
        for desc, row in zip(descs, rows):
            trace = getattr(row, "trace", None)
            if trace is None:
                continue
            from repro.metrics import sample_metrics
            from repro.trace.perfetto import write_perfetto

            doc = dict(trace)
            doc["metrics"] = sample_metrics(
                doc["events"],
                num_pes=doc["meta"].get("num_pes"),
                t_end=doc["meta"].get("total_time"),
            )
            stem = re.sub(r"[^A-Za-z0-9._-]+", "-", desc.label()).strip("-")
            stem = f"{stem}-{desc.key()[:8]}"
            run_path = os.path.join(self.trace_out, stem + ".run.json")
            with open(run_path, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)
                fh.write("\n")
            write_perfetto(
                os.path.join(self.trace_out, stem + ".perfetto.json"),
                doc["events"], meta=doc["meta"], metrics=doc["metrics"],
            )
            self.traces_written += 1

    def _write_metrics(self, descs, rows) -> None:
        """Export every telemetered row of the batch under ``metrics_out``.

        Like traces, cached replays export too — the payload is plain data
        riding on the row.  Each run gets the archival JSONL stream, a
        Prometheus text scrape, and one health line on stderr (the live
        watchdog view of how the run ended).
        """
        import re
        import sys

        from repro.obs import RunHealth, to_jsonl, to_prometheus

        os.makedirs(self.metrics_out, exist_ok=True)
        for desc, row in zip(descs, rows):
            payload = getattr(row, "telemetry", None)
            if payload is None:
                continue
            stem = re.sub(r"[^A-Za-z0-9._-]+", "-", desc.label()).strip("-")
            stem = f"{stem}-{desc.key()[:8]}"
            path = os.path.join(self.metrics_out, stem + ".metrics.jsonl")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(to_jsonl(payload))
            with open(os.path.join(self.metrics_out, stem + ".prom"),
                      "w", encoding="utf-8") as fh:
                fh.write(to_prometheus(payload))
            print(f"[{desc.label()}] {RunHealth(payload).format()}",
                  file=sys.stderr)
            self.metrics_written += 1

    def _run_inline(self, descs, rows, pending, label, cached) -> None:
        """The historical serial path: same process, same submission order."""
        from repro.bench.harness import execute_descriptor

        started = time.perf_counter()
        failures = []
        for n, i in enumerate(pending, start=1):
            try:
                row = execute_descriptor(descs[i])
            except Exception as exc:
                failures.append((descs[i], f"{type(exc).__name__}: {exc}"))
                continue
            rows[i] = row
            if self.cache is not None:
                self.cache.put(descs[i], row)
            elapsed = time.perf_counter() - started
            eta = elapsed / n * (len(pending) - n)
            self._report(label, done=cached + n, total=len(rows),
                         cached=cached, eta_s=eta, final=n == len(pending))
        if failures:
            raise SweepRunError(failures)

    def _run_pooled(self, descs, rows, pending, label, cached) -> None:
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        pool = self._ensure_pool()
        started = time.perf_counter()
        futures = {}
        try:
            for i in pending:
                futures[pool.submit(_run_descriptor_guarded, descs[i])] = i
        except BrokenProcessPool:
            self.close()
            raise SweepRunError(
                [(descs[i], "worker pool broke before submission")
                 for i in pending]
            ) from None
        failures = []
        done_count = 0
        remaining = set(futures)
        while remaining:
            finished, remaining = wait(remaining, timeout=self.timeout,
                                       return_when=FIRST_COMPLETED)
            if not finished:
                # Per-run budget exhausted with nothing completing: report
                # exactly which descriptors are stuck instead of hanging.
                stuck = [(descs[futures[f]],
                          f"no completion within {self.timeout:.0f}s")
                         for f in remaining]
                for f in remaining:
                    f.cancel()
                self.close()
                raise SweepRunError(failures + stuck)
            for future in finished:
                i = futures[future]
                try:
                    outcome = future.result()
                except BrokenProcessPool:
                    # A worker died hard (segfault/OOM): name the run it held.
                    self.close()
                    raise SweepRunError(
                        failures + [(descs[i], "worker process died")]
                    ) from None
                if outcome[0] == "ok":
                    rows[i] = outcome[1]
                    if self.cache is not None:
                        self.cache.put(descs[i], outcome[1])
                else:
                    failures.append((descs[i], outcome[1]))
                done_count += 1
                elapsed = time.perf_counter() - started
                rate = elapsed / done_count
                eta = rate * (len(pending) - done_count) / self.jobs
                self._report(label, done=cached + done_count, total=len(rows),
                             cached=cached, eta_s=eta,
                             final=done_count == len(pending))
        if failures:
            raise SweepRunError(failures)

    # -------------------------------------------------------------- reporting
    def _report(self, label, *, done, total, cached, eta_s, final) -> None:
        if self.progress is not None and total:
            self.progress({"label": label, "done": done, "total": total,
                           "cached": cached, "eta_s": eta_s, "final": final})

    def summary(self) -> Dict[str, Any]:
        out = {
            "jobs": self.jobs,
            "batches": self.batches,
            "runs_executed": self.runs_executed,
            "runs_cached": self.runs_cached,
            "wall_s": round(self.wall_s, 3),
        }
        if self.trace_out is not None:
            out["traces_written"] = self.traces_written
        if self.metrics_out is not None:
            out["metrics_written"] = self.metrics_written
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        return out


# -------------------------------------------------------- ambient executor
#: Installed by the bench CLI (or tests); ``None`` means plain serial.
_current: Optional[SweepExecutor] = None
#: The fallback serial executor — measure()/speedup_sweep() outside any
#: ``use_executor`` block behave exactly as before this module existed.
_default = SweepExecutor(jobs=1)


def current_executor() -> SweepExecutor:
    return _current if _current is not None else _default


@contextmanager
def use_executor(executor: SweepExecutor):
    """Route ``measure``/``measure_many`` through ``executor`` in this block."""
    global _current
    previous = _current
    _current = executor
    try:
        yield executor
    finally:
        _current = previous
