"""Host-throughput reporter for the simulator itself.

Measures how fast the *host* machinery runs — engine events/s, kernel
messages/s, seed fan-out/s, pool ops/s — and appends one labelled entry to
``BENCH_sim_throughput.json`` at the repo root, so the perf trajectory of
the simulator is tracked PR over PR (the virtual-time experiment tables in
``repro.bench.experiments`` are unaffected by any of this).

Usage::

    python -m repro.bench.perf --label after-hot-path   # record an entry
    python -m repro.bench.perf --check                  # regression guard
    python -m repro.bench.perf --backend batch ...      # batch-lane pass
    python -m repro.bench.perf --profile                # cProfile hot paths

``--check`` re-measures and fails (exit 1) if events/s or messages/s fall
more than ``--tolerance`` (default 30%) below the most recent recorded
entry carrying those metrics — the cheap CI guard against accidentally
re-introducing per-event allocation in the hot path.  ``--backend batch``
measures the batch engine backend instead (``*_batch_*`` metric names);
each entry records its backend in ``host`` and ``--check`` only baselines
against same-backend entries.

``--exp-wall`` records the experiment-suite wall-clock family instead:
``exp_all_wall_s_serial`` (the historical one-process outer loop),
``exp_all_wall_s_jobsN`` (the parallel sweep executor cold), and
``exp_all_wall_s_warm_cache`` (a rerun replayed from the result cache)
plus the warm-run cache hit-rate.  Every entry also records host context
(CPU count, 1-minute load average) so wall-clock and throughput numbers
stay interpretable across machines.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from datetime import datetime, timezone
from typing import Callable, Dict

__all__ = ["measure_throughput", "measure_exp_wall", "record", "check",
           "profile_hot_paths", "host_context", "DEFAULT_PATH"]

DEFAULT_PATH = "BENCH_sim_throughput.json"

#: Metrics the --check guard enforces (others are informational).  The pool
#: and search metrics guard the prioritized-execution hot path (packed keys,
#: send-time normalization, lane-split pools); the ``*_batch_*`` metrics
#: guard the batch-backend fast lane (timestamp-cohort draining) and only
#: appear in entries recorded with ``--backend batch``.
#: ``engine_events_per_s_p100k`` guards the sparse-PE plane: a full
#: kernel run on a 100,000-PE machine, impossible before per-PE state
#: became O(active) — any O(P) term creeping back into startup, delivery
#: or teardown shows up here first.  ``serving_requests_per_s`` guards the
#: S-series serving stack (open-loop arrivals, per-request tracing, the
#: latency analyzer): the turn/bundling lanes bail out of exactly these
#: shapes, so a botched bail-out condition shows up here, not in the
#: kernel microbenchmarks.
#: ``kernel_telemetry_msgs_per_s`` guards the telemetry plane's hot-path
#: overhead: the same PingPong chain as ``kernel_msgs_per_s`` but with a
#: live metric plane attached — the execution hook, histogram observe, and
#: label-cache hits all in the loop.  The PR-10 contract is that this stays
#: within ~15% of the untelemetered rate; a per-event allocation sneaking
#: into the hook shows up here first.
GUARDED_METRICS = ("engine_events_per_s", "kernel_msgs_per_s",
                   "kernel_seeds_per_s", "pool_prio_ops_per_s",
                   "pool_bitprio_ops_per_s", "search_bitprio_nodes_per_s",
                   "engine_batch_events_per_s", "kernel_batch_seeds_per_s",
                   "engine_events_per_s_p100k", "serving_requests_per_s",
                   "kernel_telemetry_msgs_per_s",
                   "kernel_batch_telemetry_msgs_per_s")


# --------------------------------------------------------------- measurement
def _best_rate(fn: Callable[[], int], repeats: int = 5) -> float:
    """ops/s over the best of ``repeats`` runs (max-rate, standard practice).

    Each run's op count is paired with *its own* timing — ``fn`` may return
    a different count per run, so pairing the last count with the fastest
    time would fabricate a rate no run achieved.  Runs too fast for the
    clock to resolve (dt == 0) carry no rate information and are skipped;
    if every run degenerates the result is 0.0, not inf (which would poison
    the JSON artifact — ``json.dump`` emits ``Infinity``, invalid JSON).
    """
    best = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        ops = fn()
        dt = time.perf_counter() - t0
        if dt > 0.0:
            best = max(best, ops / dt)
    return best


def _engine_events(backend: str = "heap") -> Callable[[], int]:
    def run() -> int:
        from repro.sim.backend import make_backend

        eng = make_backend(backend)
        schedule_call = eng.schedule_call
        for i in range(10_000):
            schedule_call(float(i % 97), _noop1, None)
        eng.run()
        return eng.events_fired

    return run


def _noop0() -> None:
    return None


def _noop1(_arg) -> None:
    return None


def _kernel_messages(backend: str = "heap") -> Callable[[], int]:
    def run() -> int:
        from repro import Kernel, make_machine
        from repro.bench._workloads import PingPong

        kernel = Kernel(make_machine("ideal", 1), backend=backend)
        rounds = 2_000
        assert kernel.run(PingPong, rounds).result == rounds
        return rounds

    return run


def _kernel_telemetry_messages(backend: str = "heap") -> Callable[[], int]:
    """The ``_kernel_messages`` chain with a telemetry plane attached.

    Interval 0.0 (final snapshot only), so the measured delta over
    ``kernel_msgs_per_s`` is purely the per-execution hook cost — the
    overhead figure the telemetry plane's ≥0.85x contract is stated over.
    """

    def run() -> int:
        from repro import Kernel, make_machine
        from repro.bench._workloads import PingPong
        from repro.obs import Telemetry

        kernel = Kernel(make_machine("ideal", 1), backend=backend,
                        telemetry=Telemetry())
        rounds = 2_000
        assert kernel.run(PingPong, rounds).result == rounds
        return rounds

    return run


def _seed_fanout(num_pes: int, backend: str = "heap") -> Callable[[], int]:
    def run() -> int:
        from repro import Kernel, make_machine
        from repro.bench._workloads import Fanout

        kernel = Kernel(make_machine("ideal", num_pes), balancer="random",
                        backend=backend)
        seeds = 1_000
        assert kernel.run(Fanout, seeds).result == seeds
        return seeds

    return run


def _sparse_fanout(num_pes: int, backend: str = "heap") -> Callable[[], int]:
    """Full kernel run on a sparse large-P machine; returns events fired.

    The rate is engine events per host second *including* kernel
    construction and teardown — exactly where an accidental O(P) loop
    (eager PE lists, counter arrays, balancer tables) would dominate at
    P=100,000.
    """

    def run() -> int:
        from repro import Kernel, make_machine
        from repro.bench._workloads import Fanout

        kernel = Kernel(
            make_machine("cluster", num_pes, backend=backend, sparse=True),
            balancer="random",
        )
        result = kernel.run(Fanout, 1_000)
        assert result.result == 1_000
        return result.events

    return run


def _central_placements(num_pes: int) -> Callable[[], int]:
    """Manager-placement micro-benchmark: seed placements per host second.

    Drives the CentralBalancer's decision loop directly (alternating
    piggybacked load reports with placements) — the op the sparse refactor
    took from an O(P) scan to an O(log P) lazy-heap pop, worth ~100x at
    P=10,000.
    """

    def run() -> int:
        from types import SimpleNamespace

        from repro import Kernel, make_machine

        kernel = Kernel(make_machine("ideal", num_pes), balancer="central")
        bal = kernel.balancer
        env = SimpleNamespace(hops=0)
        n = 2_000
        for i in range(n):
            bal.note_load(0, (i * 40503) % 63 + 1, (i * 2654435761) % 7)
            bal.on_seed_arrival(0, env)
        return n

    return run


def _pool_churn(strategy_name: str) -> Callable[[], int]:
    def run() -> int:
        from repro.queueing.strategies import make_strategy

        q = make_strategy(strategy_name)
        n = 5_000
        for i in range(n):
            q.push(i, (i * 2654435761) % 1000)
        while q:
            q.pop()
        return 2 * n

    return run


def _pool_churn_default(strategy_name: str) -> Callable[[], int]:
    """All-unprioritized churn: exercises the pool's default fast lane."""

    def run() -> int:
        from repro.queueing.strategies import make_strategy

        q = make_strategy(strategy_name)
        n = 5_000
        for i in range(n):
            q.push(i)
        while q:
            q.pop()
        return 2 * n

    return run


def _pool_churn_deep(strategy_name: str) -> Callable[[], int]:
    """Deep-bitvector churn: ~80-bit priorities crossing the 63-bit chunk.

    Priorities are prebuilt once (and their normalized keys cached on the
    instances by the first run), so the steady-state metric is pool
    push/pop cost with multi-element packed keys — the deep-search-tree
    shape — not BitVectorPriority construction.
    """
    from repro.util.priority import BitVectorPriority

    prios = [
        BitVectorPriority(((i * 2654435761) >> b) & 1 for b in range(80))
        for i in range(64)
    ]

    def run() -> int:
        from repro.queueing.strategies import make_strategy

        q = make_strategy(strategy_name)
        n = 5_000
        for i in range(n):
            q.push(i, prios[i % 64])
        while q:
            q.pop()
        return 2 * n

    return run


def _pool_churn_mixed(strategy_name: str) -> Callable[[], int]:
    """Mixed-traffic churn: None / small-int / bitvector interleaved.

    The realistic lane mix — a prioritized app's search messages riding
    alongside unprioritized control traffic — so all three lanes (default
    deque, int buckets, heap) are hot in one measurement.
    """
    from repro.util.priority import BitVectorPriority

    prios = [
        BitVectorPriority(((i * 40503) >> b) & 1 for b in range(12))
        for i in range(16)
    ]

    def run() -> int:
        from repro.queueing.strategies import make_strategy

        q = make_strategy(strategy_name)
        n = 5_000
        for i in range(n):
            r = i % 3
            if r == 0:
                q.push(i)
            elif r == 1:
                q.push(i, (i * 2654435761) % 1000)
            else:
                q.push(i, prios[i % 16])
        while q:
            q.pop()
        return 2 * n

    return run


def _search_nqueens_bitprio() -> int:
    """End-to-end prioritized tree search: nodes expanded per host second.

    The full simulator stack — kernel, bitvector priorities normalized at
    send time, bitprio pools on every PE — on the app that motivates
    bitvector priorities (N-queens with path-encoded node priorities).
    """
    from repro import make_machine
    from repro.apps.nqueens import run_nqueens

    (_, nodes), _ = run_nqueens(
        make_machine("ideal", 8), n=8, grainsize=3,
        queueing="bitprio", use_priorities=True,
    )
    return nodes


def _search_tsp_prio() -> int:
    """End-to-end int-prioritized branch-and-bound (TSP, prio pools)."""
    from repro import make_machine
    from repro.apps.tsp import run_tsp

    (_, expanded, _), _ = run_tsp(
        make_machine("ideal", 8), n=8, queueing="prio",
    )
    return expanded


def _serving_requests() -> int:
    """End-to-end request serving: requests served per host second.

    Exercises the open-loop arrival path (timed sends), per-request
    tracing with the minimal serving kind set, and the trace-walking
    latency analyzer — the full S-series stack.  Guarded: the serving
    shape is exactly what the turn/bundling fast lanes must *bail out*
    of (timed sends, tracing), so this is the regression tripwire for
    the bail-out conditions; the noisier trace-analysis share is why
    its --check tolerance is the shared 30%, not tighter.
    """
    from repro import make_machine
    from repro.apps.serving import run_serving
    from repro.workloads.arrivals import Poisson

    ans, _ = run_serving(
        make_machine("ncube2", 8),
        arrivals=Poisson(rate=4000.0, count=400),
        balancer="central",
    )
    return ans["completed"]


def measure_throughput(repeats: int = 5, backend: str = "heap") -> Dict[str, float]:
    """Run every microbenchmark; returns {metric: ops_per_second}.

    ``backend="batch"`` re-measures the engine/kernel family on the batch
    backend under ``*_batch_*`` metric names (the pool and search metrics
    are backend-independent and only measured on the default pass).
    """
    if backend == "batch":
        metrics = {
            "engine_batch_events_per_s": _best_rate(
                _engine_events("batch"), repeats
            ),
            "kernel_batch_msgs_per_s": _best_rate(
                _kernel_messages("batch"), repeats
            ),
            "kernel_batch_seeds_per_s": _best_rate(
                _seed_fanout(8, "batch"), repeats
            ),
            "kernel_batch_telemetry_msgs_per_s": _best_rate(
                _kernel_telemetry_messages("batch"), repeats
            ),
        }
        for pes in (1, 4, 32):
            metrics[f"kernel_batch_seeds_per_s_p{pes}"] = _best_rate(
                _seed_fanout(pes, "batch"), repeats
            )
        metrics["engine_batch_events_per_s_p100k"] = _best_rate(
            _sparse_fanout(100_000, "batch"), repeats
        )
        return metrics
    metrics = {
        "engine_events_per_s": _best_rate(_engine_events(), repeats),
        "kernel_msgs_per_s": _best_rate(_kernel_messages(), repeats),
        "kernel_telemetry_msgs_per_s": _best_rate(
            _kernel_telemetry_messages(), repeats
        ),
        "kernel_seeds_per_s": _best_rate(_seed_fanout(8), repeats),
    }
    for pes in (1, 4, 32):
        metrics[f"kernel_seeds_per_s_p{pes}"] = _best_rate(
            _seed_fanout(pes), repeats
        )
    for name in ("fifo", "lifo", "prio", "bitprio", "priolifo"):
        metrics[f"pool_{name}_ops_per_s"] = _best_rate(
            _pool_churn(name), repeats
        )
    metrics["pool_prio_default_ops_per_s"] = _best_rate(
        _pool_churn_default("prio"), repeats
    )
    metrics["pool_bitprio_deep_ops_per_s"] = _best_rate(
        _pool_churn_deep("bitprio"), repeats
    )
    metrics["pool_prio_mixed_ops_per_s"] = _best_rate(
        _pool_churn_mixed("prio"), repeats
    )
    metrics["engine_events_per_s_p100k"] = _best_rate(
        _sparse_fanout(100_000), repeats
    )
    metrics["central_place_p10k_ops_per_s"] = _best_rate(
        _central_placements(10_000), repeats
    )
    metrics["search_bitprio_nodes_per_s"] = _best_rate(
        _search_nqueens_bitprio, repeats
    )
    metrics["search_tsp_prio_nodes_per_s"] = _best_rate(
        _search_tsp_prio, repeats
    )
    metrics["serving_requests_per_s"] = _best_rate(
        _serving_requests, repeats
    )
    return metrics


def host_context(backend: str = "heap") -> Dict[str, object]:
    """CPU count, load average and engine backend, recorded per entry.

    Wall-clock and throughput numbers are only comparable across entries
    when the host context is known — a 2x ``exp_all_wall_s`` swing between
    a 4-core laptop and a 64-core runner is machine skew, not a
    regression.  ``load_avg_1m`` is ``None`` where the platform has no
    ``os.getloadavg`` (Windows).  ``backend`` names the engine backend the
    entry measured so ``--check``'s backward-scanning baseline never
    compares heap numbers against batch numbers (entries predating the
    field are heap by construction).
    """
    try:
        load_1m = round(os.getloadavg()[0], 3)
    except (AttributeError, OSError):
        load_1m = None
    return {"cpu_count": os.cpu_count(), "load_avg_1m": load_1m,
            "backend": backend}


# ---------------------------------------------------------------- profiling
def profile_hot_paths(backend: str = "heap", sort: str = "tottime",
                      limit: int = 25, rounds: int = 3,
                      out: "str | None" = None) -> None:
    """cProfile the tracked kernel cohort workloads; print a pstats table.

    Profiles exactly the runs the guarded ``kernel_msgs_per_s`` /
    ``kernel_seeds_per_s`` metrics time (PingPong message chain, Fanout
    seed burst), so the rows map one-to-one onto the throughput numbers:
    when a guarded metric drops, ``--profile`` names the frame that ate
    it.  The table goes to stdout; with ``out`` set, the raw profile is
    additionally dumped there in ``pstats`` binary form (loadable with
    ``pstats.Stats(path)`` or snakeviz) so a CI run's profile can be
    attached as an artifact and inspected offline.  Nothing is recorded
    in the JSON artifact either way.
    """
    import cProfile
    import pstats

    msgs = _kernel_messages(backend)
    seeds = _seed_fanout(8, backend)
    # Warm-up pass outside the profile: import cost and bytecode caches
    # would otherwise dominate the table.
    msgs()
    seeds()
    prof = cProfile.Profile()
    prof.enable()
    for _ in range(rounds):
        msgs()
        seeds()
    prof.disable()
    stats = pstats.Stats(prof, stream=sys.stdout)
    stats.strip_dirs().sort_stats(sort).print_stats(limit)
    if out is not None:
        directory = os.path.dirname(out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        prof.dump_stats(out)
        print(f"profile dumped -> {out}")


# ------------------------------------------------- experiment-suite wall time
def measure_exp_wall(scale: str = "quick", jobs: int | None = None,
                     exps: "list[str] | None" = None) -> Dict[str, float]:
    """Time the experiment suite serial, parallel, and warm-cache.

    Three passes over the same experiment set: (1) the historical serial
    path (``jobs=1``, no cache), (2) the parallel sweep executor cold
    (fresh cache, ``jobs`` workers), (3) a warm rerun replayed from that
    cache.  Virtual-time results are identical in all three — only the
    host cost differs, and that is the metric.
    """
    import shutil
    import tempfile

    from repro.bench.cache import ResultCache
    from repro.bench.experiments import EXPERIMENTS, run_experiment
    from repro.bench.parallel import SweepExecutor, default_jobs, use_executor

    jobs = jobs if jobs is not None else default_jobs()
    ids = sorted(EXPERIMENTS) if exps is None else list(exps)

    def run_all(executor: "SweepExecutor") -> float:
        t0 = time.perf_counter()
        with executor, use_executor(executor):
            for exp_id in ids:
                run_experiment(exp_id, scale=scale)
        return time.perf_counter() - t0

    metrics: Dict[str, float] = {"exp_all_jobs": float(jobs)}
    metrics["exp_all_wall_s_serial"] = run_all(SweepExecutor(jobs=1))
    cache_root = tempfile.mkdtemp(prefix="bench-expwall-")
    try:
        metrics[f"exp_all_wall_s_jobs{jobs}"] = run_all(
            SweepExecutor(jobs=jobs, cache=ResultCache(cache_root))
        )
        warm_cache = ResultCache(cache_root)
        metrics["exp_all_wall_s_warm_cache"] = run_all(
            SweepExecutor(jobs=jobs, cache=warm_cache)
        )
        metrics["exp_all_cache_hit_rate"] = warm_cache.hit_rate
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)
    return metrics


# ------------------------------------------------------------------- storage
def _load(path: str) -> dict:
    if os.path.exists(path):
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    return {"entries": []}


def record(path: str = DEFAULT_PATH, label: str = "", repeats: int = 5,
           metrics: Dict[str, float] | None = None,
           backend: str = "heap") -> dict:
    """Measure (or take ``metrics``) and append one entry; returns the entry."""
    entry = {
        "label": label or "unlabelled",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": sys.version.split()[0],
        "host": host_context(backend),
        "metrics": (measure_throughput(repeats, backend)
                    if metrics is None else metrics),
    }
    data = _load(path)
    data["entries"].append(entry)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=1)
        fh.write("\n")
    return entry


def _entry_backend(entry: dict) -> str:
    """Engine backend an entry measured (pre-backend entries are heap)."""
    return entry.get("host", {}).get("backend") or "heap"


def _guard_baseline(entries: list, backend: str = "heap") -> dict | None:
    """Latest *same-backend* entry carrying any guarded metric.

    Entries recorded by ``--exp-wall`` (wall-clock family only) and
    pre-PR-3 entries missing ``host`` context must not silently disable
    the hot-path guard, so the scan walks backwards to the newest entry
    that actually measured a guarded metric.  Entries from a different
    engine backend are skipped — a batch entry's 3x events/s must never
    become the bar the heap path is judged against (or vice versa).
    """
    for entry in reversed(entries):
        if _entry_backend(entry) != backend:
            continue
        if any(name in entry.get("metrics", {}) for name in GUARDED_METRICS):
            return entry
    return None


def check(path: str = DEFAULT_PATH, tolerance: float = 0.30,
          repeats: int = 3, backend: str = "heap") -> bool:
    """Re-measure the guarded metrics; True iff none regressed past tolerance."""
    data = _load(path)
    baseline = _guard_baseline(data["entries"], backend)
    if baseline is None:
        print(f"no guarded {backend}-backend baseline entries in {path}; "
              "nothing to check")
        return True
    current = measure_throughput(repeats, backend)
    ok = True
    print(f"perf guard ({backend}) vs {baseline['label']!r} "
          f"({baseline['timestamp']}):")
    for name in GUARDED_METRICS:
        base = baseline["metrics"].get(name)
        now = current.get(name)
        if base is None or now is None:
            continue
        ratio = now / base
        flag = "ok" if ratio >= 1.0 - tolerance else "REGRESSION"
        print(f"  {name}: {now:,.0f}/s vs {base:,.0f}/s "
              f"({ratio:.2f}x) {flag}")
        if ratio < 1.0 - tolerance:
            ok = False
    return ok


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--output", default=DEFAULT_PATH,
                    help="JSON artifact path (default: repo-root file)")
    ap.add_argument("--label", default="", help="entry label, e.g. a PR name")
    ap.add_argument("--repeats", type=int, default=5)
    ap.add_argument("--check", action="store_true",
                    help="regression-guard mode: compare against last entry")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional drop in --check mode")
    ap.add_argument("--profile", action="store_true",
                    help="cProfile the tracked kernel workloads (PingPong "
                    "messages, Fanout seeds) and print a pstats table "
                    "instead of recording metrics")
    ap.add_argument("--profile-sort", default="tottime",
                    choices=["tottime", "cumulative", "ncalls"],
                    help="pstats sort key for --profile (default: tottime)")
    ap.add_argument("--profile-limit", type=int, default=25,
                    help="rows to print in --profile mode (default: 25)")
    ap.add_argument("--profile-out", default=None, metavar="FILE",
                    help="also dump the raw --profile data to FILE in "
                    "pstats binary form (CI artifact; loadable with "
                    "pstats.Stats or snakeviz)")
    ap.add_argument("--exp-wall", action="store_true",
                    help="record experiment-suite wall time "
                    "(serial vs --exp-jobs vs warm cache) instead of the "
                    "hot-path microbenchmarks")
    ap.add_argument("--exp-scale", default="quick", choices=["paper", "quick"],
                    help="experiment scale for --exp-wall (default: quick)")
    ap.add_argument("--exp-jobs", type=int, default=None,
                    help="worker count for the parallel --exp-wall pass "
                    "(default: os.cpu_count())")
    ap.add_argument("--backend", default="heap", choices=["heap", "batch"],
                    help="engine backend to measure/check (default: heap); "
                    "batch entries use *_batch_* metric names and are "
                    "baselined only against other batch entries")
    args = ap.parse_args(argv)
    if args.profile:
        profile_hot_paths(args.backend, args.profile_sort,
                          args.profile_limit, out=args.profile_out)
        return 0
    if args.check:
        return 0 if check(args.output, args.tolerance,
                          backend=args.backend) else 1
    if args.exp_wall:
        metrics = measure_exp_wall(scale=args.exp_scale, jobs=args.exp_jobs)
        label = args.label or f"exp-wall ({args.exp_scale})"
        entry = record(args.output, label, metrics=metrics)
        print(f"recorded {entry['label']!r} -> {args.output}")
        for name, value in entry["metrics"].items():
            unit = "" if name.endswith(("_rate", "_jobs")) else "s"
            print(f"  {name}: {value:,.2f}{unit}")
        return 0
    entry = record(args.output, args.label, args.repeats,
                   backend=args.backend)
    print(f"recorded {entry['label']!r} -> {args.output}")
    for name, value in entry["metrics"].items():
        print(f"  {name}: {value:,.0f}/s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
