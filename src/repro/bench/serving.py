"""Serving experiments (S-series): the open-loop request workload.

Where the T-series reproduces the paper's closed-world batch tables, the
S-series measures the runtime as a *service*: seeded arrival streams
(:mod:`repro.workloads.arrivals`) inject balancer-placed request chares
into the farm (:mod:`repro.apps.serving`) and per-request tail latency is
reconstructed from the causal event log (:mod:`repro.metrics.latency`).

* **S1** — arrival-rate sweep to saturation: p50/p95/p99 vs offered
  utilization; the tail should grow super-linearly past the ~80% knee.
* **S2** — burst tolerance: same mean rate, increasingly bursty arrival
  processes (MMPP, diurnal ramp), with and without admission shedding.
* **S3** — balancer comparison at fixed load: every placement strategy
  over the identical request stream.
* **S4** — serving under faults: the PR-2 drop/stall models underneath a
  live request stream; every offered request must still complete.

Every arm is a declarative run descriptor through the ambient sweep
executor, so the S-series parallelises (``--jobs``) and caches exactly
like the paper tables; latency digests ride inside each run's answer, so
cache replay is byte-identical.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.bench.harness import describe, measure_many
from repro.bench.tables import format_table
from repro.faults import FaultConfig
from repro.machine.presets import make_machine
from repro.workloads.arrivals import Bursty, Diurnal, Poisson, ServiceSpec

__all__ = ["exp_s1", "exp_s2", "exp_s3", "exp_s4", "exp_s5", "exp_s6"]

#: Per-stage service demand used by every S experiment (exponential with a
#: mean of 400 work units ≈ 1.2 ms on ncube2).
SERVICE = ServiceSpec("exp", 400.0)
MACHINE = "ncube2"


def _result_cls():
    from repro.bench.experiments import ExperimentResult

    return ExperimentResult


def _request_cost(pes: int) -> float:
    """Mean busy-time one request costs its serving PE (seconds)."""
    p = make_machine(MACHINE, pes).params
    return SERVICE.mean * p.work_unit_time + p.sched_overhead + p.recv_overhead


def _rate(util: float, pes: int) -> float:
    """Offered arrival rate that loads a P-PE farm to ``util``."""
    return util * pes / _request_cost(pes)


def _ms(value: Any) -> Any:
    return None if value is None else round(value * 1e3, 3)


def _digest_cells(ans: Dict[str, Any]) -> List[Any]:
    """The shared latency columns: p50/p95/p99/mean/max (ms), wait share."""
    wait_share = (
        round(100.0 * ans["mean_queue_wait"] / ans["mean"], 1)
        if ans["mean"] else None
    )
    return [_ms(ans["p50"]), _ms(ans["p95"]), _ms(ans["p99"]),
            _ms(ans["mean"]), _ms(ans["max"]), wait_share]


def _series(ans: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-friendly per-run record for ``ExperimentResult.data``."""
    return {k: ans[k] for k in (
        "offered", "completed", "shed", "p50", "p95", "p99",
        "mean", "min", "max", "mean_queue_wait", "mean_service",
        "mean_transit",
    )}


# ------------------------------------------------------------------------ S1
def exp_s1(scale: str = "paper") -> ExperimentResult:  # noqa: F821
    """Arrival-rate sweep to saturation (the tail-latency knee).

    An open-loop Poisson stream against a central-manager farm — the
    closest simulated analogue of a front-end dispatcher feeding P
    workers (M/M/k-like).  Below the knee, p99 tracks the service-time
    tail; past ~80% utilization queueing dominates and the tail grows
    super-linearly until, above 100%, latency is bounded only by the
    stream's length.
    """
    pes = 8 if scale == "quick" else 16
    count = 400 if scale == "quick" else 2000
    utils = ([0.4, 0.7, 0.9, 1.05] if scale == "quick"
             else [0.3, 0.5, 0.7, 0.8, 0.9, 1.0, 1.1])
    descs = [
        describe(
            "serving", MACHINE, pes, balancer="central",
            arrivals=Poisson(rate=_rate(u, pes), count=count),
            service=SERVICE,
        )
        for u in utils
    ]
    rows_out = measure_many(descs, label="s1")
    headers = ["util %", "rate/s", "reqs", "done", "p50 (ms)", "p95 (ms)",
               "p99 (ms)", "mean (ms)", "max (ms)", "wait %"]
    table_rows = []
    series = []
    for util, row in zip(utils, rows_out):
        ans = row.answer
        assert ans["completed"] == ans["offered"], (
            f"S1 lost requests at util={util}: {ans}")
        table_rows.append(
            [round(util * 100, 1), round(_rate(util, pes), 1),
             ans["offered"], ans["completed"]] + _digest_cells(ans))
        series.append({"util": util, "rate": _rate(util, pes), **_series(ans)})
    data = {"machine": MACHINE, "pes": pes, "count": count,
            "balancer": "central", "service_mean_units": SERVICE.mean,
            "series": series}
    return _result_cls()(
        "S1",
        "open-loop saturation sweep (tail-latency knee)",
        format_table(
            headers, table_rows,
            title=f"Request latency vs offered load on {MACHINE}, P={pes}, "
            f"central balancer, {count} Poisson arrivals "
            f"(exp service, mean {SERVICE.mean:g} units)",
        ),
        data,
    )


# ------------------------------------------------------------------------ S2
def exp_s2(scale: str = "paper") -> ExperimentResult:  # noqa: F821
    """Burst tolerance: same mean rate, increasingly bursty arrivals.

    All four processes offer the same long-run rate (75% utilization);
    what changes is how the arrivals clump.  MMPP bursts several times
    over capacity melt the tail even though the mean load is moderate —
    and a queue-depth admission bound trades a small shed fraction for a
    bounded tail (the overload-control story).
    """
    pes = 8 if scale == "quick" else 16
    count = 300 if scale == "quick" else 1500
    util = 0.75
    rate = _rate(util, pes)
    processes = [
        ("poisson", Poisson(rate=rate, count=count)),
        ("mmpp x2.8", Bursty(rate_low=0.4 * rate, rate_high=2.8 * rate,
                             count=count, dwell_low=3e-3, dwell_high=1e-3)),
        ("mmpp x7.3", Bursty(rate_low=0.3 * rate, rate_high=7.3 * rate,
                             count=count, dwell_low=4.5e-3, dwell_high=0.5e-3)),
        ("diurnal", Diurnal(rate_mean=rate, count=count, amplitude=0.8,
                            period=20e-3)),
    ]
    combos = [(label, spec, shed) for label, spec in processes
              for shed in (None, 6)]
    descs = [
        describe("serving", MACHINE, pes, balancer="central",
                 arrivals=spec, service=SERVICE, shed_above=shed)
        for _, spec, shed in combos
    ]
    rows_out = dict(zip(combos, measure_many(descs, label="s2")))
    headers = ["arrivals", "admission", "done", "shed", "p50 (ms)",
               "p95 (ms)", "p99 (ms)", "mean (ms)", "max (ms)", "wait %"]
    table_rows = []
    series = []
    for (label, spec, shed), row in rows_out.items():
        ans = row.answer
        assert ans["completed"] + ans["shed"] == ans["offered"], (
            f"S2 lost requests for {label}: {ans}")
        table_rows.append(
            [label, "-" if shed is None else f"q<={shed}",
             ans["completed"], ans["shed"]] + _digest_cells(ans))
        series.append({"arrivals": label, "shed_above": shed,
                       "spec": type(spec).__name__, **_series(ans)})
    data = {"machine": MACHINE, "pes": pes, "count": count, "util": util,
            "rate": rate, "series": series}
    return _result_cls()(
        "S2",
        "burst tolerance at fixed mean load",
        format_table(
            headers, table_rows,
            title=f"Same mean rate ({util * 100:.0f}% utilization), "
            f"increasing burstiness on {MACHINE}, P={pes}; admission "
            "bound sheds when the landing PE's queue exceeds 6",
        ),
        data,
    )


# ------------------------------------------------------------------------ S3
def exp_s3(scale: str = "paper") -> ExperimentResult:  # noqa: F821
    """Balancer comparison serving the identical request stream.

    The paper's central question — adaptive load balancing — restated for
    live traffic: every placement strategy gets the same arrivals and the
    same per-request demands (same seed), so latency differences are pure
    placement quality.  Run at a moderate and a near-saturation load.
    """
    pes = 8 if scale == "quick" else 16
    count = 300 if scale == "quick" else 1500
    balancers = ["random", "roundrobin", "central", "acwn", "token"]
    utils = [0.7] if scale == "quick" else [0.7, 0.95]
    combos = [(u, b) for u in utils for b in balancers]
    descs = [
        describe("serving", MACHINE, pes, balancer=bal,
                 arrivals=Poisson(rate=_rate(u, pes), count=count),
                 service=SERVICE)
        for u, bal in combos
    ]
    rows_out = dict(zip(combos, measure_many(descs, label="s3")))
    headers = ["balancer", "util %", "p50 (ms)", "p95 (ms)", "p99 (ms)",
               "mean (ms)", "max (ms)", "wait %", "remote seeds"]
    table_rows = []
    series = []
    for (util, bal), row in rows_out.items():
        ans = row.answer
        assert ans["completed"] == ans["offered"], (
            f"S3 lost requests for {bal}: {ans}")
        table_rows.append([bal, round(util * 100, 1)] + _digest_cells(ans)
                          + [row.stats.lb_seeds_remote])
        series.append({"balancer": bal, "util": util,
                       "remote_seeds": row.stats.lb_seeds_remote,
                       **_series(ans)})
    data = {"machine": MACHINE, "pes": pes, "count": count, "utils": utils,
            "series": series}
    return _result_cls()(
        "S3",
        "balancer comparison under live traffic",
        format_table(
            headers, table_rows,
            title=f"Identical Poisson stream, every balancer, {MACHINE} "
            f"P={pes} ({count} requests per cell)",
        ),
        data,
    )


# ------------------------------------------------------------------------ S4
def exp_s4(scale: str = "paper") -> ExperimentResult:  # noqa: F821
    """Serving under faults: drop/stall/slow-PE models beneath live load.

    The resilience claim (R-series) restated for a service: message loss
    and PE stalls cost tail latency, never requests.  Every offered
    request must complete — the ack/retry protocol and idempotent receive
    make the farm lossless even at 15% drop — while p99 degrades
    gracefully with fault severity.
    """
    pes = 8 if scale == "quick" else 16
    count = 250 if scale == "quick" else 1200
    util = 0.7
    rate = _rate(util, pes)
    severities = [
        ("none", None),
        ("drop 5%", FaultConfig(drop_prob=0.05)),
        ("drop 15%", FaultConfig(drop_prob=0.15)),
        ("stalls", FaultConfig(stall_prob=0.02, stall_time=1e-3)),
        ("slow PE", FaultConfig(slow_pes=(1,), slow_factor=4.0)),
    ]
    descs = []
    for _, faults in severities:
        kwargs: Dict[str, Any] = dict(
            balancer="central",
            arrivals=Poisson(rate=rate, count=count), service=SERVICE,
        )
        if faults is not None:
            kwargs["faults"] = faults
        descs.append(describe("serving", MACHINE, pes, **kwargs))
    rows_out = measure_many(descs, label="s4")
    headers = ["faults", "done", "p50 (ms)", "p95 (ms)", "p99 (ms)",
               "mean (ms)", "max (ms)", "wait %", "retries", "stalls"]
    table_rows = []
    series = []
    for (label, faults), row in zip(severities, rows_out):
        ans = row.answer
        assert ans["completed"] == ans["offered"], (
            f"S4 lost requests under {label}: {ans}")
        st = row.stats
        table_rows.append([label, ans["completed"]] + _digest_cells(ans)
                          + [st.retries, st.stalls])
        series.append({"faults": label, "retries": st.retries,
                       "stalls": st.stalls, **_series(ans)})
    data = {"machine": MACHINE, "pes": pes, "count": count, "util": util,
            "rate": rate, "series": series}
    return _result_cls()(
        "S4",
        "serving under injected faults",
        format_table(
            headers, table_rows,
            title=f"Live stream at {util * 100:.0f}% utilization under "
            f"fault models, {MACHINE} P={pes} (every offered request "
            "completes in every arm)",
        ),
        data,
    )


# ------------------------------------------------------------------------ S5
def exp_s5(scale: str = "paper") -> ExperimentResult:  # noqa: F821
    """Serving on sparse large-P farms: machine size is free.

    The sparse-PE kernel's serving claim: a fixed request stream against
    farms of 10³–10⁵ PEs costs the same — the central manager only ever
    materializes the ranks it assigns work to, so resident state and
    host cost track the request count, not the machine size.  Latency
    digests must be essentially identical across farm sizes (the stream
    never saturates even the smallest farm).  Uses the cluster preset
    (fully connected, so farm size does not change hop costs).
    """
    pes_list = [1_000, 10_000] if scale == "quick" else [1_000, 10_000,
                                                         100_000]
    count = 250 if scale == "quick" else 1000
    machine = "cluster"
    # Fixed offered rate, sized against the smallest farm at low load so
    # every arm sees the identical stream (same seeds, same timestamps).
    p = make_machine(machine, pes_list[0]).params
    cost = SERVICE.mean * p.work_unit_time + p.sched_overhead + p.recv_overhead
    rate = 0.3 * pes_list[0] / cost
    descs = [
        describe("serving", machine, pes, sparse=True, balancer="central",
                 arrivals=Poisson(rate=rate, count=count), service=SERVICE)
        for pes in pes_list
    ]
    rows_out = measure_many(descs, label="s5")
    headers = ["P", "done", "touched PEs", "p50 (ms)", "p95 (ms)",
               "p99 (ms)", "mean (ms)", "host (s)"]
    table_rows = []
    series = []
    for pes, row in zip(pes_list, rows_out):
        ans = row.answer
        assert ans["completed"] == ans["offered"], (
            f"S5 lost requests at P={pes}: {ans}")
        touched = len(row.stats.pe_rows)
        assert touched <= count + 2, (
            f"S5 touched {touched} ranks for {count} requests at P={pes}")
        table_rows.append([pes, ans["completed"], touched,
                           _ms(ans["p50"]), _ms(ans["p95"]),
                           _ms(ans["p99"]), _ms(ans["mean"]),
                           round(row.host_seconds, 3)])
        series.append({"pes": pes, "touched": touched,
                       "host_seconds": row.host_seconds, **_series(ans)})
    data = {"machine": machine, "pes": pes_list, "count": count,
            "rate": rate, "series": series}
    return _result_cls()(
        "S5",
        "serving on sparse large-P farms",
        format_table(
            headers, table_rows,
            title=f"Fixed {count}-request stream against sparse cluster "
            "farms (touched = materialized PE ranks)",
        ),
        data,
    )


# ------------------------------------------------------------------------ S6
def exp_s6(scale: str = "paper") -> ExperimentResult:  # noqa: F821
    """Trace-free tail latency from the online telemetry plane.

    Two claims in one table.  **Validation** (P ≤ 10⁴): runs carrying both
    the event log *and* the telemetry plane show the online histogram's
    p50/p95/p99 landing in (or adjacent to) the bucket of the exact
    trace-walked value — the histogram's ≤1/subbuckets relative-width
    guarantee made empirical.  **Scale** (the largest farm): the same
    stream with tracing disabled entirely — the regime where an O(events)
    log is off the table — still yields the full latency digest, because
    the online histogram is O(buckets) regardless of request count or
    farm size.
    """
    from repro.obs.registry import Histogram

    if scale == "quick":
        pes_list, count, demo_pes = [1_000], 250, 10_000
    else:
        pes_list, count, demo_pes = [1_000, 10_000], 1000, 100_000
    machine = "cluster"
    p = make_machine(machine, pes_list[0]).params
    cost = SERVICE.mean * p.work_unit_time + p.sched_overhead + p.recv_overhead
    rate = 0.3 * pes_list[0] / cost
    # Snapshot every eighth of the arrival span.  The run's virtual time is
    # drain-dominated (in-flight requests outlive the stream), so the
    # stream itself gets ~8 snapshots and the drain tail streams more —
    # bounded by TelemetryConfig.max_snapshots, never by guesswork here.
    interval = count / rate / 8.0
    common: Dict[str, Any] = dict(
        sparse=True, balancer="central", service=SERVICE,
        arrivals=Poisson(rate=rate, count=count),
    )
    descs = [
        # Validation arms: event log AND telemetry on the same run.
        describe("serving", machine, pes, metrics=interval, **common)
        for pes in pes_list
    ] + [
        # Scale arm: telemetry only.  ``trace_events=None`` reaches
        # run_serving through the descriptor params and suppresses its
        # default analyzer kinds — no event log exists anywhere.
        describe("serving", machine, demo_pes, metrics=interval,
                 trace_events=None, **common)
    ]
    rows_out = measure_many(descs, label="s6")
    probe = Histogram()  # bucket geometry only (default subbuckets)
    headers = ["P", "done", "lens", "p50 (ms)", "p95 (ms)", "p99 (ms)",
               "mean (ms)", "max \N{GREEK CAPITAL LETTER DELTA}bucket",
               "snaps", "host (s)"]
    table_rows = []
    series = []
    for pes, row in zip(pes_list + [demo_pes], rows_out):
        ans = row.answer
        online = ans["online"]
        assert ans["completed"] == ans["offered"] == online["count"], (
            f"S6 online digest disagrees with the collector at P={pes}: {ans}")
        payload = row.telemetry
        assert payload is not None, f"S6 row lost its telemetry at P={pes}"
        snaps = len(payload["snapshots"])
        validated = ans["p50"] is not None
        max_diff = None
        if validated:
            diffs = []
            for q in ("p50", "p95", "p99"):
                exact, est = ans[q], online[q]
                diffs.append(abs(probe.bucket_index(exact)
                                 - probe.bucket_index(est)))
            max_diff = max(diffs)
            assert max_diff <= 1, (
                f"S6 online quantile strayed {max_diff} buckets from the "
                f"trace walk at P={pes}")
            table_rows.append(
                [pes, ans["completed"], "trace", _ms(ans["p50"]),
                 _ms(ans["p95"]), _ms(ans["p99"]), _ms(ans["mean"]),
                 "", "", ""])
        table_rows.append(
            [pes, ans["completed"], "online", _ms(online["p50"]),
             _ms(online["p95"]), _ms(online["p99"]), _ms(online["mean"]),
             max_diff if validated else "-", snaps,
             round(row.host_seconds, 3)])
        series.append({
            "pes": pes, "validated": validated, "max_bucket_diff": max_diff,
            "snapshots": snaps, "host_seconds": row.host_seconds,
            "online": {k: online[k] for k in
                       ("p50", "p95", "p99", "count", "mean", "min", "max")},
            **({"trace": {k: ans[k] for k in ("p50", "p95", "p99", "mean")}}
               if validated else {}),
            "offered": ans["offered"], "completed": ans["completed"],
        })
    data = {"machine": machine, "pes": pes_list, "demo_pes": demo_pes,
            "count": count, "rate": rate, "interval": interval,
            "subbuckets": probe.subbuckets, "series": series}
    return _result_cls()(
        "S6",
        "online tail latency vs the trace walk, then trace-free at scale",
        format_table(
            headers, table_rows,
            title=f"Telemetry-plane latency digests, {count}-request stream "
            f"on sparse {machine} farms; P={demo_pes} runs with tracing "
            "disabled (online histogram is the only lens)",
        ),
        data,
    )
