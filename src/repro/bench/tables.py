"""Plain-text table/series formatting for experiment output."""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence

__all__ = ["format_table", "format_series"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = ""
) -> str:
    """Render an ASCII table (right-aligned numbers, left-aligned first col)."""
    srows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render(cells: Sequence[str]) -> str:
        out = []
        for i, cell in enumerate(cells):
            out.append(cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i]))
        return "  ".join(out)

    lines = []
    if title:
        lines.append(title)
    lines.append(render(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render(row) for row in srows)
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[Any], ys: Sequence[Any]) -> str:
    """One figure series as a text line: ``name: (x,y) (x,y) ...``."""
    pts = " ".join(f"({_fmt(x)},{_fmt(y)})" for x, y in zip(xs, ys))
    return f"{name}: {pts}"
