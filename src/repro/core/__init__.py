"""The Chare Kernel: message-driven objects on a simulated machine."""

from repro.core.chare import BranchOfficeChare, Chare, entry
from repro.core.handles import BocHandle, ChareHandle
from repro.core.kernel import Kernel, RunResult
from repro.core.messages import Envelope, Kind

__all__ = [
    "BranchOfficeChare",
    "Chare",
    "entry",
    "BocHandle",
    "ChareHandle",
    "Kernel",
    "RunResult",
    "Envelope",
    "Kind",
]
