"""Chare base classes and the ``@entry`` marker.

Programs are written as subclasses of :class:`Chare` (dynamically created,
medium-grain concurrent objects) and :class:`BranchOfficeChare` (one branch
per PE; the paper's mechanism for distributed services).  The Python
``__init__`` plays the role of the chare's constructor entry point: it runs
on the PE where the load balancer places the seed, inside a normal
execution context, so it may charge work and send messages.

Entry methods are marked with :func:`entry`::

    class Worker(Chare):
        def __init__(self, parent, node):
            self.parent = parent
            ...

        @entry
        def expand(self, depth):
            self.charge(120)
            self.send(self.parent, "result", depth)

All chare API calls (``send``, ``create``, ``charge`` …) are only legal
while the runtime is executing one of the chare's entries — they delegate
to the kernel's current execution context.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.core.handles import BocHandle, ChareHandle
from repro.util.errors import RoutingError
from repro.util.priority import PriorityLike

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel

__all__ = ["entry", "Chare", "BranchOfficeChare"]


def entry(fn: Callable) -> Callable:
    """Mark a method as a remotely invocable entry point."""
    fn._charm_entry = True  # type: ignore[attr-defined]
    return fn


def is_entry(fn: Callable) -> bool:
    return bool(getattr(fn, "_charm_entry", False))


class Chare:
    """Base class for concurrent objects.

    Instances are never constructed directly by user code — use
    :meth:`create` from inside another chare (or pass the class to
    :meth:`repro.core.kernel.Kernel.run` as the main chare).
    """

    # Bound by the kernel before __init__ runs.
    _kernel: "Kernel"
    _handle: ChareHandle
    _pe: int

    # -------------------------------------------------------------- identity
    @property
    def thishandle(self) -> ChareHandle:
        """This chare's own handle (embed it in messages so peers can reply)."""
        return self._handle

    @property
    def my_pe(self) -> int:
        """The PE this chare lives on."""
        return self._pe

    @property
    def num_pes(self) -> int:
        return self._kernel.num_pes

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self._kernel.now

    @property
    def mainhandle(self) -> ChareHandle:
        """Handle of the main chare."""
        return self._kernel.main_handle

    @property
    def local_load(self) -> int:
        """Instantaneous queued-app-work metric of this chare's PE.

        The same load figure the balancers piggyback on messages (queued
        application work plus one while executing); admission controllers
        use it to shed requests when the local queue is already deep.
        """
        return self._kernel.pe_load(self._pe)

    # -------------------------------------------------------------- compute
    def charge(self, work_units: float) -> None:
        """Account ``work_units`` of CPU work to the current entry execution."""
        self._kernel.api_charge(work_units)

    # ------------------------------------------------------------ messaging
    def send(
        self,
        target: ChareHandle,
        entry_name: str,
        *args: Any,
        priority: PriorityLike = None,
    ) -> None:
        """Asynchronously invoke ``entry_name(*args)`` on the chare ``target``."""
        self._kernel.api_send(target, entry_name, args, priority)

    def send_at(
        self,
        when: float,
        target: ChareHandle,
        entry_name: str,
        *args: Any,
        priority: PriorityLike = None,
    ) -> None:
        """Send a message that departs at virtual time ``when``.

        The timed analogue of :meth:`send`, for open-loop sources that must
        schedule their *next* event in the future (e.g. the serving
        workload's arrival ticks).  ``when`` earlier than the current
        execution's start is clamped; delivery then follows the normal
        transit model.  The target must already be placed — in practice use
        ``self.thishandle`` or ``self.mainhandle``.
        """
        self._kernel.api_send_at(target, entry_name, args, when, priority)

    def create(
        self,
        chare_cls: type,
        *args: Any,
        pe: Optional[int] = None,
        priority: PriorityLike = None,
    ) -> ChareHandle:
        """Create a new chare (a *seed*).

        With ``pe=None`` the seed is routed by the load-balancing strategy;
        with an explicit ``pe`` placement is fixed (static decomposition).
        Returns the new chare's handle immediately; messages sent to it
        before placement are buffered by the runtime.
        """
        return self._kernel.api_create(chare_cls, args, pe=pe, priority=priority)

    def create_boc(self, boc_cls: type, *args: Any) -> BocHandle:
        """Create a branch-office chare with one branch on every PE."""
        return self._kernel.api_create_boc(boc_cls, args)

    def send_branch(
        self,
        boc: BocHandle,
        pe: int,
        entry_name: str,
        *args: Any,
        priority: PriorityLike = None,
    ) -> None:
        """Invoke an entry on the branch of ``boc`` living on ``pe``."""
        self._kernel.api_send_branch(boc, pe, entry_name, args, priority)

    def broadcast_branches(
        self, boc: BocHandle, entry_name: str, *args: Any
    ) -> None:
        """Invoke an entry on **every** branch of ``boc`` (spanning tree)."""
        self._kernel.api_boc_broadcast(boc, entry_name, args)

    def local_branch(self, boc: BocHandle) -> "BranchOfficeChare":
        """Direct (same-PE) reference to the local branch of ``boc``.

        This is Charm's ``BranchCall``: zero-message access to the branch
        co-located with the caller.
        """
        return self._kernel.api_local_branch(boc)

    def destroy(self, target: Optional[ChareHandle] = None) -> None:
        """Destroy a chare — by default, this one (``delete this``).

        Destruction is immediate and local (the target must live on the
        calling PE); a message that later reaches the destroyed chare is a
        program error (:class:`~repro.util.errors.RoutingError`), matching
        the paper's destructor semantics.
        """
        self._kernel.api_destroy(target if target is not None else self._handle)

    # ----------------------------------------------------------- termination
    def exit(self, result: Any = None) -> None:
        """End the whole computation; ``result`` becomes the run's result."""
        self._kernel.api_exit(result)

    def start_quiescence(self, target: ChareHandle, entry_name: str) -> None:
        """Ask for ``entry_name()`` on ``target`` once the system quiesces."""
        self._kernel.api_start_quiescence(target, entry_name)

    # ------------------------------------------------- information sharing
    def new_accumulator(
        self, name: str, initial: Any = 0, op: str | Callable[[Any, Any], Any] = "sum"
    ) -> None:
        """Declare an accumulator (main-chare constructor only).

        ``op`` must be commutative and associative (``"sum"``, ``"max"``,
        ``"min"``, ``"prod"``, or a callable); partials accumulate locally
        on each PE with **zero messages** until collected.
        """
        self._kernel.api_new_accumulator(name, initial, op)

    def new_monotonic(
        self,
        name: str,
        initial: Any,
        better: str | Callable[[Any, Any], bool] = "min",
        propagation: str = "eager",
    ) -> None:
        """Declare a monotonic variable (main-chare constructor only).

        ``better(new, old) -> bool`` (or ``"min"``/``"max"``) defines the
        improvement order.  ``propagation`` ∈ {``"eager"``, ``"lazy"``,
        ``"off"``} controls how updates spread between PEs (experiment T7).
        """
        self._kernel.api_new_monotonic(name, initial, better, propagation)

    def new_table(self, name: str) -> None:
        """Declare a distributed table (main-chare constructor only)."""
        self._kernel.api_new_table(name)

    def set_readonly(self, name: str, value: Any) -> None:
        """Define a read-only variable (main-chare constructor only)."""
        self._kernel.api_set_readonly(name, value)

    def readonly(self, name: str) -> Any:
        """Read a read-only variable (available on every PE)."""
        return self._kernel.api_readonly(name, self._pe)

    def write_once(self, name: str, value: Any) -> None:
        """Create a write-once variable; it replicates to every PE."""
        self._kernel.api_write_once(name, value)

    def get_writeonce(self, name: str) -> Any:
        """Read a write-once variable (raises if not yet replicated here)."""
        return self._kernel.api_get_writeonce(name, self._pe)

    def accumulate(self, name: str, value: Any) -> None:
        """Fold ``value`` into accumulator ``name`` (purely local; no messages)."""
        self._kernel.api_accumulate(name, value, self._pe)

    def collect_accumulator(
        self, name: str, target: ChareHandle, entry_name: str
    ) -> None:
        """Combine all PEs' partials of ``name``; deliver total to ``target``."""
        self._kernel.api_collect_accumulator(name, target, entry_name)

    def update_monotonic(self, name: str, value: Any) -> None:
        """Offer a new value to monotonic variable ``name``."""
        self._kernel.api_update_monotonic(name, value, self._pe)

    def read_monotonic(self, name: str) -> Any:
        """This PE's current view of monotonic variable ``name``."""
        return self._kernel.api_read_monotonic(name, self._pe)

    def table_insert(
        self,
        table: str,
        key: Any,
        value: Any,
        reply_to: Optional[ChareHandle] = None,
        reply_entry: str = "",
    ) -> None:
        """Insert into a distributed table (hash-partitioned across PEs)."""
        self._kernel.api_table_insert(table, key, value, reply_to, reply_entry)

    def table_find(
        self, table: str, key: Any, reply_to: ChareHandle, reply_entry: str
    ) -> None:
        """Look up ``key``; the reply entry receives ``(key, value_or_None)``."""
        self._kernel.api_table_find(table, key, reply_to, reply_entry)

    def table_delete(self, table: str, key: Any) -> None:
        """Delete ``key`` from a distributed table (no-op if absent)."""
        self._kernel.api_table_delete(table, key)

    def __repr__(self) -> str:
        h = getattr(self, "_handle", None)
        return f"<{type(self).__name__} {h} on PE {getattr(self, '_pe', '?')}>"


class BranchOfficeChare(Chare):
    """A chare with one branch per PE (the paper's BOC).

    The constructor runs once *per branch*, on that branch's PE.  Branches
    of the same BOC coordinate with :meth:`broadcast`, :meth:`send_branch`
    (inherited, passing ``self.bochandle``), and tree :meth:`contribute`
    reductions.
    """

    _boc: BocHandle

    @property
    def bochandle(self) -> BocHandle:
        return self._boc

    def broadcast(self, entry_name: str, *args: Any) -> None:
        """Invoke ``entry_name`` on every branch of this BOC."""
        self._kernel.api_boc_broadcast(self._boc, entry_name, args)

    def send_peer(
        self, pe: int, entry_name: str, *args: Any, priority: PriorityLike = None
    ) -> None:
        """Invoke an entry on this BOC's branch on another PE."""
        self._kernel.api_send_branch(self._boc, pe, entry_name, args, priority)

    def contribute(
        self,
        tag: str,
        value: Any,
        op: str | Callable[[Any, Any], Any] = "sum",
        target: Optional[ChareHandle] = None,
        entry_name: str = "",
    ) -> None:
        """Join a tree reduction over all branches.

        Every branch must contribute exactly once per ``tag``; the combined
        result is delivered as ``entry_name(tag, result)`` to ``target``
        (which every contributor must name identically).
        """
        if target is None:
            raise RoutingError("contribute() requires a target handle")
        self._kernel.api_contribute(self._boc, tag, value, op, target, entry_name)

    def barrier(self, tag: str, entry_name: str) -> None:
        """Synchronize all branches: once every branch has called
        ``barrier(tag, entry)``, each branch's ``entry_name(tag, count)``
        runs (the ``fft->barrier()`` pattern from the paper)."""
        self._kernel.api_barrier(self._boc, tag, entry_name)
