"""Direct (untimed) execution of chare programs.

:class:`DirectRunner` runs a Chare Kernel program on the *ideal* machine
with all cost modelling left in place but — unlike a normal run — it is a
convenience wrapper meant for **functional validation at scale**: you get
the program's answer and message counts quickly, with a single call, no
machine choice, and a high default event budget.

This mirrors how Chare Kernel programs were debugged on one workstation
before moving to the parallel machine.  The full simulator semantics are
preserved (message-driven order, balancer, quiescence), so a program that
is wrong only under reordering still has a chance to fail here — for
schedule-exploration use :func:`stress` which sweeps seeds and strategies.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.kernel import Kernel, RunResult
from repro.machine.presets import make_machine

__all__ = ["DirectRunner", "stress"]


class DirectRunner:
    """One-call functional executor for chare programs."""

    def __init__(self, num_pes: int = 4, *, seed: int = 0,
                 queueing: str = "fifo", balancer: str = "random") -> None:
        self.num_pes = num_pes
        self.seed = seed
        self.queueing = queueing
        self.balancer = balancer

    def run(self, main_cls: type, *args: Any,
            max_events: Optional[int] = 100_000_000) -> RunResult:
        """Run ``main_cls(*args)`` on an ideal machine; return the result."""
        kernel = Kernel(
            make_machine("ideal", self.num_pes),
            queueing=self.queueing,
            balancer=self.balancer,
            seed=self.seed,
        )
        return kernel.run(main_cls, *args, max_events=max_events)

    def __call__(self, main_cls: type, *args: Any) -> Any:
        """Shorthand: run and return just the program's answer."""
        return self.run(main_cls, *args).result


def stress(
    main_cls: type,
    *args: Any,
    num_pes: Iterable[int] = (1, 2, 4, 8),
    seeds: Iterable[int] = (0, 1, 2),
    queueings: Iterable[str] = ("fifo", "lifo"),
    balancers: Iterable[str] = ("random", "acwn"),
    max_events: Optional[int] = 100_000_000,
) -> Tuple[List[Any], Dict[str, Any]]:
    """Run a program across a schedule-exploration grid.

    Returns ``(answers, detail)`` where ``answers`` is the deduplicated
    list of distinct answers observed (a correct, schedule-independent
    program yields exactly one) and ``detail`` maps each configuration to
    its answer — the debugging breadcrumb when answers diverge.
    """
    detail: Dict[str, Any] = {}
    answers: List[Any] = []
    for p in num_pes:
        for seed in seeds:
            for queueing in queueings:
                for balancer in balancers:
                    runner = DirectRunner(
                        p, seed=seed, queueing=queueing, balancer=balancer
                    )
                    result = runner.run(main_cls, *args, max_events=max_events)
                    key = f"P={p} seed={seed} {queueing}/{balancer}"
                    detail[key] = result.result
                    if result.result not in answers:
                        answers.append(result.result)
    return answers, detail
