"""Chare and branch-office-chare handles.

A :class:`ChareHandle` is the remote reference apps embed in messages so a
child can reply to its parent, a neighbor can address a neighbor, etc.  It
names a chare by a globally unique id; the runtime maintains the id → PE
mapping once the chare is placed (seeds are placed by the load balancer, so
placement may happen after the handle is minted — the kernel buffers sends
to not-yet-placed handles).

Handles are small immutable values; their wire size is fixed so the network
cost model charges them like the packed ids a compiler would emit.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ChareHandle", "BocHandle", "mint_chare_handle"]

_HANDLE_WIRE_BYTES = 12


@dataclass(frozen=True)
class ChareHandle:
    """Reference to a single chare instance (globally unique ``gid``)."""

    gid: int

    # Constant wire size as a plain class attribute: the payload sizer
    # reads it without allocating a bound method (handles ride in nearly
    # every seed payload).  ``__wire_size__`` stays for any sizer or
    # subclass that still calls it.
    __wire_bytes__ = _HANDLE_WIRE_BYTES

    def __wire_size__(self) -> int:
        return _HANDLE_WIRE_BYTES

    def __repr__(self) -> str:
        return f"ChareHandle({self.gid})"


_NEW = object.__new__
_SET = object.__setattr__


def mint_chare_handle(gid: int) -> ChareHandle:
    """Build a :class:`ChareHandle` without the frozen-dataclass ``__init__``.

    A frozen dataclass assigns fields through ``object.__setattr__`` inside
    a generated ``__init__``; minting one handle per created chare makes
    that frame measurable, so the kernel's create path uses this direct
    factory (identical object state, ~40% cheaper).
    """
    handle = _NEW(ChareHandle)
    _SET(handle, "gid", gid)
    return handle


@dataclass(frozen=True)
class BocHandle:
    """Reference to a branch-office chare (one branch on every PE)."""

    boc_id: int

    __wire_bytes__ = _HANDLE_WIRE_BYTES

    def __wire_size__(self) -> int:
        return _HANDLE_WIRE_BYTES

    def __repr__(self) -> str:
        return f"BocHandle({self.boc_id})"
