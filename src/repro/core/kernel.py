"""The Chare Kernel runtime.

:class:`Kernel` binds a simulated :class:`~repro.machine.network.Machine`
to the programming model: it owns the event engine, the per-PE schedulers,
the chare/BOC tables, the load balancer, the quiescence detector, and the
information-sharing service.  A program is run with::

    from repro import Kernel, make_machine

    kernel = Kernel(make_machine("ipsc2", 16), queueing="fifo",
                    balancer="acwn", seed=1)
    result = kernel.run(MainChare, arg1, arg2)
    print(result.result, result.time, result.stats.summary())

Execution model (normative — see DESIGN.md §5):

* Each PE is idle or executing exactly one entry method; execution is
  non-preemptive and message-driven.
* An entry execution occupies its PE for
  ``sched_overhead + recv_overhead + charged_units * work_unit_time``.
* Messages sent during an entry depart at the virtual time accumulated at
  the call site and arrive after the machine's transit time.
* New-chare seeds without explicit placement are routed by the load
  balancer, possibly over several forwarding hops.
* Startup gate: application work queued on a PE is not served until the
  init broadcast (read-only variables + shared-abstraction declarations)
  reaches that PE.
"""

from __future__ import annotations

import time as _host_time
from bisect import bisect_left
from dataclasses import dataclass, field
from types import FunctionType as _FunctionType
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.chare import BranchOfficeChare, Chare, is_entry
from repro.core.handles import BocHandle, ChareHandle, mint_chare_handle
from repro.core.messages import _FREE_CAP as _ENV_FREE_CAP
from repro.core.messages import _free as _env_free
from repro.core.messages import Envelope, Kind
from repro.core.pe import PEPlane, PEState
from repro.core.services import Service
from repro.core.tree import make_tree
from repro.machine.network import Machine
from repro.util.errors import (
    ConfigurationError,
    RoutingError,
    SchedulingError,
    SharingError,
)
from repro.util.priority import PriorityLike, normalize_priority
from repro.util.rng import RngStream

__all__ = ["Kernel", "RunResult", "ExecContext"]

#: Safety valve: a run firing more events than this is aborted as truncated.
DEFAULT_MAX_EVENTS = 30_000_000

# Kind tags as module globals: LOAD_GLOBAL beats a class-attribute chain in
# the per-event dispatch below.
_APP = Kind.APP
_SEED = Kind.SEED
_BOC = Kind.BOC
_SVC = Kind.SVC


class ExecContext:
    """State of one in-progress entry-method execution."""

    __slots__ = ("pe", "start", "charged", "outbox", "system", "direct")

    def __init__(self, pe: int, start: float, system: bool) -> None:
        self.pe = pe
        self.start = start
        self.charged = 0.0
        # (charged_units_at_send, envelope) pairs; offsets resolved at end.
        self.outbox: List[Tuple[float, Envelope]] = []
        self.system = system
        # Set when this execution scheduled an engine event directly
        # (api_send_at, cross-PE service sends): per-event scheduling is
        # then observable, so the turn lane must not elide the completion.
        self.direct = False


@dataclass
class RunResult:
    """Outcome of one :meth:`Kernel.run`."""

    result: Any
    time: float                  # virtual seconds at completion
    events: int                  # engine callbacks fired
    truncated: bool              # hit max_events / until horizon
    host_seconds: float          # wall-clock cost of the simulation itself
    stats: Any = None            # TraceReport (repro.trace)
    kernel: Any = field(default=None, repr=False)


class Kernel:
    """One runnable instance of the Chare Kernel on a simulated machine."""

    def __init__(
        self,
        machine: Machine,
        *,
        queueing: str = "fifo",
        balancer: str | Any = "random",
        seed: int = 0,
        qd_interval: float = 1e-3,
        lazy_interval: float = 0.5e-3,
        strict_entries: bool = True,
        spanning_tree: str = "auto",
        timeline: bool = False,
        faults: Any = None,
        trace_events: Any = None,
        telemetry: Any = None,
        backend: Optional[str] = None,
        sparse: Optional[bool] = None,
        dense_pes: bool = False,
        turn_loop: Optional[bool] = None,
    ) -> None:
        from repro.sim.backend import make_backend  # local: keep core light
        from repro.balance import make_balancer
        from repro.balance.base import Balancer
        from repro.sharing.manager import SharingService
        from repro.quiescence.detector import QuiescenceService

        self.machine = machine
        self.machine.reset()
        self.params = machine.params
        # Hot-path constants: every entry execution pays this fixed cost and
        # every local message this latency, so resolve them once per run
        # instead of via two attribute chains per event.
        self._overhead_base = (
            machine.params.sched_overhead + machine.params.recv_overhead
        )
        self._local_alpha = machine.params.local_alpha
        # Homogeneous machines skip Machine.compute_time per execution; the
        # multiply below is bitwise the same operation compute_time performs.
        self._work_unit_time = (
            None if machine.pe_speeds else machine.params.work_unit_time
        )
        # Pre-bound machine methods used once per remote message.  hops_fn
        # is the topology's closed form where one exists (no O(P²) memo).
        self._hops = machine.hops_fn
        self._transit_time = machine.transit_time
        # Engine backend: explicit argument wins, then the machine's pinned
        # preference, then the default heap path.
        self.backend_name = backend or machine.backend or "heap"
        self.engine = make_backend(self.backend_name)
        # Per-kernel envelope uid allocation (reproducible run-to-run and
        # unaffected by other kernels in the same process).
        self._next_uid = 1
        # Pre-bound hot-path callbacks: schedule_call takes fn+payload, and
        # binding these once means no per-event bound-method allocation.
        self._arrive_cb = self._arrive
        self._arrive_many_cb = self._arrive_many
        self._finish_cb = self._finish
        self._schedule_call = self.engine.schedule_call
        # class -> {entry_name -> validated plain function}; _invoke calls
        # fn(obj, *args) without re-running getattr + @entry checks per
        # message.  Nested (not (class, name)-keyed): the per-message
        # lookup is then two pointer-hash probes with no tuple allocation.
        self._entry_cache: Dict[type, Dict[str, Callable]] = {}
        self.rng = RngStream(seed, "kernel")
        self.seed = seed
        self.queueing = queueing
        self.strict_entries = strict_entries
        self.qd_interval = qd_interval
        self.lazy_interval = lazy_interval
        # Runtime collective tree: binomial on hypercubes (every tree edge is
        # one physical hop), binary rank tree elsewhere; override for the A1
        # ablation.
        self.tree = make_tree(spanning_tree, machine.num_pes,
                              machine.topology.name)
        from repro.trace.timeline import Timeline

        self.timeline: Optional[Timeline] = Timeline() if timeline else None

        # Structured event tracing (repro.trace.events): accepts True/"all",
        # an iterable of event kinds, or a pre-built EventLog; None keeps
        # the untraced fast path (the hooks below cost one `is None` check
        # per site, the same inert-when-off pattern as the fault layer).
        if trace_events is None:
            self.events = None
        else:
            from repro.trace.events import EventLog

            if isinstance(trace_events, EventLog):
                self.events = trace_events
            else:
                self.events = EventLog(kinds=trace_events)
        self._events = self.events

        # Sparse-startup mode: explicit argument wins, then the machine's
        # preference.  When on, the init broadcast is skipped (replication
        # is modeled free), PEs are born ungated, and global operations
        # (quiescence waves, accumulator collects, monotonic floods,
        # reports) enumerate only the *touched* set — the O(active) regime
        # that makes P=10⁵–10⁶ machines practical.  BOC collectives run
        # over a write-once span of the ranks touched at creation time
        # (see boc_spans below), so create/broadcast/reduce are O(active)
        # too.
        self.sparse = machine.sparse if sparse is None else sparse
        # The PE plane materializes a PEState on first delivery; untouched
        # ranks cost nothing.  dense_pes pre-materializes all P (the
        # historical memory profile, used by the equivalence tests).
        self.pes: PEPlane = PEPlane(
            machine.num_pes,
            queueing,
            gated=not self.sparse,
            dense=dense_pes,
        )

        # Fault injection (repro.faults): accepts a FaultConfig or an
        # already-built FaultLayer; None keeps the fault-free fast path
        # (the hooks below cost one `is None` check per message each).
        if faults is None:
            self.faults = None
        else:
            from repro.faults import FaultConfig, FaultLayer

            if isinstance(faults, FaultConfig):
                faults = FaultLayer(faults)
            elif not isinstance(faults, FaultLayer):
                raise ConfigurationError(
                    "faults must be a FaultConfig or FaultLayer, "
                    f"not {type(faults).__name__}"
                )
            faults.bind(self)
            self.faults = faults
        self._faults = self.faults
        # Online telemetry (repro.obs): accepts a Telemetry, a
        # TelemetryConfig, or True; None keeps the unobserved fast path
        # (one `is None` check per execution, same inert-when-off pattern
        # as faults/tracing).  Unlike tracing, telemetry never joins the
        # turn/burst gates below: it aggregates at execution granularity
        # and scrapes the PEState counters every send lane maintains
        # identically, so the fast lanes stay armed and schedules are
        # unperturbed.
        if telemetry is None:
            self.telemetry = None
        else:
            from repro.obs import Telemetry, TelemetryConfig

            if isinstance(telemetry, Telemetry):
                pass
            elif isinstance(telemetry, TelemetryConfig):
                telemetry = Telemetry(telemetry)
            elif telemetry is True:
                telemetry = Telemetry()
            else:
                raise ConfigurationError(
                    "telemetry must be a Telemetry, TelemetryConfig or True, "
                    f"not {type(telemetry).__name__}"
                )
            telemetry.bind(self)
            self.telemetry = telemetry
        self._telemetry = self.telemetry
        # Outbox burst lane: grouped bulk scheduling of a flush.  The fault
        # and tracing hooks need per-envelope control, so the lane is
        # enabled once per run, not per flush.  (Originally batch-only; the
        # heap backend's schedule_calls pushes the same (time, seq) order a
        # per-envelope loop would, so both backends profit bit-identically.)
        self._burst_ok = (
            self._faults is None
            and self._events is None
        )
        # Quiescence accounting lives on the PEStates (counted_sent /
        # counted_processed slots); the list-shaped compat properties below
        # rebuild the historical O(P) views on demand for reports and tests.
        # Network-load accounting: sum over messages of hop count — the
        # link-occupancy metric the topology-aware collectives reduce (A1).
        self.total_message_hops = 0

        # Chare classes already vetted by api_create (skips two issubclass
        # walks per creation).
        self._validated_chare_classes: set = set()
        # Object tables -----------------------------------------------------
        self.chares: Dict[int, Chare] = {}
        self.destroyed: set = set()
        self.placement: Dict[int, Optional[int]] = {}
        self._next_gid = 0
        # gid -> [(src_pe, entry, args, priority, prio_key, trace_parent)]
        # buffered sends; trace_parent is the sending execution's event id
        # (None when tracing is off), restored around the flush in _place.
        self._pending_sends: Dict[
            int,
            List[Tuple[int, str, tuple, PriorityLike, Optional[tuple],
                       Optional[int]]],
        ] = {}
        self._premature: Dict[int, List[Envelope]] = {}

        self.bocs: Dict[int, Dict[int, BranchOfficeChare]] = {}
        # Sparse BOC plane: boc_id -> (sorted_ranks, rank_set, virtual_tree)
        # snapshotted once when the create message reaches the tree root —
        # the write-once span every later broadcast/reduction for that BOC
        # walks instead of all P ranks.  Always empty in dense mode.
        self.boc_spans: Dict[int, Tuple[List[int], frozenset, Any]] = {}
        self._next_boc = 0
        self._boc_premature: Dict[Tuple[int, int], List[Envelope]] = {}
        self._reductions: Dict[Tuple[int, str, int], dict] = {}

        # Services ------------------------------------------------------------
        self.services: Dict[str, Service] = {}
        self.sharing = SharingService()
        self.qd = QuiescenceService()
        if isinstance(balancer, str):
            self.balancer = make_balancer(balancer)
        else:
            self.balancer = balancer
        for svc in (self.sharing, self.qd, self.balancer):
            svc.bind(self)
            self.services[svc.name] = svc
        # Balancer hooks run once per arrival; bind them once, and detect
        # un-overridden base hooks so _arrive can skip provably-no-op calls:
        # the base note_load ignores self-loads (observer == subject) and the
        # base on_seed_arrival always keeps the seed.  Subclassed hooks are
        # always called.
        self._note_load = self.balancer.note_load
        self._on_seed_arrival = self.balancer.on_seed_arrival
        balancer_cls = type(self.balancer)
        self._note_load_is_base = (
            balancer_cls.note_load is Balancer.note_load
        )
        self._seed_hook_is_base = (
            balancer_cls.on_seed_arrival is Balancer.on_seed_arrival
        )
        # _arrive calls note_load either always (overridden hook) or only
        # for cross-PE messages whose strategy actually reads the ``known``
        # table the base hook maintains; stateless strategies skip the
        # table write entirely (one dict store per remote message).
        self._note_always = not self._note_load_is_base
        self._note_cross = (
            self._note_load_is_base and balancer_cls.uses_known_table
        )

        # Run-to-completion turn lane (docs/architecture.md "Execution turn
        # loop"): when an execution ends with a zero-length busy window and
        # its PE's queue is non-empty at that instant, the next envelope is
        # executed inline instead of bouncing through a separate _finish
        # event.  The lane is enabled once per run; it stays off whenever
        # per-event scheduling is observable (faults, tracing, timelines,
        # shared-media contention) so those paths are bit-identical to the
        # historical event-per-completion schedule.
        # A turn reorders same-timestamp work relative to the scalar
        # event-per-completion schedule, so it is only armed when nothing
        # can observe that interleaving: no faults/tracing/timelines, no
        # shared-media contention, zero local enqueue latency, and a
        # balancer whose interleave-sensitive hooks (note_load, seed
        # arrival, idle notification) are all the base no-ops.  Central /
        # ACWN / token / steal balancers therefore run the unchanged
        # scalar path — which is what keeps their golden traces
        # bit-identical.
        params = machine.params
        self._turn_ok = (
            turn_loop is not False
            and self._faults is None
            and self._events is None
            and self.timeline is None
            and params.bus_bandwidth == 0.0
            and params.link_bandwidth == 0.0
            and self._local_alpha == 0.0
            and self._note_load_is_base
            and self._seed_hook_is_base
            and balancer_cls.on_idle is Balancer.on_idle
        )
        # Inline self-arrivals (skipping the engine round-trip entirely)
        # are provably scalar-identical only on a single-PE machine, where
        # send order == arrival order == FIFO pop order and there is no
        # cross-PE observer of queue depth.
        self._elide_ok = self._turn_ok and machine.num_pes == 1
        # On a zero-latency network every transit_time call returns 0.0;
        # the flush loops skip the call (value-identical: t + 0.0 == t for
        # the non-negative times the engine deals in).
        self._transit_zero = (
            params.alpha == 0.0
            and params.beta == 0.0
            and params.per_hop == 0.0
            and params.bus_bandwidth == 0.0
            and params.link_bandwidth == 0.0
        )
        # Single-envelope hand-off: a turn execution whose only send was an
        # elided self-arrival onto an empty queue passes it straight to the
        # next loop iteration, skipping the enqueue/select round-trip.
        self._handoff: Optional[Envelope] = None
        self._turn_enabled = False      # armed per run()
        self._bundle_ok = False         # cohort bundling, armed per run()
        self._turn_cap = 0.0            # max elided events per run
        self._turn_fired = 0            # elided events (compensated in engine)
        self._turn_buf: List[Tuple[float, Envelope]] = []

        # Run state ------------------------------------------------------------
        self._current: Optional[ExecContext] = None
        # Entry executions never nest (message-driven, non-preemptive), so
        # one ExecContext is reset and reused per execution instead of
        # allocating a context + outbox list per message.
        self._ctx = ExecContext(0, 0.0, False)
        #: Virtual time at which the last *counted* (application) message
        #: finished executing — the true end of useful work, used to measure
        #: quiescence-detection latency (experiment T9).
        self.last_counted_exec_time = 0.0
        self._exited = False
        self._exit_requested = False
        self._exit_result: Any = None
        self._final_time: Optional[float] = None
        self._in_main_ctor = False
        self.main_handle: Optional[ChareHandle] = None
        self.readonly_vars: Dict[str, Any] = {}
        self.writeonce_vars: Dict[str, Any] = {}
        self._writeonce_avail: Dict[Tuple[str, int], bool] = {}

    # ====================================================================== run
    @property
    def num_pes(self) -> int:
        return self.machine.num_pes

    @property
    def counted_sent(self) -> List[int]:
        """Full-length per-PE counted-send view (compat; O(P) to build).

        The counters themselves live on the touched PEStates; untouched
        ranks report 0, exactly as the eager lists did.  Hot paths read
        ``self.pes[pe].counted_sent`` directly.
        """
        pes = self.pes
        return [
            0 if (s := pes.get(i)) is None else s.counted_sent
            for i in range(self.machine.num_pes)
        ]

    @property
    def counted_processed(self) -> List[int]:
        """Full-length per-PE counted-processed view (compat; O(P))."""
        pes = self.pes
        return [
            0 if (s := pes.get(i)) is None else s.counted_processed
            for i in range(self.machine.num_pes)
        ]

    @property
    def now(self) -> float:
        return self.engine.now

    def run(
        self,
        main_cls: type,
        *args: Any,
        max_events: Optional[int] = DEFAULT_MAX_EVENTS,
        until: Optional[float] = None,
    ) -> RunResult:
        """Execute a program from its main chare to completion.

        Completion is the first of: the main chare calls :meth:`Chare.exit`,
        the event heap drains, the optional virtual-time horizon ``until``
        passes, or ``max_events`` engine callbacks have fired (the run is
        then flagged ``truncated``).
        """
        if self.main_handle is not None:
            raise SchedulingError("a Kernel instance can run only one program")
        if not issubclass(main_cls, Chare):
            raise ConfigurationError(f"{main_cls.__name__} is not a Chare subclass")

        t0 = _host_time.perf_counter()
        self.engine.schedule_call(0.0, self._bootstrap, (main_cls, args))

        # Arm the turn lane.  Horizon runs step per event (the loop below)
        # and must observe the clock between completions, so the lane stays
        # off there.  The cap bounds how many completions a single engine
        # callback may absorb: an endless zero-cost self-send chain would
        # otherwise never return control to drive()'s budget check.
        self._turn_enabled = self._turn_ok and until is None
        # Cohort bundling shares the turn lane's preconditions but not its
        # parking: the main ctor and the exiting execution may not *start*
        # turns, yet their outboxes still bundle (arrival order is
        # unaffected; _arrive_many honors the stop flag).
        self._bundle_ok = self._turn_enabled
        self._turn_cap = (
            float("inf") if max_events is None else max_events
        )
        self._turn_fired = 0
        self._handoff = None
        self._turn_buf.clear()

        if until is None:
            # Common case: the backend's bulk drive() loop owns the
            # budget/stop checks (one compare each, and the batch backend
            # drains whole timestamp cohorts without surfacing per event).
            _, truncated = self.engine.drive(max_events)
            if (
                not truncated
                and not self._exited
                and max_events is not None
                and self.engine.events_fired >= max_events
            ):
                # Turn-lane completions count toward the event total via
                # the compensation counter but not toward drive()'s local
                # budget; flag the truncation it could not see.
                truncated = True
        else:
            truncated = False
            fired = 0
            step = self.engine.step
            while not self._exited:
                if max_events is not None and fired >= max_events:
                    truncated = True
                    break
                if self.now >= until:
                    truncated = True
                    break
                if not step():
                    break
                fired += 1

        from repro.trace.report import TraceReport

        if self._final_time is not None:
            # Advance the clock to the end of the exiting execution so that
            # reports and utilization use the true completion time.
            self.engine.advance_to(self._final_time)
        if self.telemetry is not None:
            # Final scrape at the settled clock (host-side only; the run's
            # virtual schedule is already complete).
            self.telemetry.on_run_end(truncated=truncated)
        return RunResult(
            result=self._exit_result,
            time=self.now,
            events=self.engine.events_fired,
            truncated=truncated,
            host_seconds=_host_time.perf_counter() - t0,
            stats=TraceReport.from_kernel(self),
            kernel=self,
        )

    def _bootstrap(self, payload: tuple) -> None:
        """Construct the main chare on PE 0 and open the startup gates."""
        main_cls, args = payload
        gid = self._alloc_gid()
        handle = ChareHandle(gid)
        self.main_handle = handle
        self.placement[gid] = 0
        env = Envelope(
            kind=Kind.SEED,
            src_pe=0,
            dst_pe=0,
            entry="__init__",
            args=args,
            handle=handle,
            chare_cls=main_cls,
            fixed=True,
            counted=False,
        )
        self._in_main_ctor = True
        # The main ctor must not start a turn (its completion event is the
        # anchor the startup gates key off), so the lane is parked for the
        # duration instead of checking _in_main_ctor on every execution.
        turn_armed = self._turn_enabled
        self._turn_enabled = False
        pe = self.pes[0]
        pe.busy = True
        self._execute(pe, env)
        self._turn_enabled = turn_armed and not self._exit_requested
        self._in_main_ctor = False
        if self.sparse:
            # Sparse startup: no init broadcast (an O(P) message wave is
            # exactly what this mode exists to avoid).  Replication is
            # modeled free — PEs materialize ungated, and read-only vars /
            # declarations are host-shared as always.
            return
        # Distribute init (read-only vars + declarations) down the rank tree.
        # Gates open as it arrives; PE 0's opens via a local message.
        init_payload = (dict(self.readonly_vars), self.sharing.declarations())
        self.svc_send("share", 0, 0, "init", init_payload, counted=False)

    # ============================================================== gid / utils
    def _alloc_gid(self) -> int:
        gid = self._next_gid
        self._next_gid += 1
        return gid

    @property
    def current(self) -> ExecContext:
        if self._current is None:
            raise SchedulingError(
                "chare API used outside an entry-method execution"
            )
        return self._current

    def pe_load(self, pe: int) -> int:
        """Instantaneous load metric of a PE (used via piggybacking only)."""
        return self.pes[pe].load

    # ================================================================= delivery
    def _deliver(self, env: Envelope, departure: float) -> None:
        """Hand an envelope to the network; schedule its arrival."""
        ctx = self._current
        if ctx is not None:
            # A mid-execution direct send (timed sends, cross-PE service
            # traffic, placement flushes) makes this execution's engine
            # footprint observable; the turn lane checks the flag.
            ctx.direct = True
        src_pe = env.src_pe
        src = self.pes[src_pe]
        # PEState.load, inlined (the property descriptor costs a Python call
        # per message).
        env.carried_load = src._app_queued + 1 if src.busy else src._app_queued
        src.msgs_sent += 1
        nbytes = env.nbytes
        src.bytes_sent += nbytes
        if env.uid is None:
            env.uid = self._next_uid
            self._next_uid += 1
        events = self._events
        if events is not None:
            events.msg_send(departure, env)
        if env.counted and not env.suppress_sent_count:
            src.counted_sent += 1
        dst_pe = env.dst_pe
        faults = self._faults
        if src_pe == dst_pe:
            # Local fast path: zero hops and a fixed enqueue latency — skip
            # the topology/hop accounting and the contention machinery
            # (Machine.transit_time returns local_alpha unconditionally for
            # src == dst, so virtual time is unchanged).
            if faults is None:
                self._schedule_call(
                    departure + self._local_alpha, self._arrive_cb, env
                )
            else:
                faults.transmit(env, departure, departure + self._local_alpha)
            return
        self.total_message_hops += self._hops(src_pe, dst_pe)
        transit = self._transit_time(src_pe, dst_pe, nbytes, departure)
        if faults is None:
            self._schedule_call(departure + transit, self._arrive_cb, env)
        else:
            faults.transmit(env, departure, departure + transit)

    def _flush_outbox_burst(
        self,
        outbox: List[Tuple[float, Envelope]],
        start: float,
        duration: float,
        base: float,
        wut: float,
    ) -> None:
        """Batch-lane outbox flush: one pass, grouped bulk scheduling.

        Semantics are exactly :meth:`_deliver` per envelope in outbox
        order — same float expressions, same counter updates, same uid
        sequence, same bus/link mutation order — with the per-envelope
        call frames and attribute walks hoisted out of the loop, and
        *consecutive* equal arrival times handed to the engine as a single
        ``schedule_calls`` cohort extend (consecutive-only grouping keeps
        bucket append order identical to the scalar path's, which is what
        the bit-identity guarantee rests on).  The scalar loop remains the
        fallback whenever fault injection or event tracing needs
        per-envelope control, or the machine is heterogeneous.
        """
        pes = self.pes
        next_uid = self._next_uid
        hops = self._hops
        transit_zero = self._transit_zero
        transit_time = self._transit_time
        local_alpha = self._local_alpha
        engine = self.engine
        schedule_calls = engine.schedule_calls
        schedule_call = engine.schedule_call
        arrive = self._arrive_cb
        arrive_many = self._arrive_many_cb
        bundle = self._bundle_ok and self._turn_fired < self._turn_cap
        hops_total = 0
        last_src = -1
        src = None
        carried = 0
        group: List[Envelope] = []
        group_time = -1.0
        # With no per-message overhead and free work units every departure
        # collapses to start; min()/mul per envelope drop out.
        flat_departure = base == 0.0 and wut == 0.0
        for charged_at_send, env in outbox:
            if flat_departure:
                departure = start
            else:
                departure = start + min(base + charged_at_send * wut, duration)
            src_pe = env.src_pe
            if src_pe != last_src:
                src = pes[src_pe]
                carried = src._app_queued + 1 if src.busy else src._app_queued
                last_src = src_pe
            env.carried_load = carried
            src.msgs_sent += 1
            nbytes = env.nbytes
            src.bytes_sent += nbytes
            if env.uid is None:
                env.uid = next_uid
                next_uid += 1
            if env.counted and not env.suppress_sent_count:
                src.counted_sent += 1
            dst_pe = env.dst_pe
            if src_pe == dst_pe:
                arrival = departure + local_alpha
            else:
                hops_total += hops(src_pe, dst_pe)
                if transit_zero:
                    arrival = departure
                else:
                    arrival = departure + transit_time(
                        src_pe, dst_pe, nbytes, departure
                    )
            if arrival == group_time:
                group.append(env)
            else:
                if group:
                    if len(group) == 1:
                        schedule_call(group_time, arrive, group[0])
                    elif bundle:
                        schedule_call(group_time, arrive_many, group)
                    else:
                        schedule_calls(group_time, arrive, group)
                group = [env]
                group_time = arrival
        if group:
            if len(group) == 1:
                schedule_call(group_time, arrive, group[0])
            elif bundle:
                schedule_call(group_time, arrive_many, group)
            else:
                schedule_calls(group_time, arrive, group)
        self._next_uid = next_uid
        self.total_message_hops += hops_total

    def _arrive(self, env: Envelope) -> None:
        """An envelope reached its destination PE's pool."""
        dst_pe = env.dst_pe
        pe = self.pes[dst_pe]
        src_pe = env.src_pe
        events = self._events
        if events is not None:
            events.msg_deliver(self.engine._now, env)
        if self._note_always or (self._note_cross and src_pe != dst_pe):
            # Base note_load ignores self-loads (skipped when not
            # overridden) and only feeds the ``known`` table (skipped when
            # the strategy never reads it).
            self._note_load(dst_pe, src_pe, env.carried_load)
        if env.kind == _SEED and not env.fixed and not self._seed_hook_is_base:
            fwd = self._on_seed_arrival(dst_pe, env)
            if fwd is not None and fwd != dst_pe:
                pe.seeds_forwarded_in += 1
                if events is None:
                    self._deliver(env.forwarded(fwd),
                                  self.now + self.params.recv_overhead)
                    return
                # Chain the forwarding leg through an explicit LB decision
                # event parented on this delivery, so multi-hop seeds stay
                # one causal chain (each leg gets a fresh uid).
                decision = events.record(
                    "lb", self.engine._now, dst_pe, name="forward",
                    uid=env.uid, parent=events.deliver_parent(env.uid),
                    info={"to": fwd, "hops": env.hops + 1},
                )
                saved = events.ctx
                events.ctx = decision
                self._deliver(env.forwarded(fwd),
                              self.now + self.params.recv_overhead)
                events.ctx = saved
                return
            # NOTE: placement is recorded at *construction*, not here, so a
            # work-stealing balancer may still extract the queued seed.
        if not pe.busy and not pe.gated and pe._queued == 0:
            # Idle-PE fast path: the envelope would be enqueued and popped
            # right back by _start_service; execute it directly.  Only for
            # kinds that are servable on the spot (a seed always is; an APP
            # message only if its target already exists) — everything else
            # takes the full selection loop.  The high-water mark still
            # counts the momentary queue depth of 1.
            kind = env.kind
            if kind == _SEED or (
                kind == _APP and env.handle.gid in self.chares
            ) or env.system or kind == _SVC:
                if pe.max_queued == 0:
                    pe.max_queued = 1
                pe.busy = True
                self._execute_turn(pe, env)
                return
        pe.enqueue(env)
        if not pe.busy:
            self._start_service(pe)

    def _place(self, gid: int, pe: int) -> None:
        """Fix a chare's location; flush sends buffered against its handle."""
        self.placement[gid] = pe
        pending = self._pending_sends.pop(gid, None)
        if pending:
            events = self._events
            for src_pe, entry_name, args, priority, prio_key, parent in pending:
                out = Envelope(
                    kind=Kind.APP,
                    src_pe=src_pe,
                    dst_pe=pe,
                    entry=entry_name,
                    args=args,
                    handle=ChareHandle(gid),
                    priority=priority,
                    prio_key=prio_key,
                )
                if events is None:
                    self._deliver(out, self.now)
                else:
                    # The flush runs inside the *constructing* execution;
                    # re-parent each send on the execution that buffered it.
                    saved = events.ctx
                    events.ctx = parent
                    self._deliver(out, self.now)
                    events.ctx = saved

    # ================================================================ scheduler
    def _select(self, pe: PEState, notify: bool) -> Optional[Envelope]:
        """Pick the next servable envelope, or None when the PE drains.

        The one shared selection drain (historically duplicated across
        ``_start_service`` and ``_finish``): holds premature APP/BOC
        messages until their target exists and, when ``notify`` and the PE
        has truly run dry, tells the balancer.  The turn lane selects with
        ``notify=False`` — its trailing real completion event owns the idle
        notification, in scalar event order.
        """
        while True:
            env = pe.next_envelope()
            if env is None:
                if (
                    notify
                    and not pe.gated
                    and not pe.has_work()
                    and not pe.idle_notified
                ):
                    pe.idle_notified = True
                    self.balancer.on_idle(pe.index)
                return None
            kind = env.kind
            if kind == _APP:
                gid = env.handle.gid
                if gid in self.chares:
                    return env
                if gid in self.destroyed:
                    raise RoutingError(
                        f"message {env.entry!r} to destroyed chare {env.handle}"
                    )
                # Arrived before its target was constructed; hold until then.
                self._premature.setdefault(gid, []).append(env)
                continue
            if kind == _BOC and env.dst_pe not in self.bocs.get(
                env.boc.boc_id, {}
            ):
                self._boc_premature.setdefault(
                    (env.boc.boc_id, env.dst_pe), []
                ).append(env)
                continue
            return env

    def _start_service(self, pe: PEState) -> None:
        """If idle, pick the next message and execute it."""
        if self._exited or pe.busy:
            return
        env = self._select(pe, True)
        if env is None:
            return
        pe.busy = True
        self._execute_turn(pe, env)

    def _execute_turn(self, pe: PEState, env: Envelope) -> None:
        """Run an execution and, inline, its zero-window successors.

        While :meth:`_execute` keeps eliding its completion event (zero
        busy window, turn lane armed) and the PE's queue is non-empty *at
        this instant*, the next envelope is selected and executed in the
        same engine callback — the run-to-completion turn.  Each inlined
        completion is compensated in the engine's fired counter, so
        ``RunResult.events`` is conserved exactly.  The turn ends with one
        real completion event: it fires after any same-timestamp arrivals
        still in the engine, which keeps late-cohort selection and idle
        notification in scalar order.
        """
        execute = self._execute
        select = self._select
        free = _env_free
        fired = 0
        while True:
            if not execute(pe, env):
                if fired:
                    self.engine.bump_fired(fired)
                return
            # An elided completion means the turn gate held for this
            # execution: no event log, fault layer or timeline exists to
            # retain the envelope, so it is dead and can be recycled.
            if len(free) < _ENV_FREE_CAP:
                free.append(env)
            env = self._handoff
            if env is None:
                if not pe._queued:
                    break
                env = select(pe, False)
                if env is None:
                    # Only premature-held work was queued.
                    break
            else:
                self._handoff = None
            fired += 1
            self._turn_fired += 1
        if fired:
            self.engine.bump_fired(fired)
        if self._turn_buf:
            self._flush_turn_buf()
        self._schedule_call(pe.busy_until, self._finish_cb, pe)

    def _flush_outbox_turn(
        self, outbox: List[Tuple[float, Envelope]], pe: PEState, start: float
    ) -> None:
        """Outbox flush for a zero-window turn execution.

        With ``duration == 0`` every departure collapses to ``start``, so
        the per-envelope offset arithmetic drops out.  Self-sends whose
        arrival would be a pure enqueue are put on the PE's queue on the
        spot (the elided arrival event is compensated); everything else is
        deferred to the turn buffer and bulk-scheduled when the turn hands
        control back to the engine.  Send-side accounting matches
        :meth:`_deliver` field for field, and the carried load is computed
        once before any enqueue so piggybacked values equal the scalar
        path's.
        """
        src_pe = pe.index
        carried = pe._app_queued + 1 if pe.busy else pe._app_queued
        next_uid = self._next_uid
        early = self._elide_ok
        if early and len(outbox) == 1:
            # Single self-send on a 1-PE machine — the zero-cost chain
            # shape (PingPong, self-driving actors).  One envelope, no
            # deferral buffer, no topology locals: accounting matches the
            # loop below field for field.
            env = outbox[0][1]
            env.carried_load = carried
            pe.msgs_sent += 1
            pe.bytes_sent += env.nbytes
            if env.uid is None:
                env.uid = next_uid
                self._next_uid = next_uid + 1
            if env.counted and not env.suppress_sent_count:
                pe.counted_sent += 1
            kind = env.kind
            if (
                pe._queued == 0
                and not pe.gated
                and (kind == _SEED or env.system or kind == _SVC
                     or (kind == _APP and env.handle.gid in self.chares))
            ):
                if pe.max_queued == 0:
                    pe.max_queued = 1
                self._handoff = env
            else:
                pe.enqueue(env)
            self.engine._events_fired += 1
            self._turn_fired += 1
            return
        buf = self._turn_buf
        local_alpha = self._local_alpha
        hops = self._hops
        transit_zero = self._transit_zero
        transit_time = self._transit_time
        chares = self.chares
        hops_total = 0
        elided = 0
        for _charged, env in outbox:
            env.carried_load = carried
            pe.msgs_sent += 1
            nbytes = env.nbytes
            pe.bytes_sent += nbytes
            if env.uid is None:
                env.uid = next_uid
                next_uid += 1
            if env.counted and not env.suppress_sent_count:
                pe.counted_sent += 1
            dst_pe = env.dst_pe
            if dst_pe == src_pe:
                if early:
                    # Inline arrival: exactly what _arrive would do for a
                    # same-instant local message on a busy, ungated PE with
                    # base hooks — one engine round-trip elided.
                    elided += 1
                    kind = env.kind
                    if (
                        len(outbox) == 1
                        and pe._queued == 0
                        and not pe.gated
                        and (kind == _SEED or env.system or kind == _SVC
                             or (kind == _APP and env.handle.gid in chares))
                    ):
                        # Enqueue-then-pop collapses to a direct hand-off;
                        # the momentary depth of 1 still hits the mark.
                        if pe.max_queued == 0:
                            pe.max_queued = 1
                        self._handoff = env
                        continue
                    pe.enqueue(env)
                    continue
                buf.append((start + local_alpha, env))
                continue
            hops_total += hops(src_pe, dst_pe)
            if transit_zero:
                buf.append((start, env))
            else:
                buf.append(
                    (start + transit_time(src_pe, dst_pe, nbytes, start), env)
                )
        self._next_uid = next_uid
        self.total_message_hops += hops_total
        if elided:
            # Same contract as engine.bump_fired, open-coded: this runs
            # once per turn execution with an outbox.
            self.engine._events_fired += elided
            self._turn_fired += elided

    def _arrive_many(self, envs: List[Envelope]) -> None:
        """Deliver a same-time arrival cohort inside one engine event.

        ``schedule_calls`` gives a cohort contiguous sequence numbers, so
        in the scalar schedule its arrivals fire back to back with nothing
        interleaved: same-time work scheduled before the cohort has a
        smaller seq (fires earlier), work scheduled after — including by
        a callback running mid-cohort — has a larger one (fires later).
        Folding the cohort into a single engine entry therefore preserves
        arrival order exactly while paying one heap push/pop for the lot.
        The folded entries are compensated via :meth:`bump_fired` and
        count toward the turn cap, and the engine's stop flag is honored
        between arrivals exactly as the scalar drive loop honors it.
        """
        engine = self.engine
        arrive = self._arrive
        n = 0
        if self._bundle_ok and not self._note_cross:
            # All per-arrival hooks are provably no-ops here (bundling
            # implies base balancer hooks, no tracing/faults, and the
            # note_load table is dead), so a busy destination's arrival is
            # exactly one enqueue — skip the _arrive frame for it.  A
            # non-busy destination takes the full path (idle fast lane,
            # gated service start), which may stop the engine.
            pes = self.pes
            try:
                for env in envs:
                    n += 1
                    pe = pes[env.dst_pe]
                    if pe.busy:
                        pe.enqueue(env)
                    else:
                        arrive(env)
                        if engine._stop:
                            break
            finally:
                n -= 1
                if n > 0:
                    self._turn_fired += n
                    engine.bump_fired(n)
            return
        try:
            for env in envs:
                n += 1
                arrive(env)
                if engine._stop:
                    break
        finally:
            n -= 1
            if n > 0:
                self._turn_fired += n
                engine.bump_fired(n)

    def _flush_turn_buf(self) -> None:
        """Bulk-schedule the sends deferred across a turn, in send order,
        grouping consecutive equal arrival times into one cohort.  While
        the turn cap has headroom, a multi-envelope cohort is bundled
        into one engine entry (:meth:`_arrive_many`)."""
        engine = self.engine
        schedule_call = engine.schedule_call
        arrive = self._arrive_cb
        arrive_many = self._arrive_many_cb
        bundle = self._turn_fired < self._turn_cap
        group: List[Envelope] = []
        group_time = -1.0
        for arrival, env in self._turn_buf:
            if arrival == group_time:
                group.append(env)
            else:
                if group:
                    if len(group) == 1:
                        schedule_call(group_time, arrive, group[0])
                    elif bundle:
                        schedule_call(group_time, arrive_many, group)
                    else:
                        engine.schedule_calls(group_time, arrive, group)
                group = [env]
                group_time = arrival
        if group:
            if len(group) == 1:
                schedule_call(group_time, arrive, group[0])
            elif bundle:
                schedule_call(group_time, arrive_many, group)
            else:
                engine.schedule_calls(group_time, arrive, group)
        self._turn_buf.clear()

    def _execute(self, pe: PEState, env: Envelope) -> bool:
        """Run one entry method; occupy the PE; emit its sends.

        Returns True when the completion event was elided (zero busy
        window, turn lane armed) and the caller — :meth:`_execute_turn` —
        should continue the turn inline; False when the completion was
        scheduled as a real event (or the program exited).
        """
        kind = env.kind
        ctx = self._ctx
        start = ctx.start = self.engine._now
        ctx.pe = pe.index
        ctx.charged = 0.0
        ctx.system = env.system or kind == _SVC
        ctx.direct = False
        outbox = ctx.outbox
        outbox.clear()
        # busy_until still holds the previous execution's end: the window
        # since then is this PE's idle gap (tracked always — one compare —
        # for the TraceReport largest_idle_gap aggregate).
        prev_end = pe.busy_until
        if start > prev_end and start - prev_end > pe.largest_idle_gap:
            pe.largest_idle_gap = start - prev_end
        events = self._events
        if events is not None:
            # Recorded before the body so sends made during it (outbox,
            # buffered flushes, service traffic) parent on this execution.
            begin_eid = events.exec_begin(start, pe.index, env, prev_end)
        self._current = ctx
        try:
            # Inlined _dispatch for the two per-message kinds; SVC/BOC (and
            # the unknown-kind error) go through the full router.
            if kind == _APP:
                chare = self.chares.get(env.handle.gid)
                if chare is None:
                    raise RoutingError(f"message to unknown chare {env.handle}")
                fns = self._entry_cache.get(type(chare))
                fn = None if fns is None else fns.get(env.entry)
                if fn is not None:
                    fn(chare, *env.args)
                else:
                    self._invoke(chare, env.entry, env.args)
            elif kind == _SEED:
                # _construct_chare, inlined: one frame per created chare.
                handle = env.handle
                gid = handle.gid
                placement = self.placement
                if placement.get(gid) is None:
                    placement[gid] = pe.index
                    if gid in self._pending_sends:
                        self._place(gid, pe.index)
                cls = env.chare_cls
                obj = cls.__new__(cls)
                obj._kernel = self
                obj._handle = handle
                obj._pe = pe.index
                self.chares[gid] = obj
                obj.__init__(*env.args)
                if self._premature:
                    # Anything that raced ahead of construction is now
                    # runnable (transit already paid).
                    for held in self._premature.pop(gid, ()):
                        pe.enqueue(held)
            else:
                self._dispatch(pe, env)
        finally:
            self._current = None
        base = self._overhead_base
        wut = self._work_unit_time
        charged = ctx.charged
        if wut is not None:
            duration = base + charged * wut
        else:
            duration = base + self.machine.compute_time(charged, pe.index)
        faults = self._faults
        if faults is not None:
            duration = faults.perturb_execution(pe.index, start, duration)
        pe.busy_time += duration
        pe.charged_units += charged
        if kind == _APP and not env.system:
            pe.msgs_executed += 1
            pe.idle_notified = False
        elif kind == _SVC or env.system:
            pe.system_executed += 1
        elif kind == _SEED:
            pe.seeds_executed += 1
            pe.idle_notified = False
        else:
            pe.msgs_executed += 1
            pe.idle_notified = False
        if env.counted:
            pe.counted_processed += 1
            self.last_counted_exec_time = start + duration
        if self.timeline is not None:
            self.timeline.record(pe.index, start, duration, env)
        telemetry = self._telemetry
        if telemetry is not None:
            # Above the turn bail-out on purpose: elided completions are
            # observed too, which is what makes turn-mode and scalar-mode
            # telemetry counters equal.
            telemetry.on_execute(pe, env, start, duration, charged)
        if (
            duration == 0.0
            and self._turn_enabled
            and not pe.gated
            and not ctx.direct
            and self._turn_fired < self._turn_cap
        ):
            # _turn_enabled subsumes the exit-requested and main-ctor
            # checks: api_exit disarms the lane and _bootstrap parks it.
            # Zero busy window and nothing observes per-event scheduling:
            # elide the completion event and let the caller continue the
            # turn.  busy_until collapses to start (duration is zero).
            if outbox:
                self._flush_outbox_turn(outbox, pe, start)
                outbox.clear()
            pe.busy_until = start
            return True
        if self._turn_buf:
            # Sends deferred by earlier turn executions must reach the
            # engine before this execution's own outbox does.
            self._flush_turn_buf()
        if outbox:
            if len(outbox) >= 4 and self._burst_ok and wut is not None:
                self._flush_outbox_burst(outbox, start, duration, base, wut)
            else:
                for charged_at_send, out in outbox:
                    if wut is not None:
                        offset = base + charged_at_send * wut
                    else:
                        offset = base + self.machine.compute_time(
                            charged_at_send, pe.index
                        )
                    self._deliver(out, start + min(offset, duration))
            outbox.clear()
        pe.busy_until = busy_until = start + duration
        if events is not None:
            # After the outbox flush so the sends fall inside this
            # execution's causal window; exit-flagged ends anchor the
            # critical-path walk.
            events.exec_end(busy_until, pe.index, env, duration, begin_eid,
                            self._exit_requested)
        if self._exit_requested and not self._exited:
            self._exited = True
            self._final_time = busy_until
            self.engine.request_stop()
            return False
        self._schedule_call(busy_until, self._finish_cb, pe)
        return False

    def _dispatch(self, pe: PEState, env: Envelope) -> None:
        """Route an envelope to its handler (chare entry, BOC entry, service)."""
        kind = env.kind
        if kind == _APP:
            chare = self.chares.get(env.handle.gid)
            if chare is None:
                raise RoutingError(f"message to unknown chare {env.handle}")
            self._invoke(chare, env.entry, env.args)
        elif kind == _SEED:
            self._construct_chare(pe, env)
        elif kind == _SVC:
            self.services[env.service].handle(env.dst_pe, env.entry, env.args)
        elif kind == _BOC:
            branch = self.bocs[env.boc.boc_id].get(env.dst_pe)
            if branch is None:
                raise RoutingError(
                    f"message to missing branch {env.boc} on PE {env.dst_pe}"
                )
            self._invoke(branch, env.entry, env.args)
        else:  # pragma: no cover - exhaustive
            raise RoutingError(f"unknown envelope kind {env.kind}")

    def _invoke(self, obj: Chare, entry_name: str, args: tuple) -> None:
        cls = type(obj)
        fns = self._entry_cache.get(cls)
        fn = None if fns is None else fns.get(entry_name)
        if fn is None:
            fn = getattr(cls, entry_name, None)
            if not isinstance(fn, _FunctionType) or (
                self.strict_entries and not is_entry(fn)
            ):
                # Rare/legacy shapes (instance-level attributes, missing or
                # unmarked entries): resolve on the instance for the exact
                # historical error behavior, and don't cache.
                method = getattr(obj, entry_name, None)
                if method is None:
                    raise RoutingError(
                        f"{cls.__name__} has no entry {entry_name!r}"
                    )
                if self.strict_entries and not is_entry(method):
                    raise RoutingError(
                        f"{cls.__name__}.{entry_name} is not marked @entry"
                    )
                method(*args)
                return
            if fns is None:
                fns = self._entry_cache[cls] = {}
            fns[entry_name] = fn
        fn(obj, *args)

    def _construct_chare(self, pe: PEState, env: Envelope) -> None:
        gid = env.handle.gid
        placement = self.placement
        if placement.get(gid) is None:
            # _place, inlined for the common no-buffered-sends case (one
            # construction per chare, so the extra frame is per-seed cost).
            placement[gid] = pe.index
            if gid in self._pending_sends:
                self._place(gid, pe.index)
        obj = env.chare_cls.__new__(env.chare_cls)
        obj._kernel = self
        obj._handle = env.handle
        obj._pe = pe.index
        self.chares[gid] = obj
        obj.__init__(*env.args)
        # Anything that raced ahead of construction is now runnable.
        for held in self._premature.pop(gid, ()):  # already paid transit
            pe.enqueue(held)

    def _finish(self, pe: PEState) -> None:
        """An execution completed; serve the PE's next message.

        One real completion event per turn (a turn of length one is the
        scalar case): selection goes through the shared :meth:`_select`
        drain, and any zero-window successors are absorbed inline by
        :meth:`_execute_turn`.
        """
        pe.busy = False
        if self._exited:
            return
        env = self._select(pe, True)
        if env is None:
            return
        pe.busy = True
        self._execute_turn(pe, env)

    # ================================================================== chare API
    def api_charge(self, units: float) -> None:
        if units < 0:
            raise ConfigurationError("cannot charge negative work")
        ctx = self._current
        if ctx is None:
            raise SchedulingError(
                "chare API used outside an entry-method execution"
            )
        ctx.charged += units

    def api_send(
        self,
        target: ChareHandle,
        entry_name: str,
        args: tuple,
        priority: PriorityLike,
    ) -> None:
        # self.current, inlined: send/charge/create are the hot chare APIs
        # and the property descriptor costs a call frame per use.
        ctx = self._current
        if ctx is None:
            raise SchedulingError(
                "chare API used outside an entry-method execution"
            )
        dst = self.placement.get(target.gid, "missing")
        if dst == "missing":
            raise RoutingError(f"send to unknown handle {target}")
        # Normalize once at send time; every downstream enqueue (arrival,
        # requeue, forwarding leg, fault retransmission) reuses the key.
        key = None if priority is None else normalize_priority(priority)
        if dst is None:
            # Seed still being balanced: buffer; flushed (and counted) at
            # placement time.  Quiescence stays safe meanwhile because the
            # seed itself is in flight (sent > processed).
            events = self._events
            self._pending_sends.setdefault(target.gid, []).append(
                (ctx.pe, entry_name, args, priority, key,
                 None if events is None else events.ctx)
            )
            return
        env = Envelope.make_app(ctx.pe, dst, entry_name, args, target,
                                priority, key)
        ctx.outbox.append((ctx.charged, env))

    def api_send_at(
        self,
        target: ChareHandle,
        entry_name: str,
        args: tuple,
        when: float,
        priority: PriorityLike,
    ) -> None:
        """Timed send: the message departs at virtual time ``when``.

        The open-loop workloads (:mod:`repro.apps.serving`) use this to
        schedule *future* self-messages — a load generator's next arrival
        tick — without a kernel timer subsystem.  Unlike :meth:`api_send`,
        the envelope bypasses the outbox (whose departure is stamped from
        charged work at execution end) and goes straight to
        :meth:`_deliver` with ``departure = max(when, execution start)``,
        so accounting, tracing, fault injection and quiescence counting all
        see a perfectly ordinary message.  The target must already be
        placed (the pending-seed buffer has no timestamp slot); in practice
        timed sends target ``self`` or the main chare.
        """
        ctx = self._current
        if ctx is None:
            raise SchedulingError(
                "chare API used outside an entry-method execution"
            )
        dst = self.placement.get(target.gid, "missing")
        if dst == "missing":
            raise RoutingError(f"timed send to unknown handle {target}")
        if dst is None:
            raise RoutingError(
                f"timed send to {target} before placement; send_at targets "
                "must already be placed (self, main, or a fixed-PE chare)"
            )
        key = None if priority is None else normalize_priority(priority)
        env = Envelope(
            kind=Kind.APP,
            src_pe=ctx.pe,
            dst_pe=dst,
            entry=entry_name,
            args=args,
            handle=target,
            priority=priority,
            prio_key=key,
        )
        now = self.engine._now
        self._deliver(env, when if when > now else now)

    def api_create(
        self,
        chare_cls: type,
        args: tuple,
        pe: Optional[int],
        priority: PriorityLike,
    ) -> ChareHandle:
        if chare_cls not in self._validated_chare_classes:
            if not issubclass(chare_cls, Chare):
                raise ConfigurationError(
                    f"{chare_cls.__name__} is not a Chare subclass"
                )
            if issubclass(chare_cls, BranchOfficeChare):
                raise ConfigurationError("use create_boc for branch-office chares")
            self._validated_chare_classes.add(chare_cls)
        ctx = self._current
        if ctx is None:
            raise SchedulingError(
                "chare API used outside an entry-method execution"
            )
        gid = self._next_gid        # _alloc_gid, inlined (one per create)
        self._next_gid = gid + 1
        handle = mint_chare_handle(gid)
        src = ctx.pe
        self.pes[src].seeds_created += 1
        key = None if priority is None else normalize_priority(priority)
        if pe is not None:
            if not 0 <= pe < self.num_pes:
                raise RoutingError(f"create on invalid PE {pe}")
            self.placement[gid] = pe
            env = Envelope.make_seed(src, pe, args, handle, chare_cls,
                                     fixed=True, priority=priority,
                                     prio_key=key)
        else:
            self.placement[gid] = None
            target = self.balancer.on_new_seed(src, chare_cls)
            events = self._events
            if events is not None and target != src:
                events.record(
                    "lb", self.engine._now, src, name="place",
                    parent=events.ctx,
                    info={"to": target, "chare": chare_cls.__name__},
                )
            env = Envelope.make_seed(src, target, args, handle, chare_cls,
                                     priority=priority, prio_key=key)
        ctx.outbox.append((ctx.charged, env))
        return handle

    def api_destroy(self, handle: ChareHandle) -> None:
        """Destroy a chare (it must live on the calling PE).

        Mirrors C++ ``delete this`` / deleting a co-located object in the
        paper's model: destruction is immediate and local; any message that
        subsequently reaches the dead chare is a program error.
        """
        ctx = self.current
        gid = handle.gid
        obj = self.chares.get(gid)
        if obj is None:
            raise RoutingError(f"destroy of unknown or unbuilt chare {handle}")
        if obj._pe != ctx.pe:
            raise RoutingError(
                f"destroy of {handle} must run on its home PE {obj._pe}, "
                f"not PE {ctx.pe}"
            )
        del self.chares[gid]
        self.destroyed.add(gid)

    def api_exit(self, result: Any) -> None:
        # The run ends when the *exiting execution* completes, so the final
        # virtual time includes the work charged by the exiting entry.
        self._exit_requested = True
        # Disarm the turn lane for good (a Kernel runs one program): the
        # exiting execution must end its turn through the scalar tail so
        # the stop request reaches the engine.
        self._turn_enabled = False
        self._exit_result = result

    # ----------------------------------------------------------------- BOC API
    def api_create_boc(self, boc_cls: type, args: tuple) -> BocHandle:
        if not issubclass(boc_cls, BranchOfficeChare):
            raise ConfigurationError(
                f"{boc_cls.__name__} is not a BranchOfficeChare subclass"
            )
        ctx = self.current
        boc_id = self._next_boc
        self._next_boc += 1
        self.bocs[boc_id] = {}
        # Replicate via the spanning tree: construction cost is real messages.
        self.svc_send(
            "share", ctx.pe, 0, "boc_create", (boc_id, boc_cls, args), counted=True
        )
        return BocHandle(boc_id)

    def construct_branch(
        self, boc_id: int, boc_cls: type, args: tuple, pe: int
    ) -> None:
        """Instantiate one branch (called by the sharing service handler)."""
        obj = boc_cls.__new__(boc_cls)
        obj._kernel = self
        obj._handle = ChareHandle(-1 - boc_id)  # branches are not chare-addressable
        obj._pe = pe
        obj._boc = BocHandle(boc_id)
        self.bocs[boc_id][pe] = obj
        obj.__init__(*args)
        for held in self._boc_premature.pop((boc_id, pe), ()):
            self.pes[pe].enqueue(held)

    def api_send_branch(
        self,
        boc: BocHandle,
        pe: int,
        entry_name: str,
        args: tuple,
        priority: PriorityLike,
    ) -> None:
        ctx = self.current
        if not 0 <= pe < self.num_pes:
            raise RoutingError(f"branch send to invalid PE {pe}")
        span = self.boc_spans.get(boc.boc_id)
        if span is not None and pe not in span[1]:
            # Sparse kernels materialize branches on the ranks that were
            # touched when the BOC was created (the write-once span); a
            # send outside it would wait forever for a branch that will
            # never be constructed, so fail it loudly instead.
            raise RoutingError(
                f"branch send to PE {pe}: {boc} spans "
                f"{len(span[0])} touched ranks and PE {pe} is not one "
                "(sparse BOCs cover the ranks active at creation)"
            )
        env = Envelope(
            kind=Kind.BOC,
            src_pe=ctx.pe,
            dst_pe=pe,
            entry=entry_name,
            args=args,
            boc=boc,
            priority=priority,
            prio_key=None if priority is None else normalize_priority(priority),
        )
        ctx.outbox.append((ctx.charged, env))

    def api_boc_broadcast(self, boc: BocHandle, entry_name: str, args: tuple) -> None:
        ctx = self.current
        self.svc_send(
            "share",
            ctx.pe,
            0,
            "boc_bcast",
            (boc.boc_id, entry_name, args),
            counted=True,
        )

    def api_local_branch(self, boc: BocHandle) -> BranchOfficeChare:
        ctx = self.current
        branch = self.bocs.get(boc.boc_id, {}).get(ctx.pe)
        if branch is None:
            raise RoutingError(
                f"no local branch of {boc} on PE {ctx.pe} (not yet constructed?)"
            )
        return branch

    def deliver_local_boc(
        self, boc_id: int, pe: int, entry_name: str, args: tuple
    ) -> None:
        """Queue a local BOC invocation (used by broadcast fan-out)."""
        env = Envelope(
            kind=Kind.BOC,
            src_pe=pe,
            dst_pe=pe,
            entry=entry_name,
            args=args,
            boc=BocHandle(boc_id),
        )
        ctx = self.current
        ctx.outbox.append((ctx.charged, env))

    # -------------------------------------------------------------- reductions
    def api_contribute(
        self,
        boc: BocHandle,
        tag: str,
        value: Any,
        op: str | Callable[[Any, Any], Any],
        target: ChareHandle,
        entry_name: str,
    ) -> None:
        ctx = self.current
        self._reduce_fold(boc.boc_id, tag, ctx.pe, value, op, target, entry_name,
                          own=True, span=self.boc_spans.get(boc.boc_id))

    def api_barrier(self, boc: BocHandle, tag: str, entry_name: str) -> None:
        """Join a barrier over all branches of ``boc``.

        When every branch has called ``barrier(tag, entry)``, the runtime
        broadcasts ``entry_name(tag, num_pes)`` to every branch — the
        compiler-supported synchronization point the paper suggests for
        arrays of cooperating processes.
        """
        ctx = self.current
        self._reduce_fold(boc.boc_id, tag, ctx.pe, 1, "sum", None, entry_name,
                          own=True, mode="barrier",
                          span=self.boc_spans.get(boc.boc_id))

    def _red_state(self, boc_id: int, tag: str, pe: int,
                   span: Optional[tuple] = None) -> dict:
        key = (boc_id, tag, pe)
        st = self._reductions.get(key)
        if st is None:
            if span is not None:
                # Sparse collect/BOC: fold over the snapshot's virtual
                # tree.  Accumulator snapshots are (ranks, tree) pairs,
                # BOC spans are (ranks, rank_set, tree) triples; both put
                # the ranks first and the tree last.
                ranks = span[0]
                wtree = span[-1]
                need = 1 + len(wtree.children(bisect_left(ranks, pe)))
            else:
                need = 1 + len(self.tree.children(pe))
            st = {
                "value": None,
                "have": 0,
                "need": need,
                "op": None,
                "target": None,
                "entry": None,
                "mode": "deliver",
            }
            self._reductions[key] = st
        return st

    def _reduce_fold(
        self,
        boc_id: int,
        tag: str,
        pe: int,
        value: Any,
        op,
        target: Optional[ChareHandle],
        entry_name: str,
        own: bool,
        mode: str = "deliver",
        span: Optional[tuple] = None,
    ) -> bool:
        """Fold one contribution; returns True when the root completed.

        ``span`` — a ``(sorted_ranks, virtual_tree)`` snapshot — reshapes
        the fold over the touched set for sparse accumulator collects;
        ``None`` folds over the machine's full spanning tree as always.
        """
        from repro.sharing.ops import combine  # avoid import cycle at module load

        st = self._red_state(boc_id, tag, pe, span)
        if op is not None:
            st["op"] = op
        if target is not None:
            st["target"] = target
        if entry_name:
            st["entry"] = entry_name
        if mode != "deliver":
            st["mode"] = mode
        st["value"] = value if st["have"] == 0 else combine(st["op"], st["value"], value)
        st["have"] += 1
        if st["have"] < st["need"]:
            return False
        # Subtree complete: push up, or complete at the root.
        del self._reductions[(boc_id, tag, pe)]
        if span is not None:
            ranks = span[0]
            wtree = span[-1]
            vparent = wtree.parent(bisect_left(ranks, pe))
            parent = None if vparent is None else ranks[vparent]
        else:
            parent = self.tree.parent(pe)
        if parent is not None:
            self.svc_send(
                "share",
                pe,
                parent,
                "red_up",
                (boc_id, tag, st["value"], st["op"], st["target"], st["entry"],
                 st["mode"]),
                counted=True,
            )
            return False
        if st["mode"] == "barrier":
            # Release: every branch gets entry(tag, count) via the tree.
            self.svc_send(
                "share", pe, 0, "boc_bcast",
                (boc_id, st["entry"], (tag, st["value"])), counted=True,
            )
            return True
        env = Envelope(
            kind=Kind.APP,
            src_pe=pe,
            dst_pe=self._require_placed(st["target"]),
            entry=st["entry"],
            args=(tag, st["value"]),
            handle=st["target"],
        )
        ctx = self.current
        ctx.outbox.append((ctx.charged, env))
        return True

    def _require_placed(self, handle: ChareHandle) -> int:
        dst = self.placement.get(handle.gid)
        if dst is None:
            raise RoutingError(f"reduction target {handle} not placed yet")
        return dst

    # ------------------------------------------------------------- service send
    def svc_send(
        self,
        service: str,
        src_pe: int,
        dst_pe: int,
        op: str,
        args: tuple,
        counted: bool = False,
    ) -> None:
        """Send a runtime-service message (system lane on arrival)."""
        env = Envelope.make_svc(src_pe, dst_pe, op, args, service, counted)
        ctx = self._current
        if ctx is not None and ctx.pe == src_pe:
            ctx.outbox.append((ctx.charged, env))
        else:
            self._deliver(env, self.now)

    # ------------------------------------------------------------ sharing API
    # Thin delegation: all logic lives in repro.sharing.manager.
    def api_set_readonly(self, name: str, value: Any) -> None:
        if not self._in_main_ctor:
            raise SharingError("read-only variables must be set in the main "
                               "chare's constructor")
        if name in self.readonly_vars:
            raise SharingError(f"read-only variable {name!r} already set")
        self.readonly_vars[name] = value

    def api_readonly(self, name: str, pe: int) -> Any:
        if name not in self.readonly_vars:
            raise SharingError(f"unknown read-only variable {name!r}")
        return self.readonly_vars[name]

    def api_write_once(self, name: str, value: Any) -> None:
        ctx = self.current
        if name in self.writeonce_vars:
            raise SharingError(f"write-once variable {name!r} written twice")
        self.writeonce_vars[name] = value
        self._writeonce_avail[(name, ctx.pe)] = True
        self.svc_send("share", ctx.pe, 0, "wonce_bcast", (name, value), counted=True)

    def api_get_writeonce(self, name: str, pe: int) -> Any:
        if not self._writeonce_avail.get((name, pe)):
            raise SharingError(
                f"write-once variable {name!r} not yet replicated to PE {pe}"
            )
        return self.writeonce_vars[name]

    def api_new_accumulator(self, name: str, initial: Any, op) -> None:
        self._require_main_ctor("accumulators")
        self.sharing.declare_accumulator(name, initial, op)

    def api_accumulate(self, name: str, value: Any, pe: int) -> None:
        self.sharing.accumulate(name, value, pe)

    def api_collect_accumulator(
        self, name: str, target: ChareHandle, entry_name: str
    ) -> None:
        self.sharing.collect_accumulator(name, target, entry_name, self.current.pe)

    def api_new_monotonic(self, name: str, initial: Any, better, propagation: str) -> None:
        self._require_main_ctor("monotonic variables")
        self.sharing.declare_monotonic(name, initial, better, propagation)

    def api_update_monotonic(self, name: str, value: Any, pe: int) -> None:
        self.sharing.update_monotonic(name, value, pe)

    def api_read_monotonic(self, name: str, pe: int) -> Any:
        return self.sharing.read_monotonic(name, pe)

    def api_new_table(self, name: str) -> None:
        self._require_main_ctor("distributed tables")
        self.sharing.declare_table(name)

    def api_table_insert(
        self,
        table: str,
        key: Any,
        value: Any,
        reply_to: Optional[ChareHandle],
        reply_entry: str,
    ) -> None:
        self.sharing.table_insert(
            table, key, value, reply_to, reply_entry, self.current.pe
        )

    def api_table_find(
        self, table: str, key: Any, reply_to: ChareHandle, reply_entry: str
    ) -> None:
        self.sharing.table_find(table, key, reply_to, reply_entry, self.current.pe)

    def api_table_delete(self, table: str, key: Any) -> None:
        self.sharing.table_delete(table, key, self.current.pe)

    def _require_main_ctor(self, what: str) -> None:
        if not self._in_main_ctor:
            raise SharingError(
                f"{what} must be declared in the main chare's constructor"
            )

    # --------------------------------------------------------------- quiescence
    def api_start_quiescence(self, target: ChareHandle, entry_name: str) -> None:
        self.qd.start(target, entry_name, self.current.pe)

    # -------------------------------------------------------------- gate control
    def open_gate(self, pe: int) -> None:
        """Called by the sharing service when the init broadcast lands."""
        state = self.pes[pe]
        state.gated = False
        # Work may already be queued behind the gate; it becomes servable as
        # soon as the current (system) execution finishes — _finish handles it.

    # ------------------------------------------------------------------ app send
    def send_app_from_service(
        self,
        src_pe: int,
        target: ChareHandle,
        entry_name: str,
        args: tuple,
    ) -> None:
        """Service helper: deliver an application message to a chare handle."""
        dst = self.placement.get(target.gid)
        if dst is None:
            events = self._events
            self._pending_sends.setdefault(target.gid, []).append(
                (src_pe, entry_name, args, None, None,
                 None if events is None else events.ctx)
            )
            return
        env = Envelope(
            kind=Kind.APP,
            src_pe=src_pe,
            dst_pe=dst,
            entry=entry_name,
            args=args,
            handle=target,
        )
        ctx = self._current
        if ctx is not None and ctx.pe == src_pe:
            ctx.outbox.append((ctx.charged, env))
        else:
            self._deliver(env, self.now)
