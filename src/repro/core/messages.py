"""Message envelopes.

Every interaction in the Chare Kernel is a message.  The runtime uses one
envelope type with a ``kind`` discriminator:

* ``APP``  — message to an existing chare's entry method,
* ``SEED`` — a new-chare creation request, routed by the load balancer,
* ``BOC``  — message to one branch of a branch-office chare,
* ``SVC``  — internal runtime service traffic (quiescence waves, load
  balance control, sharing-abstraction ops).

``counted`` says whether the quiescence detector includes the message in
its sent/processed accounting: application-visible traffic is counted,
runtime control traffic (QD waves, load-balancer control) is not, matching
the paper's system design where quiescence means "no user computation and
no user messages in flight".

Envelopes are the most-allocated object in the simulator, so the dataclass
is ``slots=True``, the wire size is computed once and cached, and ``uid``
is *not* drawn from a module-global counter at construction — the owning
kernel assigns uids at first delivery from its own sequence, so uid values
are reproducible run-to-run and unaffected by other kernels in the same
process.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional, Tuple

from repro.core.handles import BocHandle, ChareHandle
from repro.util.priority import PriorityLike
from repro.util.sizing import payload_nbytes

__all__ = ["Kind", "Envelope", "HEADER_BYTES"]

HEADER_BYTES = 32


class Kind:
    """Envelope kind tags (class-as-namespace; values are small ints)."""

    APP = 0
    SEED = 1
    BOC = 2
    SVC = 3

    NAMES = {APP: "app", SEED: "seed", BOC: "boc", SVC: "svc"}


@dataclass(slots=True)
class Envelope:
    """One message in flight (or queued in a PE's pool)."""

    kind: int
    src_pe: int
    dst_pe: int
    entry: str
    args: Tuple[Any, ...] = ()
    # APP: destination chare; SEED: the handle the new chare will own.
    handle: Optional[ChareHandle] = None
    # SEED: class of the chare to construct, and hops taken so far.
    chare_cls: Optional[type] = None
    hops: int = 0
    # BOC: which branch-office chare.
    boc: Optional[BocHandle] = None
    # SVC: which runtime service ("qd", "share", "lb").
    service: Optional[str] = None
    priority: PriorityLike = None
    # Normalized sort key of ``priority``, computed once by the kernel when
    # the envelope is built (None for unprioritized messages).  Requeues,
    # load-balancer forwarding legs, and fault-retry retransmissions all
    # reuse it instead of re-normalizing per hop.
    prio_key: Optional[Tuple] = field(default=None, repr=False)
    system: bool = False
    counted: bool = True
    # SEED with fixed placement (explicit pe=) — balancer hooks are skipped.
    fixed: bool = False
    # Set on forwarded seed legs so the quiescence counter counts the seed's
    # send exactly once (at creation), however many hops it takes.
    suppress_sent_count: bool = False
    # Piggybacked sender load (application-lane queue length at send time);
    # receivers feed this to the load balancer's neighbor-load table.
    carried_load: int = 0
    # Assigned by the owning kernel at first delivery; None until then.
    uid: Optional[int] = None
    _size: Optional[int] = field(default=None, repr=False)

    @property
    def nbytes(self) -> int:
        """Wire size: header + payload (+ class name for seeds)."""
        if self._size is None:
            size = HEADER_BYTES + payload_nbytes(self.args)
            if self.kind == Kind.SEED and self.chare_cls is not None:
                size += len(self.chare_cls.__name__)
            self._size = size
        return self._size

    def forwarded(self, new_dst: int) -> "Envelope":
        """A copy of a seed envelope re-routed to ``new_dst`` (one more hop).

        The copy's ``uid`` resets to None: the kernel stamps each delivery
        leg with a fresh uid from its own sequence.
        """
        return replace(
            self,
            src_pe=self.dst_pe,
            dst_pe=new_dst,
            hops=self.hops + 1,
            suppress_sent_count=True,
            uid=None,
            _size=self._size,
        )

    def kind_name(self) -> str:
        return Kind.NAMES.get(self.kind, "?")

    def __repr__(self) -> str:
        target = (
            self.handle
            if self.kind in (Kind.APP, Kind.SEED)
            else (self.boc if self.kind == Kind.BOC else self.service)
        )
        return (
            f"Envelope({self.kind_name()}, {self.src_pe}->{self.dst_pe}, "
            f"{target}, entry={self.entry!r})"
        )
