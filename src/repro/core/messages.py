"""Message envelopes.

Every interaction in the Chare Kernel is a message.  The runtime uses one
envelope type with a ``kind`` discriminator:

* ``APP``  — message to an existing chare's entry method,
* ``SEED`` — a new-chare creation request, routed by the load balancer,
* ``BOC``  — message to one branch of a branch-office chare,
* ``SVC``  — internal runtime service traffic (quiescence waves, load
  balance control, sharing-abstraction ops).

``counted`` says whether the quiescence detector includes the message in
its sent/processed accounting: application-visible traffic is counted,
runtime control traffic (QD waves, load-balancer control) is not, matching
the paper's system design where quiescence means "no user computation and
no user messages in flight".

Envelopes are the most-allocated object in the simulator, so the dataclass
is ``slots=True``, the wire size is computed once and cached, and ``uid``
is *not* drawn from a module-global counter at construction — the owning
kernel assigns uids at first delivery from its own sequence, so uid values
are reproducible run-to-run and unaffected by other kernels in the same
process.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional, Tuple

from repro.core.handles import BocHandle, ChareHandle
from repro.util.priority import PriorityLike
from repro.util.sizing import payload_nbytes

__all__ = ["Kind", "Envelope", "HEADER_BYTES"]

HEADER_BYTES = 32

# Free list for envelope recycling.  The kernel's turn loop returns
# envelopes here once they are provably dead (executed with an elided
# completion, which the turn gate only allows when no event log, fault
# layer or timeline could still reference them), and the hot factories
# below reuse them instead of allocating.  Every factory assigns every
# slot, so a recycled envelope is indistinguishable from a fresh one;
# the cap bounds idle memory.
_free: list = []
_FREE_CAP = 256


class Kind:
    """Envelope kind tags (class-as-namespace; values are small ints)."""

    APP = 0
    SEED = 1
    BOC = 2
    SVC = 3

    NAMES = {APP: "app", SEED: "seed", BOC: "boc", SVC: "svc"}


@dataclass(slots=True)
class Envelope:
    """One message in flight (or queued in a PE's pool)."""

    kind: int
    src_pe: int
    dst_pe: int
    entry: str
    args: Tuple[Any, ...] = ()
    # APP: destination chare; SEED: the handle the new chare will own.
    handle: Optional[ChareHandle] = None
    # SEED: class of the chare to construct, and hops taken so far.
    chare_cls: Optional[type] = None
    hops: int = 0
    # BOC: which branch-office chare.
    boc: Optional[BocHandle] = None
    # SVC: which runtime service ("qd", "share", "lb").
    service: Optional[str] = None
    priority: PriorityLike = None
    # Normalized sort key of ``priority``, computed once by the kernel when
    # the envelope is built (None for unprioritized messages).  Requeues,
    # load-balancer forwarding legs, and fault-retry retransmissions all
    # reuse it instead of re-normalizing per hop.
    prio_key: Optional[Tuple] = field(default=None, repr=False)
    system: bool = False
    counted: bool = True
    # SEED with fixed placement (explicit pe=) — balancer hooks are skipped.
    fixed: bool = False
    # Set on forwarded seed legs so the quiescence counter counts the seed's
    # send exactly once (at creation), however many hops it takes.
    suppress_sent_count: bool = False
    # Piggybacked sender load (application-lane queue length at send time);
    # receivers feed this to the load balancer's neighbor-load table.
    carried_load: int = 0
    # Assigned by the owning kernel at first delivery; None until then.
    uid: Optional[int] = None
    _size: Optional[int] = field(default=None, repr=False)

    # Envelopes are the most-allocated object in the simulator, and the
    # generated dataclass __init__ (17 parameters, kwargs at every call
    # site) costs ~3x a bare allocation plus direct slot stores.  The
    # kind-specialized factories below are used on the kernel's hot send
    # paths; cold paths (forwarding, BOC plumbing) keep the dataclass
    # constructor.  Every slot is assigned — slots=True means a missed
    # field is an AttributeError, not a silent default.
    @classmethod
    def make_app(cls, src_pe, dst_pe, entry, args, handle,
                 priority=None, prio_key=None) -> "Envelope":
        env = _free.pop() if _free and cls is Envelope else cls.__new__(cls)
        env.kind = Kind.APP
        env.src_pe = src_pe
        env.dst_pe = dst_pe
        env.entry = entry
        env.args = args
        env.handle = handle
        env.chare_cls = None
        env.hops = 0
        env.boc = None
        env.service = None
        env.priority = priority
        env.prio_key = prio_key
        env.system = False
        env.counted = True
        env.fixed = False
        env.suppress_sent_count = False
        env.carried_load = 0
        env.uid = None
        env._size = None
        return env

    @classmethod
    def make_seed(cls, src_pe, dst_pe, args, handle, chare_cls,
                  fixed=False, priority=None, prio_key=None) -> "Envelope":
        env = _free.pop() if _free and cls is Envelope else cls.__new__(cls)
        env.kind = Kind.SEED
        env.src_pe = src_pe
        env.dst_pe = dst_pe
        env.entry = "__init__"
        env.args = args
        env.handle = handle
        env.chare_cls = chare_cls
        env.hops = 0
        env.boc = None
        env.service = None
        env.priority = priority
        env.prio_key = prio_key
        env.system = False
        env.counted = True
        env.fixed = fixed
        env.suppress_sent_count = False
        env.carried_load = 0
        env.uid = None
        env._size = None
        return env

    @classmethod
    def make_svc(cls, src_pe, dst_pe, op, args, service,
                 counted=False) -> "Envelope":
        env = cls.__new__(cls)
        env.kind = Kind.SVC
        env.src_pe = src_pe
        env.dst_pe = dst_pe
        env.entry = op
        env.args = args
        env.handle = None
        env.chare_cls = None
        env.hops = 0
        env.boc = None
        env.service = service
        env.priority = None
        env.prio_key = None
        env.system = True
        env.counted = counted
        env.fixed = False
        env.suppress_sent_count = False
        env.carried_load = 0
        env.uid = None
        env._size = None
        return env

    @property
    def nbytes(self) -> int:
        """Wire size: header + payload (+ class name for seeds)."""
        if self._size is None:
            size = HEADER_BYTES + payload_nbytes(self.args)
            if self.kind == Kind.SEED and self.chare_cls is not None:
                size += len(self.chare_cls.__name__)
            self._size = size
        return self._size

    def forwarded(self, new_dst: int) -> "Envelope":
        """A copy of a seed envelope re-routed to ``new_dst`` (one more hop).

        The copy's ``uid`` resets to None: the kernel stamps each delivery
        leg with a fresh uid from its own sequence.
        """
        return replace(
            self,
            src_pe=self.dst_pe,
            dst_pe=new_dst,
            hops=self.hops + 1,
            suppress_sent_count=True,
            uid=None,
            _size=self._size,
        )

    def kind_name(self) -> str:
        return Kind.NAMES.get(self.kind, "?")

    def __repr__(self) -> str:
        target = (
            self.handle
            if self.kind in (Kind.APP, Kind.SEED)
            else (self.boc if self.kind == Kind.BOC else self.service)
        )
        return (
            f"Envelope({self.kind_name()}, {self.src_pe}->{self.dst_pe}, "
            f"{target}, entry={self.entry!r})"
        )
