"""Per-processing-element scheduler state.

A PE is either idle or executing exactly one entry method (message-driven,
non-preemptive).  Its work sits in three queues, drained in this order:

1. the **system lane** (runtime control traffic — always FIFO),
2. the **message pool** (messages to existing chares/BOC branches, ordered
   by the configured queueing strategy),
3. the **seed pool** (new-chare seeds, same strategy class) — kept separate
   so work-stealing balancers can extract seeds without disturbing
   in-progress conversations.

The PE also carries its trace counters; :mod:`repro.trace` aggregates them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.messages import Envelope, Kind
from repro.queueing.strategies import MessagePool, QueueStrategy, make_strategy

__all__ = ["PEState"]


@dataclass
class PEState:
    """All mutable state of one simulated processor."""

    index: int
    strategy_name: str = "fifo"

    busy: bool = False
    busy_until: float = 0.0
    # Startup gate: until the init broadcast arrives (replicating read-only
    # variables and shared-abstraction declarations), a PE services only its
    # system lane.  This reproduces the Chare Kernel's startup phase.
    gated: bool = True
    # One balancer idle notification per burst of real work: set when the
    # balancer has been told this PE is idle, cleared when it next executes
    # application work.  Without this, idle-control messages (hints, steal
    # probes) re-trigger on_idle and the control traffic feeds itself.
    idle_notified: bool = False

    # Trace counters ------------------------------------------------------
    busy_time: float = 0.0
    msgs_executed: int = 0
    seeds_executed: int = 0
    system_executed: int = 0
    msgs_sent: int = 0
    bytes_sent: int = 0
    seeds_created: int = 0
    seeds_forwarded_in: int = 0   # seeds that arrived and were pushed on
    charged_units: float = 0.0
    steal_attempts: int = 0
    steals_satisfied: int = 0
    max_queued: int = 0   # high-water mark over both app lanes + seeds

    def __post_init__(self) -> None:
        self.msg_pool = MessagePool(make_strategy(self.strategy_name))
        self.seed_pool: QueueStrategy = make_strategy(self.strategy_name)

    # ------------------------------------------------------------------ queues
    def enqueue(self, env: Envelope) -> None:
        """Queue an arrived envelope in the right lane."""
        if env.kind == Kind.SEED:
            self.seed_pool.push(env, env.priority)
        elif env.system or env.kind == Kind.SVC:
            self.msg_pool.push(env, env.priority, system=True)
        else:
            self.msg_pool.push(env, env.priority)
        queued = self.queued
        if queued > self.max_queued:
            self.max_queued = queued

    def next_envelope(self) -> Optional[Envelope]:
        """Pop the next envelope per the service order, or None if drained.

        While gated, only system-lane traffic is served.
        """
        if self.gated:
            return self.msg_pool.pop_system()
        if self.msg_pool:
            return self.msg_pool.pop()
        if self.seed_pool:
            return self.seed_pool.pop()
        return None

    def steal_seed(self) -> Optional[Envelope]:
        """Remove one seed for a work-stealing balancer (best-first)."""
        if self.seed_pool:
            return self.seed_pool.pop()
        return None

    # ------------------------------------------------------------------- load
    @property
    def load(self) -> int:
        """The balancer's load metric: queued app work + busy flag."""
        return self.msg_pool.app_len() + len(self.seed_pool) + (1 if self.busy else 0)

    @property
    def queued(self) -> int:
        return len(self.msg_pool) + len(self.seed_pool)

    def has_work(self) -> bool:
        return self.queued > 0
