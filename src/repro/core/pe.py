"""Per-processing-element scheduler state.

A PE is either idle or executing exactly one entry method (message-driven,
non-preemptive).  Its work sits in three lanes, drained in this order:

1. the **system lane** (runtime control traffic — always FIFO),
2. the **message lane** (messages to existing chares/BOC branches, ordered
   by the configured queueing strategy),
3. the **seed lane** (new-chare seeds, same strategy class) — kept separate
   so work-stealing balancers can extract seeds without disturbing
   in-progress conversations.

The PE also carries its trace counters; :mod:`repro.trace` aggregates them.

The lanes are held directly (a raw deque plus two strategy objects) rather
than behind a pool facade, and their lengths are maintained incrementally
(``_queued``/``_app_queued``/``_app_len`` updated on every enqueue/pop):
``enqueue``/``next_envelope`` run once per simulated message and ``load``
is piggybacked on every delivery, so each avoided Python-level ``len``/
``__bool__``/facade dispatch is paid millions of times per run.  All lane
mutations must go through this class — balancers use
:meth:`steal_seed`/:meth:`requeue_seed`, never the lanes directly — or the
counters drift.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.core.messages import Envelope, Kind
from repro.queueing.strategies import FifoStrategy, QueueStrategy, make_strategy

__all__ = ["PEState", "PEPlane"]

# Kind tags as module globals (cheaper than a class-attribute chain in the
# per-message enqueue below).
_SEED = Kind.SEED
_SVC = Kind.SVC


class PEState:
    """All mutable state of one simulated processor."""

    __slots__ = (
        "index",
        "strategy_name",
        "busy",
        "busy_until",
        "gated",
        "idle_notified",
        "busy_time",
        "msgs_executed",
        "seeds_executed",
        "system_executed",
        "msgs_sent",
        "bytes_sent",
        "seeds_created",
        "seeds_forwarded_in",
        "charged_units",
        "steal_attempts",
        "steals_satisfied",
        "max_queued",
        "largest_idle_gap",
        "msgs_dropped",
        "msgs_delayed",
        "msgs_duplicated",
        "dups_suppressed",
        "retries",
        "stalls",
        "stall_time",
        "counted_sent",
        "counted_processed",
        "_system",
        "_app",
        "seed_pool",
        "_app_fifo",
        "_seed_fifo",
        "_queued",
        "_app_queued",
        "_app_len",
    )

    def __init__(self, index: int, strategy_name: str = "fifo") -> None:
        self.index = index
        self.strategy_name = strategy_name

        self.busy = False
        self.busy_until = 0.0
        # Startup gate: until the init broadcast arrives (replicating
        # read-only variables and shared-abstraction declarations), a PE
        # services only its system lane.  This reproduces the Chare
        # Kernel's startup phase.
        self.gated = True
        # One balancer idle notification per burst of real work: set when
        # the balancer has been told this PE is idle, cleared when it next
        # executes application work.  Without this, idle-control messages
        # (hints, steal probes) re-trigger on_idle and the control traffic
        # feeds itself.
        self.idle_notified = False

        # Trace counters --------------------------------------------------
        self.busy_time = 0.0
        self.msgs_executed = 0
        self.seeds_executed = 0
        self.system_executed = 0
        self.msgs_sent = 0
        self.bytes_sent = 0
        self.seeds_created = 0
        self.seeds_forwarded_in = 0   # seeds that arrived and were pushed on
        self.charged_units = 0.0
        self.steal_attempts = 0
        self.steals_satisfied = 0
        self.max_queued = 0   # high-water mark over all three lanes
        # Longest idle window between consecutive executions (the kernel
        # updates it from busy_until at each execution start).
        self.largest_idle_gap = 0.0

        # Fault-injection counters (always zero without a fault layer).
        # Loss/delay/dup counters are charged to the *destination* PE (the
        # message toward it was perturbed); retries to the sender; stalls
        # to the stalled PE.  See repro.faults.
        self.msgs_dropped = 0
        self.msgs_delayed = 0
        self.msgs_duplicated = 0
        self.dups_suppressed = 0
        self.retries = 0
        self.stalls = 0
        self.stall_time = 0.0

        # Quiescence accounting (counted messages only).  Lives on the PE
        # (not in O(P) kernel-side lists) so a sparse plane carries exactly
        # as many counters as there are touched PEs.
        self.counted_sent = 0
        self.counted_processed = 0

        self._system: deque = deque()
        self._app: QueueStrategy = make_strategy(strategy_name)
        self.seed_pool: QueueStrategy = make_strategy(strategy_name)
        # FIFO fast lanes: under the default strategy, enqueue/pop touch
        # the strategy's backing deque directly instead of paying a method
        # frame per message.  The strategy object shares the same deque, so
        # strategy-path users (steal_seed, requeue_seed) stay coherent.
        self._app_fifo = (
            self._app._q if type(self._app) is FifoStrategy else None
        )
        self._seed_fifo = (
            self.seed_pool._q if type(self.seed_pool) is FifoStrategy else None
        )
        self._queued = 0        # everything queued (system + app + seeds)
        self._app_queued = 0    # app lane + seeds (the balancer load metric)
        self._app_len = 0       # app lane only (seeds = _app_queued - _app_len)

    # ------------------------------------------------------------------ queues
    def enqueue(self, env: Envelope) -> None:
        """Queue an arrived envelope in the right lane.

        ``env.prio_key`` (normalized once at send time by the kernel) rides
        along so prioritized strategies never re-normalize per hop.
        """
        kind = env.kind
        if kind == _SEED:
            q = self._seed_fifo
            if q is None:
                self.seed_pool.push(env, env.priority, env.prio_key)
            else:
                q.append(env)
            self._app_queued += 1
        elif env.system or kind == _SVC:
            self._system.append(env)
        else:
            q = self._app_fifo
            if q is None:
                self._app.push(env, env.priority, env.prio_key)
            else:
                q.append(env)
            self._app_len += 1
            self._app_queued += 1
        queued = self._queued = self._queued + 1
        if queued > self.max_queued:
            self.max_queued = queued

    def next_envelope(self) -> Optional[Envelope]:
        """Pop the next envelope per the service order, or None if drained.

        While gated, only system-lane traffic is served.  Lane emptiness is
        decided from the counters, so the common miss costs an int compare,
        not a strategy ``__bool__``.
        """
        system = self._system
        if system:
            self._queued -= 1
            return system.popleft()
        if self.gated:
            return None
        if self._app_len:
            self._app_len -= 1
            self._queued -= 1
            self._app_queued -= 1
            q = self._app_fifo
            return self._app.pop() if q is None else q.popleft()
        if self._app_queued:  # seeds remain
            self._queued -= 1
            self._app_queued -= 1
            q = self._seed_fifo
            return self.seed_pool.pop() if q is None else q.popleft()
        return None

    def steal_seed(self) -> Optional[Envelope]:
        """Remove one seed for a work-stealing balancer (best-first)."""
        if self._app_queued > self._app_len:
            self._queued -= 1
            self._app_queued -= 1
            return self.seed_pool.pop()
        return None

    def requeue_seed(self, env: Envelope) -> None:
        """Put a stolen-but-unmigratable seed back (keeps counters true)."""
        self.seed_pool.push(env, env.priority, env.prio_key)
        self._queued += 1
        self._app_queued += 1

    # ------------------------------------------------------------------- load
    @property
    def load(self) -> int:
        """The balancer's load metric: queued app work + busy flag."""
        return self._app_queued + 1 if self.busy else self._app_queued

    @property
    def queued(self) -> int:
        return self._queued

    def has_work(self) -> bool:
        return self._queued > 0


class PEPlane(dict):
    """Lazily-materialized map of PE rank -> :class:`PEState`.

    The kernel's PE plane used to be an eager ``List[PEState]`` of length
    P — untenable at the roadmap's 10⁵–10⁶-PE machines when only a few
    hundred PEs ever receive a message.  This is a ``dict`` subclass whose
    only override is ``__missing__``: a present-key ``plane[i]`` lookup is
    a plain C-speed dict hit (no Python-level ``__getitem__`` wrapper on
    the per-message hot path), and the first touch of a rank materializes
    its state on demand.  The key set *is* the touched set.

    Out-of-range indices raise :class:`IndexError`, matching the list the
    plane replaces.  ``plane.get(i)`` peeks without materializing.
    """

    __slots__ = ("num_pes", "strategy_name", "default_gated")

    def __init__(
        self,
        num_pes: int,
        strategy_name: str = "fifo",
        *,
        gated: bool = True,
        dense: bool = False,
    ) -> None:
        super().__init__()
        self.num_pes = num_pes
        self.strategy_name = strategy_name
        # Sparse-startup kernels skip the init broadcast, so their PEs are
        # born with the startup gate already open.
        self.default_gated = gated
        if dense:
            for index in range(num_pes):
                self[index]

    def __missing__(self, index: int) -> PEState:
        if not 0 <= index < self.num_pes:
            raise IndexError(
                f"PE index {index} out of range [0, {self.num_pes})"
            )
        state = PEState(index, strategy_name=self.strategy_name)
        if not self.default_gated:
            state.gated = False
        self[index] = state
        return state

    # Keys are insertion-ordered (first-touch order); the accessors below
    # return index-sorted snapshots for deterministic enumeration.
    def ranks(self) -> List[int]:
        """Touched (materialized) ranks, index-sorted."""
        return sorted(self)

    def states(self) -> List[PEState]:
        """Touched states, index-sorted."""
        return [self[i] for i in sorted(self)]
