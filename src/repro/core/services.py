"""Runtime service plumbing.

Load balancing, quiescence detection, and the information-sharing
abstractions are *distributed* algorithms: they have per-PE state and they
communicate with real (simulated, cost-bearing) messages.  A
:class:`Service` is the runtime-internal analogue of a branch-office chare:
it registers a name, and envelopes of kind ``SVC`` addressed to that name
are dispatched to :meth:`Service.handle` on the destination PE, inside a
normal execution context (so service handlers can charge work and send
further messages).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel

__all__ = ["Service"]


class Service(ABC):
    """A named, per-PE-stateful runtime subsystem driven by SVC messages."""

    #: Unique service name used to route SVC envelopes.
    name: str = "abstract"

    def __init__(self) -> None:
        self.kernel: "Kernel" = None  # type: ignore[assignment]

    def bind(self, kernel: "Kernel") -> None:
        """Attach to a kernel; allocate per-PE state here."""
        self.kernel = kernel

    @abstractmethod
    def handle(self, pe: int, op: str, args: Tuple[Any, ...]) -> None:
        """Process one SVC message delivered to this service on ``pe``."""

    # Convenience: send an op to this same service on another PE.
    def send(
        self,
        src_pe: int,
        dst_pe: int,
        op: str,
        args: Tuple[Any, ...] = (),
        counted: bool = False,
    ) -> None:
        self.kernel.svc_send(self.name, src_pe, dst_pe, op, args, counted=counted)
