"""Spanning trees over PE ranks.

Broadcasts, reductions, and quiescence waves all run over a static spanning
tree rooted at rank 0.  Two shapes are provided:

* **rank tree** (:func:`tree_parent` / :func:`tree_children`) — a binary
  tree over rank numbers, oblivious to the physical topology.  A portable
  runtime implemented over ranks behaves like this: a tree edge may cost
  several network hops.
* **binomial tree** (:class:`BinomialTree`) — the classic hypercube
  spanning tree (parent = clear the lowest set bit), in which **every tree
  edge is exactly one physical hop** on a hypercube.  The A1 ablation
  measures what this buys.

:func:`make_tree` picks by name; ``"auto"`` selects binomial on hypercube
machines and the rank tree elsewhere.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = [
    "tree_parent",
    "tree_children",
    "subtree_size",
    "SpanningTree",
    "RankTree",
    "BinomialTree",
    "make_tree",
]

_ARITY = 2


def tree_parent(rank: int) -> Optional[int]:
    """Parent of ``rank`` in the binary rank tree, or None for the root."""
    if rank <= 0:
        return None
    return (rank - 1) // _ARITY


def tree_children(rank: int, num_pes: int) -> List[int]:
    """Children of ``rank`` among ``num_pes`` ranks."""
    lo = rank * _ARITY + 1
    return [c for c in range(lo, min(lo + _ARITY, num_pes))]


def subtree_size(rank: int, num_pes: int) -> int:
    """Number of ranks in the subtree rooted at ``rank`` (incl. itself)."""
    total = 0
    stack = [rank]
    while stack:
        r = stack.pop()
        if r < num_pes:
            total += 1
            stack.extend(tree_children(r, num_pes))
    return total


class SpanningTree:
    """A rooted spanning tree over ``num_pes`` ranks (root is rank 0)."""

    name = "abstract"

    def __init__(self, num_pes: int) -> None:
        self.num_pes = num_pes

    def parent(self, rank: int) -> Optional[int]:
        raise NotImplementedError

    def children(self, rank: int) -> List[int]:
        raise NotImplementedError


class RankTree(SpanningTree):
    """Binary tree over rank numbers (topology-oblivious)."""

    name = "rank"

    def parent(self, rank: int) -> Optional[int]:
        return tree_parent(rank)

    def children(self, rank: int) -> List[int]:
        return tree_children(rank, self.num_pes)


class BinomialTree(SpanningTree):
    """Binomial tree: parent clears the lowest set bit.

    On a hypercube every edge is one physical hop; works for any PE count
    (children beyond ``num_pes`` simply don't exist).
    """

    name = "binomial"

    def parent(self, rank: int) -> Optional[int]:
        if rank <= 0:
            return None
        return rank & (rank - 1)

    def children(self, rank: int) -> List[int]:
        out = []
        lowbit = rank & -rank if rank else 1 << (max(1, self.num_pes - 1)).bit_length()
        bit = 1
        while bit < lowbit and rank + bit < self.num_pes:
            out.append(rank + bit)
            bit <<= 1
        # Root (rank 0): all powers of two below num_pes.
        if rank == 0:
            out = []
            bit = 1
            while bit < self.num_pes:
                out.append(bit)
                bit <<= 1
        return out


def make_tree(name: str, num_pes: int, topology_name: str = "") -> SpanningTree:
    """Build a spanning tree; ``auto`` matches the tree to the topology."""
    if name == "auto":
        name = "binomial" if topology_name == "hypercube" else "rank"
    if name == "rank":
        return RankTree(num_pes)
    if name == "binomial":
        return BinomialTree(num_pes)
    from repro.util.errors import ConfigurationError

    raise ConfigurationError(
        f"unknown spanning tree {name!r}; options: rank, binomial, auto"
    )
