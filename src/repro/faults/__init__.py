"""Deterministic fault injection for the simulated machine.

The 1991 paper's core claim is that message-driven execution is robust to
latency and load variance *by construction*: a chare program never waits on
a specific message, so perturbing when (or whether) individual messages
arrive should degrade completion time smoothly rather than break the
program.  This subsystem lets an experiment put that claim under load.

A :class:`~repro.faults.models.FaultConfig` describes the fault models to
inject at the network/PE boundary — message delay spikes and jitter,
message drop backed by a kernel-level ack/timeout/retry protocol, duplicate
delivery with idempotent-receive dedup, and PE slowdown / transient-stall
models.  Pass it to ``Kernel(machine, faults=FaultConfig(...))``.

Everything is driven by :class:`~repro.util.rng.RngStream` children of a
root seed, so a run with the same seed and fault config is bit-identical.
With no config installed the kernel pays a single ``is None`` check per
message and nothing else (see docs/architecture.md, "Faults & resilience").
"""

from repro.faults.models import FaultConfig, FaultLayer, ACK_BYTES

__all__ = ["FaultConfig", "FaultLayer", "ACK_BYTES"]
