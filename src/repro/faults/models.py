"""Fault models injected at the network/PE boundary.

:class:`FaultConfig` is a frozen description of which faults to inject;
:class:`FaultLayer` is the per-kernel runtime that executes them.  The
kernel routes every delivery through :meth:`FaultLayer.transmit` and every
execution duration through :meth:`FaultLayer.perturb_execution` when a
layer is installed — and pays exactly one ``is None`` check per hook when
it is not.

Fault models
------------
* **Latency** — per-message uniform jitter (``jitter``) plus occasional
  delay spikes (``delay_prob`` / ``delay_spike``), applied to every remote
  message.  Message-driven execution has no receive order to violate, so
  delayed messages need no protocol support.
* **Loss** — remote *counted* messages are dropped with ``drop_prob`` per
  delivery attempt.  A kernel-level ack/timeout/retry protocol makes
  delivery reliable again: the sender keeps the envelope until a
  (hardware-level, zero-occupancy) ack returns, retransmitting with
  exponential backoff.  Acks are subject to the same loss rate, which is
  why receivers re-ack suppressed duplicates.  Uncounted runtime control
  traffic (QD waves, balancer probes) models the machine's reliable
  system transport and is never dropped — exactly as the Chare Kernel
  assumed of its hosts.
* **Duplication** — any remote message may be delivered twice
  (``dup_prob``), the copy lagging by ``dup_lag``.  Receivers dedup by the
  per-kernel envelope ``uid`` (idempotent receive), so entry methods still
  execute exactly once and quiescence counting stays consistent.
* **PE slowdown / stalls** — ``slow_pes`` run all executions
  ``slow_factor`` times longer (a thermally-throttled or time-shared
  node); any execution may additionally hit a transient stall
  (``stall_prob`` / ``stall_time``), modelling OS noise.

Quiescence stays correct by construction: ``counted_sent`` is incremented
once at first send (retransmissions bypass it) and ``counted_processed``
once at the single deduplicated execution, so ``sent == processed`` still
converges and the two-wave stability check does the rest.

Determinism: network-side draws come from ``RngStream(seed, "faults-net")``
in event order and PE-side draws from ``RngStream(seed, "faults-pe")``, so
the two families don't perturb each other and a (root seed, config) pair
fully determines the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.util.errors import FaultError
from repro.util.rng import RngStream

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel
    from repro.core.messages import Envelope

__all__ = ["FaultConfig", "FaultLayer", "ACK_BYTES"]

#: Wire size charged to a kernel-level ack (header-sized control packet).
ACK_BYTES = 16


@dataclass(frozen=True)
class FaultConfig:
    """Declarative description of the faults to inject.  Times in seconds.

    The default instance is inert: installing ``FaultConfig()`` must be
    bit-identical to installing no fault layer at all (asserted by the
    golden-trace tests).
    """

    # -- network latency ----------------------------------------------------
    jitter: float = 0.0          # uniform [0, jitter) extra transit, all remote msgs
    delay_prob: float = 0.0      # chance of a latency spike per remote msg
    delay_spike: float = 500e-6  # spike size

    # -- network loss (counted messages only; retried until acked) ----------
    drop_prob: float = 0.0       # loss chance per delivery attempt
    ack_timeout: float = 2e-3    # sender timeout before first retransmission
    retry_backoff: float = 2.0   # timeout multiplier per successive retry
    max_retries: int = 16        # safety valve; exceeding it raises FaultError
    max_backoff: float = 0.5     # retransmission-delay ceiling (seconds)

    # -- network duplication ------------------------------------------------
    dup_prob: float = 0.0        # chance a remote msg is delivered twice
    dup_lag: float = 150e-6      # how far the duplicate trails the original

    # -- PE faults ----------------------------------------------------------
    slow_pes: tuple = ()         # PEs running slow_factor times slower
    slow_factor: float = 1.0
    stall_prob: float = 0.0      # transient stall chance per execution
    stall_time: float = 1e-3     # stall duration

    # -- determinism --------------------------------------------------------
    seed: Optional[int] = None   # fault RNG root; defaults to the kernel seed

    def __post_init__(self) -> None:
        for name in ("jitter", "delay_prob", "delay_spike", "drop_prob",
                     "ack_timeout", "dup_prob", "dup_lag", "stall_prob",
                     "stall_time"):
            if getattr(self, name) < 0:
                raise FaultError(f"{name} must be nonnegative")
        for name in ("delay_prob", "drop_prob", "dup_prob", "stall_prob"):
            if getattr(self, name) >= 1.0:
                raise FaultError(f"{name} must be < 1 (a certainty is a "
                                 "config error, not a fault model)")
        if self.retry_backoff < 1.0:
            raise FaultError("retry_backoff must be >= 1")
        if self.max_backoff <= 0.0:
            raise FaultError("max_backoff must be positive")
        if self.max_retries < 1:
            raise FaultError("max_retries must be >= 1")
        if self.slow_factor < 1.0:
            raise FaultError("slow_factor must be >= 1 (use machine "
                             "pe_speeds for faster-than-baseline nodes)")
        if self.drop_prob > 0.0 and self.ack_timeout <= 0.0:
            raise FaultError("drop_prob needs a positive ack_timeout")

    def describe(self) -> str:
        """Compact non-default-fields summary (for tables and logs)."""
        parts = []
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                parts.append(f"{f.name}={value}")
        return ", ".join(parts) if parts else "inert"


class FaultLayer:
    """Runtime fault injector for one kernel.

    Sits between :meth:`Kernel._deliver` and the event engine: the kernel
    computes the unperturbed arrival time (so all accounting — hops,
    bytes, counted_sent — happens exactly once, exactly as without
    faults), then hands the envelope here for perturbation and scheduling.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self.kernel: "Kernel" = None  # type: ignore[assignment]
        # Aggregate counters (per-PE twins live on PEState).
        self.msgs_dropped = 0
        self.msgs_delayed = 0
        self.msgs_duplicated = 0
        self.dups_suppressed = 0
        self.retries = 0
        self.acks_sent = 0
        self.acks_lost = 0
        self.stalls = 0

    # ------------------------------------------------------------------ wiring
    def bind(self, kernel: "Kernel") -> None:
        """Attach to a kernel (called from ``Kernel.__init__``)."""
        self.kernel = kernel
        cfg = self.config
        seed = cfg.seed if cfg.seed is not None else kernel.seed
        self._net_rng = RngStream(seed, "faults-net")
        self._pe_rng = RngStream(seed, "faults-pe")
        self._slow_set = frozenset(cfg.slow_pes)
        for pe in self._slow_set:
            if not 0 <= pe < kernel.num_pes:
                raise FaultError(f"slow_pes entry {pe} out of range")
        # Sender-side reliability state: uid -> [envelope, attempt_number].
        self._pending: Dict[int, List] = {}
        # uids that may legitimately arrive more than once (dup'd or under
        # the retry protocol); the subset already delivered once.
        self._tracked: Set[int] = set()
        self._seen: Set[int] = set()
        # Pre-bound callables: the layer schedules closure-free, like the
        # kernel itself.
        self._schedule = kernel.engine.schedule_call
        self._arrive = kernel._arrive
        self._arrive_checked_cb = self._arrive_checked
        self._on_timeout_cb = self._on_timeout
        self._on_ack_cb = self._on_ack

    # --------------------------------------------------------------- transmit
    def transmit(self, env: "Envelope", departure: float, arrival: float) -> None:
        """Schedule one delivery, applying the configured network faults.

        ``arrival`` is the fault-free arrival time the kernel computed
        (memoized transit incl. any contention), so the inert config
        reproduces the fault-free schedule bit-for-bit.
        """
        if env.src_pe == env.dst_pe:
            # Local messages never touch the network; no faults apply.
            self._schedule(arrival, self._arrive, env)
            return
        cfg = self.config
        rng = self._net_rng
        kernel = self.kernel
        pe = kernel.pes[env.dst_pe]
        events = kernel._events
        if cfg.jitter > 0.0:
            arrival += rng.random() * cfg.jitter
        if cfg.delay_prob > 0.0 and rng.random() < cfg.delay_prob:
            arrival += cfg.delay_spike
            pe.msgs_delayed += 1
            self.msgs_delayed += 1
            if events is not None:
                events.record("fault", departure, env.dst_pe, name="delay",
                              uid=env.uid, parent=events.send_parent(env.uid),
                              dur=cfg.delay_spike)
        duplicated = cfg.dup_prob > 0.0 and rng.random() < cfg.dup_prob
        if duplicated:
            self._tracked.add(env.uid)
            pe.msgs_duplicated += 1
            self.msgs_duplicated += 1
            if events is not None:
                events.record("fault", departure, env.dst_pe, name="dup",
                              uid=env.uid, parent=events.send_parent(env.uid),
                              dur=cfg.dup_lag)
            self._schedule(arrival + cfg.dup_lag, self._arrive_checked_cb, env)
        if cfg.drop_prob > 0.0 and env.counted:
            # Reliable-delivery protocol: remember the envelope, arm the
            # retransmission timer, then risk the first attempt.
            self._tracked.add(env.uid)
            self._pending[env.uid] = [env, 0]
            self._schedule(departure + cfg.ack_timeout,
                           self._on_timeout_cb, (env.uid, 0))
            if rng.random() < cfg.drop_prob:
                pe.msgs_dropped += 1
                self.msgs_dropped += 1
                if events is not None:
                    events.record("fault", departure, env.dst_pe, name="drop",
                                  uid=env.uid,
                                  parent=events.send_parent(env.uid),
                                  info={"attempt": 0})
                return
        self._schedule(arrival, self._arrive_checked_cb, env)

    def _arrive_checked(self, env: "Envelope") -> None:
        """Receiver-side boundary: dedup, ack, then the normal arrival path."""
        uid = env.uid
        if uid in self._tracked:
            if uid in self._seen:
                # Idempotent receive: the entry already ran (or will run)
                # from the first copy; suppress, but re-ack in case the
                # sender is retransmitting because our ack was lost.
                kernel = self.kernel
                pe = kernel.pes[env.dst_pe]
                pe.dups_suppressed += 1
                self.dups_suppressed += 1
                events = kernel._events
                if events is not None:
                    # The suppressed copy links to the uid's original send:
                    # the logical message stays a single causal chain.
                    events.record("fault", kernel.engine._now, env.dst_pe,
                                  name="dup_suppressed", uid=uid,
                                  parent=events.send_parent(uid))
                if uid in self._pending:
                    self._send_ack(env)
                return
            self._seen.add(uid)
            if uid in self._pending:
                self._send_ack(env)
        self._arrive(env)

    # ------------------------------------------------------------ reliability
    def _send_ack(self, env: "Envelope") -> None:
        """Launch the hardware-level ack back to the sender.

        Acks are kernel-internal control packets: they take real network
        latency (uncontended alpha/beta/per-hop) but occupy no PE and no
        modeled bus — and they are lost at the same rate as data.
        """
        cfg = self.config
        if cfg.drop_prob > 0.0 and self._net_rng.random() < cfg.drop_prob:
            self.acks_lost += 1
            return
        self.acks_sent += 1
        kernel = self.kernel
        transit = kernel.machine.control_transit(env.dst_pe, env.src_pe,
                                                 ACK_BYTES)
        self._schedule(kernel.engine._now + transit, self._on_ack_cb, env.uid)

    def _on_ack(self, uid: int) -> None:
        # Late acks for an already-completed uid are no-ops.
        self._pending.pop(uid, None)

    def _on_timeout(self, payload) -> None:
        """Retransmission timer fired; resend if the ack hasn't landed."""
        uid, attempt = payload
        st = self._pending.get(uid)
        if st is None or st[1] != attempt:
            return  # acked, or a newer attempt owns the timer
        env = st[0]
        attempt += 1
        if attempt > self.config.max_retries:
            raise FaultError(
                f"message uid={uid} ({env!r}) undelivered after "
                f"{self.config.max_retries} retries — drop rate too high "
                f"for the configured ack_timeout/backoff"
            )
        st[1] = attempt
        kernel = self.kernel
        cfg = self.config
        rng = self._net_rng
        pe = kernel.pes[env.dst_pe]
        kernel.pes[env.src_pe].retries += 1
        self.retries += 1
        now = kernel.engine._now
        events = kernel._events
        if events is not None:
            # Parent on the *original* send event: the retransmission stays
            # on the logical message's chain instead of rooting a fresh one.
            events.record("fault", now, env.src_pe, name="retry", uid=uid,
                          parent=events.send_parent(uid),
                          info={"attempt": attempt})
        # The retransmitted copy is a real data message: it pays transit
        # again (including contention) and faces the same perturbations.
        # It does NOT re-increment counted_sent / msgs_sent — quiescence
        # and the trace count logical messages, not wire attempts.
        arrival = now + kernel.machine.transit_time(
            env.src_pe, env.dst_pe, env.nbytes, now
        )
        if cfg.jitter > 0.0:
            arrival += rng.random() * cfg.jitter
        if cfg.delay_prob > 0.0 and rng.random() < cfg.delay_prob:
            arrival += cfg.delay_spike
            pe.msgs_delayed += 1
            self.msgs_delayed += 1
        if rng.random() < cfg.drop_prob:
            pe.msgs_dropped += 1
            self.msgs_dropped += 1
            if events is not None:
                events.record("fault", now, env.dst_pe, name="drop", uid=uid,
                              parent=events.send_parent(uid),
                              info={"attempt": attempt})
        else:
            self._schedule(arrival, self._arrive_checked_cb, env)
        # Exponential backoff with a ceiling: uncapped doubling compounds
        # with long PE stalls — a handful of unlucky retries can push the
        # retransmission delay past the entire run's span and dominate
        # virtual time.  The ceiling keeps the timer within max_backoff.
        backoff = cfg.ack_timeout * (cfg.retry_backoff ** attempt)
        if backoff > cfg.max_backoff:
            backoff = cfg.max_backoff
        self._schedule(now + backoff, self._on_timeout_cb, (uid, attempt))

    # ------------------------------------------------------------- PE faults
    def perturb_execution(self, pe_index: int, start: float,
                          duration: float) -> float:
        """Stretch one execution per the PE fault models; returns duration."""
        cfg = self.config
        if self._slow_set and pe_index in self._slow_set:
            duration *= cfg.slow_factor
        if cfg.stall_prob > 0.0 and self._pe_rng.random() < cfg.stall_prob:
            duration += cfg.stall_time
            kernel = self.kernel
            pe = kernel.pes[pe_index]
            pe.stalls += 1
            pe.stall_time += cfg.stall_time
            self.stalls += 1
            events = kernel._events
            if events is not None:
                # ctx is the stalled execution's begin event (the kernel
                # perturbs durations inside the exec window).
                events.record("fault", start, pe_index, name="stall",
                              parent=events.ctx, dur=cfg.stall_time)
        return duration

    # ------------------------------------------------------------ inspection
    @property
    def in_flight(self) -> int:
        """Unacked protocol messages (0 once the run has drained)."""
        return len(self._pending)

    def counters(self) -> Dict[str, int]:
        return {
            "msgs_dropped": self.msgs_dropped,
            "msgs_delayed": self.msgs_delayed,
            "msgs_duplicated": self.msgs_duplicated,
            "dups_suppressed": self.dups_suppressed,
            "retries": self.retries,
            "acks_sent": self.acks_sent,
            "acks_lost": self.acks_lost,
            "stalls": self.stalls,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultLayer({self.config.describe()})"
