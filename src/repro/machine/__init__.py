"""Simulated parallel machines.

A :class:`~repro.machine.network.Machine` bundles a topology (who is a
neighbor of whom, hop distances) with a cost model (CPU speed, scheduling
overheads, message latency/bandwidth).  Presets reproduce the machine
classes of the SC'91 evaluation: Sequent Symmetry and Encore Multimax
(shared memory), Intel iPSC/2 and NCUBE/2 (hypercubes), plus a modern
cluster preset for extrapolation experiments.
"""

from repro.machine.topology import (
    Topology,
    BusTopology,
    FullyConnectedTopology,
    RingTopology,
    Mesh2DTopology,
    Torus2DTopology,
    HypercubeTopology,
    TreeTopology,
    make_topology,
)
from repro.machine.network import Machine, MachineParams
from repro.machine.presets import (
    MACHINE_PRESETS,
    make_machine,
    symmetry,
    multimax,
    ipsc2,
    ipsc860,
    ncube1,
    ncube2,
    cluster,
    hetero,
    ideal,
)

__all__ = [
    "Topology",
    "BusTopology",
    "FullyConnectedTopology",
    "RingTopology",
    "Mesh2DTopology",
    "Torus2DTopology",
    "HypercubeTopology",
    "TreeTopology",
    "make_topology",
    "Machine",
    "MachineParams",
    "MACHINE_PRESETS",
    "make_machine",
    "symmetry",
    "multimax",
    "ipsc2",
    "ipsc860",
    "ncube1",
    "ncube2",
    "cluster",
    "hetero",
    "ideal",
]
