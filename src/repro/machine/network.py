"""Machine cost model.

:class:`MachineParams` captures the handful of constants that determine how
a Chare Kernel program performs on a given machine:

* ``work_unit_time`` — seconds of CPU time per abstract work unit charged by
  an entry method (so one "work unit" is roughly one microsecond on a
  late-80s RISC node when set to 1e-6).
* ``sched_overhead`` — scheduler cost per message pickup (queue pop,
  dispatch through the entry-point table).
* ``recv_overhead`` — cost to take a message off the network / shared pool
  and enqueue it.
* ``alpha`` / ``beta`` — message startup latency (s) and per-byte time
  (s/B) between distinct PEs.
* ``per_hop`` — extra latency per network hop beyond the first
  (store-and-forward flavor; cut-through machines set this near zero).
* ``local_alpha`` — latency of a message a PE sends to itself (enqueue
  cost only; no network).

The model deliberately has no contention term by default: the 1991 paper's
analyses treat links as uncongested, and adding queueing at links changes
none of the claim shapes we reproduce.  A simple optional serial-bus
bandwidth cap is provided for the shared-memory presets because bus
saturation *is* part of why shared-memory speedups flatten.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.machine.topology import Topology
from repro.util.errors import ConfigurationError

__all__ = ["MachineParams", "Machine"]


@dataclass(frozen=True)
class MachineParams:
    """Cost constants for a machine class.  All times in seconds."""

    work_unit_time: float = 1e-6
    sched_overhead: float = 5e-6
    recv_overhead: float = 2e-6
    alpha: float = 100e-6
    beta: float = 0.5e-6
    per_hop: float = 10e-6
    local_alpha: float = 2e-6
    # Optional serial shared-bus model: if > 0, every remote message also
    # occupies the single bus for nbytes / bus_bandwidth seconds and messages
    # queue behind one another for it.
    bus_bandwidth: float = 0.0
    # Optional link-contention model: if > 0 and the topology defines
    # routes, a message occupies every directed link on its (deterministic,
    # dimension-ordered) path for nbytes / link_bandwidth seconds, queuing
    # behind earlier traffic on each link (store-and-forward flavor).  This
    # replaces the uncontended beta/per-hop terms for remote messages.
    link_bandwidth: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "work_unit_time",
            "sched_overhead",
            "recv_overhead",
            "alpha",
            "beta",
            "per_hop",
            "local_alpha",
            "bus_bandwidth",
            "link_bandwidth",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be nonnegative")

    def scaled(self, **changes) -> "MachineParams":
        """Return a copy with some constants replaced (for ablations)."""
        return replace(self, **changes)


@dataclass
class Machine:
    """A topology plus its cost model.

    The runtime asks two things of a machine: how long an entry method's
    charged work takes (:meth:`compute_time`) and when a message sent at
    time *t* arrives (:meth:`transit_time`, plus bus serialization state).

    ``pe_speeds`` models heterogeneous machines (networks of workstations):
    a per-PE multiplier on ``work_unit_time`` — 2.0 means PE is half as
    fast.  ``None`` (default) means homogeneous.
    """

    name: str
    topology: Topology
    params: MachineParams = field(default_factory=MachineParams)
    pe_speeds: tuple = ()
    #: Preferred engine backend ("" = caller's default).  Carried on the
    #: machine so presets/descriptors can pin a backend and the kernel
    #: resolves it without extra plumbing.
    backend: str = ""
    #: Sparse-startup preference: when True the kernel skips the O(P) init
    #: broadcast and keeps all per-PE state O(active).  Same plumbing
    #: pattern as ``backend`` (explicit Kernel argument wins).
    sparse: bool = False

    # Mutable per-run state: shared-bus occupancy and per-link occupancy.
    _bus_free_at: float = field(default=0.0, repr=False)
    _link_free_at: dict = field(default_factory=dict, repr=False)
    # Memoized network costs for *table-free* topologies only (trees):
    # hop counts per (src, dst) pair, and the uncontended
    # ``max(0, hops-1) * per_hop`` latency term per pair.  Families with a
    # closed-form metric (bus, ring, mesh, torus, hypercube) skip these
    # dicts entirely — O(P²) tables are unusable at the roadmap's 10⁵-PE
    # machines.
    _hops_table: dict = field(default_factory=dict, repr=False)
    _hop_extra: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        # hops_fn is the hot-path hop counter the kernel binds once per
        # run: the topology's unchecked closed form where one exists, the
        # per-pair memo otherwise.  Not a dataclass field (bound methods
        # don't belong in repr/eq), but picklable either way.
        cf = self.topology.closed_form_hops()
        self._hops_closed = cf
        self.hops_fn = cf if cf is not None else self._memo_hops

    @property
    def num_pes(self) -> int:
        return self.topology.num_pes

    def reset(self) -> None:
        """Clear per-run mutable state (bus and link occupancy)."""
        self._bus_free_at = 0.0
        self._link_free_at = {}

    def hops(self, src: int, dst: int) -> int:
        """Hop count via the closed form, or the memo for table-free shapes."""
        return self.hops_fn(src, dst)

    def _memo_hops(self, src: int, dst: int) -> int:
        """Memoized :meth:`Topology.hops` (built lazily, keyed per pair)."""
        key = (src, dst)
        cached = self._hops_table.get(key)
        if cached is None:
            cached = self._hops_table[key] = self.topology.hops(src, dst)
        return cached

    # ------------------------------------------------------------------ compute
    def compute_time(self, work_units: float, pe: int = 0) -> float:
        """Seconds of CPU time for ``work_units`` abstract units on ``pe``."""
        base = work_units * self.params.work_unit_time
        if self.pe_speeds:
            return base * self.pe_speeds[pe]
        return base

    # ------------------------------------------------------------------ network
    def transit_time(self, src: int, dst: int, nbytes: int, depart: float) -> float:
        """Seconds from send to arrival-at-dst-pool for one message.

        ``depart`` is the virtual send time; it matters only when the bus
        bandwidth cap is active (messages serialize on the bus in departure
        order, which is deterministic because the engine is).
        """
        p = self.params
        if src == dst:
            return p.local_alpha
        if p.link_bandwidth > 0.0:
            route = self.topology.route(src, dst)
            if route is not None:
                return self._contended_transit(route, nbytes, depart)
        cf = self._hops_closed
        if cf is not None:
            # Same float expression as the memoized branch below, so
            # switching a family to closed form never perturbs a bit.
            hop_extra = max(0, cf(src, dst) - 1) * p.per_hop
        else:
            key = (src, dst)
            hop_extra = self._hop_extra.get(key)
            if hop_extra is None:
                hop_extra = max(0, self.hops_fn(src, dst) - 1) * p.per_hop
                self._hop_extra[key] = hop_extra
        latency = p.alpha + nbytes * p.beta + hop_extra
        if p.bus_bandwidth > 0.0:
            occupy = nbytes / p.bus_bandwidth
            start = max(depart, self._bus_free_at)
            self._bus_free_at = start + occupy
            latency += (start - depart) + occupy
        return latency

    def control_transit(self, src: int, dst: int, nbytes: int) -> float:
        """Latency of a tiny kernel-level control packet (acks, nacks).

        Control echoes ride the network's flow-control channel: they pay
        the full alpha/beta/per-hop latency but never occupy the modeled
        bus or links (hardware-level acks do not queue behind data).  Used
        by the fault layer's retry protocol (:mod:`repro.faults`).
        """
        p = self.params
        if src == dst:
            return p.local_alpha
        cf = self._hops_closed
        if cf is not None:
            hop_extra = max(0, cf(src, dst) - 1) * p.per_hop
        else:
            key = (src, dst)
            hop_extra = self._hop_extra.get(key)
            if hop_extra is None:
                hop_extra = max(0, self.hops_fn(src, dst) - 1) * p.per_hop
                self._hop_extra[key] = hop_extra
        return p.alpha + nbytes * p.beta + hop_extra

    def _contended_transit(self, route, nbytes: int, depart: float) -> float:
        """Store-and-forward traversal queuing on each directed link."""
        p = self.params
        occupy = nbytes / p.link_bandwidth
        t = depart + p.alpha
        for link in route:
            start = max(t, self._link_free_at.get(link, 0.0))
            t = start + occupy
            self._link_free_at[link] = t
        return t - depart

    def neighbors(self, pe: int):
        return self.topology.neighbors(pe)

    def __repr__(self) -> str:
        return f"Machine({self.name!r}, {self.topology!r})"
