"""Machine presets reproducing the SC'91 evaluation platforms.

The constants are calibrated from published characteristics of the era's
machines (and are recorded here, not measured — see DESIGN.md's
substitution table):

* **Sequent Symmetry** — bus-based shared memory, 16-MHz 80386 nodes.
  Slow CPUs, very cheap "messages" (a shared-memory enqueue under a lock),
  but a single bus that saturates.
* **Encore Multimax** — similar class of bus-based shared-memory machine,
  slightly faster nodes and bus.
* **Intel iPSC/2** — hypercube, ~700 µs message startup as seen by user
  code in its era's send/recv, cut-through routing (tiny per-hop cost),
  ~2.8 MB/s links.  We use the commonly cited ~350 µs one-way latency.
* **NCUBE/2** — hypercube, leaner messaging (~150 µs), slower nodes,
  scales to larger P.
* **cluster** — a modern commodity cluster point for extrapolation
  (microsecond-scale RDMA-ish messaging, fast cores).
* **ideal** — zero-overhead PRAM-flavoured machine for debugging and for
  isolating algorithmic (non-architectural) effects.

``work_unit_time`` is the time for one abstract work unit; apps charge in
units calibrated so that 1 unit ≈ 1 µs on a 1-MIPS-per-µs reference node.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.machine.network import Machine, MachineParams
from repro.machine.topology import (
    BusTopology,
    FullyConnectedTopology,
    HypercubeTopology,
)
from repro.util.errors import ConfigurationError

__all__ = [
    "symmetry",
    "multimax",
    "ipsc2",
    "ipsc860",
    "ncube1",
    "ncube2",
    "cluster",
    "hetero",
    "ideal",
    "MACHINE_PRESETS",
    "make_machine",
]


def symmetry(num_pes: int) -> Machine:
    """Sequent Symmetry class: bus shared memory, <= 30 PEs typically."""
    params = MachineParams(
        work_unit_time=4e-6,      # ~0.25 MIPS-equivalent per work unit
        sched_overhead=30e-6,
        recv_overhead=10e-6,
        alpha=40e-6,              # lock + shared-queue enqueue
        beta=0.15e-6,             # memcpy through shared memory
        per_hop=0.0,
        local_alpha=10e-6,
        bus_bandwidth=40e6,       # shared bus, ~40 MB/s effective
    )
    return Machine("symmetry", BusTopology(num_pes), params)


def multimax(num_pes: int) -> Machine:
    """Encore Multimax class: bus shared memory, somewhat faster."""
    params = MachineParams(
        work_unit_time=3e-6,
        sched_overhead=25e-6,
        recv_overhead=8e-6,
        alpha=30e-6,
        beta=0.12e-6,
        per_hop=0.0,
        local_alpha=8e-6,
        bus_bandwidth=80e6,
    )
    return Machine("multimax", BusTopology(num_pes), params)


def ipsc2(num_pes: int) -> Machine:
    """Intel iPSC/2 class hypercube (power-of-two PEs)."""
    params = MachineParams(
        work_unit_time=2e-6,
        sched_overhead=20e-6,
        recv_overhead=15e-6,
        alpha=350e-6,             # user-level one-way startup
        beta=0.36e-6,             # ~2.8 MB/s links
        per_hop=10e-6,            # cut-through: small per-hop term
        local_alpha=8e-6,
    )
    return Machine("ipsc2", HypercubeTopology(num_pes), params)


def ncube2(num_pes: int) -> Machine:
    """NCUBE/2 class hypercube: leaner messages, slower nodes, big P."""
    params = MachineParams(
        work_unit_time=3e-6,
        sched_overhead=15e-6,
        recv_overhead=10e-6,
        alpha=150e-6,
        beta=0.45e-6,             # ~2.2 MB/s links
        per_hop=5e-6,
        local_alpha=6e-6,
    )
    return Machine("ncube2", HypercubeTopology(num_pes), params)


def ipsc860(num_pes: int) -> Machine:
    """Intel iPSC/860 class: i860 nodes (much faster CPU, same network).

    The interesting preset for grain studies: compute speeds up ~5x over
    the iPSC/2 while the network barely moves, so the same program becomes
    communication-bound at a much coarser grain.
    """
    params = MachineParams(
        work_unit_time=0.4e-6,
        sched_overhead=8e-6,
        recv_overhead=6e-6,
        alpha=160e-6,
        beta=0.36e-6,
        per_hop=10e-6,
        local_alpha=3e-6,
    )
    return Machine("ipsc860", HypercubeTopology(num_pes), params)


def ncube1(num_pes: int) -> Machine:
    """NCUBE/1 class: the slowest nodes in the family, very large P."""
    params = MachineParams(
        work_unit_time=8e-6,
        sched_overhead=40e-6,
        recv_overhead=25e-6,
        alpha=400e-6,
        beta=1.1e-6,
        per_hop=20e-6,
        local_alpha=15e-6,
    )
    return Machine("ncube1", HypercubeTopology(num_pes), params)


def cluster(num_pes: int) -> Machine:
    """Modern commodity cluster (extrapolation point, not a 1991 machine)."""
    params = MachineParams(
        work_unit_time=0.02e-6,
        sched_overhead=0.2e-6,
        recv_overhead=0.1e-6,
        alpha=2e-6,
        beta=0.0001e-6,           # ~10 GB/s
        per_hop=0.1e-6,
        local_alpha=0.05e-6,
    )
    return Machine("cluster", FullyConnectedTopology(num_pes), params)


def hetero(num_pes: int) -> Machine:
    """Heterogeneous workstation network (the Charm portability story).

    Ethernet-class messaging between nodes whose speeds differ by up to
    4x in a fixed repeating pattern — the environment where *dynamic*
    balancing is not an optimization but a requirement (experiment T10).
    """
    params = MachineParams(
        work_unit_time=1e-6,
        sched_overhead=25e-6,
        recv_overhead=15e-6,
        alpha=800e-6,            # TCP/IP-era LAN round half-trip
        beta=1.0e-6,             # ~1 MB/s effective
        per_hop=0.0,
        local_alpha=10e-6,
    )
    pattern = (1.0, 2.0, 1.5, 4.0)
    speeds = tuple(pattern[i % len(pattern)] for i in range(num_pes))
    return Machine("hetero", FullyConnectedTopology(num_pes), params,
                   pe_speeds=speeds)


def ideal(num_pes: int) -> Machine:
    """Zero-overhead machine: compute time only.  For algorithm studies."""
    params = MachineParams(
        work_unit_time=1e-6,
        sched_overhead=0.0,
        recv_overhead=0.0,
        alpha=0.0,
        beta=0.0,
        per_hop=0.0,
        local_alpha=0.0,
    )
    return Machine("ideal", FullyConnectedTopology(num_pes), params)


MACHINE_PRESETS: Dict[str, Callable[[int], Machine]] = {
    "symmetry": symmetry,
    "multimax": multimax,
    "ipsc2": ipsc2,
    "ipsc860": ipsc860,
    "ncube1": ncube1,
    "ncube2": ncube2,
    "cluster": cluster,
    "hetero": hetero,
    "ideal": ideal,
}


def make_machine(
    name: str, num_pes: int, backend: str = "", sparse: bool = False
) -> Machine:
    """Build a preset machine by name.

    ``backend`` optionally pins an engine backend (``"heap"`` or
    ``"batch"``) on the machine; the kernel picks it up unless the caller
    passes an explicit ``backend=`` of its own.  Empty string (default)
    leaves the choice to the kernel.  ``sparse`` pins sparse startup the
    same way — the O(active) mode that makes P=10⁵–10⁶ machines practical.
    """
    try:
        factory = MACHINE_PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown machine preset {name!r}; options: {sorted(MACHINE_PRESETS)}"
        ) from None
    machine = factory(num_pes)
    if backend:
        machine.backend = backend
    if sparse:
        machine.sparse = True
    return machine
