"""Interconnect topologies.

A topology answers two questions for the network model and the ACWN load
balancer: *how many hops between PE i and PE j* and *who are PE i's
neighbors*.  All topologies are static and deterministic.

Implemented families (the 1991 machines plus standard extras):

* :class:`BusTopology` — shared-memory bus (Sequent Symmetry, Encore
  Multimax): every pair is one "hop" with no per-hop cost; "neighbors" is
  everyone (the balancer neighborhood on a bus machine is global).
* :class:`HypercubeTopology` — Intel iPSC/2, NCUBE/2: PE count must be a
  power of two, hops = popcount(i XOR j).
* :class:`FullyConnectedTopology` — idealised crossbar.
* :class:`RingTopology`, :class:`Mesh2DTopology`, :class:`Torus2DTopology`,
  :class:`TreeTopology` — standard shapes used by the load-balancing and
  scalability studies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Tuple

from repro.util.errors import TopologyError

__all__ = [
    "Topology",
    "BusTopology",
    "FullyConnectedTopology",
    "RingTopology",
    "Mesh2DTopology",
    "Torus2DTopology",
    "HypercubeTopology",
    "TreeTopology",
    "make_topology",
]


class Topology(ABC):
    """Abstract interconnect shape over ``num_pes`` processors."""

    name: str = "abstract"

    def __init__(self, num_pes: int) -> None:
        if num_pes < 1:
            raise TopologyError(f"need at least one PE, got {num_pes}")
        self.num_pes = int(num_pes)

    def _check(self, pe: int) -> None:
        if not 0 <= pe < self.num_pes:
            raise TopologyError(f"PE {pe} out of range [0, {self.num_pes})")

    @abstractmethod
    def hops(self, src: int, dst: int) -> int:
        """Number of network hops from ``src`` to ``dst`` (0 if equal)."""

    @abstractmethod
    def neighbors(self, pe: int) -> List[int]:
        """Directly connected PEs (the ACWN neighborhood)."""

    def route(self, src: int, dst: int) -> Optional[List[Tuple[int, int]]]:
        """Deterministic path as directed links [(a,b), ...], or None.

        ``None`` means the topology has no discrete links to contend for
        (bus/crossbar); the link-contention model then does not apply.
        Implementations must return exactly ``hops(src, dst)`` links.
        """
        return None

    def closed_form_hops(self) -> Optional[Callable[[int, int], int]]:
        """An O(1) *unchecked* hops function, or None.

        When a family's metric reduces to arithmetic (popcount, coordinate
        distance), this returns a bound method computing it with no range
        checks and no memo table — the per-pair dict the cost model would
        otherwise build is O(P²) and unusable at the roadmap's 10⁵-PE
        machines.  A bound method (not a lambda/closure) so machines that
        hold it stay picklable for the parallel sweep executor.  ``None``
        means the metric genuinely needs a walk (trees); callers keep the
        memoized table for those.
        """
        return None

    def diameter(self) -> int:
        """Maximum hop distance over all pairs.

        Base implementation is the O(P²) brute-force scan; every concrete
        family overrides it with a closed form (tested equivalent at small
        P) so it stays usable at P=100k.
        """
        return max(
            self.hops(i, j) for i in range(self.num_pes) for j in range(self.num_pes)
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_pes={self.num_pes})"


class BusTopology(Topology):
    """Shared bus: uniform single-hop access, global neighborhood."""

    name = "bus"

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        return 0 if src == dst else 1

    def _cf_hops(self, src: int, dst: int) -> int:
        return 0 if src == dst else 1

    def closed_form_hops(self) -> Callable[[int, int], int]:
        return self._cf_hops

    def diameter(self) -> int:
        return 0 if self.num_pes == 1 else 1

    def neighbors(self, pe: int) -> List[int]:
        self._check(pe)
        return [p for p in range(self.num_pes) if p != pe]


class FullyConnectedTopology(BusTopology):
    """Crossbar: identical metric to a bus, kept distinct for reporting."""

    name = "full"


class RingTopology(Topology):
    """Bidirectional ring."""

    name = "ring"

    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Shortest-direction walk around the ring."""
        self._check(src)
        self._check(dst)
        n = self.num_pes
        forward = (dst - src) % n
        step = 1 if forward <= n - forward else -1
        links = []
        cur = src
        while cur != dst:
            nxt = (cur + step) % n
            links.append((cur, nxt))
            cur = nxt
        return links

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        d = abs(src - dst)
        return min(d, self.num_pes - d)

    def _cf_hops(self, src: int, dst: int) -> int:
        d = abs(src - dst)
        return min(d, self.num_pes - d)

    def closed_form_hops(self) -> Callable[[int, int], int]:
        return self._cf_hops

    def diameter(self) -> int:
        return self.num_pes // 2

    def neighbors(self, pe: int) -> List[int]:
        self._check(pe)
        if self.num_pes == 1:
            return []
        left = (pe - 1) % self.num_pes
        right = (pe + 1) % self.num_pes
        return [left] if left == right else [left, right]


class Mesh2DTopology(Topology):
    """Open 2-D mesh of ``rows x cols`` PEs, row-major numbering."""

    name = "mesh2d"

    def __init__(self, num_pes: int, rows: int | None = None, cols: int | None = None) -> None:
        super().__init__(num_pes)
        if rows is None and cols is None:
            rows = _near_square_rows(num_pes)
        if rows is None:
            assert cols is not None
            if num_pes % cols:
                raise TopologyError(f"{num_pes} PEs not divisible by cols={cols}")
            rows = num_pes // cols
        if cols is None:
            if num_pes % rows:
                raise TopologyError(f"{num_pes} PEs not divisible by rows={rows}")
            cols = num_pes // rows
        if rows * cols != num_pes:
            raise TopologyError(f"rows*cols={rows * cols} != num_pes={num_pes}")
        self.rows, self.cols = rows, cols

    def _rc(self, pe: int) -> Tuple[int, int]:
        return divmod(pe, self.cols)

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        r1, c1 = self._rc(src)
        r2, c2 = self._rc(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    def _cf_hops(self, src: int, dst: int) -> int:
        cols = self.cols
        r1, c1 = divmod(src, cols)
        r2, c2 = divmod(dst, cols)
        return abs(r1 - r2) + abs(c1 - c2)

    def closed_form_hops(self) -> Callable[[int, int], int]:
        return self._cf_hops

    def diameter(self) -> int:
        return (self.rows - 1) + (self.cols - 1)

    def neighbors(self, pe: int) -> List[int]:
        self._check(pe)
        r, c = self._rc(pe)
        out = []
        if r > 0:
            out.append(pe - self.cols)
        if r < self.rows - 1:
            out.append(pe + self.cols)
        if c > 0:
            out.append(pe - 1)
        if c < self.cols - 1:
            out.append(pe + 1)
        return out

    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """XY (column-then-row) dimension-ordered routing."""
        self._check(src)
        self._check(dst)
        links = []
        r1, c1 = self._rc(src)
        r2, c2 = self._rc(dst)
        cur = src
        while c1 != c2:
            c1 += 1 if c2 > c1 else -1
            nxt = r1 * self.cols + c1
            links.append((cur, nxt))
            cur = nxt
        while r1 != r2:
            r1 += 1 if r2 > r1 else -1
            nxt = r1 * self.cols + c1
            links.append((cur, nxt))
            cur = nxt
        return links


class Torus2DTopology(Mesh2DTopology):
    """2-D torus: mesh with wraparound links."""

    name = "torus2d"

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        r1, c1 = self._rc(src)
        r2, c2 = self._rc(dst)
        dr = abs(r1 - r2)
        dc = abs(c1 - c2)
        return min(dr, self.rows - dr) + min(dc, self.cols - dc)

    def _cf_hops(self, src: int, dst: int) -> int:
        cols = self.cols
        r1, c1 = divmod(src, cols)
        r2, c2 = divmod(dst, cols)
        dr = abs(r1 - r2)
        dc = abs(c1 - c2)
        return min(dr, self.rows - dr) + min(dc, cols - dc)

    def diameter(self) -> int:
        return self.rows // 2 + self.cols // 2

    def neighbors(self, pe: int) -> List[int]:
        self._check(pe)
        r, c = self._rc(pe)
        cand = {
            ((r - 1) % self.rows) * self.cols + c,
            ((r + 1) % self.rows) * self.cols + c,
            r * self.cols + (c - 1) % self.cols,
            r * self.cols + (c + 1) % self.cols,
        }
        cand.discard(pe)
        return sorted(cand)

    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """XY routing with wraparound, shortest direction per axis."""
        self._check(src)
        self._check(dst)

        def step_toward(cur: int, target: int, size: int) -> int:
            fwd = (target - cur) % size
            return 1 if fwd <= size - fwd else -1

        links = []
        r1, c1 = self._rc(src)
        r2, c2 = self._rc(dst)
        cur = src
        while c1 != c2:
            c1 = (c1 + step_toward(c1, c2, self.cols)) % self.cols
            nxt = r1 * self.cols + c1
            links.append((cur, nxt))
            cur = nxt
        while r1 != r2:
            r1 = (r1 + step_toward(r1, r2, self.rows)) % self.rows
            nxt = r1 * self.cols + c1
            links.append((cur, nxt))
            cur = nxt
        return links


class HypercubeTopology(Topology):
    """Boolean n-cube; ``num_pes`` must be a power of two."""

    name = "hypercube"

    def __init__(self, num_pes: int) -> None:
        super().__init__(num_pes)
        if num_pes & (num_pes - 1):
            raise TopologyError(f"hypercube needs power-of-two PEs, got {num_pes}")
        self.dimension = num_pes.bit_length() - 1

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        return (src ^ dst).bit_count()

    def _cf_hops(self, src: int, dst: int) -> int:
        return (src ^ dst).bit_count()

    def closed_form_hops(self) -> Callable[[int, int], int]:
        return self._cf_hops

    def diameter(self) -> int:
        return self.dimension if self.num_pes > 1 else 0

    def neighbors(self, pe: int) -> List[int]:
        self._check(pe)
        return [pe ^ (1 << d) for d in range(self.dimension)]

    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Dimension-ordered (e-cube) routing: fix bits lowest-first."""
        self._check(src)
        self._check(dst)
        links = []
        cur = src
        diff = src ^ dst
        d = 0
        while diff:
            if diff & 1:
                nxt = cur ^ (1 << d)
                links.append((cur, nxt))
                cur = nxt
            diff >>= 1
            d += 1
        return links


class TreeTopology(Topology):
    """Complete k-ary tree numbered level-order (PE 0 is the root)."""

    name = "tree"

    def __init__(self, num_pes: int, arity: int = 2) -> None:
        super().__init__(num_pes)
        if arity < 2:
            raise TopologyError(f"tree arity must be >= 2, got {arity}")
        self.arity = arity

    def parent(self, pe: int) -> int | None:
        self._check(pe)
        return None if pe == 0 else (pe - 1) // self.arity

    def children(self, pe: int) -> List[int]:
        self._check(pe)
        lo = pe * self.arity + 1
        return [c for c in range(lo, lo + self.arity) if c < self.num_pes]

    def _path_to_root(self, pe: int) -> List[int]:
        path = [pe]
        while pe != 0:
            pe = (pe - 1) // self.arity
            path.append(pe)
        return path

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        a = self._path_to_root(src)
        b = set(self._path_to_root(dst))
        # Depth of lowest common ancestor via first shared node on src's path.
        for i, node in enumerate(a):
            if node in b:
                bpath = self._path_to_root(dst)
                return i + bpath.index(node)
        raise TopologyError("disconnected tree (unreachable)")  # pragma: no cover

    def neighbors(self, pe: int) -> List[int]:
        self._check(pe)
        out = self.children(pe)
        p = self.parent(pe)
        if p is not None:
            out.append(p)
        return sorted(out)

    def diameter(self) -> int:
        """O(log n) closed form.

        Level-order numbering fills each level left to right, so the last
        node ``n-1`` is a deepest node (depth D).  The diameter pairs a
        depth-D node with the deepest node in a *different* root subtree:
        2D when depth D reaches past the root's first subtree (some
        depth-D node lives under child 2), else 2D-1 (the other subtrees
        stop at depth D-1, which is fully populated whenever depth D
        exists beyond n=1).
        """
        n = self.num_pes
        if n == 1:
            return 0
        if n == 2:
            return 1
        depth = 0
        node = n - 1
        while node != 0:
            node = (node - 1) // self.arity
            depth += 1
        # Leftmost descendant of root child 2 at depth ``depth``.
        node = 2
        for _ in range(depth - 1):
            node = node * self.arity + 1
        return 2 * depth if node < n else 2 * depth - 1

    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Up to the lowest common ancestor, then down."""
        self._check(src)
        self._check(dst)
        up = self._path_to_root(src)
        down = self._path_to_root(dst)
        common = set(up) & set(down)
        links = []
        cur = src
        while cur not in common:
            parent = self.parent(cur)
            links.append((cur, parent))
            cur = parent
        lca = cur
        descent = []
        cur = dst
        while cur != lca:
            descent.append((self.parent(cur), cur))
            cur = self.parent(cur)
        links.extend(reversed(descent))
        return links


def _near_square_rows(n: int) -> int:
    """Largest divisor of ``n`` not exceeding sqrt(n) — near-square meshes."""
    best = 1
    d = 1
    while d * d <= n:
        if n % d == 0:
            best = d
        d += 1
    return best


_FACTORIES: Dict[str, type] = {
    "bus": BusTopology,
    "full": FullyConnectedTopology,
    "ring": RingTopology,
    "mesh2d": Mesh2DTopology,
    "torus2d": Torus2DTopology,
    "hypercube": HypercubeTopology,
    "tree": TreeTopology,
}


def make_topology(name: str, num_pes: int, **kwargs) -> Topology:
    """Construct a topology by name (``bus``, ``hypercube``, ...)."""
    try:
        cls = _FACTORIES[name]
    except KeyError:
        raise TopologyError(
            f"unknown topology {name!r}; options: {sorted(_FACTORIES)}"
        ) from None
    return cls(num_pes, **kwargs)
