"""Metrics over structured event logs: time series (sampler) and
per-request latency reconstruction (latency)."""

from repro.metrics.latency import latency_summary, percentile, request_latencies
from repro.metrics.sampler import sample_metrics, metrics_summary

__all__ = [
    "sample_metrics",
    "metrics_summary",
    "percentile",
    "request_latencies",
    "latency_summary",
]
