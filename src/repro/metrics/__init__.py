"""Time-series metrics over structured event logs (see sampler)."""

from repro.metrics.sampler import sample_metrics, metrics_summary

__all__ = ["sample_metrics", "metrics_summary"]
