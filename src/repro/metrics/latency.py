"""Per-request latency reconstruction from the causal event log.

The serving workload (:mod:`repro.apps.serving`) deliberately adds **no**
kernel-side latency hooks: every number here is recovered from the
structured event log's parent chains (PR 5).  A request's life looks like::

    source exec ──send──▶ [lb ─▶ deliver ─▶ send]* ─▶ deliver ─▶ exec_begin
                                                        (stage 0)   │
                 stage 0 exec ──send──▶ ... ─▶ deliver ─▶ exec_begin │
                                                        (stage k)   ▼
                 final stage ──send "done"──▶ collector

so walking parents from the final stage's ``done`` (or ``shed``) send
recovers, exactly and per request:

* **injection time** — the timestamp of the *original* send event closest
  to the source execution (forwarded balancer legs get fresh uids but stay
  parent-linked through their ``lb``/``deliver``/``send`` hops, so the walk
  crosses them);
* **end-to-end latency** — final stage ``exec_end`` minus injection;
* **queue wait** — sum over stages of ``exec_begin.t - deliver.t`` (time
  spent enqueued behind other work on the serving PE);
* **service** — sum of stage execution durations; the remainder is wire
  transit plus balancer forwarding.

Requires the ``send``/``deliver``/``exec_begin``/``exec_end`` kinds in the
log (the serving runner records exactly those by default).  Percentiles use
the *nearest-rank* method — the p-th percentile of n samples is the
``ceil(p/100 * n)``-th smallest — so small hand-computed samples in tests
match exactly, with no interpolation ambiguity.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.util.errors import ConfigurationError

__all__ = ["percentile", "request_latencies", "latency_summary"]


def _as_dict(record: Any) -> Dict[str, Any]:
    return record if isinstance(record, dict) else record.as_dict()


# ================================================================ percentiles
def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile: the ``ceil(q/100 * n)``-th smallest value.

    ``values`` need not be pre-sorted.  Raises on an empty sample — an
    undefined percentile must never silently become a number.
    """
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile q must be in [0, 100], got {q}")
    if not values:
        raise ConfigurationError("percentile of an empty sample is undefined")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


# ========================================================= chain reconstruction
def _walk_to_origin(
    deliver: Dict[str, Any], by_eid: Dict[int, Dict[str, Any]]
) -> Tuple[Optional[Dict[str, Any]], Optional[float]]:
    """Walk a delivery's parent chain to the execution that originated it.

    Returns ``(origin exec_begin or None, original send timestamp)``.
    Crosses balancer forwarding legs (``send -> lb -> deliver -> send ...``)
    and fault retransmissions, keeping the *earliest* send seen — that is
    the injection point.  A parent cycle (impossible in a kernel-produced
    log, but hand-built or corrupted logs are legal inputs) terminates the
    walk instead of hanging it.
    """
    origin_send_t: Optional[float] = None
    cur = deliver
    seen = {cur["eid"]}
    while True:
        parent_eid = cur.get("parent")
        parent = by_eid.get(parent_eid) if parent_eid is not None else None
        if parent is None or parent["eid"] in seen:
            return None, origin_send_t
        seen.add(parent["eid"])
        kind = parent["kind"]
        if kind == "exec_begin":
            return parent, origin_send_t
        if kind == "send":
            origin_send_t = parent["t"]
        cur = parent


def request_latencies(
    records: Sequence[Any],
    *,
    request_name: str = "Request",
    done_entry: str = "done",
    shed_entry: str = "shed",
) -> List[Dict[str, Any]]:
    """Reconstruct one record per finished request from the event log.

    Each record has ``kind`` ("done" for served, "shed" for requests the
    admission controller turned away), ``inject_t``, ``complete_t``,
    ``latency``, ``queue_wait``, ``service`` and ``stages``.  Output is
    sorted by injection time, so it is deterministic for a deterministic
    run regardless of log interleaving.
    """
    events = [_as_dict(r) for r in records]
    by_eid = {e["eid"]: e for e in events}
    end_of: Dict[int, Dict[str, Any]] = {}
    for e in events:
        if e["kind"] == "exec_end" and e.get("parent") is not None:
            end_of[e["parent"]] = e

    out: List[Dict[str, Any]] = []
    for e in events:
        if e["kind"] != "send" or e.get("name") not in (done_entry, shed_entry):
            continue
        begin = by_eid.get(e.get("parent"))
        if begin is None or begin["kind"] != "exec_begin":
            continue
        # Walk the pipeline backwards from the final stage's execution.
        stages = 0
        queue_wait = 0.0
        service = 0.0
        inject_t: Optional[float] = None
        final_end = end_of.get(begin["eid"])
        complete_t = final_end["t"] if final_end is not None else e["t"]
        cur = begin
        valid = True
        visited = set()
        while True:
            if cur.get("name") != request_name:
                valid = False  # a completion sent by a non-request execution
                break
            if cur["eid"] in visited:
                valid = False  # parent cycle in a hand-built/corrupted log
                break
            visited.add(cur["eid"])
            stages += 1
            stage_end = end_of.get(cur["eid"])
            if stage_end is not None and stage_end.get("dur") is not None:
                service += stage_end["dur"]
            deliver = by_eid.get(cur.get("parent"))
            if deliver is None or deliver["kind"] != "deliver":
                valid = False  # truncated log
                break
            queue_wait += cur["t"] - deliver["t"]
            origin, send_t = _walk_to_origin(deliver, by_eid)
            if send_t is not None:
                inject_t = send_t
            if origin is not None and origin.get("name") == request_name:
                cur = origin  # previous pipeline stage
                continue
            break
        if not valid or inject_t is None:
            continue
        out.append({
            "kind": "shed" if e["name"] == shed_entry else "done",
            "inject_t": inject_t,
            "complete_t": complete_t,
            "latency": complete_t - inject_t,
            "queue_wait": queue_wait,
            "service": service,
            "stages": stages,
        })
    out.sort(key=lambda r: (r["inject_t"], r["complete_t"]))
    return out


# ===================================================================== summary
def latency_summary(
    records: Sequence[Any],
    *,
    request_name: str = "Request",
    done_entry: str = "done",
    shed_entry: str = "shed",
    quantiles: Tuple[float, ...] = (50.0, 95.0, 99.0),
) -> Dict[str, Any]:
    """Scalar latency digest of a serving run's event log.

    Counts plus nearest-rank percentiles over *served* requests, and the
    queue-wait / service / transit decomposition of the mean.  Percentile
    fields are ``None`` when no request completed (an empty summary must
    stay visibly empty, not read as a zero-latency system).
    """
    reqs = request_latencies(
        records,
        request_name=request_name,
        done_entry=done_entry,
        shed_entry=shed_entry,
    )
    served = [r for r in reqs if r["kind"] == "done"]
    shed = [r for r in reqs if r["kind"] == "shed"]
    summary: Dict[str, Any] = {
        "requests": len(reqs),
        "completed": len(served),
        "shed": len(shed),
    }
    latencies = sorted(r["latency"] for r in served)
    if latencies:
        n = len(latencies)
        for q in quantiles:
            label = f"p{q:g}"
            summary[label] = latencies[max(1, math.ceil(q / 100.0 * n)) - 1]
        summary["mean"] = sum(latencies) / n
        summary["min"] = latencies[0]
        summary["max"] = latencies[-1]
        summary["mean_queue_wait"] = sum(r["queue_wait"] for r in served) / n
        summary["mean_service"] = sum(r["service"] for r in served) / n
        summary["mean_transit"] = (
            summary["mean"] - summary["mean_queue_wait"] - summary["mean_service"]
        )
    else:
        for q in quantiles:
            summary[f"p{q:g}"] = None
        summary["mean"] = summary["min"] = summary["max"] = None
        summary["mean_queue_wait"] = None
        summary["mean_service"] = None
        summary["mean_transit"] = None
    return summary
