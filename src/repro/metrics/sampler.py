"""Time-series metrics sampler.

Post-processes a structured event log (:mod:`repro.trace.events`) into
time-bucketed JSON rows — the dashboard-ready complement to the
end-of-run :class:`~repro.trace.report.TraceReport` aggregates:

* ``util`` — fraction of PE-time spent executing in the bucket,
* ``in_flight_max`` / ``bytes_on_wire_max`` — peak messages (bytes)
  between send and delivery,
* ``pool_max`` / ``pool_max_pe`` — deepest per-PE message pool (messages
  delivered but not yet begun executing) and which PE held it,
* ``msgs_sent`` / ``msgs_executed`` — event counts binned by time.

Pure function of the records: identical whether the run executed inline,
in a pool worker, or came back from the result cache.  Buckets are
half-open ``[t0, t1)`` except the last, which closes at ``t_end``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["sample_metrics", "metrics_summary"]


def _as_dict(record: Any) -> Dict[str, Any]:
    return record if isinstance(record, dict) else record.as_dict()


def _bucket_of(t: float, lo: float, width: float, buckets: int) -> int:
    b = int((t - lo) / width)
    return buckets - 1 if b >= buckets else (0 if b < 0 else b)


def _peaks(
    edges: List[Tuple[float, float]], lo: float, width: float, buckets: int
) -> List[float]:
    """Per-bucket maximum of a step function given (time, delta) edges.

    Edges are applied in (time, delta) order — decrements first at ties,
    so a message delivered and re-sent at the same instant never
    double-counts.  The maximum seen in each bucket includes the value
    carried in from the previous bucket.
    """
    edges.sort()
    out = [0.0] * buckets
    cur = 0.0
    i = 0
    n = len(edges)
    for b in range(buckets):
        hi = lo + (b + 1) * width
        peak = cur
        while i < n and (edges[i][0] < hi or b == buckets - 1):
            cur += edges[i][1]
            if cur > peak:
                peak = cur
            i += 1
        out[b] = peak
    return out


def sample_metrics(
    records: Sequence[Any],
    buckets: int = 60,
    num_pes: Optional[int] = None,
    t_end: Optional[float] = None,
) -> List[Dict[str, Any]]:
    """Bucket a run's event records into time-series metric rows."""
    if buckets < 1:
        raise ValueError("buckets must be >= 1")
    if num_pes is not None and num_pes < 1:
        # util divides by num_pes; 0 would raise ZeroDivisionError deep in
        # the row loop and a negative count would yield negative utilization.
        raise ValueError("num_pes must be >= 1 when given")
    events = [_as_dict(r) for r in records]
    if not events:
        return []
    by_eid = {e["eid"]: e for e in events}

    # exec_end events are stamped at their end time and idle_gap events at
    # their start, so the run's extent is max(t, t + idle dur).
    max_t = 0.0
    max_pe = 0
    for e in events:
        end = e["t"] + ((e["dur"] or 0.0) if e["kind"] == "idle_gap" else 0.0)
        if end > max_t:
            max_t = end
        if e["pe"] > max_pe:
            max_pe = e["pe"]
    if t_end is None:
        t_end = max_t
    if num_pes is None:
        num_pes = max_pe + 1
    lo = 0.0
    span = t_end - lo
    if span <= 0.0:
        span = 1.0  # degenerate zero-span run: one catch-all bucket
        t_end = lo + span
    width = span / buckets

    busy = [0.0] * buckets
    msgs_sent = [0] * buckets
    msgs_executed = [0] * buckets
    flight_edges: List[Tuple[float, float]] = []
    wire_edges: List[Tuple[float, float]] = []
    # pool edges per PE: uid delivered -> +1, its exec_begin -> -1.
    pool_edges: Dict[int, List[Tuple[float, float]]] = {}
    delivered_t: Dict[int, Tuple[float, int]] = {}
    begun: Dict[int, float] = {}

    for e in events:
        kind = e["kind"]
        t = e["t"]
        if kind == "send":
            msgs_sent[_bucket_of(t, lo, width, buckets)] += 1
            # Undelivered sends (dropped without retry success) simply
            # never close: for per-bucket peaks that is the same as
            # closing at t_end.
            flight_edges.append((t, 1.0))
            nbytes = (e.get("info") or {}).get("nbytes", 0)
            wire_edges.append((t, float(nbytes)))
        elif kind == "deliver":
            send = by_eid.get(e.get("parent"))
            if send is not None and send["kind"] == "send":
                flight_edges.append((t, -1.0))
                nbytes = (send.get("info") or {}).get("nbytes", 0)
                wire_edges.append((t, -float(nbytes)))
            uid = e.get("uid")
            if uid is not None and uid not in delivered_t:
                delivered_t[uid] = (t, e["pe"])
        elif kind == "exec_begin":
            uid = e.get("uid")
            if uid is not None and uid not in begun:
                begun[uid] = t
        elif kind == "exec_end":
            dur = e.get("dur") or 0.0
            start = t - dur
            msgs_executed[_bucket_of(t, lo, width, buckets)] += 1
            if dur > 0.0:
                b0 = _bucket_of(start, lo, width, buckets)
                b1 = _bucket_of(t, lo, width, buckets)
                for b in range(b0, b1 + 1):
                    w_lo = lo + b * width
                    busy[b] += max(0.0, min(t, w_lo + width) - max(start, w_lo))

    # Pool occupancy: delivery opens, first execution closes (or t_end).
    for uid, (t_del, pe) in delivered_t.items():
        edges = pool_edges.setdefault(pe, [])
        edges.append((t_del, 1.0))
        edges.append((begun.get(uid, t_end), -1.0))

    in_flight = _peaks(flight_edges, lo, width, buckets)
    on_wire = _peaks(wire_edges, lo, width, buckets)
    pool_peaks = {pe: _peaks(edges, lo, width, buckets)
                  for pe, edges in sorted(pool_edges.items())}

    rows: List[Dict[str, Any]] = []
    for b in range(buckets):
        pool_max, pool_max_pe = 0, None
        for pe, peaks in pool_peaks.items():
            if peaks[b] > pool_max:
                pool_max, pool_max_pe = peaks[b], pe
        rows.append({
            "bucket": b,
            "t0": lo + b * width,
            "t1": lo + (b + 1) * width,
            "util": min(1.0, busy[b] / (width * num_pes)),
            "msgs_sent": msgs_sent[b],
            "msgs_executed": msgs_executed[b],
            "in_flight_max": int(in_flight[b]),
            "bytes_on_wire_max": int(on_wire[b]),
            "pool_max": int(pool_max),
            "pool_max_pe": pool_max_pe,
        })
    return rows


def metrics_summary(rows: Sequence[Dict[str, Any]]) -> str:
    """Compact peak/mean line for CLI output."""
    if not rows:
        return "metrics: (no samples)"
    peak_flight = max(r["in_flight_max"] for r in rows)
    peak_wire = max(r["bytes_on_wire_max"] for r in rows)
    peak_pool = max(r["pool_max"] for r in rows)
    mean_util = sum(r["util"] for r in rows) / len(rows)
    return (f"metrics: {len(rows)} buckets, mean util {mean_util * 100:.1f}%, "
            f"peak in-flight {peak_flight} msgs / {peak_wire} bytes, "
            f"peak pool depth {peak_pool}")
