"""repro.obs — the online telemetry plane.

Low-overhead runtime observability for runs the event log cannot afford to
watch: streaming counters/gauges/log-bucketed histograms aggregated inside
the kernel's execution hook, periodic virtual-time snapshots, JSONL and
Prometheus exporters, and a run-health reporter.  Enable per run with::

    from repro.obs import Telemetry, TelemetryConfig

    tel = Telemetry(TelemetryConfig(interval=1e-3))
    kernel = Kernel(machine, telemetry=tel)
    kernel.run(Main)
    print(RunHealth(tel).format())
    open("metrics.jsonl", "w").write(to_jsonl(tel))

``telemetry=None`` (the default) keeps the kernel's untraced fast path
bit-identical; see docs/architecture.md "Telemetry plane".
"""

from repro.obs.exporters import parse_jsonl, to_jsonl, to_prometheus
from repro.obs.health import RunHealth
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    quantile_from_record,
)
from repro.obs.telemetry import Telemetry, TelemetryConfig

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "quantile_from_record",
    "Telemetry",
    "TelemetryConfig",
    "RunHealth",
    "to_jsonl",
    "to_prometheus",
    "parse_jsonl",
]
