"""Exporters for the telemetry plane: JSONL stream and Prometheus text.

Two formats, two audiences:

* :func:`to_jsonl` — the archival/streaming form: line 1 is the
  ``repro-metrics-v1`` header (meta), then one line per snapshot, then one
  ``series`` line carrying every metric's final state.  One JSON object
  per line, so a consumer can tail it mid-run and a test can parse any
  prefix.  :func:`parse_jsonl` is the exact inverse.
* :func:`to_prometheus` — the scrape form (text exposition format 0.0.4):
  counters and gauges as labeled samples, histograms as cumulative
  ``_bucket{le=...}`` series plus ``_sum``/``_count``, each family with a
  ``# TYPE`` header.  Metric names get a ``repro_`` prefix and label
  values are escaped per the spec.

Both operate on plain data (a :class:`~repro.obs.telemetry.Telemetry` or
its ``payload()`` dict), so rows that crossed a pool worker or the result
cache export identically to live ones.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Union

from repro.obs.registry import Histogram
from repro.util.errors import ConfigurationError

__all__ = ["to_jsonl", "parse_jsonl", "to_prometheus"]


def _as_payload(source: Any) -> Dict[str, Any]:
    if isinstance(source, dict):
        if source.get("format") != "repro-metrics-v1":
            raise ConfigurationError(
                "not a repro-metrics-v1 payload: "
                f"format={source.get('format')!r}"
            )
        return source
    return source.payload()


# ===================================================================== JSONL
def to_jsonl(source: Any) -> str:
    """Serialize a telemetry plane (or its payload) to JSONL text."""
    payload = _as_payload(source)
    lines = [json.dumps({"format": payload["format"],
                         "meta": payload["meta"]}, sort_keys=True)]
    for snap in payload["snapshots"]:
        lines.append(json.dumps({"kind": "snapshot", **snap}, sort_keys=True))
    lines.append(json.dumps({"kind": "series",
                             "series": payload["series"]}, sort_keys=True))
    return "\n".join(lines) + "\n"


def parse_jsonl(text: str) -> Dict[str, Any]:
    """Parse :func:`to_jsonl` output back into a payload dict (validating)."""
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise ConfigurationError("empty metrics JSONL stream")
    header = json.loads(lines[0])
    if header.get("format") != "repro-metrics-v1":
        raise ConfigurationError(
            f"unknown metrics stream format {header.get('format')!r}"
        )
    snapshots: List[Dict[str, Any]] = []
    series: List[Dict[str, Any]] = []
    for ln in lines[1:]:
        row = json.loads(ln)
        kind = row.pop("kind", None)
        if kind == "snapshot":
            snapshots.append(row)
        elif kind == "series":
            series = row["series"]
        else:
            raise ConfigurationError(f"unknown metrics JSONL row kind {kind!r}")
    return {
        "format": "repro-metrics-v1",
        "meta": header["meta"],
        "snapshots": snapshots,
        "series": series,
    }


# ================================================================ Prometheus
def _prom_name(name: str) -> str:
    out = [c if c.isalnum() or c == "_" else "_" for c in name]
    return "repro_" + "".join(out)


def _prom_labels(labels: Dict[str, Any], extra: str = "") -> str:
    parts = [
        '%s="%s"' % (
            k,
            str(v).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n"),
        )
        for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(v: Union[int, float]) -> str:
    if isinstance(v, float):
        if math.isinf(v):
            return "+Inf" if v > 0 else "-Inf"
        return repr(v)
    return str(v)


def to_prometheus(source: Any) -> str:
    """Render the final metric series in Prometheus text format."""
    payload = _as_payload(source)
    by_name: Dict[str, List[Dict[str, Any]]] = {}
    types: Dict[str, str] = {}
    for rec in payload["series"]:
        by_name.setdefault(rec["name"], []).append(rec)
        types[rec["name"]] = rec["type"]
    lines: List[str] = []
    for name in sorted(by_name):
        pname = _prom_name(name)
        mtype = types[name]
        lines.append(f"# TYPE {pname} {mtype}")
        for rec in by_name[name]:
            labels = rec["labels"]
            if mtype in ("counter", "gauge"):
                value = rec["value"]
                if value is None:
                    continue
                lines.append(f"{pname}{_prom_labels(labels)} {_fmt(value)}")
                continue
            # Histogram: cumulative buckets in ascending upper-bound order.
            h = Histogram.from_record(rec["value"])
            cum = h.zero
            if h.zero:
                le = _prom_labels(labels, 'le="0.0"')
                lines.append(f"{pname}_bucket{le} {h.zero}")
            for idx in sorted(h.buckets):
                cum += h.buckets[idx]
                _, upper = h.bucket_bounds(idx)
                le = _prom_labels(labels, "le=%s" % json.dumps(_fmt(upper)))
                lines.append(f"{pname}_bucket{le} {cum}")
            le = _prom_labels(labels, 'le="+Inf"')
            lines.append(f"{pname}_bucket{le} {h.count}")
            lines.append(f"{pname}_sum{_prom_labels(labels)} {_fmt(h.total)}")
            lines.append(f"{pname}_count{_prom_labels(labels)} {h.count}")
    return "\n".join(lines) + "\n"
