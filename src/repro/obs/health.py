"""Run-health reporting: is this run making progress, and how fast?

A long sweep cell (or a P=10\N{SUPERSCRIPT FIVE} serving run) is opaque
while it executes — the engine's virtual clock says nothing about whether
the *host* is getting anywhere.  :class:`RunHealth` reads the telemetry
plane's snapshot stream and answers the operator questions directly:

* **events/s (wall)** — host-side engine throughput between the last two
  snapshots;
* **vtime rate** — simulated seconds advanced per wall second (the
  "simulation speed" figure);
* **in-flight** — counted messages sent but not yet processed, the same
  balance quiescence detection watches;
* **quiescence wave status** — waves run / detected-at;
* **stall detection** — a snapshot window in which the engine fired no
  events (or virtual time froze while work remains in flight) marks the
  run stalled; wall-clock watchdogs wrap :meth:`check` around it.

Everything is computed from plain snapshot rows, so health reads
identically for a live kernel, a pool-worker row, or a parsed JSONL file.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["RunHealth"]


class RunHealth:
    """Health view over a telemetry snapshot stream."""

    def __init__(self, source: Any) -> None:
        # Accept a Telemetry, a payload dict, or a bare snapshot list.
        if isinstance(source, list):
            self.snapshots: List[Dict[str, Any]] = source
        elif isinstance(source, dict):
            self.snapshots = source.get("snapshots", [])
        else:
            self.snapshots = source.snapshots

    # ------------------------------------------------------------------ state
    def report(self) -> Dict[str, Any]:
        """Scalar health digest of the newest snapshot window."""
        snaps = self.snapshots
        if not snaps:
            return {"status": "no-data", "snapshots": 0}
        last = snaps[-1]
        prev = snaps[-2] if len(snaps) > 1 else None
        d_events = d_wall = d_vtime = None
        if prev is not None:
            d_events = last["events"] - prev["events"]
            d_wall = last["wall"] - prev["wall"]
            d_vtime = last["vtime"] - prev["vtime"]
        events_per_s = (
            d_events / d_wall if d_events is not None and d_wall and d_wall > 0
            else None
        )
        vtime_rate = (
            d_vtime / d_wall if d_vtime is not None and d_wall and d_wall > 0
            else None
        )
        in_flight = last.get("in_flight", 0)
        # Stalled: the window advanced neither the event counter nor the
        # virtual clock while messages were still outstanding.  A finished
        # run (final snapshot, nothing in flight) is idle, not stalled.
        stalled = bool(
            prev is not None
            and d_events == 0
            and (d_vtime is not None and d_vtime <= 0.0)
            and in_flight > 0
        )
        if last.get("qd_detected_at") is not None:
            qd_status = f"detected@{last['qd_detected_at']:.6g}"
        elif last.get("qd_waves", 0):
            qd_status = f"waving({last['qd_waves']})"
        else:
            qd_status = "idle"
        status = "stalled" if stalled else (
            "final" if last.get("label") == "final" else "running"
        )
        return {
            "status": status,
            "snapshots": len(snaps),
            "vtime": last["vtime"],
            "wall": last["wall"],
            "events": last["events"],
            "events_per_s": events_per_s,
            "vtime_rate": vtime_rate,
            "in_flight": in_flight,
            "busy_pes": last.get("busy_pes", 0),
            "touched_pes": last.get("touched_pes", 0),
            "qd": qd_status,
            "stalled": stalled,
        }

    def check(self) -> bool:
        """Watchdog predicate: True while the run looks healthy."""
        return self.report()["status"] != "stalled"

    # ----------------------------------------------------------------- output
    def format(self) -> str:
        """One status line, the shape the bench CLI prints per run."""
        r = self.report()
        if r["status"] == "no-data":
            return "health: no snapshots recorded"

        def rate(v: Optional[float], unit: str) -> str:
            return "n/a" if v is None else f"{v:,.0f}{unit}"

        return (
            f"health: {r['status']} | vtime {r['vtime']:.6g}s "
            f"| {rate(r['events_per_s'], ' ev/s')} "
            f"| sim rate {('n/a' if r['vtime_rate'] is None else format(r['vtime_rate'], '.3g'))} s/s "
            f"| in-flight {r['in_flight']} "
            f"| busy {r['busy_pes']}/{r['touched_pes']} PEs "
            f"| qd {r['qd']}"
        )
