"""Metric primitives: counters, gauges, and log-bucketed histograms.

The telemetry plane (:mod:`repro.obs.telemetry`) needs summary statistics
that stay cheap at any scale: a P=10\N{SUPERSCRIPT FIVE} serving run pushes
millions of request latencies through the runtime, and PR 5's EventLog —
which records every event — cannot watch it.  The primitives here are the
opposite trade: constant space per series, O(1) per observation, and no
per-event allocation.

* :class:`Counter` / :class:`Gauge` — one float/int slot each.
* :class:`Histogram` — HDR-style log-bucketed distribution: the positive
  reals are split into octaves (powers of two) and each octave into
  ``subbuckets`` equal linear sub-buckets, so every bucket's relative width
  is at most ``1/subbuckets`` of its value.  One :func:`math.frexp` call
  and two dict operations per observation; buckets materialize sparsely
  (only octaves that receive samples occupy memory).  Quantiles use the
  same *nearest-rank* convention as :func:`repro.metrics.latency.percentile`
  — the bucket containing the ``ceil(q/100 * n)``-th smallest sample — and
  return that bucket's midpoint, so a histogram quantile is always within
  one bucket of the exact trace-walked value (the S6 head-to-head contract).
* :class:`MetricRegistry` — get-or-create keyed by (name, label set).
  Labeled per-PE series materialize only for ranks that are actually
  touched, mirroring the sparse PE plane.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.util.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "quantile_from_record",
]


class Counter:
    """A monotonically increasing count (hot paths bump ``value`` directly)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def as_record(self) -> Any:
        return self.value


class Gauge:
    """A point-in-time value (queue depth, in-flight, vtime rate)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v

    def as_record(self) -> Any:
        return self.value


class Histogram:
    """Log-bucketed distribution with nearest-rank quantiles.

    Bucket index for ``v > 0``: with ``m, e = math.frexp(v)`` (``m`` in
    ``[0.5, 1)``), the octave is ``e`` and the linear sub-bucket is
    ``int((m - 0.5) * 2 * subbuckets)``, giving
    ``index = e * subbuckets + sub``.  Bucket ``(e, sub)`` spans
    ``[2^(e-1) * (1 + sub/S), 2^(e-1) * (1 + (sub+1)/S))`` — relative width
    ≤ ``1/S``.  Zero (and any non-positive value) lands in a dedicated
    zero bucket below every indexed one.
    """

    __slots__ = ("subbuckets", "buckets", "zero", "count", "total",
                 "_vmin", "_vmax")
    kind = "histogram"

    def __init__(self, subbuckets: int = 32) -> None:
        if subbuckets < 1:
            raise ConfigurationError(
                f"histogram subbuckets must be >= 1, got {subbuckets}"
            )
        self.subbuckets = subbuckets
        self.buckets: Dict[int, int] = {}
        self.zero = 0
        self.count = 0
        self.total = 0.0
        # Infinity sentinels keep observe() down to one compare per bound
        # (this sits on the kernel's per-execution hook); the vmin/vmax
        # properties present them as None-until-observed.
        self._vmin = math.inf
        self._vmax = -math.inf

    @property
    def vmin(self) -> Optional[float]:
        return self._vmin if self.count else None

    @property
    def vmax(self) -> Optional[float]:
        return self._vmax if self.count else None

    # ------------------------------------------------------------ observation
    def observe(self, v: float) -> None:
        self.count += 1
        self.total += v
        if v < self._vmin:
            self._vmin = v
        if v > self._vmax:
            self._vmax = v
        if v <= 0.0:
            self.zero += 1
            return
        m, e = math.frexp(v)
        s = self.subbuckets
        idx = e * s + int((m - 0.5) * 2.0 * s)
        b = self.buckets
        b[idx] = b.get(idx, 0) + 1

    def bucket_index(self, v: float) -> Optional[int]:
        """Index of the bucket ``v`` would land in (None = zero bucket)."""
        if v <= 0.0:
            return None
        m, e = math.frexp(v)
        s = self.subbuckets
        return e * s + int((m - 0.5) * 2.0 * s)

    def bucket_bounds(self, idx: int) -> Tuple[float, float]:
        """``[lower, upper)`` value range of bucket ``idx``."""
        e, sub = divmod(idx, self.subbuckets)
        base = 2.0 ** (e - 1)
        s = self.subbuckets
        return base * (1.0 + sub / s), base * (1.0 + (sub + 1) / s)

    # -------------------------------------------------------------- quantiles
    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile: midpoint of the bucket holding the
        ``ceil(q/100 * n)``-th smallest sample; None on an empty histogram
        (an undefined quantile must never silently become a number)."""
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"quantile q must be in [0, 100], got {q}")
        if self.count == 0:
            return None
        rank = max(1, math.ceil(q / 100.0 * self.count))
        if rank <= self.zero:
            return 0.0
        cum = self.zero
        for idx in sorted(self.buckets):
            cum += self.buckets[idx]
            if cum >= rank:
                lo, hi = self.bucket_bounds(idx)
                return (lo + hi) / 2.0
        # Unreachable unless counters were mutated externally.
        lo, hi = self.bucket_bounds(max(self.buckets))
        return (lo + hi) / 2.0

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def as_record(self) -> Dict[str, Any]:
        """Plain-data projection (JSON-safe; bucket keys become strings)."""
        return {
            "subbuckets": self.subbuckets,
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "zero": self.zero,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "Histogram":
        h = cls(subbuckets=record["subbuckets"])
        h.count = record["count"]
        h.total = record["sum"]
        if record["min"] is not None:
            h._vmin = record["min"]
        if record["max"] is not None:
            h._vmax = record["max"]
        h.zero = record["zero"]
        h.buckets = {int(k): v for k, v in record["buckets"].items()}
        return h


def quantile_from_record(record: Dict[str, Any], q: float) -> Optional[float]:
    """Nearest-rank quantile straight from a histogram's plain-data record
    (what travels through pool workers, the result cache, and JSONL)."""
    return Histogram.from_record(record).quantile(q)


class MetricRegistry:
    """Get-or-create store of labeled metric series.

    Series are keyed by ``(name, sorted label items)``; a per-PE series
    only exists once its rank is first observed — the registry is sparse
    exactly where the PE plane is.  One metric name maps to one metric
    type; mixing types under a name is a configuration error.
    """

    def __init__(self, subbuckets: int = 32) -> None:
        self.subbuckets = subbuckets
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, Any], ...]], Any] = {}
        self._types: Dict[str, str] = {}

    # ----------------------------------------------------------------- access
    def _get(self, name: str, kind: str, labels: Dict[str, Any],
             factory) -> Any:
        seen = self._types.get(name)
        if seen is None:
            self._types[name] = kind
        elif seen != kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as a {seen}, not a {kind}"
            )
        key = (name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = factory()
        return metric

    def counter(self, name: str, /, **labels: Any) -> Counter:
        return self._get(name, "counter", labels, Counter)

    def gauge(self, name: str, /, **labels: Any) -> Gauge:
        return self._get(name, "gauge", labels, Gauge)

    def histogram(self, name: str, /, **labels: Any) -> Histogram:
        return self._get(
            name, "histogram", labels,
            lambda: Histogram(subbuckets=self.subbuckets),
        )

    def get(self, name: str, /, **labels: Any) -> Optional[Any]:
        """Peek at a series without creating it."""
        return self._metrics.get((name, tuple(sorted(labels.items()))))

    # -------------------------------------------------------------- iteration
    def series(self) -> Iterator[Tuple[str, Dict[str, Any], Any]]:
        """Yield ``(name, labels, metric)`` sorted by name then labels."""
        for (name, labels), metric in sorted(
            self._metrics.items(),
            key=lambda kv: (kv[0][0], tuple(
                (k, repr(v)) for k, v in kv[0][1]
            )),
        ):
            yield name, dict(labels), metric

    def as_records(self) -> List[Dict[str, Any]]:
        """Plain-data projection of every series (pickle/JSON-safe)."""
        return [
            {
                "name": name,
                "type": metric.kind,
                "labels": labels,
                "value": metric.as_record(),
            }
            for name, labels, metric in self.series()
        ]

    def __len__(self) -> int:
        return len(self._metrics)
