"""The runtime telemetry plane: always-cheap counters for runs tracing can't see.

PR 5's EventLog records *every* event — perfect fidelity, O(events) memory,
and therefore unusable on the P=10\N{SUPERSCRIPT FIVE}–10\N{SUPERSCRIPT SIX}
sparse machines or million-request serving streams.  :class:`Telemetry` is
the complementary lens (the Projections lineage pairs the two the same
way): constant-size counters, gauges, and log-bucketed histograms
aggregated *as the run executes*, plus periodic virtual-time snapshots of
the kernel's own accounting.

Design constraints, in order:

1. **Inert when off.**  ``Kernel(telemetry=None)`` costs one ``is None``
   check per execution — the same contract as the fault layer and the
   event log.  Golden traces stay bit-identical.
2. **Invisible when on.**  Telemetry schedules no engine events, sends no
   messages, and never touches an envelope: a telemetry-on run produces
   exactly the virtual time, event count, and answer of the telemetry-off
   run.  Periodic snapshots piggyback on the execution hook (a lazy
   "has the clock crossed the next boundary?" compare) instead of engine
   timers, which is what keeps the schedule unperturbed.
3. **Turn-loop compatible.**  Unlike tracing, telemetry does NOT join the
   kernel's ``_turn_ok``/``_burst_ok`` gates.  The execution hook fires
   for elided completions too (it sits above the turn bail-out), and all
   per-message metrics are derived from the PEState send/execute counters
   that every flush lane (scalar ``_deliver``, burst, turn) maintains
   identically — so turn-mode and scalar-mode runs produce equal final
   counters and histograms (order-independent sums), proven by test.
   Only transient gauge values *within* a same-timestamp cohort may
   differ between the two schedules; snapshot timestamps and counts do
   not.

The per-execution hook is the only hot-path cost; everything label-shaped
it needs is cached in plain dicts keyed by envelope fields, so the steady
state is a few dict hits, one ``frexp``, and an int add per execution.
"""

from __future__ import annotations

import time as _host_time
from dataclasses import dataclass
from math import frexp as _frexp
from typing import Any, Dict, List, Optional, Tuple

from repro.core.messages import Kind
from repro.obs.registry import Histogram, MetricRegistry
from repro.util.errors import ConfigurationError

__all__ = ["TelemetryConfig", "Telemetry"]

_SEED = Kind.SEED
_SVC = Kind.SVC

#: Kind tag -> label value used on ``exec_total`` series.
_KIND_LABEL = {
    Kind.APP: "app",
    Kind.SEED: "seed",
    Kind.BOC: "boc",
    Kind.SVC: "svc",
}


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs of one telemetry plane.

    ``interval`` is the virtual-time snapshot period; ``0.0`` records only
    the final snapshot (cheapest).  ``per_pe`` controls whether snapshots
    refresh per-rank gauge series (sparse: touched ranks only).
    ``subbuckets`` sets histogram resolution — relative bucket width is at
    most ``1/subbuckets`` (~3% at the default 32).  ``max_snapshots``
    bounds snapshot memory; once hit, periodic flushing stops (the final
    snapshot still lands) and the overflow is counted, never silent.
    """

    interval: float = 0.0
    per_pe: bool = True
    subbuckets: int = 32
    max_snapshots: int = 4096

    def __post_init__(self) -> None:
        if self.interval < 0.0:
            raise ConfigurationError(
                f"telemetry interval must be >= 0, got {self.interval}"
            )
        if self.max_snapshots < 1:
            raise ConfigurationError("telemetry max_snapshots must be >= 1")


class Telemetry:
    """One kernel's online metric plane (pass as ``Kernel(telemetry=...)``)."""

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config or TelemetryConfig()
        self.registry = MetricRegistry(subbuckets=self.config.subbuckets)
        #: Periodic + final scrapes of the kernel's own accounting (plain
        #: dicts, JSONL-ready).
        self.snapshots: List[Dict[str, Any]] = []
        self.snapshots_dropped = 0
        self._kernel: Any = None
        self._wall0: Optional[float] = None
        self._next_flush: Optional[float] = None
        # Hot-path caches -------------------------------------------------
        # (kind, name) -> Counter for exec_total series.
        self._exec_counters: Dict[Tuple[int, str], Any] = {}
        self._exec_hist: Optional[Histogram] = None
        # Deferred end-of-execution observations: (histogram, t0) pairs
        # registered *during* an entry body and resolved with the
        # execution's true end time once its duration is known.
        self._pending: List[Tuple[Histogram, float]] = []
        # Serving side-channel: rid -> injection timestamp.
        self._inject: Dict[int, float] = {}
        self._named_hists: Dict[Tuple[str, Tuple[Tuple[str, Any], ...]],
                                Histogram] = {}
        # rank -> (busy_time, msgs_executed, queue_depth) gauge triple.
        self._pe_gauges: Dict[int, Tuple[Any, Any, Any]] = {}

    # ---------------------------------------------------------------- binding
    def bind(self, kernel: Any) -> None:
        """Attach to a kernel (called by ``Kernel.__init__``; once only)."""
        if self._kernel is not None and self._kernel is not kernel:
            raise ConfigurationError(
                "a Telemetry instance observes one kernel; build a fresh one"
            )
        self._kernel = kernel
        self._wall0 = _host_time.perf_counter()
        self._exec_hist = self.registry.histogram("exec_duration_seconds")
        if self.config.interval > 0.0:
            self._next_flush = self.config.interval

    @property
    def kernel(self) -> Any:
        return self._kernel

    # --------------------------------------------------------------- hot path
    def on_execute(self, pe: Any, env: Any, start: float, duration: float,
                   charged: float) -> None:
        """Per-execution hook (called by ``Kernel._execute`` after accounting,
        *before* the turn-loop bail-out, so elided completions count too)."""
        kind = env.kind
        name = env.chare_cls.__name__ if kind == _SEED else env.entry
        key = (kind, name)
        c = self._exec_counters.get(key)
        if c is None:
            c = self.registry.counter(
                "exec_total", kind=_KIND_LABEL.get(kind, "?"), name=name
            )
            self._exec_counters[key] = c
        c.value += 1
        # Histogram.observe inlined: this is the one per-execution call
        # site, and the extra method dispatch is measurable against the
        # kernel_telemetry_msgs_per_s overhead budget.
        h = self._exec_hist
        h.count += 1
        h.total += duration
        if duration < h._vmin:
            h._vmin = duration
        if duration > h._vmax:
            h._vmax = duration
        if duration > 0.0:
            m, e = _frexp(duration)
            s = h.subbuckets
            idx = e * s + int((m - 0.5) * 2.0 * s)
            b = h.buckets
            b[idx] = b.get(idx, 0) + 1
        else:
            h.zero += 1
        if self._pending:
            end = start + duration
            for hist, t0 in self._pending:
                hist.observe(end - t0)
            self._pending.clear()
        nf = self._next_flush
        if nf is not None and start >= nf:
            self._flush_due(start)

    # -------------------------------------------------- deferred observations
    def observe_at_exec_end(self, name: str, t0: float, /,
                            **labels: Any) -> None:
        """Record ``execution_end - t0`` into histogram ``name`` once the
        *current* execution's duration is known.

        Entry bodies run before the kernel prices their charged work, so an
        in-body ``now`` is the execution's *start*.  Deferring the
        observation to the execution hook yields the same end timestamp the
        event log's ``exec_end`` carries — which is why online latencies
        reproduce the trace-walked ones exactly (up to bucketing).
        """
        key = (name, tuple(sorted(labels.items())))
        h = self._named_hists.get(key)
        if h is None:
            h = self.registry.histogram(name, **labels)
            self._named_hists[key] = h
        self._pending.append((h, t0))

    # ------------------------------------------------------- serving adapters
    def serving_inject(self, rid: int) -> None:
        """Stamp request ``rid``'s injection time (call from the source tick).

        The stamp is the seed's send departure — tick charges no work, so
        the outbox departure collapses to ``start + overhead_base``, the
        exact timestamp the trace walk recovers as ``inject_t``.
        """
        k = self._kernel
        self._inject[rid] = k.engine._now + k._overhead_base

    def serving_complete(self, rid: int, kind: str) -> None:
        """Close request ``rid`` (call from the final pipeline stage; the
        latency lands in ``serving_latency_seconds{kind=...}``)."""
        t0 = self._inject.pop(rid, None)
        if t0 is not None:
            self.observe_at_exec_end("serving_latency_seconds", t0, kind=kind)

    def serving_quantiles(
        self, quantiles: Tuple[float, ...] = (50.0, 95.0, 99.0)
    ) -> Dict[str, Any]:
        """Online latency digest over served requests (p50/p95/p99 …),
        the trace-free counterpart of ``repro.metrics.latency``'s summary."""
        h = self.registry.get("serving_latency_seconds", kind="done")
        out: Dict[str, Any] = {}
        if h is None:
            h = Histogram(self.config.subbuckets)
        for q in quantiles:
            out[f"p{q:g}"] = h.quantile(q)
        out["count"] = h.count
        out["mean"] = h.mean
        out["min"] = h.vmin
        out["max"] = h.vmax
        shed = self.registry.get("serving_latency_seconds", kind="shed")
        out["shed"] = 0 if shed is None else shed.count
        return out

    # -------------------------------------------------------------- snapshots
    def _flush_due(self, start: float) -> None:
        interval = self.config.interval
        nf = self._next_flush
        limit = self.config.max_snapshots
        while nf is not None and start >= nf:
            if len(self.snapshots) >= limit:
                self.snapshots_dropped += 1
                nf += interval
                continue
            self.snapshot(at=nf)
            nf += interval
        self._next_flush = nf

    def snapshot(self, at: Optional[float] = None,
                 label: str = "") -> Dict[str, Any]:
        """Scrape the kernel into one snapshot row (O(touched ranks)).

        Per-message and per-PE figures come from the PEState accounting all
        three kernel send lanes maintain identically — aggregating at turn
        boundaries rather than hooking ``_deliver`` per envelope is what
        lets the turn/burst fast lanes stay armed under telemetry.
        """
        k = self._kernel
        if k is None:
            raise ConfigurationError("Telemetry.snapshot before bind()")
        engine = k.engine
        vtime = engine._now
        wall = _host_time.perf_counter() - self._wall0
        msgs_executed = seeds = system = 0
        msgs_sent = bytes_sent = 0
        sent = processed = 0
        busy = 0
        queued = 0
        per_pe = self.config.per_pe
        pe_gauges = self._pe_gauges
        reg = self.registry
        for rank, st in k.pes.items():
            msgs_executed += st.msgs_executed
            seeds += st.seeds_executed
            system += st.system_executed
            msgs_sent += st.msgs_sent
            bytes_sent += st.bytes_sent
            sent += st.counted_sent
            processed += st.counted_processed
            queued += st._queued
            if st.busy:
                busy += 1
            if per_pe:
                g = pe_gauges.get(rank)
                if g is None:
                    g = (
                        reg.gauge("pe_busy_seconds", pe=rank),
                        reg.gauge("pe_executions", pe=rank),
                        reg.gauge("pe_queue_depth", pe=rank),
                    )
                    pe_gauges[rank] = g
                g[0].value = st.busy_time
                g[1].value = (st.msgs_executed + st.seeds_executed
                              + st.system_executed)
                g[2].value = st._queued
        in_flight = sent - processed
        row: Dict[str, Any] = {
            "t": vtime if at is None else at,
            "vtime": vtime,
            "wall": wall,
            "events": engine.events_fired,
            "executions": msgs_executed + seeds + system,
            "msgs_executed": msgs_executed,
            "seeds_executed": seeds,
            "system_executed": system,
            "msgs_sent": msgs_sent,
            "bytes_sent": bytes_sent,
            "in_flight": in_flight,
            "queued": queued,
            "busy_pes": busy,
            "touched_pes": len(k.pes),
            "qd_waves": k.qd.waves_run,
            "qd_detected_at": k.qd.detected_at,
        }
        if label:
            row["label"] = label
        faults = k.faults
        if faults is not None:
            fc = dict(faults.counters())
            row["faults"] = fc
            for fkind, n in fc.items():
                reg.gauge("fault_events", fault=fkind).value = n
        reg.gauge("in_flight").value = in_flight
        reg.gauge("touched_pes").value = len(k.pes)
        reg.gauge("vtime_seconds").value = vtime
        self.snapshots.append(row)
        return row

    def on_run_end(self, truncated: bool = False) -> None:
        """Final scrape, stamped by ``Kernel.run`` on the way out."""
        row = self.snapshot(label="final")
        row["truncated"] = truncated

    # ---------------------------------------------------------------- payload
    def payload(self, meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Plain-data projection of the whole plane ("repro-metrics-v1"):
        safe to pickle through pool workers and the result cache, and the
        unit the JSONL exporter streams."""
        k = self._kernel
        base_meta: Dict[str, Any] = {
            "interval": self.config.interval,
            "subbuckets": self.config.subbuckets,
            "snapshots_dropped": self.snapshots_dropped,
        }
        if k is not None:
            base_meta.update(
                num_pes=k.num_pes,
                backend=k.backend_name,
                balancer=type(k.balancer).__name__,
                sparse=k.sparse,
            )
        if meta:
            base_meta.update(meta)
        return {
            "format": "repro-metrics-v1",
            "meta": base_meta,
            "snapshots": list(self.snapshots),
            "series": self.registry.as_records(),
        }
