"""Reusable program patterns built on the chare API.

The paper's conclusion argues the model is "rich enough to include shared
memory and distributed memory programming, as well as other programming
models (client-server applications, map-reduce, etc.)".  This module makes
that concrete: small, tested helpers that assemble common patterns out of
chares and the sharing abstractions, so applications don't re-derive them.

* :func:`map_reduce` — apply a function to every item (each application is
  one balancer-placed chare) and fold the results with a
  commutative-associative combiner; termination by quiescence.
* :func:`scatter_gather` — like map_reduce but the caller receives the
  full list of (item, result) pairs (gathered at the main chare).

Both run a fresh kernel and return ``(answer, RunResult)`` like the
benchmark apps.  The mapped function must be deterministic and take/
return message-safe values; per-item simulated cost comes from
``work(item)`` (defaults to a flat constant).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence, Tuple

from repro.core.chare import Chare, entry
from repro.core.kernel import Kernel, RunResult
from repro.machine.network import Machine

__all__ = ["map_reduce", "scatter_gather"]

_DEFAULT_WORK = 100.0


class _MapWorker(Chare):
    def __init__(self, item):
        fn = self.readonly("mr_fn")
        work = self.readonly("mr_work")
        self.charge(work(item) if callable(work) else work)
        self.accumulate("mr_acc", fn(item))


class _MapReduceMain(Chare):
    def __init__(self, items, fn, op, initial, work):
        self.set_readonly("mr_fn", fn)
        self.set_readonly("mr_work", work)
        self.new_accumulator("mr_acc", initial, op)
        for item in items:
            self.create(_MapWorker, item)
        self.start_quiescence(self.thishandle, "quiet")

    @entry
    def quiet(self):
        self.collect_accumulator("mr_acc", self.thishandle, "collected")

    @entry
    def collected(self, tag, value):
        self.exit(value)


def map_reduce(
    machine: Machine,
    items: Sequence[Any],
    fn: Callable[[Any], Any],
    *,
    op: str | Callable[[Any, Any], Any] = "sum",
    initial: Any = 0,
    work: float | Callable[[Any], float] = _DEFAULT_WORK,
    queueing: str = "fifo",
    balancer: str = "acwn",
    seed: int = 0,
    **kernel_kwargs,
) -> Tuple[Any, RunResult]:
    """``reduce(op, map(fn, items), initial)`` as a chare program.

    ``op`` must be commutative and associative (accumulator rules); the
    combine order is schedule-dependent, so non-commutative folds would
    be a correctness bug, not a pattern limitation.
    """
    kernel = Kernel(machine, queueing=queueing, balancer=balancer, seed=seed,
                    **kernel_kwargs)
    result = kernel.run(_MapReduceMain, tuple(items), fn, op, initial, work)
    return result.result, result


class _GatherWorker(Chare):
    def __init__(self, main, index, item):
        fn = self.readonly("mr_fn")
        work = self.readonly("mr_work")
        self.charge(work(item) if callable(work) else work)
        self.send(main, "one_result", index, fn(item))


class _ScatterGatherMain(Chare):
    def __init__(self, items, fn, work):
        self.set_readonly("mr_fn", fn)
        self.set_readonly("mr_work", work)
        self.items = tuple(items)
        self.pending = len(self.items)
        self.results = [None] * len(self.items)
        if self.pending == 0:
            self.exit(())
            return
        for index, item in enumerate(self.items):
            self.create(_GatherWorker, self.thishandle, index, item)

    @entry
    def one_result(self, index, value):
        self.results[index] = value
        self.pending -= 1
        if self.pending == 0:
            self.exit(tuple(zip(self.items, self.results)))


def scatter_gather(
    machine: Machine,
    items: Sequence[Any],
    fn: Callable[[Any], Any],
    *,
    work: float | Callable[[Any], float] = _DEFAULT_WORK,
    queueing: str = "fifo",
    balancer: str = "acwn",
    seed: int = 0,
    **kernel_kwargs,
) -> Tuple[Tuple[Tuple[Any, Any], ...], RunResult]:
    """Apply ``fn`` to every item; gather ``((item, result), ...)`` in order."""
    kernel = Kernel(machine, queueing=queueing, balancer=balancer, seed=seed,
                    **kernel_kwargs)
    result = kernel.run(_ScatterGatherMain, tuple(items), fn, work)
    return result.result, result
