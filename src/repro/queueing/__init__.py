"""Per-PE message-pool queueing strategies.

Charm lets each program pick the order in which the scheduler consumes the
message pool — FIFO, LIFO, or prioritized — because for speculatively
parallel programs (branch-and-bound, state-space search) that order decides
how much wasted work the parallel execution performs.  Experiment T6
reproduces that study.
"""

from repro.queueing.strategies import (
    QueueStrategy,
    FifoStrategy,
    LifoStrategy,
    IntPriorityStrategy,
    BitvectorPriorityStrategy,
    MessagePool,
    make_strategy,
    STRATEGIES,
)

__all__ = [
    "QueueStrategy",
    "FifoStrategy",
    "LifoStrategy",
    "IntPriorityStrategy",
    "BitvectorPriorityStrategy",
    "MessagePool",
    "make_strategy",
    "STRATEGIES",
]
