"""Queueing strategies and the two-lane message pool.

The pool a PE's scheduler draws from has two lanes:

* a **system lane** (always FIFO, always drained first) for runtime
  traffic: quiescence waves, load-balance tokens, distributed-table and
  monotonic-variable messages.  Keeping these ahead of application work
  reproduces Charm's "system messages are handled promptly" behavior and
  keeps the shared abstractions responsive even when the app floods the
  pool;
* an **application lane** whose order is the pluggable
  :class:`QueueStrategy` — the subject of experiment T6.

Strategies see opaque items plus an optional priority; they never inspect
message contents.  The priority queue uses :func:`normalize_priority` so
integer and bitvector priorities coexist, with FIFO tie-breaking (stable).
"""

from __future__ import annotations

import heapq
import itertools
from abc import ABC, abstractmethod
from collections import deque
from typing import Any, Dict, Optional, Type

from repro.util.errors import ConfigurationError, SchedulingError
from repro.util.priority import PriorityLike, normalize_priority

__all__ = [
    "QueueStrategy",
    "FifoStrategy",
    "LifoStrategy",
    "IntPriorityStrategy",
    "BitvectorPriorityStrategy",
    "MessagePool",
    "make_strategy",
    "STRATEGIES",
]


class QueueStrategy(ABC):
    """Ordering policy for the application lane of a message pool.

    Concrete strategies define ``__len__`` *and* ``__bool__`` directly on
    their backing container — the scheduler truth-tests pools on every
    message pickup, and routing that test through an abstract default
    (``len(self) > 0`` dispatching back into the subclass) costs two
    Python-level calls per event.
    """

    name: str = "abstract"
    __slots__ = ()

    @abstractmethod
    def push(self, item: Any, priority: PriorityLike = None) -> None:
        """Insert an item."""

    @abstractmethod
    def pop(self) -> Any:
        """Remove and return the next item; raises if empty."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of queued items."""

    def __bool__(self) -> bool:  # overridden by every concrete strategy
        return len(self) > 0


class FifoStrategy(QueueStrategy):
    """First-in first-out — Charm's default queueing."""

    name = "fifo"
    __slots__ = ("_q",)

    def __init__(self) -> None:
        self._q: deque = deque()

    def push(self, item: Any, priority: PriorityLike = None) -> None:
        self._q.append(item)

    def pop(self) -> Any:
        if not self._q:
            raise SchedulingError("pop from empty FIFO pool")
        return self._q.popleft()

    def __len__(self) -> int:
        return len(self._q)

    def __bool__(self) -> bool:
        return bool(self._q)


class LifoStrategy(QueueStrategy):
    """Last-in first-out — approximates depth-first expansion order."""

    name = "lifo"
    __slots__ = ("_q",)

    def __init__(self) -> None:
        self._q: list = []

    def push(self, item: Any, priority: PriorityLike = None) -> None:
        self._q.append(item)

    def pop(self) -> Any:
        if not self._q:
            raise SchedulingError("pop from empty LIFO pool")
        return self._q.pop()

    def __len__(self) -> int:
        return len(self._q)

    def __bool__(self) -> bool:
        return bool(self._q)


class _HeapStrategy(QueueStrategy):
    """Shared machinery for prioritized strategies: stable binary heap."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = itertools.count()

    def push(self, item: Any, priority: PriorityLike = None) -> None:
        heapq.heappush(self._heap, (normalize_priority(priority), next(self._seq), item))

    def pop(self) -> Any:
        if not self._heap:
            raise SchedulingError("pop from empty priority pool")
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class IntPriorityStrategy(_HeapStrategy):
    """Smaller integer priority first; unprioritized items run last, FIFO."""

    name = "prio"


class BitvectorPriorityStrategy(_HeapStrategy):
    """Lexicographic bitvector priorities (Charm's B-prioritized queue).

    Implementation-wise identical to :class:`IntPriorityStrategy` because
    :func:`normalize_priority` already totally orders mixed priorities; the
    class exists so experiment configs can name the intent.
    """

    name = "bitprio"


class LifoPriorityStrategy(QueueStrategy):
    """Priorities first, ties broken LIFO (Charm's stack-flavored queue).

    Depth-first within a priority class: useful for searches where equal
    bounds should be pursued depth-first to bound memory, while better
    bounds still preempt.
    """

    name = "priolifo"
    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = itertools.count()

    def push(self, item: Any, priority: PriorityLike = None) -> None:
        # Negated sequence -> most recent wins within an equal priority.
        heapq.heappush(
            self._heap, (normalize_priority(priority), -next(self._seq), item)
        )

    def pop(self) -> Any:
        if not self._heap:
            raise SchedulingError("pop from empty priolifo pool")
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


STRATEGIES: Dict[str, Type[QueueStrategy]] = {
    "fifo": FifoStrategy,
    "lifo": LifoStrategy,
    "prio": IntPriorityStrategy,
    "bitprio": BitvectorPriorityStrategy,
    "priolifo": LifoPriorityStrategy,
}


def make_strategy(name: str) -> QueueStrategy:
    """Instantiate a fresh strategy by name."""
    try:
        return STRATEGIES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown queueing strategy {name!r}; options: {sorted(STRATEGIES)}"
        ) from None


class MessagePool:
    """Two-lane pool: system FIFO lane + pluggable application lane.

    The pool keeps a live item count so ``len``/``bool``/``app_len`` — all
    on the scheduler's per-message path — are attribute reads rather than
    recomputed sums over both lanes.
    """

    __slots__ = ("_system", "_app", "_count", "max_len")

    def __init__(self, strategy: QueueStrategy | None = None) -> None:
        self._system: deque = deque()
        self._app = strategy if strategy is not None else FifoStrategy()
        self._count = 0
        self.max_len = 0  # high-water mark, reported by the trace layer

    @property
    def strategy_name(self) -> str:
        return self._app.name

    def push(self, item: Any, priority: PriorityLike = None, system: bool = False) -> None:
        if system:
            self._system.append(item)
        else:
            self._app.push(item, priority)
        n = self._count = self._count + 1
        if n > self.max_len:
            self.max_len = n

    def pop(self) -> Any:
        if self._system:
            self._count -= 1
            return self._system.popleft()
        item = self._app.pop()
        self._count -= 1
        return item

    def pop_system(self) -> Optional[Any]:
        """Pop from the system lane only (startup gating); None if empty."""
        if self._system:
            self._count -= 1
            return self._system.popleft()
        return None

    def pop_app(self) -> Any:
        """Pop from the application lane only; raises if empty."""
        item = self._app.pop()
        self._count -= 1
        return item

    def app_len(self) -> int:
        """Application-lane length — the load metric balancers use."""
        return self._count - len(self._system)

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0
