"""Queueing strategies and the two-lane message pool.

The pool a PE's scheduler draws from has two lanes:

* a **system lane** (always FIFO, always drained first) for runtime
  traffic: quiescence waves, load-balance tokens, distributed-table and
  monotonic-variable messages.  Keeping these ahead of application work
  reproduces Charm's "system messages are handled promptly" behavior and
  keeps the shared abstractions responsive even when the app floods the
  pool;
* an **application lane** whose order is the pluggable
  :class:`QueueStrategy` — the subject of experiment T6.

Strategies see opaque items plus an optional priority; they never inspect
message contents.  Prioritized strategies accept a pre-normalized ``key``
(the kernel computes it once per envelope at send time — see
``Envelope.prio_key``) and fall back to :func:`normalize_priority`
otherwise, so integer and bitvector priorities coexist, with FIFO
tie-breaking (stable).

The prioritized pools are themselves lane-split (the priority hot path):

* a plain deque/list **fast lane** for unprioritized items — the common
  case even under a prio strategy, since runtime traffic and most app
  messages carry no priority.  Unprioritized work sorts after every
  prioritized class, so a dedicated last-served lane is order-identical
  to heaping it with the maximal key;
* **small-int buckets** (integral ``0 <= p < _BUCKET_LIMIT``) — a dict of
  per-value deques plus a mini-heap of active bucket values.  B&B bounds
  and IDA* f-values are small clustered ints, so most prioritized pushes
  become a deque append; the bucket mini-heap is touched only when a
  bucket turns empty/nonempty.  *Every* integral numeric in range buckets
  (``5.0`` and ``True`` land with ``5`` and ``1`` — numerically equal
  priorities were already tie-broken purely by arrival order), so the
  heap can never hold a key equal to a bucket value: cross-lane ties are
  impossible, buckets store bare items with no per-item sequence numbers,
  and an in-range ``int`` priority skips :func:`normalize_priority`
  entirely;
* a binary **heap fallback** holding everything else (negative/huge/
  non-integral numerics and bitvector keys), with plain-int sequence
  counters replacing ``itertools.count``.

Cross-lane order is preserved exactly: bucket values compare against the
heap's top key (numeric ``(0, v)`` vs bucket value ``b``, strict since
equality cannot occur), buckets sort below every bitvector and
unprioritized item, so the pop sequence is bit-identical to the
historical single-heap implementation (asserted by the randomized
equivalence tests in ``tests/test_queueing.py``).
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections import deque
from typing import Any, Dict, Optional, Type

from repro.util.errors import ConfigurationError, SchedulingError
from repro.util.priority import PriorityLike, normalize_priority

__all__ = [
    "QueueStrategy",
    "FifoStrategy",
    "LifoStrategy",
    "IntPriorityStrategy",
    "BitvectorPriorityStrategy",
    "LifoPriorityStrategy",
    "MessagePool",
    "make_strategy",
    "STRATEGIES",
]

#: Non-negative int priorities below this take the bucket fast path.
_BUCKET_LIMIT = 4096

#: Class tag of unprioritized keys (mirrors repro.util.priority._DEFAULT).
_DEFAULT_CLASS = 2


class QueueStrategy(ABC):
    """Ordering policy for the application lane of a message pool.

    Concrete strategies define ``__len__`` *and* ``__bool__`` directly on
    their backing container — the scheduler truth-tests pools on every
    message pickup, and routing that test through an abstract default
    (``len(self) > 0`` dispatching back into the subclass) costs two
    Python-level calls per event.
    """

    name: str = "abstract"
    __slots__ = ()

    @abstractmethod
    def push(self, item: Any, priority: PriorityLike = None,
             key: Optional[tuple] = None) -> None:
        """Insert an item; ``key`` is an optional pre-normalized sort key."""

    @abstractmethod
    def pop(self) -> Any:
        """Remove and return the next item; raises if empty."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of queued items."""

    def __bool__(self) -> bool:  # overridden by every concrete strategy
        return len(self) > 0


class FifoStrategy(QueueStrategy):
    """First-in first-out — Charm's default queueing."""

    name = "fifo"
    __slots__ = ("_q",)

    def __init__(self) -> None:
        self._q: deque = deque()

    def push(self, item: Any, priority: PriorityLike = None,
             key: Optional[tuple] = None) -> None:
        self._q.append(item)

    def pop(self) -> Any:
        if not self._q:
            raise SchedulingError("pop from empty FIFO pool")
        return self._q.popleft()

    def __len__(self) -> int:
        return len(self._q)

    def __bool__(self) -> bool:
        return bool(self._q)


class LifoStrategy(QueueStrategy):
    """Last-in first-out — approximates depth-first expansion order."""

    name = "lifo"
    __slots__ = ("_q",)

    def __init__(self) -> None:
        self._q: list = []

    def push(self, item: Any, priority: PriorityLike = None,
             key: Optional[tuple] = None) -> None:
        self._q.append(item)

    def pop(self) -> Any:
        if not self._q:
            raise SchedulingError("pop from empty LIFO pool")
        return self._q.pop()

    def __len__(self) -> int:
        return len(self._q)

    def __bool__(self) -> bool:
        return bool(self._q)


class _LaneSplitPool(QueueStrategy):
    """Shared machinery for prioritized strategies with FIFO tie-breaking.

    Lanes (see module docstring): unprioritized deque, small-int buckets
    with an active-value mini-heap, stable binary heap for everything
    else.  :class:`LifoPriorityStrategy` mirrors this push/pop pair with
    LIFO tie-breaking — keep the two in sync.
    """

    __slots__ = ("_default", "_heap", "_buckets", "_active", "_seq", "_size")

    def __init__(self) -> None:
        self._default: deque = deque()   # unprioritized fast lane (FIFO)
        self._heap: list = []            # (key, seq, item) fallback
        # Bucket value -> deque[item], indexed directly (list indexing
        # beats dict hashing on the hot path; 4096 slots is 32 KiB).
        self._buckets: list = [None] * _BUCKET_LIMIT
        self._active: list = []          # mini-heap of nonempty bucket values
        self._seq = 0
        self._size = 0

    def push(self, item: Any, priority: PriorityLike = None,
             key: Optional[tuple] = None) -> None:
        self._size += 1
        if key is None:
            if priority is None:
                self._default.append(item)
                return
            if type(priority) is int and 0 <= priority < _BUCKET_LIMIT:
                # In-range int: straight to its bucket, no key built at
                # all.  A nonempty bucket — the common case once bounds
                # cluster — is one truth test and an append.
                bucket = self._buckets[priority]
                if bucket:
                    bucket.append(item)
                    return
                if bucket is None:
                    bucket = self._buckets[priority] = deque()
                heapq.heappush(self._active, priority)
                bucket.append(item)
                return
            key = normalize_priority(priority)
        klass = key[0]
        if klass == 0:
            v = key[1]
            if type(v) is int:
                if 0 <= v < _BUCKET_LIMIT:
                    bucket = self._buckets[v]
                    if bucket:
                        bucket.append(item)
                        return
                    if bucket is None:
                        bucket = self._buckets[v] = deque()
                    heapq.heappush(self._active, v)
                    bucket.append(item)
                    return
            elif 0 <= v < _BUCKET_LIMIT and v == (iv := int(v)):
                # Integral float/bool: numerically equal priorities were
                # always pure arrival-order ties, so share the int bucket.
                bucket = self._buckets[iv]
                if bucket is None:
                    bucket = self._buckets[iv] = deque()
                if not bucket:
                    heapq.heappush(self._active, iv)
                bucket.append(item)
                return
        elif klass == _DEFAULT_CLASS:
            self._default.append(item)
            return
        seq = self._seq = self._seq + 1
        heapq.heappush(self._heap, (key, seq, item))

    def pop(self) -> Any:
        active = self._active
        heap = self._heap
        if active:
            b = active[0]
            if heap:
                tk = heap[0][0]
                # Heap first iff its key < (0, b) — strict, because every
                # integral in-range numeric buckets, so the heap never
                # holds a key equal to a bucket value; bitvector keys are
                # class 1 > 0 and never outrank a bucket.
                if tk[0] == 0 and tk[1] < b:
                    self._size -= 1
                    return heapq.heappop(heap)[2]
            bucket = self._buckets[b]
            item = bucket.popleft()
            if not bucket:
                heapq.heappop(active)
            self._size -= 1
            return item
        if heap:
            self._size -= 1
            return heapq.heappop(heap)[2]
        if self._default:
            self._size -= 1
            return self._default.popleft()
        raise SchedulingError("pop from empty priority pool")

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0


class IntPriorityStrategy(_LaneSplitPool):
    """Smaller integer priority first; unprioritized items run last, FIFO."""

    name = "prio"


class BitvectorPriorityStrategy(_LaneSplitPool):
    """Lexicographic bitvector priorities (Charm's B-prioritized queue).

    Implementation-wise identical to :class:`IntPriorityStrategy` because
    :func:`normalize_priority` already totally orders mixed priorities; the
    class exists so experiment configs can name the intent.
    """

    name = "bitprio"


class LifoPriorityStrategy(QueueStrategy):
    """Priorities first, ties broken LIFO (Charm's stack-flavored queue).

    Depth-first within a priority class: useful for searches where equal
    bounds should be pursued depth-first to bound memory, while better
    bounds still preempt.

    Body mirrors :class:`_LaneSplitPool` with negated sequence numbers
    (most recent wins within an equal priority), bucket deques popped from
    the right, and a list (stack) for the unprioritized lane — keep the
    two in sync.
    """

    name = "priolifo"
    __slots__ = ("_default", "_heap", "_buckets", "_active", "_seq", "_size")

    def __init__(self) -> None:
        self._default: list = []         # unprioritized fast lane (LIFO)
        self._heap: list = []
        self._buckets: list = [None] * _BUCKET_LIMIT  # value -> deque[item]
        self._active: list = []
        self._seq = 0
        self._size = 0

    def push(self, item: Any, priority: PriorityLike = None,
             key: Optional[tuple] = None) -> None:
        self._size += 1
        if key is None:
            if priority is None:
                self._default.append(item)
                return
            if type(priority) is int and 0 <= priority < _BUCKET_LIMIT:
                bucket = self._buckets[priority]
                if bucket:
                    bucket.append(item)
                    return
                if bucket is None:
                    bucket = self._buckets[priority] = deque()
                heapq.heappush(self._active, priority)
                bucket.append(item)
                return
            key = normalize_priority(priority)
        klass = key[0]
        if klass == 0:
            v = key[1]
            if type(v) is int:
                if 0 <= v < _BUCKET_LIMIT:
                    bucket = self._buckets[v]
                    if bucket:
                        bucket.append(item)
                        return
                    if bucket is None:
                        bucket = self._buckets[v] = deque()
                    heapq.heappush(self._active, v)
                    bucket.append(item)
                    return
            elif 0 <= v < _BUCKET_LIMIT and v == (iv := int(v)):
                bucket = self._buckets[iv]
                if bucket is None:
                    bucket = self._buckets[iv] = deque()
                if not bucket:
                    heapq.heappush(self._active, iv)
                bucket.append(item)
                return
        elif klass == _DEFAULT_CLASS:
            self._default.append(item)
            return
        # Negated sequence -> most recent wins within an equal priority.
        seq = self._seq = self._seq - 1
        heapq.heappush(self._heap, (key, seq, item))

    def pop(self) -> Any:
        active = self._active
        heap = self._heap
        if active:
            b = active[0]
            if heap:
                tk = heap[0][0]
                if tk[0] == 0 and tk[1] < b:
                    self._size -= 1
                    return heapq.heappop(heap)[2]
            bucket = self._buckets[b]
            item = bucket.pop()   # LIFO within the bucket
            if not bucket:
                heapq.heappop(active)
            self._size -= 1
            return item
        if heap:
            self._size -= 1
            return heapq.heappop(heap)[2]
        if self._default:
            self._size -= 1
            return self._default.pop()
        raise SchedulingError("pop from empty priolifo pool")

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0


STRATEGIES: Dict[str, Type[QueueStrategy]] = {
    "fifo": FifoStrategy,
    "lifo": LifoStrategy,
    "prio": IntPriorityStrategy,
    "bitprio": BitvectorPriorityStrategy,
    "priolifo": LifoPriorityStrategy,
}


def make_strategy(name: str) -> QueueStrategy:
    """Instantiate a fresh strategy by name."""
    try:
        return STRATEGIES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown queueing strategy {name!r}; options: {sorted(STRATEGIES)}"
        ) from None


class MessagePool:
    """Two-lane pool: system FIFO lane + pluggable application lane.

    The pool keeps a live item count so ``len``/``bool``/``app_len`` — all
    on the scheduler's per-message path — are attribute reads rather than
    recomputed sums over both lanes.
    """

    __slots__ = ("_system", "_app", "_count", "max_len")

    def __init__(self, strategy: QueueStrategy | None = None) -> None:
        self._system: deque = deque()
        self._app = strategy if strategy is not None else FifoStrategy()
        self._count = 0
        self.max_len = 0  # high-water mark, reported by the trace layer

    @property
    def strategy_name(self) -> str:
        return self._app.name

    def push(self, item: Any, priority: PriorityLike = None,
             system: bool = False, key: Optional[tuple] = None) -> None:
        if system:
            self._system.append(item)
        else:
            self._app.push(item, priority, key)
        n = self._count = self._count + 1
        if n > self.max_len:
            self.max_len = n

    def pop(self) -> Any:
        if self._system:
            self._count -= 1
            return self._system.popleft()
        item = self._app.pop()
        self._count -= 1
        return item

    def pop_system(self) -> Optional[Any]:
        """Pop from the system lane only (startup gating); None if empty."""
        if self._system:
            self._count -= 1
            return self._system.popleft()
        return None

    def pop_app(self) -> Any:
        """Pop from the application lane only; raises if empty."""
        item = self._app.pop()
        self._count -= 1
        return item

    def app_len(self) -> int:
        """Application-lane length — the load metric balancers use."""
        return self._count - len(self._system)

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0
