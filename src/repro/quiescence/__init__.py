"""Quiescence detection (tree-based two-phase message counting)."""

from repro.quiescence.detector import QuiescenceService

__all__ = ["QuiescenceService"]
