"""Quiescence detection.

The Chare Kernel lets a program ask to be told when the computation has
*quiesced*: no entry method is executing, no counted message is queued, and
none is in flight.  This is how tree-structured programs with no natural
"last message" (count all N-queens solutions, exhaust a search space)
terminate.

Algorithm — the tree-based, two-phase message-counting scheme of the Charm
lineage (Sinha & Kalé):

1. The root (PE 0) starts a **wave**: a request flows down the PE spanning
   tree; every PE replies with its (counted-sent, counted-processed,
   locally-idle) triple; replies combine on the way up.
2. The root declares quiescence only after **two consecutive waves** return
   identical totals with ``sent == processed`` and every PE idle.  One wave
   is not enough: the counts are sampled at different times on different
   PEs, so a message can be processed "behind" one wave and re-sent "ahead"
   of it; two stable waves rule that out because any activity between waves
   changes the totals.
3. On success, the registered callback entry is invoked; otherwise the next
   wave starts after ``kernel.qd_interval`` of virtual time.

QD wave messages are *uncounted* system traffic — the detector must not see
its own probes.

Sparse kernels (``kernel.sparse``) run each wave over a snapshot of the
*touched* PE set only: the wave tree is rebuilt per wave over the k
materialized ranks (virtual rank = position in the sorted snapshot), so a
wave costs O(k) messages on a P=10⁶ machine with k active PEs.  A message
in flight toward a not-yet-touched PE keeps the totals unbalanced (its
send is counted, its processing is not), so the wave correctly retries;
the next wave's snapshot includes the newly materialized rank.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Optional, Tuple

from repro.core.handles import ChareHandle
from repro.core.services import Service
from repro.util.errors import QuiescenceError

__all__ = ["QuiescenceService"]

_WAVE_WORK = 3.0  # bookkeeping work units per wave handler


class QuiescenceService(Service):
    """Per-kernel quiescence detector."""

    name = "qd"

    def bind(self, kernel) -> None:
        super().bind(kernel)
        self._callback: Optional[Tuple[ChareHandle, str]] = None
        self._wave = 0
        self._prev_totals: Optional[Tuple[int, int]] = None
        # (wave, pe) -> partial aggregation state
        self._agg: Dict[Tuple[int, int], dict] = {}
        # Sparse mode: (sorted touched ranks, wave tree over them) snapshot
        # for the *current* wave; rebuilt at each wave start.
        self._wave_snap: Optional[Tuple[list, Any]] = None
        self.waves_run = 0
        self.detected_at: Optional[float] = None
        # Event id of the execution that scheduled the next wave timer;
        # restored as the causal parent when the bare timer fires, so
        # traced QD chains stay connected across the qd_interval sleep.
        self._trace_parent: Optional[int] = None
        # Snapshot of kernel.last_counted_exec_time taken *at* detection,
        # before the callback's own (counted) messages move it: the true
        # end of application work, for latency accounting (T9).
        self.work_end_at_detection: Optional[float] = None

    # ---------------------------------------------------------------- control
    def start(self, target: ChareHandle, entry: str, from_pe: int) -> None:
        """Register the callback and kick off wave 1 (root = PE 0)."""
        if self._callback is not None:
            raise QuiescenceError("quiescence detection already active")
        self._callback = (target, entry)
        self.send(from_pe, 0, "begin", ())

    def _start_wave(self) -> None:
        if self._callback is None:  # detection already fired
            return
        self._wave += 1
        # Purge partial aggregation state left by superseded waves.  A
        # normal wave drains itself (the root entry is deleted when its
        # subtree completes), but a wave abandoned mid-flight must not
        # leak its entries forever — and a late straggler from it must
        # never fold into the new wave's totals.
        if self._agg:
            wave = self._wave
            for key in [k for k in self._agg if k[0] < wave]:
                del self._agg[key]
        self.waves_run += 1
        kernel = self.kernel
        if kernel.sparse:
            # Snapshot the touched set: this wave enumerates exactly these
            # k ranks via a same-shape tree of size k.  PE 0 is always
            # touched (bootstrap), so ranks[0] == 0 and the root holds.
            ranks = kernel.pes.ranks()
            self._wave_snap = (ranks, type(kernel.tree)(len(ranks)))
        events = kernel._events
        if events is None:
            self.send(0, 0, "req", (self._wave,))
            return
        # Wave events chain to the execution that requested detection (or
        # the previous root decision, via _trace_parent when this fires
        # from the bare interval timer outside any execution).
        parent = events.ctx if events.ctx is not None else self._trace_parent
        wave_eid = events.record(
            "qd", kernel.engine._now, 0, name="wave", parent=parent,
            info={"wave": self._wave},
        )
        saved = events.ctx
        events.ctx = wave_eid
        self.send(0, 0, "req", (self._wave,))
        events.ctx = saved

    # --------------------------------------------------------------- handlers
    def handle(self, pe: int, op: str, args: tuple) -> None:
        kernel = self.kernel
        kernel.api_charge(_WAVE_WORK)

        if op == "begin":
            if pe != 0:
                raise QuiescenceError("QD begin must execute on PE 0")
            self._start_wave()

        elif op == "req":
            (wave,) = args
            if kernel.sparse:
                # Stale reqs from superseded waves must not fan out over
                # the *current* snapshot (their folds are dropped anyway).
                if wave != self._wave or self._wave_snap is None:
                    return
                ranks, wtree = self._wave_snap
                children = [
                    ranks[c] for c in wtree.children(bisect_left(ranks, pe))
                ]
            else:
                children = kernel.tree.children(pe)
            for child in children:
                self.send(pe, child, "req", (wave,))
            state = kernel.pes[pe]
            self._fold(
                wave,
                pe,
                state.counted_sent,
                state.counted_processed,
                not state.has_work(),
            )

        elif op == "up":
            wave, sent, processed, idle = args
            self._fold(wave, pe, sent, processed, idle)

        else:  # pragma: no cover - defensive
            raise QuiescenceError(f"unknown QD op {op!r}")

    def _fold(self, wave: int, pe: int, sent: int, processed: int, idle: bool) -> None:
        if wave != self._wave:
            return  # straggler from a superseded wave: never mix totals
        kernel = self.kernel
        if kernel.sparse:
            ranks, wtree = self._wave_snap  # type: ignore[misc]
            vrank = bisect_left(ranks, pe)
            need = 1 + len(wtree.children(vrank))
            vparent = wtree.parent(vrank)
            parent = None if vparent is None else ranks[vparent]
        else:
            need = 1 + len(kernel.tree.children(pe))
            parent = kernel.tree.parent(pe)
        key = (wave, pe)
        st = self._agg.get(key)
        if st is None:
            st = {
                "sent": 0,
                "processed": 0,
                "idle": True,
                "have": 0,
                "need": need,
            }
            self._agg[key] = st
        st["sent"] += sent
        st["processed"] += processed
        st["idle"] = st["idle"] and idle
        st["have"] += 1
        if st["have"] < st["need"]:
            return
        del self._agg[key]
        if parent is not None:
            self.send(pe, parent, "up", (wave, st["sent"], st["processed"], st["idle"]))
            return
        self._root_decide(st["sent"], st["processed"], st["idle"])

    def _root_decide(self, sent: int, processed: int, idle: bool) -> None:
        kernel = self.kernel
        if sent < processed:
            if not kernel.sparse:
                raise QuiescenceError(
                    f"QD accounting violated: processed {processed} > sent "
                    f"{sent}"
                )
            # Sparse waves sample only the snapshot: a PE touched mid-wave
            # can leave its sends out of the totals while a snapshot PE
            # already processed them.  That is sampling skew, not an
            # accounting violation — retry on the next (wider) snapshot.
            stable = False
        else:
            stable = idle and sent == processed
        events = kernel._events
        if stable and self._prev_totals == (sent, processed):
            target, entry = self._callback  # type: ignore[misc]
            self._callback = None
            self._prev_totals = None
            self._agg.clear()
            self._wave_snap = None
            self.detected_at = kernel.now
            self.work_end_at_detection = kernel.last_counted_exec_time
            if events is not None:
                events.record(
                    "qd", kernel.engine._now, 0, name="detect",
                    parent=events.ctx,
                    info={"sent": sent, "waves": self.waves_run},
                )
            kernel.send_app_from_service(0, target, entry, ())
            return
        self._prev_totals = (sent, processed) if stable else None
        if events is not None:
            # Remember this (root fold) execution: the interval timer below
            # fires outside any execution, and the next wave's events must
            # still chain back through the decision that scheduled it.
            self._trace_parent = events.ctx
        kernel.engine.schedule_after(kernel.qd_interval, self._start_wave)
