"""Specific modes of information sharing (the paper's §4 machinery).

Read-only and write-once variables, accumulators, monotonic variables and
distributed tables — each a restricted sharing pattern that admits an
efficient implementation on both shared- and distributed-memory machines.
User code reaches these through :class:`repro.core.chare.Chare` methods
(``accumulate``, ``update_monotonic``, ``table_find`` …); this package is
their distributed implementation.
"""

from repro.sharing.manager import SharingService
from repro.sharing.ops import combine, improves

__all__ = ["SharingService", "combine", "improves"]
