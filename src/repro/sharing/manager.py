"""The sharing service: the paper's "specific modes of information sharing".

One :class:`SharingService` per kernel implements, with real (cost-bearing,
simulated) messages:

* the **init broadcast** that replicates read-only variables and shared
  abstraction declarations and opens the per-PE startup gates,
* **write-once** replication,
* **accumulators** — per-PE local partials (zero messages on update) with a
  tree gather on collection,
* **monotonic variables** — per-PE cached best value, with *eager* (tree
  flood on improvement), *lazy* (batched, interval-delayed tree flood) or
  *off* propagation (experiment T7's knob),
* **distributed tables** — hash-partitioned shards with insert/find/delete
  ops and reply-to-entry continuations,
* BOC plumbing: branch construction, spanning-tree broadcast, and the
  upward legs of BOC reductions (the fold itself lives in the kernel).

Naming: all ops are small strings routed via SVC envelopes; see
:class:`repro.core.services.Service`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Optional, Tuple

from repro.core.handles import ChareHandle
from repro.core.services import Service
from repro.sharing.ops import combine, improves
from repro.util.errors import SharingError
from repro.util.hashing import stable_hash

__all__ = ["SharingService"]

#: Sentinel for "this PE has no contributions yet".  The accumulator's
#: initial value lives on PE 0 only, so it participates in the collected
#: result exactly once regardless of PE count (Charm semantics).
_EMPTY = object()


def _acc_fold(op):
    """Combiner lifted over the _EMPTY sentinel."""

    def fold(a, b):
        if a is _EMPTY:
            return b
        if b is _EMPTY:
            return a
        return combine(op, a, b)

    return fold

# Work units charged by service handlers (bookkeeping costs, roughly a few
# dozen instructions each on the reference node).
_HANDLER_WORK = 5.0
_TABLE_WORK = 20.0


class SharingService(Service):
    """Per-PE state and message handlers for the sharing abstractions."""

    name = "share"

    def bind(self, kernel) -> None:
        super().bind(kernel)
        n = kernel.num_pes
        # Declarations (global specs, distributed by the init broadcast).
        self._acc_spec: Dict[str, Tuple[Any, Any]] = {}          # name -> (initial, op)
        self._mono_spec: Dict[str, Tuple[Any, Any, str]] = {}    # name -> (initial, better, prop)
        self._tables: set[str] = set()
        # Per-PE state.
        self._acc: Dict[Tuple[str, int], Any] = {}
        self._mono: Dict[Tuple[str, int], Any] = {}
        self._mono_dirty: Dict[Tuple[str, int], bool] = {}
        self._shards: Dict[Tuple[str, int], dict] = {}
        self._collect_id = 0
        # Sparse accumulator collects: per-collect (ranks, virtual tree)
        # snapshot of the touched set, keyed by the reduction tag.  Created
        # when the request reaches PE 0, dropped when the fold completes.
        self._collect_snap: Dict[str, Tuple[list, Any]] = {}
        self.mono_updates_sent = 0
        self.mono_updates_applied = 0

    # ------------------------------------------------------------ declarations
    def declarations(self) -> tuple:
        """Payload describing all declared abstractions (init broadcast)."""
        return (dict(self._acc_spec), dict(self._mono_spec), tuple(self._tables))

    def declare_accumulator(self, name: str, initial: Any, op) -> None:
        if name in self._acc_spec:
            raise SharingError(f"accumulator {name!r} already declared")
        self._acc_spec[name] = (initial, op)
        # Per-PE partials materialize on first touch (_acc_get); the
        # declared initial lives on PE 0 only, exactly once.
        self._acc[(name, 0)] = initial

    def declare_monotonic(self, name: str, initial: Any, better, propagation: str) -> None:
        if name in self._mono_spec:
            raise SharingError(f"monotonic variable {name!r} already declared")
        if propagation not in ("eager", "lazy", "off"):
            raise SharingError(
                f"propagation must be eager/lazy/off, got {propagation!r}"
            )
        # Untouched PEs read the spec initial via _mono_get — no O(P) fill.
        self._mono_spec[name] = (initial, better, propagation)

    def declare_table(self, name: str) -> None:
        if name in self._tables:
            raise SharingError(f"table {name!r} already declared")
        self._tables.add(name)

    # ------------------------------------------------------- lazy per-PE state
    def _acc_get(self, name: str, pe: int) -> Any:
        """A PE's accumulator partial (_EMPTY default; initial on PE 0)."""
        value = self._acc.get((name, pe), _EMPTY)
        if value is _EMPTY and pe == 0:
            return self._acc_spec[name][0]
        return value

    def _mono_get(self, name: str, pe: int) -> Any:
        """A PE's cached monotonic value (spec initial until touched)."""
        key = (name, pe)
        value = self._mono.get(key, _EMPTY)
        return self._mono_spec[name][0] if value is _EMPTY else value

    # ------------------------------------------------------------- accumulator
    def accumulate(self, name: str, value: Any, pe: int) -> None:
        spec = self._acc_spec.get(name)
        if spec is None:
            raise SharingError(f"unknown accumulator {name!r}")
        self._acc[(name, pe)] = _acc_fold(spec[1])(
            self._acc_get(name, pe), value
        )

    def accumulator_partial(self, name: str, pe: int) -> Any:
        """This PE's partial, or the declared initial if it has none."""
        value = self._acc_get(name, pe)
        return self._acc_spec[name][0] if value is _EMPTY else value

    def collect_accumulator(
        self, name: str, target: ChareHandle, entry: str, from_pe: int
    ) -> None:
        if name not in self._acc_spec:
            raise SharingError(f"unknown accumulator {name!r}")
        self._collect_id += 1
        self.send(
            from_pe, 0, "acc_req", (name, self._collect_id, target, entry), counted=True
        )

    # --------------------------------------------------------------- monotonic
    def update_monotonic(self, name: str, value: Any, pe: int) -> None:
        spec = self._mono_spec.get(name)
        if spec is None:
            raise SharingError(f"unknown monotonic variable {name!r}")
        _, better, propagation = spec
        if not improves(better, value, self._mono_get(name, pe)):
            return
        self._mono[(name, pe)] = value
        self.mono_updates_applied += 1
        if propagation == "eager":
            self._flood(name, pe, exclude=None)
        elif propagation == "lazy":
            self._mark_dirty(name, pe)
        # "off": local only (the T7 ablation's broken-sharing arm).

    def read_monotonic(self, name: str, pe: int) -> Any:
        if name not in self._mono_spec:
            raise SharingError(f"unknown monotonic variable {name!r}")
        return self._mono_get(name, pe)

    def _neighbors_in_tree(self, pe: int):
        kernel = self.kernel
        if kernel.sparse:
            # Flood over the currently-touched set only: a virtual tree of
            # the k active ranks.  The improves() guard makes relaying
            # idempotent, so floods terminate even as the set grows; PEs
            # materialized after a flood pick the value up from later
            # improvements (same sampling caveat as sparse quiescence).
            ranks = kernel.pes.ranks()
            wtree = type(kernel.tree)(len(ranks))
            vrank = bisect_left(ranks, pe)
            out = [ranks[c] for c in wtree.children(vrank)]
            vparent = wtree.parent(vrank)
            if vparent is not None:
                out.append(ranks[vparent])
            return out
        out = list(self.kernel.tree.children(pe))
        parent = self.kernel.tree.parent(pe)
        if parent is not None:
            out.append(parent)
        return out

    def _flood(self, name: str, pe: int, exclude: Optional[int]) -> None:
        value = self._mono_get(name, pe)
        for nb in self._neighbors_in_tree(pe):
            if nb != exclude:
                self.mono_updates_sent += 1
                self.send(pe, nb, "mono_update", (name, value, pe), counted=True)

    def _mark_dirty(self, name: str, pe: int) -> None:
        key = (name, pe)
        if self._mono_dirty.get(key):
            return
        self._mono_dirty[key] = True
        self.kernel.engine.schedule_after(
            self.kernel.lazy_interval, lambda: self._lazy_flush(name, pe)
        )

    def _lazy_flush(self, name: str, pe: int) -> None:
        self._mono_dirty[(name, pe)] = False
        self._flood(name, pe, exclude=None)

    # ------------------------------------------------------------------ tables
    def table_home(self, table: str, key: Any) -> int:
        if table not in self._tables:
            raise SharingError(f"unknown table {table!r}")
        return stable_hash((table, key)) % self.kernel.num_pes

    def table_insert(self, table, key, value, reply_to, reply_entry, pe) -> None:
        home = self.table_home(table, key)
        self.send(
            pe, home, "tbl_insert", (table, key, value, reply_to, reply_entry),
            counted=True,
        )

    def table_find(self, table, key, reply_to, reply_entry, pe) -> None:
        home = self.table_home(table, key)
        self.send(
            pe, home, "tbl_find", (table, key, reply_to, reply_entry), counted=True
        )

    def table_delete(self, table, key, pe) -> None:
        home = self.table_home(table, key)
        self.send(pe, home, "tbl_delete", (table, key), counted=True)

    def shard(self, table: str, pe: int) -> dict:
        """Direct (test/diagnostic) view of a table shard."""
        if table not in self._tables:
            raise KeyError((table, pe))
        return self._shards.setdefault((table, pe), {})

    # ----------------------------------------------------------------- handlers
    def handle(self, pe: int, op: str, args: tuple) -> None:
        kernel = self.kernel
        kernel.api_charge(_HANDLER_WORK)

        if op == "init":
            readonly, decls = args
            # Values are already in kernel.readonly_vars / our spec dicts
            # (the simulation shares host memory); the broadcast models the
            # replication *cost* and sequencing.
            for child in kernel.tree.children(pe):
                self.send(pe, child, "init", args, counted=False)
            kernel.open_gate(pe)

        elif op == "boc_create":
            boc_id, boc_cls, cargs = args
            span = kernel.boc_spans.get(boc_id)
            if span is None and kernel.sparse:
                # First arrival is at the tree root (PE 0): snapshot the
                # touched ranks as this BOC's write-once span.  Branches
                # materialize on exactly these ranks, and every later
                # broadcast/reduction for the BOC walks this virtual tree
                # instead of all P ranks.
                ranks = kernel.pes.ranks()
                span = kernel.boc_spans[boc_id] = (
                    ranks, frozenset(ranks), type(kernel.tree)(len(ranks)))
            if span is not None:
                ranks, _, wtree = span
                for child in wtree.children(bisect_left(ranks, pe)):
                    self.send(pe, ranks[child], "boc_create", args,
                              counted=True)
            else:
                for child in kernel.tree.children(pe):
                    self.send(pe, child, "boc_create", args, counted=True)
            kernel.construct_branch(boc_id, boc_cls, cargs, pe)

        elif op in ("boc_bcast", "bcast_down"):
            boc_id, entry, bargs = args
            span = kernel.boc_spans.get(boc_id)
            if span is not None:
                ranks, _, wtree = span
                for child in wtree.children(bisect_left(ranks, pe)):
                    self.send(pe, ranks[child], "bcast_down", args,
                              counted=True)
            else:
                for child in kernel.tree.children(pe):
                    self.send(pe, child, "bcast_down", args, counted=True)
            kernel.deliver_local_boc(boc_id, pe, entry, bargs)

        elif op == "red_up":
            boc_id, tag, value, rop, target, entry, mode = args
            # boc_id -1 marks accumulator collects (per-collect snapshot);
            # real BOC reductions fold over the BOC's write-once span when
            # one exists (sparse kernels), else over all P branches.
            span = (self._collect_snap.get(tag) if boc_id == -1
                    else kernel.boc_spans.get(boc_id))
            done = kernel._reduce_fold(boc_id, tag, pe, value, rop, target,
                                       entry, own=False, mode=mode, span=span)
            if done and span is not None:
                self._collect_snap.pop(tag, None)

        elif op == "wonce_bcast":
            name, value = args
            kernel.writeonce_vars.setdefault(name, value)
            kernel._writeonce_avail[(name, pe)] = True
            for child in kernel.tree.children(pe):
                self.send(pe, child, "wonce_bcast", args, counted=True)

        elif op == "acc_req":
            name, cid, target, entry = args
            tag = f"acc:{name}:{cid}"
            span = None
            if kernel.sparse:
                # Gather over the touched set only.  The request reaches
                # PE 0 first, which snapshots the k active ranks; untouched
                # PEs hold _EMPTY and contribute nothing by construction.
                span = self._collect_snap.get(tag)
                if span is None:
                    ranks = kernel.pes.ranks()
                    span = self._collect_snap[tag] = (
                        ranks, type(kernel.tree)(len(ranks)))
                ranks, wtree = span
                for child in wtree.children(bisect_left(ranks, pe)):
                    self.send(pe, ranks[child], "acc_req", args, counted=True)
            else:
                for child in kernel.tree.children(pe):
                    self.send(pe, child, "acc_req", args, counted=True)
            _initial, aop = self._acc_spec[name]
            done = kernel._reduce_fold(
                -1, tag, pe, self._acc_get(name, pe),
                _acc_fold(aop), target, entry, own=True, span=span,
            )
            if done and span is not None:
                self._collect_snap.pop(tag, None)

        elif op == "mono_update":
            name, value, src = args
            _, better, _prop = self._mono_spec[name]
            if improves(better, value, self._mono_get(name, pe)):
                self._mono[(name, pe)] = value
                self.mono_updates_applied += 1
                self._flood(name, pe, exclude=src)

        elif op == "tbl_insert":
            kernel.api_charge(_TABLE_WORK)
            table, key, value, reply_to, reply_entry = args
            self._shards.setdefault((table, pe), {})[key] = value
            if reply_to is not None:
                kernel.send_app_from_service(pe, reply_to, reply_entry, (key,))

        elif op == "tbl_find":
            kernel.api_charge(_TABLE_WORK)
            table, key, reply_to, reply_entry = args
            value = self._shards.get((table, pe), {}).get(key)
            kernel.send_app_from_service(pe, reply_to, reply_entry, (key, value))

        elif op == "tbl_delete":
            kernel.api_charge(_TABLE_WORK)
            table, key = args
            shard = self._shards.get((table, pe))
            if shard is not None:
                shard.pop(key, None)

        else:  # pragma: no cover - defensive
            raise SharingError(f"unknown sharing op {op!r}")
