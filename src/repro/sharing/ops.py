"""Combining operators for accumulators, reductions and monotonic variables.

The paper restricts shared abstractions to operations with algebraic
structure: accumulators need a **commutative, associative** combiner (so
partial results can fold in any order on any PE) and monotonic variables
need an **improvement order** (so stale updates are simply ignored).
"""

from __future__ import annotations

from typing import Any, Callable, Union

from repro.util.errors import SharingError

__all__ = ["combine", "improves", "OpLike", "BetterLike"]

OpLike = Union[str, Callable[[Any, Any], Any]]
BetterLike = Union[str, Callable[[Any, Any], bool]]

_NAMED_OPS = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "max": max,
    "min": min,
}


def combine(op: OpLike, a: Any, b: Any) -> Any:
    """Fold two partials with a named or user-supplied combiner."""
    if callable(op):
        return op(a, b)
    try:
        return _NAMED_OPS[op](a, b)
    except KeyError:
        raise SharingError(
            f"unknown combiner {op!r}; options: {sorted(_NAMED_OPS)} or a callable"
        ) from None


def improves(better: BetterLike, new: Any, old: Any) -> bool:
    """True if ``new`` improves on ``old`` under the given order."""
    if callable(better):
        return bool(better(new, old))
    if better == "min":
        return new < old
    if better == "max":
        return new > old
    raise SharingError(
        f"unknown improvement order {better!r}; use 'min', 'max' or a callable"
    )
