"""Discrete-event simulation engine.

The engine is deliberately tiny and generic: a binary heap of timestamped
callbacks with deterministic tie-breaking.  Everything Charm-specific lives
above it in :mod:`repro.core`.
"""

from repro.sim.engine import Engine, Event

__all__ = ["Engine", "Event"]
