"""Discrete-event simulation engine.

The engine is deliberately tiny and generic: a binary heap of timestamped
callbacks with deterministic tie-breaking.  Everything Charm-specific lives
above it in :mod:`repro.core`.

:mod:`repro.sim.backend` provides the pluggable event-loop backends the
kernel selects between: the default :class:`HeapBackend` and the
timestamp-cohort :class:`BatchBackend` fast lane.
"""

from repro.sim.backend import (
    BACKENDS,
    DEFAULT_BACKEND,
    BatchBackend,
    BatchEvent,
    HeapBackend,
    make_backend,
)
from repro.sim.engine import Engine, Event

__all__ = [
    "Engine",
    "Event",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "BatchBackend",
    "BatchEvent",
    "HeapBackend",
    "make_backend",
]
