"""Pluggable event-loop backends for the discrete-event engine.

The kernel's hot loop talks to its engine through a small duck-typed
surface (the informal ``EngineBackend`` protocol below).  Two
implementations are provided:

* :class:`HeapBackend` — the historical binary-heap path (a subclass of
  :class:`~repro.sim.engine.Engine` that adds the kernel-facing bulk
  entry points).  Bit-identical to the pre-backend engine, zero new
  per-event overhead; the default.
* :class:`BatchBackend` — the batch-stepping fast lane: a calendar
  (bucket) queue keyed by timestamp.  All events at the same virtual
  time form one *cohort* drained in a single tight loop, so the common
  schedule/fire pair costs a dict probe plus a list append instead of
  two O(log n) heap operations with Python-level list comparisons.
  Homogeneous bursts (seed fanout, same-entry delivery) land in one
  bucket via :meth:`schedule_calls`, the bulk-delivery entry point.

Protocol (duck-typed; both classes implement all of it)::

    now / events_fired / pending          # clock + counters
    advance_to(time)
    schedule(time, fn) -> event           # cancellable handle
    schedule_after(delay, fn) -> event
    schedule_call(time, fn, arg)          # closure-free per-message path
    schedule_calls(time, fn, args)        # bulk delivery: many fn(arg) at t
    step() -> bool                        # fire the single next event
    run(until=None, max_events=None)      # engine-driven drain
    drive(max_events=None) -> (fired, truncated)   # kernel-facing bulk loop
    request_stop()                        # abort drive() after current event

Determinism contract
--------------------
Events fire in nondecreasing time order; equal-time events fire in
schedule order.  The heap orders entries by a ``(time, seq)`` key; the
calendar queue gets the same order structurally (bucket append order *is*
schedule order, buckets drain in time order via a small heap of distinct
timestamps), so the two backends produce bit-identical simulations — the
golden-trace suite pins this for the full app×machine×strategy matrix.

Cohort-batching invariants (the reasons the bucket drain is safe):

* callbacks may only schedule at ``time >= now``, so while cohort ``t``
  drains, an equal-time schedule *appends to the live bucket* (a list
  being index-iterated picks the new entry up in seq order) and a later
  time lands in another bucket — nothing can sneak in before the cursor;
* a bucket's timestamp stays in the time-heap until the bucket is fully
  consumed, and the consumed-prefix cursor is persisted in slot 0 of the
  bucket itself, so ``step()``/``run()``/``drive()`` can suspend (budget,
  horizon, kernel exit) and resume without ever replaying or skipping an
  entry;
* cancellation nulls the callback slot in place (entries are never
  removed), so cursor positions stay valid.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional, Tuple

from repro.sim.engine import _NO_ARG, Engine
from repro.util.errors import ConfigurationError, SchedulingError

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "HeapBackend",
    "BatchBackend",
    "BatchEvent",
    "make_backend",
]

DEFAULT_BACKEND = "heap"


class HeapBackend(Engine):
    """The classic binary-heap engine plus the kernel-facing bulk surface.

    ``schedule``/``schedule_call``/``step``/``run`` are inherited verbatim
    from :class:`Engine` — the heap hot path is untouched.  ``drive`` is
    the kernel's bulk stepping loop (previously an engine-``step()``-per-
    event loop inside ``Kernel.run``) inlined here so the budget/stop
    checks cost one compare each instead of a Python method call per
    event.
    """

    backend_name = "heap"

    def __init__(self) -> None:
        super().__init__()
        self._stop = False

    def request_stop(self) -> None:
        """Make an in-progress :meth:`drive` return before the next event."""
        self._stop = True

    def bump_fired(self, n: int) -> None:
        """Fold ``n`` logical events into the fired-event counter.

        The kernel's fused fast paths (turn-loop completion elisions,
        bundled same-time arrival cohorts) absorb work the scalar
        schedule surfaces as individual engine callbacks; they report the
        absorbed count here so ``events_fired`` — and every fingerprint,
        report and truncation check derived from it — stays identical to
        the event-per-callback schedule.  Part of the backend protocol:
        both backends implement it identically.
        """
        self._events_fired += n

    def schedule_calls(
        self, time: float, fn: Callable[[Any], None], args: Iterable[Any]
    ) -> None:
        """Bulk delivery: schedule ``fn(arg)`` at ``time`` for each arg.

        On the heap this is just a push loop (no cohort structure to
        exploit); it exists so kernel burst code is backend-agnostic.
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        heap = self._heap
        push = heapq.heappush
        seq = self._seq
        n = 0
        for arg in args:
            push(heap, [time, seq, fn, arg])
            seq += 1
            n += 1
        self._seq = seq
        self._live += n

    def drive(self, max_events: Optional[int] = None) -> Tuple[int, bool]:
        """Fire events until drained, stopped, or ``max_events`` fired.

        Returns ``(fired, truncated)`` where ``truncated`` means the
        budget ran out with work still pending.  :meth:`request_stop`
        (the kernel's exit signal) wins over the budget check, matching
        the historical ``Kernel.run`` loop ordering exactly.
        """
        if self._running:
            raise SchedulingError("Engine.drive is not reentrant")
        self._running = True
        self._stop = False
        heap = self._heap
        pop = heapq.heappop
        fired = 0
        try:
            if max_events is None:
                while heap and not self._stop:
                    entry = pop(heap)
                    fn = entry[2]
                    if fn is None:
                        continue
                    self._now = entry[0]
                    self._events_fired += 1
                    self._live -= 1
                    fired += 1
                    arg = entry[3]
                    if arg is _NO_ARG:
                        fn()
                    else:
                        fn(arg)
                return fired, False
            while True:
                if self._stop:
                    return fired, False
                if fired >= max_events:
                    return fired, True
                entry = None
                while heap:
                    e = pop(heap)
                    if e[2] is not None:
                        entry = e
                        break
                if entry is None:
                    return fired, False
                self._now = entry[0]
                self._events_fired += 1
                self._live -= 1
                fired += 1
                arg = entry[3]
                if arg is _NO_ARG:
                    entry[2]()
                else:
                    entry[2](arg)
        finally:
            self._running = False


class BatchEvent(list):
    """Cancellable handle over one calendar-bucket entry ``[fn, arg]``.

    Unlike the heap :class:`~repro.sim.engine.Event` (whose list body
    doubles as the heap key), bucket entries carry only the callback pair
    — time and sequence number live on the handle.  Cancellation nulls
    the callback slot in place; the drain loops skip dead entries.
    """

    __slots__ = ("_engine", "_time", "_seq")

    @property
    def time(self) -> float:
        return self._time

    @property
    def seq(self) -> int:
        return self._seq

    @property
    def cancelled(self) -> bool:
        return self[0] is None

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when its cohort drains."""
        if self[0] is not None:
            self[0] = None
            self[1] = _NO_ARG
            self._engine._live -= 1


class BatchBackend:
    """Calendar-queue engine: timestamp-cohort batching.

    State: ``_buckets`` maps a timestamp to ``[cursor, entry, entry, ...]``
    — slot 0 is the index of the next unconsumed entry, entries are
    ``(fn, arg)`` tuples (or :class:`BatchEvent` lists for cancellable
    schedules) in schedule order.  ``_times`` is a min-heap holding each
    live bucket's timestamp exactly once; a timestamp is popped only when
    its bucket is fully consumed, so suspended drains (budget, horizon,
    kernel exit) resume from the persisted cursor with no push-back
    bookkeeping.
    """

    backend_name = "batch"

    def __init__(self) -> None:
        self._buckets: dict = {}
        self._times: list = []
        self._seq = 0
        self._now = 0.0
        self._events_fired = 0
        self._live = 0
        self._running = False
        self._stop = False

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of not-yet-fired live events (O(1) counter)."""
        return self._live

    def advance_to(self, time: float) -> None:
        """Move the clock forward without firing events (never backward)."""
        if time > self._now:
            self._now = time

    def request_stop(self) -> None:
        """Make an in-progress :meth:`drive` return before the next event."""
        self._stop = True

    def bump_fired(self, n: int) -> None:
        """Fold ``n`` logical events into the fired-event counter.

        See :meth:`HeapBackend.bump_fired` — same contract, same reason.
        """
        self._events_fired += n

    # -------------------------------------------------------------- scheduling
    def schedule(self, time: float, fn: Callable[[], None]) -> BatchEvent:
        """Schedule ``fn`` at absolute time ``time``; returns a cancellable
        :class:`BatchEvent`."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        time = float(time)
        ev = BatchEvent((fn, _NO_ARG))
        ev._engine = self
        ev._time = time
        ev._seq = self._seq
        self._seq += 1
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [1, ev]
            heapq.heappush(self._times, time)
        else:
            bucket.append(ev)
        self._live += 1
        return ev

    def schedule_call(self, time: float, fn: Callable[[Any], None], arg: Any) -> None:
        """Closure-free fast path: at ``time``, invoke ``fn(arg)``.

        One dict probe plus one list append — no heap comparisons, no
        Event allocation.  The entry cannot be cancelled.  (try/except
        over ``get``: the existing-bucket hit is the overwhelmingly common
        case and Python's zero-cost exceptions make the hit path one
        subscript cheaper.)
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        try:
            self._buckets[time].append((fn, arg))
        except KeyError:
            self._buckets[time] = [1, (fn, arg)]
            heapq.heappush(self._times, time)
        self._live += 1

    def schedule_calls(
        self, time: float, fn: Callable[[Any], None], args: Iterable[Any]
    ) -> None:
        """Bulk delivery: schedule ``fn(arg)`` at ``time`` for every arg.

        The cohort fast lane proper — one probe, one ``list.extend``,
        however many messages the burst carries.
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        bucket = self._buckets.get(time)
        if bucket is None:
            bucket = self._buckets[time] = [1]
            heapq.heappush(self._times, time)
        before = len(bucket)
        bucket.extend([(fn, arg) for arg in args])
        self._live += len(bucket) - before

    def schedule_after(self, delay: float, fn: Callable[[], None]) -> BatchEvent:
        """Schedule ``fn`` after a nonnegative ``delay`` from now."""
        if delay < 0:
            raise SchedulingError(f"negative delay: {delay}")
        return self.schedule(self._now + delay, fn)

    # --------------------------------------------------------------- execution
    def step(self) -> bool:
        """Fire the single next live event.  Returns False if none remain."""
        buckets = self._buckets
        times = self._times
        while times:
            t = times[0]
            bucket = buckets[t]
            idx = bucket[0]
            n = len(bucket)
            while idx < n:
                entry = bucket[idx]
                idx += 1
                fn = entry[0]
                if fn is None:
                    continue
                bucket[0] = idx
                self._now = t
                self._events_fired += 1
                self._live -= 1
                arg = entry[1]
                if arg is _NO_ARG:
                    fn()
                else:
                    fn(arg)
                return True
            bucket[0] = idx
            heapq.heappop(times)
            del buckets[t]
        return False

    def _next_live_time(self) -> Optional[float]:
        """Earliest pending event time; drops dead entries/buckets en route."""
        buckets = self._buckets
        times = self._times
        while times:
            t = times[0]
            bucket = buckets[t]
            idx = bucket[0]
            n = len(bucket)
            while idx < n and bucket[idx][0] is None:
                idx += 1
            bucket[0] = idx
            if idx < n:
                return t
            heapq.heappop(times)
            del buckets[t]
        return None

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run until drained, ``until`` is passed, or the budget is spent.

        Same contract as :meth:`Engine.run`: ``until`` is inclusive, and
        when the next event lies beyond it the clock advances to exactly
        ``until``.
        """
        if self._running:
            raise SchedulingError("Engine.run is not reentrant")
        self._running = True
        try:
            if until is None and max_events is None:
                # Drain-everything: one tight cohort loop per timestamp.
                buckets = self._buckets
                times = self._times
                pop = heapq.heappop
                no_arg = _NO_ARG
                while times:
                    t = times[0]
                    bucket = buckets[t]
                    self._now = t
                    idx = bucket[0]
                    fired = 0
                    try:
                        while True:
                            # Cohort length cached per batch; callbacks
                            # appending same-time events grow the bucket, so
                            # re-check once per exhausted batch, not per event.
                            n = len(bucket)
                            if idx >= n:
                                break
                            while idx < n:
                                entry = bucket[idx]
                                idx += 1
                                fn = entry[0]
                                if fn is None:
                                    continue
                                fired += 1
                                arg = entry[1]
                                if arg is no_arg:
                                    fn()
                                else:
                                    fn(arg)
                    finally:
                        # Persist the cursor and flush counters even if a
                        # callback raised, so the queue state stays exact.
                        bucket[0] = idx
                        self._events_fired += fired
                        self._live -= fired
                    pop(times)
                    del buckets[t]
                return
            fired = 0
            while True:
                if max_events is not None and fired >= max_events:
                    return
                t = self._next_live_time()
                if t is None:
                    return
                if until is not None and t > until:
                    self._now = until
                    return
                if self.step():
                    fired += 1
        finally:
            self._running = False

    def drive(self, max_events: Optional[int] = None) -> Tuple[int, bool]:
        """Kernel-facing bulk loop; see :meth:`HeapBackend.drive`."""
        if self._running:
            raise SchedulingError("Engine.drive is not reentrant")
        self._running = True
        self._stop = False
        buckets = self._buckets
        times = self._times
        pop = heapq.heappop
        no_arg = _NO_ARG
        fired = 0
        flushed = 0
        try:
            while times:
                if max_events is not None and fired >= max_events:
                    # Budget exhausted exactly at a cohort boundary: return
                    # *before* advancing the clock to the next cohort.  The
                    # heap path checks its budget before popping, so its
                    # ``now`` stays at the last fired event — advancing here
                    # would make a truncated run's final time depend on the
                    # backend.
                    return fired, True
                t = times[0]
                bucket = buckets[t]
                self._now = t
                idx = bucket[0]
                try:
                    # The stop flag can only flip inside a callback, so it
                    # is checked right after each fire (not on skipped
                    # cancelled entries) — same observable order as
                    # checking it before the next pop, one load cheaper.
                    if max_events is None:
                        while True:
                            n = len(bucket)
                            if idx >= n:
                                break
                            while idx < n:
                                entry = bucket[idx]
                                idx += 1
                                fn = entry[0]
                                if fn is None:
                                    continue
                                fired += 1
                                arg = entry[1]
                                if arg is no_arg:
                                    fn()
                                else:
                                    fn(arg)
                                if self._stop:
                                    return fired, False
                    else:
                        while True:
                            n = len(bucket)
                            if idx >= n:
                                break
                            while idx < n:
                                if fired >= max_events:
                                    return fired, True
                                entry = bucket[idx]
                                idx += 1
                                fn = entry[0]
                                if fn is None:
                                    continue
                                fired += 1
                                arg = entry[1]
                                if arg is no_arg:
                                    fn()
                                else:
                                    fn(arg)
                                if self._stop:
                                    return fired, False
                finally:
                    bucket[0] = idx
                    self._events_fired += fired - flushed
                    self._live -= fired - flushed
                    flushed = fired
                pop(times)
                del buckets[t]
            if max_events is not None and fired >= max_events:
                # The budget check precedes the emptiness discovery on the
                # heap path (and in the historical kernel loop): a drain
                # landing exactly on the budget still reports truncation.
                return fired, True
            return fired, False
        finally:
            self._running = False


#: Registry of engine backends by name.
_BACKENDS = {
    "heap": HeapBackend,
    "batch": BatchBackend,
}

BACKENDS = tuple(sorted(_BACKENDS))


def make_backend(name: str):
    """Construct an engine backend by name (``heap`` or ``batch``)."""
    try:
        cls = _BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine backend {name!r}; options: {sorted(_BACKENDS)}"
        ) from None
    return cls()
