"""A deterministic discrete-event engine.

Design notes
------------
* Virtual time is a float in **seconds**; events fire in nondecreasing time
  order.  Equal-time events fire in schedule order (a monotone sequence
  number breaks ties), so a run is a pure function of its inputs and seeds.
* Callbacks may schedule further events, including at the current time (but
  never in the past — that raises :class:`SchedulingError`, since a causal
  simulation must not rewrite history).
* The engine neither knows nor cares about PEs or messages; the Chare
  Kernel runtime layers those semantics on top.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.util.errors import SchedulingError

__all__ = ["Event", "Engine"]


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by (time, seq) for determinism."""

    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self.cancelled = True


class Engine:
    """The event loop.

    Typical use::

        eng = Engine()
        eng.schedule(0.0, start)        # absolute time
        eng.run()                       # until the heap drains
        print(eng.now)
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_fired = 0
        self._running = False

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of not-yet-fired (possibly cancelled) events."""
        return sum(1 for e in self._heap if not e.cancelled)

    def advance_to(self, time: float) -> None:
        """Move the clock forward without firing events (never backward)."""
        if time > self._now:
            self._now = time

    # -------------------------------------------------------------- scheduling
    def schedule(self, time: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        ev = Event(float(time), next(self._seq), fn)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_after(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` after a nonnegative ``delay`` from now."""
        if delay < 0:
            raise SchedulingError(f"negative delay: {delay}")
        return self.schedule(self._now + delay, fn)

    # --------------------------------------------------------------- execution
    def step(self) -> bool:
        """Fire the single next live event.  Returns False if none remain."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = ev.time
            self._events_fired += 1
            ev.fn()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run until the heap drains, ``until`` is passed, or budget spent.

        ``until`` is an inclusive time horizon: events at exactly ``until``
        still fire.  ``max_events`` bounds callbacks fired by *this* call.
        """
        if self._running:
            raise SchedulingError("Engine.run is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                if max_events is not None and fired >= max_events:
                    return
                # Peek for the horizon check without popping dead events
                # prematurely — cancelled events at the front are free to drop.
                while self._heap and self._heap[0].cancelled:
                    heapq.heappop(self._heap)
                if not self._heap:
                    return
                if until is not None and self._heap[0].time > until:
                    self._now = until
                    return
                if self.step():
                    fired += 1
        finally:
            self._running = False
