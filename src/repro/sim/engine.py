"""A deterministic discrete-event engine.

Design notes
------------
* Virtual time is a float in **seconds**; events fire in nondecreasing time
  order.  Equal-time events fire in schedule order (a monotone sequence
  number breaks ties), so a run is a pure function of its inputs and seeds.
* Callbacks may schedule further events, including at the current time (but
  never in the past — that raises :class:`SchedulingError`, since a causal
  simulation must not rewrite history).
* The engine neither knows nor cares about PEs or messages; the Chare
  Kernel runtime layers those semantics on top.

Hot path
--------
Heap entries are plain 4-slot lists ``[time, seq, fn, arg]`` — ``heapq``
compares them element-wise and the unique ``seq`` guarantees the comparison
never reaches ``fn``.  :meth:`Engine.schedule_call` is the closure-free
fast path: the kernel passes a bound method plus its payload and the loop
invokes ``fn(arg)`` directly, so per-message scheduling allocates one small
list and nothing else (no Event object, no lambda cell, no dataclass
comparison machinery).  :meth:`Engine.schedule` keeps the zero-arg callback
API and returns a cancellable :class:`Event` handle for the rare callers
that need one.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.util.errors import SchedulingError

__all__ = ["Event", "Engine"]

#: Sentinel distinguishing "call fn()" from "call fn(arg)" heap entries.
_NO_ARG = object()


class Event(list):
    """A cancellable handle over one heap entry ``[time, seq, fn, arg]``.

    Subclassing ``list`` keeps the heap homogeneous: plain fast-path
    entries and cancellable ones compare with the same C-level logic.
    Cancellation nulls the callback slot in place; the engine skips (and
    drops) dead entries when they surface at the heap front.
    """

    __slots__ = ("_engine",)

    @property
    def time(self) -> float:
        return self[0]

    @property
    def seq(self) -> int:
        return self[1]

    @property
    def cancelled(self) -> bool:
        return self[2] is None

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        if self[2] is not None:
            self[2] = None
            self[3] = _NO_ARG
            self._engine._live -= 1


class Engine:
    """The event loop.

    Typical use::

        eng = Engine()
        eng.schedule(0.0, start)        # absolute time
        eng.run()                       # until the heap drains
        print(eng.now)
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = 0
        self._now = 0.0
        self._events_fired = 0
        self._live = 0
        self._running = False

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of not-yet-fired live events (O(1) counter)."""
        return self._live

    def advance_to(self, time: float) -> None:
        """Move the clock forward without firing events (never backward)."""
        if time > self._now:
            self._now = time

    # -------------------------------------------------------------- scheduling
    def schedule(self, time: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at absolute virtual time ``time``.

        Returns a cancellable :class:`Event`.  Prefer
        :meth:`schedule_call` in hot paths that don't need cancellation.
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        ev = Event((float(time), self._seq, fn, _NO_ARG))
        ev._engine = self
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_call(self, time: float, fn: Callable[[Any], None], arg: Any) -> None:
        """Closure-free fast path: at ``time``, invoke ``fn(arg)``.

        No Event handle is created (the entry cannot be cancelled); the
        kernel uses this for every message arrival and PE completion.
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        heapq.heappush(self._heap, [time, self._seq, fn, arg])
        self._seq += 1
        self._live += 1

    def schedule_after(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` after a nonnegative ``delay`` from now."""
        if delay < 0:
            raise SchedulingError(f"negative delay: {delay}")
        return self.schedule(self._now + delay, fn)

    # --------------------------------------------------------------- execution
    def step(self) -> bool:
        """Fire the single next live event.  Returns False if none remain."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            fn = entry[2]
            if fn is None:
                continue
            self._now = entry[0]
            self._events_fired += 1
            self._live -= 1
            arg = entry[3]
            if arg is _NO_ARG:
                fn()
            else:
                fn(arg)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run until the heap drains, ``until`` is passed, or budget spent.

        ``until`` is an inclusive time horizon: events at exactly ``until``
        still fire.  ``max_events`` bounds callbacks fired by *this* call.
        """
        if self._running:
            raise SchedulingError("Engine.run is not reentrant")
        self._running = True
        heap = self._heap
        fired = 0
        try:
            if until is None and max_events is None:
                # The common drain-everything case: one tight loop, no
                # per-event horizon/budget checks.
                while heap:
                    entry = heapq.heappop(heap)
                    fn = entry[2]
                    if fn is None:
                        continue
                    self._now = entry[0]
                    self._events_fired += 1
                    self._live -= 1
                    arg = entry[3]
                    if arg is _NO_ARG:
                        fn()
                    else:
                        fn(arg)
                return
            while heap:
                if max_events is not None and fired >= max_events:
                    return
                # Peek for the horizon check without popping live events
                # prematurely — cancelled events at the front are free to drop.
                while heap and heap[0][2] is None:
                    heapq.heappop(heap)
                if not heap:
                    return
                if until is not None and heap[0][0] > until:
                    self._now = until
                    return
                if self.step():
                    fired += 1
        finally:
            self._running = False
