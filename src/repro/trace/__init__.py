"""Performance tracing: per-PE counters, utilization, text reports."""

from repro.trace.report import PERow, TraceReport
from repro.trace.timeline import Interval, Timeline

__all__ = ["PERow", "TraceReport", "Interval", "Timeline"]
