"""Performance tracing: per-PE counters, structured event logs, analyses."""

from repro.trace.critical_path import CriticalPath, PathStep, critical_path
from repro.trace.events import EVENT_KINDS, Event, EventLog, normalize_kinds
from repro.trace.perfetto import to_perfetto, write_perfetto
from repro.trace.report import PERow, TraceReport
from repro.trace.timeline import Interval, Timeline

__all__ = [
    "PERow",
    "TraceReport",
    "Interval",
    "Timeline",
    "Event",
    "EventLog",
    "EVENT_KINDS",
    "normalize_kinds",
    "critical_path",
    "CriticalPath",
    "PathStep",
    "to_perfetto",
    "write_perfetto",
]
