"""CLI: ``python -m repro.trace <run.json> [--perfetto OUT]``.

Analyzes a structured trace written by the bench harness
(``python -m repro.bench --exp t5 --trace-out DIR``): prints the run
metadata, per-kind event counts, the time-series peaks and the critical
path with per-entry-method attribution.  ``--perfetto OUT`` additionally
re-exports the events as Chrome trace-event JSON for ``ui.perfetto.dev``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.metrics import metrics_summary, sample_metrics
from repro.trace.critical_path import critical_path
from repro.trace.perfetto import write_perfetto


def load_run(path: str) -> dict:
    """Load a ``*.run.json`` document (or a bare event-record list)."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if isinstance(doc, list):  # bare records
        doc = {"format": "repro-trace-v1", "meta": {}, "events": doc,
               "dropped": 0}
    if "events" not in doc:
        raise SystemExit(f"{path}: not a repro trace (no 'events' key)")
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Analyze a structured run trace: summary, time-series "
                    "peaks and critical path.",
    )
    parser.add_argument("run", help="path to a <label>.run.json trace")
    parser.add_argument(
        "--perfetto", default=None, metavar="OUT",
        help="also export Chrome trace-event JSON to OUT "
             "(open at ui.perfetto.dev)",
    )
    parser.add_argument(
        "--buckets", type=int, default=60, metavar="N",
        help="time-series buckets for the metrics sampler (default: 60)",
    )
    parser.add_argument(
        "--top", type=int, default=8, metavar="K",
        help="entry methods to show in the attribution table (default: 8)",
    )
    args = parser.parse_args(argv)

    doc = load_run(args.run)
    events = doc["events"]
    meta = doc.get("meta") or {}

    if meta:
        bits = [f"{k}={meta[k]}" for k in
                ("app", "machine", "num_pes", "seed", "queueing", "balancer")
                if k in meta]
        print("run:", " ".join(bits) if bits else "(no metadata)")
        if "total_time" in meta:
            print(f"total virtual time: {meta['total_time'] * 1e3:.3f} ms")
    counts: dict = {}
    for e in events:
        counts[e["kind"]] = counts.get(e["kind"], 0) + 1
    kinds = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print(f"events: {len(events)} ({kinds or 'none'})", end="")
    dropped = doc.get("dropped", 0)
    print(f", {dropped} dropped at the log bound" if dropped else "")

    # Pass the machine's true PE count and span when the trace carries
    # them: inferring num_pes as max_pe + 1 overstates utilization on a
    # sparse machine where only low-ranked PEs happened to be touched.
    metrics = doc.get("metrics") or sample_metrics(
        events, buckets=args.buckets,
        num_pes=meta.get("num_pes"), t_end=meta.get("total_time"))
    print(metrics_summary(metrics))

    path = critical_path(events)
    if path is None:
        print("critical path: (no completed executions in this trace)")
    else:
        print(path.summary(top=args.top))
        total = meta.get("total_time")
        if total is not None and path.length > total + 1e-12:
            print(f"WARNING: path length exceeds total_time ({total})",
                  file=sys.stderr)

    if args.perfetto:
        n = write_perfetto(args.perfetto, events, meta=meta, metrics=metrics)
        print(f"perfetto: wrote {n} trace entries to {args.perfetto}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
