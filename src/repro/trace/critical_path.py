"""Critical-path analysis over a structured event log.

The *critical path* of a message-driven run is the longest virtual-time
dependency chain from bootstrap to the exit event: each execution depends
on the delivery that queued its message, each delivery on its send, and
each send on the execution (or runtime decision) that emitted it.  Its
length is the run's inherent sequential span — when the measured
``total_time`` plateaus above ``critical path / P``, the program is
dependency-bound, not resource-bound, which is the number that actually
explains the speedup plateaus in the T-series tables.

The analyzer is a pure function of the event records (live
:class:`~repro.trace.events.EventLog` objects or the dicts loaded back
from a ``*.run.json``), so its output is identical whether the run
executed inline, in a pool worker, or was replayed from the result
cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["PathStep", "CriticalPath", "critical_path"]


@dataclass(frozen=True)
class PathStep:
    """One event on the critical path (bootstrap-to-exit order).

    ``dt`` is the virtual time from this event to the next step — the
    amount of the path's length this step accounts for.
    """

    eid: int
    kind: str
    t: float
    pe: int
    uid: Optional[int]
    name: Optional[str]
    dt: float


@dataclass
class CriticalPath:
    """The longest dependency chain of one run, with time attribution."""

    steps: List[PathStep]
    length: float                 # end_time - start_time
    start_time: float
    end_time: float
    exec_time: float              # time inside entry-method executions
    transit_time: float           # network time between send and deliver
    wait_time: float              # queueing time between deliver and begin
    other_time: float             # runtime decisions (QD waves, LB, faults)
    #: Per-entry-method share of ``exec_time``, largest first.
    attribution: Dict[str, float] = field(default_factory=dict)
    #: True when a parent link left the log (bounded log / filtered kinds).
    truncated: bool = False

    @property
    def hops(self) -> int:
        """Message legs (deliveries) on the path."""
        return sum(1 for s in self.steps if s.kind == "deliver")

    def summary(self, top: int = 8) -> str:
        """Human-readable block for the CLI and bench reports."""
        ms = 1e3
        lines = [
            f"critical path: {self.length * ms:.3f} ms "
            f"({self.start_time * ms:.3f} -> {self.end_time * ms:.3f} ms, "
            f"{len(self.steps)} events, {self.hops} message hops"
            f"{', TRUNCATED' if self.truncated else ''})",
            f"  executing : {self.exec_time * ms:10.3f} ms",
            f"  in transit: {self.transit_time * ms:10.3f} ms",
            f"  queued    : {self.wait_time * ms:10.3f} ms",
        ]
        if self.other_time > 0:
            lines.append(f"  runtime   : {self.other_time * ms:10.3f} ms")
        ranked = sorted(self.attribution.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        if ranked:
            lines.append("  by entry method:")
            for name, t in ranked[:top]:
                share = (t / self.exec_time * 100) if self.exec_time > 0 else 0.0
                lines.append(f"    {name:<24s} {t * ms:10.3f} ms ({share:5.1f}%)")
            if len(ranked) > top:
                lines.append(f"    ... and {len(ranked) - top} more")
        return "\n".join(lines)


def _as_dict(record: Any) -> Dict[str, Any]:
    return record if isinstance(record, dict) else record.as_dict()


def critical_path(records: Sequence[Any]) -> Optional[CriticalPath]:
    """Walk parent links from the exit event back to bootstrap.

    ``records`` is a sequence of event dicts (or :class:`Event` objects).
    Returns ``None`` when the log holds no completed execution to anchor
    the walk (e.g. a send/deliver-only filtered trace).
    """
    events = [_as_dict(r) for r in records]
    by_eid: Dict[int, Dict[str, Any]] = {e["eid"]: e for e in events}

    # Terminal: the exec_end flagged as the exit, else the latest one.
    terminal = None
    latest = None
    for e in events:
        if e["kind"] != "exec_end":
            continue
        info = e.get("info")
        if info and info.get("exit"):
            terminal = e
        if latest is None or (e["t"], e["eid"]) > (latest["t"], latest["eid"]):
            latest = e
    if terminal is None:
        terminal = latest
    if terminal is None:
        return None

    chain: List[Dict[str, Any]] = []
    seen = set()
    truncated = False
    cur: Optional[Dict[str, Any]] = terminal
    while cur is not None:
        eid = cur["eid"]
        if eid in seen:  # defensive: parent links are acyclic by design
            truncated = True
            break
        seen.add(eid)
        chain.append(cur)
        parent = cur.get("parent")
        if parent is None:
            break
        nxt = by_eid.get(parent)
        if nxt is None:
            # The parent was dropped (bounded log) or filtered out.
            truncated = True
            break
        cur = nxt
    chain.reverse()

    exec_time = transit = wait = other = 0.0
    attribution: Dict[str, float] = {}
    steps: List[PathStep] = []
    for i, e in enumerate(chain):
        dt = max(0.0, chain[i + 1]["t"] - e["t"]) if i + 1 < len(chain) else 0.0
        kind = e["kind"]
        if kind == "exec_begin":
            exec_time += dt
            name = e.get("name") or "?"
            attribution[name] = attribution.get(name, 0.0) + dt
        elif kind == "send":
            transit += dt
        elif kind == "deliver":
            wait += dt
        else:
            other += dt
        steps.append(PathStep(
            eid=e["eid"], kind=kind, t=e["t"], pe=e["pe"],
            uid=e.get("uid"), name=e.get("name"), dt=dt,
        ))

    start_time = chain[0]["t"]
    end_time = chain[-1]["t"]
    return CriticalPath(
        steps=steps,
        length=max(0.0, end_time - start_time),
        start_time=start_time,
        end_time=end_time,
        exec_time=exec_time,
        transit_time=transit,
        wait_time=wait,
        other_time=other,
        attribution=attribution,
        truncated=truncated,
    )
