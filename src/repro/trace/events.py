"""Structured event log — the Projections-class tracing substrate.

When a kernel is created with ``trace_events=...`` it records one
:class:`Event` per interesting runtime occurrence:

======================  =====================================================
kind                    meaning (``pe`` column)
======================  =====================================================
``send``                an envelope entered the network (source PE)
``deliver``             an envelope reached its destination pool (dest PE)
``exec_begin``          an entry-method execution started (executing PE)
``exec_end``            that execution completed; ``dur`` is its length
``idle_gap``            the PE was idle between two executions (``dur`` gap)
``lb``                  a load-balancer decision (place/forward/steal/donate)
``qd``                  a quiescence-detection wave started / detection fired
``fault``               a fault-layer perturbation (drop/delay/dup/retry/...)
======================  =====================================================

Every event carries the virtual time ``t``, the PE it happened on, the
envelope ``uid`` it concerns (when any) and a ``parent`` event id, so the
message dependency chains of a run are reconstructible: an execution's
parent is the delivery that queued its message, a delivery's parent is
the send that launched it, and a send's parent is the execution (or
runtime decision) that emitted it.  The critical-path analyzer
(:mod:`repro.trace.critical_path`) and the Perfetto exporter
(:mod:`repro.trace.perfetto`) are both pure functions of this log.

The log is **bounded** (``max_events``): once full, further events are
counted in ``dropped`` instead of appended, and their *parent* id is
propagated in their place so surviving chains telescope through the
dropped tail instead of breaking.  Kind filtering degrades the same way:
a filtered-out kind still forwards its parent through the causal maps.

Recording is inert-when-off: the kernel pays exactly one ``is None``
check per hook site when no log is installed (the same pattern the fault
layer uses), which is what keeps the tracing-off golden traces
bit-identical and the throughput guards green.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Union

from repro.util.errors import ConfigurationError

__all__ = ["EVENT_KINDS", "Event", "EventLog", "normalize_kinds"]

#: Every recordable event kind, in schema order.
EVENT_KINDS = (
    "send",
    "deliver",
    "exec_begin",
    "exec_end",
    "idle_gap",
    "lb",
    "qd",
    "fault",
)

#: Default log bound: ~2M events covers every paper-scale run while keeping
#: a runaway trace under a few hundred MB of host memory.
DEFAULT_MAX_EVENTS = 2_000_000

# Envelope kind tag for seeds (avoids importing repro.core.messages here).
_SEED_KIND = 1
_SVC_KIND = 3


class Event:
    """One recorded runtime occurrence.  ``eid`` equals its log index."""

    __slots__ = ("eid", "kind", "t", "pe", "uid", "parent", "name", "dur",
                 "info")

    def __init__(self, eid, kind, t, pe, uid, parent, name, dur, info):
        self.eid = eid
        self.kind = kind
        self.t = t
        self.pe = pe
        self.uid = uid
        self.parent = parent
        self.name = name
        self.dur = dur
        self.info = info

    def as_dict(self) -> Dict[str, Any]:
        return {
            "eid": self.eid,
            "kind": self.kind,
            "t": self.t,
            "pe": self.pe,
            "uid": self.uid,
            "parent": self.parent,
            "name": self.name,
            "dur": self.dur,
            "info": self.info,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Event(#{self.eid} {self.kind} t={self.t:.6f} pe={self.pe}"
                f" uid={self.uid} parent={self.parent} name={self.name!r})")


def normalize_kinds(kinds: Union[bool, str, Iterable[str], None]) -> tuple:
    """Canonicalise a kind selection to a sorted tuple of valid kinds."""
    if kinds is None or kinds is True or kinds == "all":
        return tuple(EVENT_KINDS)
    if isinstance(kinds, str):
        kinds = [k.strip() for k in kinds.split(",") if k.strip()]
    selected = []
    for kind in kinds:
        if kind == "all":
            return tuple(EVENT_KINDS)
        if kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown trace event kind {kind!r}; "
                f"options: {', '.join(EVENT_KINDS)} (or 'all')"
            )
        if kind not in selected:
            selected.append(kind)
    return tuple(sorted(selected))


class EventLog:
    """Bounded, kind-filtered recorder of one kernel run's events.

    The kernel (and the services riding on it) call the ``msg_send`` /
    ``msg_deliver`` / ``exec_begin`` / ``exec_end`` / ``record`` hooks;
    everything else — export, analysis, sampling — happens after the run
    on :meth:`as_records`.

    ``ctx`` is the *causal cursor*: the event id that parents the next
    send.  The kernel sets it to the current execution's ``exec_begin``
    for the duration of that execution (including its outbox flush), and
    runtime decisions (seed forwarding, QD waves, buffered-send flushes)
    override it around their own deliveries.  Outside any of those
    windows it is ``None`` and sends root a fresh chain.
    """

    def __init__(
        self,
        kinds: Union[bool, str, Iterable[str], None] = True,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        if max_events < 1:
            raise ConfigurationError("max_events must be >= 1")
        self.kinds = normalize_kinds(kinds)
        self.max_events = max_events
        self.events: List[Event] = []
        self.dropped = 0
        self.ctx: Optional[int] = None
        # uid -> eid of the (latest) send / deliver concerning it.  These
        # never pop: fault retransmissions and late acks look up the
        # original send arbitrarily far after delivery.
        self._send_eid: Dict[int, Optional[int]] = {}
        self._deliver_eid: Dict[int, Optional[int]] = {}
        kindset = set(self.kinds)
        self._rec_send = "send" in kindset
        self._rec_deliver = "deliver" in kindset
        self._rec_begin = "exec_begin" in kindset
        self._rec_end = "exec_end" in kindset
        self._rec_idle = "idle_gap" in kindset
        self._rec_lb = "lb" in kindset
        self._rec_qd = "qd" in kindset
        self._rec_fault = "fault" in kindset

    # -------------------------------------------------------------- recording
    def _append(self, kind, t, pe, uid, parent, name, dur, info):
        """Append one event; when full, count it and pass the parent on."""
        events = self.events
        if len(events) >= self.max_events:
            self.dropped += 1
            return parent
        eid = len(events)
        events.append(Event(eid, kind, t, pe, uid, parent, name, dur, info))
        return eid

    def msg_send(self, t: float, env) -> None:
        """An envelope entered the network (kernel ``_deliver``)."""
        uid = env.uid
        if self._rec_send:
            self._send_eid[uid] = self._append(
                "send", t, env.src_pe, uid, self.ctx, env.entry, None,
                {"dst": env.dst_pe, "nbytes": env.nbytes,
                 "mkind": env.kind_name()},
            )
        else:
            # Filtered: forward the causal cursor so downstream events
            # still chain through to the sending execution.
            self._send_eid[uid] = self.ctx

    def msg_deliver(self, t: float, env) -> None:
        """An envelope reached its destination pool (kernel ``_arrive``)."""
        uid = env.uid
        parent = self._send_eid.get(uid)
        if self._rec_deliver:
            self._deliver_eid[uid] = self._append(
                "deliver", t, env.dst_pe, uid, parent, env.entry, None, None
            )
        else:
            self._deliver_eid[uid] = parent

    def exec_begin(self, start: float, pe: int, env, prev_end: float):
        """An execution started; returns the token ``exec_end`` needs."""
        if self._rec_idle and start > prev_end:
            self._append("idle_gap", prev_end, pe, None, None, None,
                         start - prev_end, None)
        uid = env.uid
        parent = self._deliver_eid.get(uid)
        if env.kind == _SEED_KIND and env.chare_cls is not None:
            name = env.chare_cls.__name__
        elif env.kind == _SVC_KIND:
            name = f"{env.service}:{env.entry}"
        else:
            name = env.entry
        if self._rec_begin:
            eid = self._append("exec_begin", start, pe, uid, parent, name,
                               None, None)
        else:
            eid = parent
        self.ctx = eid
        return eid

    def exec_end(self, end: float, pe: int, env, duration: float,
                 begin_eid, exited: bool) -> None:
        """The execution identified by ``begin_eid`` completed."""
        if self._rec_end:
            self._append("exec_end", end, pe, env.uid, begin_eid, env.entry,
                         duration, {"exit": True} if exited else None)
        self.ctx = None

    def record(
        self,
        kind: str,
        t: float,
        pe: int,
        name: Optional[str] = None,
        uid: Optional[int] = None,
        parent: Optional[int] = None,
        dur: Optional[float] = None,
        info: Optional[dict] = None,
    ):
        """Record a control-plane event (``lb`` / ``qd`` / ``fault``).

        Returns the new event id (or the forwarded parent when the kind
        is filtered out or the log is full).
        """
        if kind == "lb":
            enabled = self._rec_lb
        elif kind == "qd":
            enabled = self._rec_qd
        elif kind == "fault":
            enabled = self._rec_fault
        else:
            raise ConfigurationError(
                f"record() is for control-plane kinds, not {kind!r}"
            )
        if not enabled:
            return parent
        return self._append(kind, t, pe, uid, parent, name, dur, info)

    # ------------------------------------------------------------- chain maps
    def send_parent(self, uid: int) -> Optional[int]:
        """Event id of the send concerning ``uid`` (fault layer hook)."""
        return self._send_eid.get(uid)

    def deliver_parent(self, uid: int) -> Optional[int]:
        """Event id of the delivery concerning ``uid`` (forwarding hook)."""
        return self._deliver_eid.get(uid)

    # -------------------------------------------------------------- accessors
    def __len__(self) -> int:
        return len(self.events)

    def counts(self) -> Dict[str, int]:
        """Event counts by kind (every selected kind is present)."""
        out = {kind: 0 for kind in self.kinds}
        for event in self.events:
            out[event.kind] += 1
        return out

    def as_records(self) -> List[Dict[str, Any]]:
        """Plain-dict projection (picklable, JSON-ready), in event order."""
        return [event.as_dict() for event in self.events]
