"""Chrome trace-event / Perfetto JSON export.

Converts an event-log record list into the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by ``ui.perfetto.dev`` and ``chrome://tracing``:

* one **process per PE** (``pid = pe``), with three threads: ``exec``
  (entry-method slices), ``idle`` (idle-gap slices) and ``events``
  (LB / QD / fault instants);
* every execution is a complete ``"X"`` slice (``ts``/``dur`` in
  microseconds of virtual time);
* every message is a **flow** (``"s"`` at the send, ``"f"`` at the
  consuming execution), keyed by envelope uid, so Perfetto draws the
  cross-PE arrows that make message-driven runs legible;
* optional time-series rows from :mod:`repro.metrics` become ``"C"``
  counter tracks.

The exporter is a pure function of the records; times are virtual
seconds scaled to integral-friendly microseconds.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = ["to_perfetto", "write_perfetto"]

_US = 1e6  # virtual seconds -> trace microseconds

#: tid layout inside each per-PE process.
TID_EXEC = 0
TID_IDLE = 1
TID_EVENTS = 2


def _as_dict(record: Any) -> Dict[str, Any]:
    return record if isinstance(record, dict) else record.as_dict()


def to_perfetto(
    records: Sequence[Any],
    meta: Optional[Dict[str, Any]] = None,
    metrics: Optional[Iterable[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Build the trace-event JSON document for one run's records."""
    events = [_as_dict(r) for r in records]
    by_eid = {e["eid"]: e for e in events}
    trace: List[Dict[str, Any]] = []
    pids = set()

    # First consuming execution per uid: flow arrows should land on the
    # execution slice, not on the (possibly queued) delivery instant.
    begin_by_uid: Dict[int, Dict[str, Any]] = {}
    for e in events:
        if e["kind"] == "exec_begin" and e.get("uid") is not None:
            begin_by_uid.setdefault(e["uid"], e)

    for e in events:
        kind = e["kind"]
        pe = e["pe"]
        pids.add(pe)
        if kind == "exec_end":
            begin = by_eid.get(e.get("parent"))
            if begin is not None and begin["kind"] == "exec_begin":
                name = begin.get("name") or e.get("name") or "?"
                start = begin["t"]
            else:  # begin filtered out: reconstruct from the end event
                name = e.get("name") or "?"
                start = e["t"] - (e.get("dur") or 0.0)
            args: Dict[str, Any] = {"eid": e["eid"]}
            if e.get("uid") is not None:
                args["uid"] = e["uid"]
            if e.get("info"):
                args.update(e["info"])
            trace.append({
                "name": name, "cat": "exec", "ph": "X",
                "pid": pe, "tid": TID_EXEC,
                "ts": start * _US, "dur": (e.get("dur") or 0.0) * _US,
                "args": args,
            })
        elif kind == "idle_gap":
            trace.append({
                "name": "idle", "cat": "idle", "ph": "X",
                "pid": pe, "tid": TID_IDLE,
                "ts": e["t"] * _US, "dur": (e.get("dur") or 0.0) * _US,
                "args": {"eid": e["eid"]},
            })
        elif kind == "deliver":
            send = by_eid.get(e.get("parent"))
            if send is None or send["kind"] != "send":
                continue  # send filtered out: no flow to draw
            uid = e.get("uid")
            target = begin_by_uid.get(uid, e)
            pids.add(send["pe"])
            pids.add(target["pe"])
            trace.append({
                "name": send.get("name") or "msg", "cat": "msg", "ph": "s",
                "id": uid, "pid": send["pe"], "tid": TID_EXEC,
                "ts": send["t"] * _US,
            })
            trace.append({
                "name": send.get("name") or "msg", "cat": "msg", "ph": "f",
                "bp": "e", "id": uid, "pid": target["pe"], "tid": TID_EXEC,
                "ts": target["t"] * _US,
            })
        elif kind in ("lb", "qd", "fault"):
            args = {"eid": e["eid"]}
            if e.get("uid") is not None:
                args["uid"] = e["uid"]
            if e.get("info"):
                args.update(e["info"])
            trace.append({
                "name": f"{kind}:{e.get('name') or '?'}", "cat": kind,
                "ph": "i", "s": "t", "pid": pe, "tid": TID_EVENTS,
                "ts": e["t"] * _US, "args": args,
            })
        # send / exec_begin events carry no standalone track entry: sends
        # are drawn as flow starts, begins as the slice built from the end.

    # Counter tracks from the metrics sampler (attached to PE 0's process).
    if metrics:
        pids.add(0)
        for row in metrics:
            ts = row["t0"] * _US
            trace.append({
                "name": "messages in flight", "ph": "C", "pid": 0,
                "ts": ts, "args": {"msgs": row.get("in_flight_max", 0)},
            })
            trace.append({
                "name": "bytes on wire", "ph": "C", "pid": 0,
                "ts": ts, "args": {"bytes": row.get("bytes_on_wire_max", 0)},
            })
            trace.append({
                "name": "utilization", "ph": "C", "pid": 0,
                "ts": ts, "args": {"util": row.get("util", 0.0)},
            })
            trace.append({
                "name": "pool depth high-water", "ph": "C", "pid": 0,
                "ts": ts, "args": {"depth": row.get("pool_max", 0)},
            })

    # Process/thread naming metadata, stable order for reproducible files.
    names = []
    for pid in sorted(pids):
        names.append({
            "name": "process_name", "ph": "M", "pid": pid, "ts": 0,
            "args": {"name": f"PE {pid}"},
        })
        names.append({
            "name": "process_sort_index", "ph": "M", "pid": pid, "ts": 0,
            "args": {"sort_index": pid},
        })
        for tid, label in ((TID_EXEC, "exec"), (TID_IDLE, "idle"),
                           (TID_EVENTS, "events")):
            names.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "ts": 0, "args": {"name": label},
            })

    other: Dict[str, Any] = {"format": "repro-perfetto-v1"}
    if meta:
        other.update({str(k): v for k, v in meta.items()})
    return {
        "traceEvents": names + trace,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_perfetto(
    path: str,
    records: Sequence[Any],
    meta: Optional[Dict[str, Any]] = None,
    metrics: Optional[Iterable[Dict[str, Any]]] = None,
) -> int:
    """Write the Perfetto JSON for ``records`` to ``path``.

    Returns the number of trace entries written (incl. metadata).
    """
    doc = to_perfetto(records, meta=meta, metrics=metrics)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])
