"""Run statistics.

The simulator keeps cheap counters on every PE while it runs (the
"projections-lite" view); :class:`TraceReport` snapshots them at the end of
a run into a plain-data structure the benchmark harness and tests consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["PERow", "TraceReport"]


@dataclass(frozen=True)
class PERow:
    """Counters for one PE."""

    pe: int
    busy_time: float
    utilization: float
    msgs_executed: int
    seeds_executed: int
    system_executed: int
    msgs_sent: int
    bytes_sent: int
    seeds_created: int
    charged_units: float
    max_pool: int
    steal_attempts: int
    steals_satisfied: int
    # Fault-injection counters (zero unless a repro.faults layer was
    # installed): perturbed deliveries toward this PE, retransmissions it
    # originated, and transient stalls it suffered.
    msgs_dropped: int = 0
    msgs_delayed: int = 0
    msgs_duplicated: int = 0
    dups_suppressed: int = 0
    retries: int = 0
    stalls: int = 0
    stall_time: float = 0.0
    # Idle-structure aggregates (derived from the always-on counters; no
    # timeline required): total idle time over the run and the longest
    # contiguous idle window between two executions.
    idle_time: float = 0.0
    largest_idle_gap: float = 0.0


@dataclass
class TraceReport:
    """Aggregated statistics of one kernel run."""

    machine: str
    num_pes: int
    queueing: str
    balancer: str
    total_time: float
    pe_rows: List[PERow] = field(default_factory=list)
    counted_sent: int = 0
    counted_processed: int = 0
    total_message_hops: int = 0
    qd_waves: int = 0
    qd_detected_at: float | None = None
    mono_updates_sent: int = 0
    mono_updates_applied: int = 0
    lb_control_msgs: int = 0
    lb_seeds_remote: int = 0
    # Fault-injection aggregates (repro.faults); faults_enabled is False
    # (and every counter zero) when no fault layer was installed.
    faults_enabled: bool = False
    fault_config: str = ""
    msgs_dropped: int = 0
    msgs_delayed: int = 0
    msgs_duplicated: int = 0
    dups_suppressed: int = 0
    retries: int = 0
    acks_sent: int = 0
    acks_lost: int = 0
    stalls: int = 0

    # ----------------------------------------------------------------- builders
    @classmethod
    def from_kernel(cls, kernel) -> "TraceReport":
        t = kernel.now
        rows = []
        plane = kernel.pes
        if kernel.sparse:
            # Sparse kernels report the *touched* PEs only: a P=10⁶ run
            # with k active PEs emits k rows, and the per-row aggregates
            # below (mean utilization, imbalance, idle) are over the
            # active set — the meaningful denominator at that scale.
            pe_states = plane.states()
        else:
            # Dense view: materializing any never-touched stragglers (an
            # early-exit run can leave some) yields all-zero counters,
            # byte-identical to the historical eager rows.
            pe_states = [plane[i] for i in range(kernel.num_pes)]
        for pe in pe_states:
            rows.append(
                PERow(
                    pe=pe.index,
                    busy_time=pe.busy_time,
                    utilization=(pe.busy_time / t) if t > 0 else 0.0,
                    msgs_executed=pe.msgs_executed,
                    seeds_executed=pe.seeds_executed,
                    system_executed=pe.system_executed,
                    msgs_sent=pe.msgs_sent,
                    bytes_sent=pe.bytes_sent,
                    seeds_created=pe.seeds_created,
                    charged_units=pe.charged_units,
                    max_pool=pe.max_queued,
                    steal_attempts=pe.steal_attempts,
                    steals_satisfied=pe.steals_satisfied,
                    msgs_dropped=pe.msgs_dropped,
                    msgs_delayed=pe.msgs_delayed,
                    msgs_duplicated=pe.msgs_duplicated,
                    dups_suppressed=pe.dups_suppressed,
                    retries=pe.retries,
                    stalls=pe.stalls,
                    stall_time=pe.stall_time,
                    idle_time=max(0.0, t - pe.busy_time),
                    largest_idle_gap=pe.largest_idle_gap,
                )
            )
        faults = getattr(kernel, "faults", None)
        fault_kwargs = {}
        if faults is not None:
            fault_kwargs = dict(
                faults_enabled=True,
                fault_config=faults.config.describe(),
                msgs_dropped=faults.msgs_dropped,
                msgs_delayed=faults.msgs_delayed,
                msgs_duplicated=faults.msgs_duplicated,
                dups_suppressed=faults.dups_suppressed,
                retries=faults.retries,
                acks_sent=faults.acks_sent,
                acks_lost=faults.acks_lost,
                stalls=faults.stalls,
            )
        return cls(
            machine=kernel.machine.name,
            num_pes=kernel.num_pes,
            queueing=kernel.queueing,
            balancer=getattr(kernel.balancer, "strategy_name", "?"),
            total_time=t,
            pe_rows=rows,
            counted_sent=sum(s.counted_sent for s in pe_states),
            counted_processed=sum(s.counted_processed for s in pe_states),
            total_message_hops=kernel.total_message_hops,
            qd_waves=kernel.qd.waves_run,
            qd_detected_at=kernel.qd.detected_at,
            mono_updates_sent=kernel.sharing.mono_updates_sent,
            mono_updates_applied=kernel.sharing.mono_updates_applied,
            lb_control_msgs=kernel.balancer.control_msgs,
            lb_seeds_remote=kernel.balancer.seeds_placed_remote,
            **fault_kwargs,
        )

    # ---------------------------------------------------------------- accessors
    @property
    def total_msgs_executed(self) -> int:
        return sum(r.msgs_executed + r.seeds_executed for r in self.pe_rows)

    @property
    def total_system_executed(self) -> int:
        return sum(r.system_executed for r in self.pe_rows)

    @property
    def total_bytes_sent(self) -> int:
        return sum(r.bytes_sent for r in self.pe_rows)

    @property
    def total_charged(self) -> float:
        return sum(r.charged_units for r in self.pe_rows)

    @property
    def mean_utilization(self) -> float:
        if not self.pe_rows:
            return 0.0
        return sum(r.utilization for r in self.pe_rows) / len(self.pe_rows)

    @property
    def total_idle_time(self) -> float:
        """Sum of per-PE idle time (P * total_time - total busy time)."""
        return sum(r.idle_time for r in self.pe_rows)

    @property
    def max_idle_gap(self) -> float:
        """Longest contiguous idle window on any PE."""
        return max((r.largest_idle_gap for r in self.pe_rows), default=0.0)

    @property
    def pool_high_water(self) -> int:
        """Deepest message pool any PE reached during the run."""
        return max((r.max_pool for r in self.pe_rows), default=0)

    @property
    def load_imbalance(self) -> float:
        """max(busy) / mean(busy) — 1.0 is perfectly balanced."""
        busys = [r.busy_time for r in self.pe_rows]
        mean = sum(busys) / len(busys) if busys else 0.0
        return (max(busys) / mean) if mean > 0 else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "machine": self.machine,
            "num_pes": self.num_pes,
            "queueing": self.queueing,
            "balancer": self.balancer,
            "total_time": self.total_time,
            "total_msgs": self.total_msgs_executed,
            "system_msgs": self.total_system_executed,
            "bytes_sent": self.total_bytes_sent,
            "charged": self.total_charged,
            "mean_util": self.mean_utilization,
            "imbalance": self.load_imbalance,
            "idle_time": self.total_idle_time,
            "max_idle_gap": self.max_idle_gap,
            "pool_high_water": self.pool_high_water,
            "qd_waves": self.qd_waves,
            "lb_control": self.lb_control_msgs,
            "lb_remote_seeds": self.lb_seeds_remote,
            "faults": {
                "enabled": self.faults_enabled,
                "config": self.fault_config,
                "dropped": self.msgs_dropped,
                "delayed": self.msgs_delayed,
                "duplicated": self.msgs_duplicated,
                "dups_suppressed": self.dups_suppressed,
                "retries": self.retries,
                "acks_sent": self.acks_sent,
                "acks_lost": self.acks_lost,
                "stalls": self.stalls,
            },
        }

    def summary(self) -> str:
        """One human-readable block (used by examples and bench output)."""
        d = self.as_dict()
        lines = [
            f"machine={d['machine']} P={self.num_pes} "
            f"queueing={d['queueing']} balancer={d['balancer']}",
            f"  virtual time      : {d['total_time'] * 1e3:10.3f} ms",
            f"  app msgs executed : {d['total_msgs']:10d}",
            f"  system msgs       : {d['system_msgs']:10d}",
            f"  bytes sent        : {d['bytes_sent']:10d}",
            f"  mean utilization  : {d['mean_util'] * 100:9.1f} %",
            f"  load imbalance    : {d['imbalance']:10.3f}",
            f"  largest idle gap  : {d['max_idle_gap'] * 1e3:10.3f} ms",
            f"  pool high-water   : {d['pool_high_water']:10d}",
        ]
        if self.faults_enabled:
            lines.append(
                f"  faults [{self.fault_config}]: "
                f"dropped={self.msgs_dropped} retries={self.retries} "
                f"delayed={self.msgs_delayed} dup={self.msgs_duplicated} "
                f"deduped={self.dups_suppressed} stalls={self.stalls}"
            )
        return "\n".join(lines)
