"""Projections-style execution timeline.

When a kernel is created with ``timeline=True`` it records one interval
per entry-method execution: ``(pe, start, duration, kind, label)``.  The
:class:`Timeline` offers the analyses the Charm projections tool made
famous at table scale:

* per-PE busy/idle interval lists and the largest idle gap,
* a phase profile (time-bucketed utilization),
* a coarse ASCII Gantt rendering for terminals.

Recording costs one tuple per execution, so it is off by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["Interval", "Timeline"]


@dataclass(frozen=True)
class Interval:
    """One entry-method execution on one PE."""

    pe: int
    start: float
    duration: float
    kind: str       # "app" | "seed" | "boc" | "svc"
    label: str      # entry name or chare class name

    @property
    def end(self) -> float:
        return self.start + self.duration


class Timeline:
    """Recorder + analyses over execution intervals."""

    def __init__(self) -> None:
        self._intervals: List[Interval] = []

    # ------------------------------------------------------------------ record
    def record(self, pe: int, start: float, duration: float, env) -> None:
        """Append one execution (called by the kernel when enabled)."""
        if env.kind == 1 and env.chare_cls is not None:  # Kind.SEED
            label = env.chare_cls.__name__
        else:
            label = env.entry
        self._intervals.append(
            Interval(pe, start, duration, env.kind_name(), label)
        )

    # ---------------------------------------------------------------- accessors
    @property
    def intervals(self) -> List[Interval]:
        return self._intervals

    def for_pe(self, pe: int) -> List[Interval]:
        return [iv for iv in self._intervals if iv.pe == pe]

    def span(self) -> Tuple[float, float]:
        """(first start, last end) over all intervals; (0, 0) if empty."""
        if not self._intervals:
            return (0.0, 0.0)
        return (
            min(iv.start for iv in self._intervals),
            max(iv.end for iv in self._intervals),
        )

    # ----------------------------------------------------------------- analyses
    def idle_gaps(self, pe: int) -> List[Tuple[float, float]]:
        """Idle windows between consecutive executions on ``pe``."""
        ivs = sorted(self.for_pe(pe), key=lambda iv: iv.start)
        gaps = []
        for a, b in zip(ivs, ivs[1:]):
            if b.start > a.end + 1e-15:
                gaps.append((a.end, b.start))
        return gaps

    def largest_idle_gap(self, pe: int) -> float:
        gaps = self.idle_gaps(pe)
        return max((b - a for a, b in gaps), default=0.0)

    def utilization_profile(
        self, buckets: int = 20, kinds: Optional[set] = None
    ) -> List[float]:
        """Fraction of PE-time busy in each of ``buckets`` equal windows."""
        lo, hi = self.span()
        if hi <= lo:
            return [0.0] * buckets
        width = (hi - lo) / buckets
        num_pes = max((iv.pe for iv in self._intervals), default=0) + 1
        busy = [0.0] * buckets
        for iv in self._intervals:
            if kinds is not None and iv.kind not in kinds:
                continue
            # Clamp both endpoints into range: an interval starting (or a
            # zero-duration interval sitting) exactly at ``hi`` computes
            # bucket == buckets and would otherwise be silently dropped.
            b0 = min(int((iv.start - lo) / width), buckets - 1)
            b1 = min(int((iv.end - lo) / width), buckets - 1)
            for b in range(b0, b1 + 1):
                w_lo = lo + b * width
                w_hi = w_lo + width
                busy[b] += max(0.0, min(iv.end, w_hi) - max(iv.start, w_lo))
        return [min(1.0, x / (width * num_pes)) for x in busy]

    def by_label(self) -> Dict[str, float]:
        """Total busy time attributed to each entry/chare label."""
        out: Dict[str, float] = {}
        for iv in self._intervals:
            out[iv.label] = out.get(iv.label, 0.0) + iv.duration
        return out

    def as_records(self) -> List[dict]:
        """Plain-dict export (JSON-ready), one record per execution."""
        return [
            {
                "pe": iv.pe,
                "start": iv.start,
                "duration": iv.duration,
                "kind": iv.kind,
                "label": iv.label,
            }
            for iv in self._intervals
        ]

    def dump_json(self, path: str) -> int:
        """Write the timeline to ``path`` as JSON; returns record count."""
        import json

        records = self.as_records()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(records, fh)
        return len(records)

    # ---------------------------------------------------------------- rendering
    def render(self, width: int = 72, pes: Optional[List[int]] = None) -> str:
        """ASCII Gantt: one row per PE, '#' busy / '.' idle per time cell.

        A cell is busy if any execution overlaps it.  System-only cells
        render as '+', mixed cells as '#'.
        """
        if not self._intervals:
            return "(empty timeline)"
        lo, hi = self.span()
        num_pes = max(iv.pe for iv in self._intervals) + 1
        rows = pes if pes is not None else list(range(num_pes))
        if hi <= lo:
            # Degenerate span: every recorded execution is instantaneous and
            # coincident (a run of pure zero-cost events).  Render a single
            # column of marks at that instant rather than claiming the
            # timeline is empty.
            marks = {pe: "." for pe in rows}
            for iv in self._intervals:
                if iv.pe not in marks:
                    continue
                mark = "+" if iv.kind == "svc" else "#"
                cur = marks[iv.pe]
                marks[iv.pe] = "#" if (cur == "#" or mark == "#") else "+"
            lines = [f"timeline {lo * 1e3:.3f} ms (zero span, "
                     f"{len(self._intervals)} instantaneous executions)"]
            for pe in rows:
                lines.append(f"PE{pe:3d} |{marks[pe]}|")
            return "\n".join(lines)
        cell = (hi - lo) / width
        grid = {pe: [" "] * width for pe in rows}
        for iv in self._intervals:
            if iv.pe not in grid:
                continue
            c0 = min(width - 1, int((iv.start - lo) / cell))
            c1 = min(width - 1, int((iv.end - lo) / cell))
            mark = "+" if iv.kind == "svc" else "#"
            for c in range(c0, c1 + 1):
                cur = grid[iv.pe][c]
                grid[iv.pe][c] = "#" if (cur == "#" or mark == "#") else "+"
        lines = [f"timeline {lo * 1e3:.3f}..{hi * 1e3:.3f} ms"]
        for pe in rows:
            body = "".join(ch if ch != " " else "." for ch in grid[pe])
            lines.append(f"PE{pe:3d} |{body}|")
        return "\n".join(lines)
