"""Utility layer: errors, deterministic RNG streams, priorities, sizing.

These are the leaf dependencies of every other subpackage.  Nothing in
:mod:`repro.util` imports from elsewhere in the package.
"""

from repro.util.errors import (
    CharmError,
    SchedulingError,
    TopologyError,
    RoutingError,
    QuiescenceError,
    SharingError,
    ConfigurationError,
)
from repro.util.rng import RngStream, derive_seed
from repro.util.priority import BitVectorPriority, normalize_priority
from repro.util.sizing import payload_nbytes

__all__ = [
    "CharmError",
    "SchedulingError",
    "TopologyError",
    "RoutingError",
    "QuiescenceError",
    "SharingError",
    "ConfigurationError",
    "RngStream",
    "derive_seed",
    "BitVectorPriority",
    "normalize_priority",
    "payload_nbytes",
]
