"""Exception hierarchy for the Chare Kernel reproduction.

All library errors derive from :class:`CharmError` so callers can catch one
type.  Subclasses mark which subsystem raised.
"""

from __future__ import annotations


class CharmError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ConfigurationError(CharmError):
    """Invalid user-supplied configuration (machine, strategy, app params)."""


class SchedulingError(CharmError):
    """Raised by the DES engine / per-PE scheduler on inconsistent state."""


class TopologyError(CharmError):
    """Invalid topology construction or out-of-range PE index."""


class RoutingError(CharmError):
    """A message could not be routed (bad handle, dead chare, bad PE)."""


class QuiescenceError(CharmError):
    """Quiescence-detection protocol violation (counts went negative, etc.)."""


class SharingError(CharmError):
    """Misuse of an information-sharing abstraction (e.g. double write-once)."""


class FaultError(CharmError):
    """Fault-injection misconfiguration, or the retry safety valve tripped."""
