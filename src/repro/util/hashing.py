"""Stable content hashing for distributed-table key placement.

Python's builtin ``hash`` is salted per process, so table shards would move
between runs; this module provides a deterministic 64-bit hash over the
key vocabulary messages allow (scalars, strings, bytes, tuples of those).
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.util.errors import SharingError

__all__ = ["stable_hash"]


def _feed(h, obj: Any) -> None:
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, bool):
        h.update(b"B1" if obj else b"B0")
    elif isinstance(obj, int):
        h.update(b"I")
        h.update(str(obj).encode())
    elif isinstance(obj, float):
        h.update(b"F")
        h.update(obj.hex().encode())
    elif isinstance(obj, str):
        h.update(b"S")
        h.update(obj.encode("utf-8"))
    elif isinstance(obj, (bytes, bytearray)):
        h.update(b"Y")
        h.update(bytes(obj))
    elif isinstance(obj, tuple):
        h.update(b"T(")
        for x in obj:
            _feed(h, x)
            h.update(b",")
        h.update(b")")
    else:
        raise SharingError(
            f"unhashable table key type {type(obj).__name__!r}; use "
            "scalars, strings, bytes or tuples of those"
        )


def stable_hash(key: Any) -> int:
    """Deterministic 64-bit hash of ``key`` (stable across runs/platforms)."""
    h = hashlib.blake2b(digest_size=8)
    _feed(h, key)
    return int.from_bytes(h.digest(), "little")
