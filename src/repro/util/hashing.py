"""Stable content hashing for distributed-table key placement.

Python's builtin ``hash`` is salted per process, so table shards would move
between runs; this module provides a deterministic 64-bit hash over the
key vocabulary messages allow (scalars, strings, bytes, tuples of those).

The same canonical encoding backs the bench suite's content-addressed
result cache: :func:`stable_digest` turns a canonicalised run descriptor
into a filename-sized hex key, and :func:`source_fingerprint` hashes the
``repro`` package sources so cached rows are invalidated whenever the
simulator's code changes.
"""

from __future__ import annotations

import hashlib
import os
from typing import Any, Optional

from repro.util.errors import SharingError

__all__ = ["stable_hash", "stable_digest", "source_fingerprint"]


def _feed(h, obj: Any) -> None:
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, bool):
        h.update(b"B1" if obj else b"B0")
    elif isinstance(obj, int):
        h.update(b"I")
        h.update(str(obj).encode())
    elif isinstance(obj, float):
        h.update(b"F")
        h.update(obj.hex().encode())
    elif isinstance(obj, str):
        h.update(b"S")
        h.update(obj.encode("utf-8"))
    elif isinstance(obj, (bytes, bytearray)):
        h.update(b"Y")
        h.update(bytes(obj))
    elif isinstance(obj, tuple):
        h.update(b"T(")
        for x in obj:
            _feed(h, x)
            h.update(b",")
        h.update(b")")
    else:
        raise SharingError(
            f"unhashable table key type {type(obj).__name__!r}; use "
            "scalars, strings, bytes or tuples of those"
        )


def stable_hash(key: Any) -> int:
    """Deterministic 64-bit hash of ``key`` (stable across runs/platforms)."""
    h = hashlib.blake2b(digest_size=8)
    _feed(h, key)
    return int.from_bytes(h.digest(), "little")


def stable_digest(key: Any, digest_size: int = 16) -> str:
    """Deterministic hex digest of ``key`` over the same canonical encoding.

    Accepts the :func:`stable_hash` vocabulary (scalars, strings, bytes and
    tuples of those); used as the cache filename for bench run descriptors.
    """
    h = hashlib.blake2b(digest_size=digest_size)
    _feed(h, key)
    return h.hexdigest()


def source_fingerprint(root: Optional[str] = None) -> str:
    """Hex fingerprint of every ``*.py`` file under ``root``.

    ``root`` defaults to the installed ``repro`` package directory, so the
    fingerprint changes whenever any simulator source changes — the cache
    key component that makes stale bench results impossible.  Files are
    fed in sorted relative-path order with length framing, so renames,
    additions and deletions all perturb the digest.
    """
    if root is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
    h = hashlib.blake2b(digest_size=16)
    entries = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(".py"):
                path = os.path.join(dirpath, name)
                entries.append((os.path.relpath(path, root), path))
    for relpath, path in sorted(entries):
        with open(path, "rb") as fh:
            contents = fh.read()
        h.update(relpath.encode("utf-8"))
        h.update(b"\x00")
        h.update(len(contents).to_bytes(8, "little"))
        h.update(contents)
    return h.hexdigest()
