"""Message priorities, including Charm-style bitvector priorities.

The Chare Kernel supports prioritized execution: each message can carry a
priority, and a prioritized queueing strategy delivers smaller priorities
first.  Two kinds are supported, exactly as in Charm:

* **integer priorities** — plain ints; smaller runs first, so a
  branch-and-bound program can use a node's lower bound directly.
* **bitvector priorities** — arbitrary-length bit strings compared
  lexicographically, with the convention that a *prefix* is *higher*
  priority than any of its extensions (``10 < 101``).  These let a tree
  search assign each node a priority encoding its path from the root, which
  makes the global execution order approximate the sequential (depth-first,
  left-to-right) order — the property Charm exploits to tame speculative
  search.

:func:`normalize_priority` maps any user-supplied priority (``None``, int,
``BitVectorPriority``, tuple of bits) onto a key that sorts correctly with
Python tuple comparison, so queue implementations never special-case.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Sequence, Union

from repro.util.errors import ConfigurationError

__all__ = ["BitVectorPriority", "normalize_priority", "PriorityLike"]


@total_ordering
class BitVectorPriority:
    """An immutable bit-string priority with lexicographic order.

    ``BitVectorPriority((1, 0)) < BitVectorPriority((1, 0, 1))`` — a prefix
    beats its extensions, and ``0`` beats ``1`` at the first differing
    position.  The all-empty priority is the highest possible.
    """

    __slots__ = ("_bits",)

    def __init__(self, bits: Iterable[int] = ()) -> None:
        bs = tuple(int(b) for b in bits)
        for b in bs:
            if b not in (0, 1):
                raise ConfigurationError(f"bitvector priority bits must be 0/1, got {b}")
        self._bits = bs

    @property
    def bits(self) -> tuple:
        return self._bits

    def extend(self, *bits: int) -> "BitVectorPriority":
        """Return a child priority: this priority with ``bits`` appended."""
        return BitVectorPriority(self._bits + tuple(bits))

    def child(self, index: int, fanout: int) -> "BitVectorPriority":
        """Priority for the ``index``-th of ``fanout`` children.

        Encodes ``index`` in ``ceil(log2(fanout))`` bits (at least one), so
        earlier siblings sort ahead of later ones and every child sorts
        after its parent.
        """
        if fanout < 1:
            raise ConfigurationError("fanout must be >= 1")
        if not 0 <= index < fanout:
            raise ConfigurationError(f"child index {index} out of range for fanout {fanout}")
        width = max(1, (fanout - 1).bit_length())
        enc = tuple((index >> (width - 1 - i)) & 1 for i in range(width))
        return self.extend(*enc)

    def __len__(self) -> int:
        return len(self._bits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVectorPriority):
            return NotImplemented
        return self._bits == other._bits

    def __lt__(self, other: "BitVectorPriority") -> bool:
        if not isinstance(other, BitVectorPriority):
            return NotImplemented
        return self._bits < other._bits

    def __hash__(self) -> int:
        return hash(self._bits)

    def __repr__(self) -> str:
        return "BitVectorPriority(%s)" % ("".join(map(str, self._bits)) or "''")


PriorityLike = Union[None, int, float, Sequence[int], BitVectorPriority]

# Sort class tags: every normalized key is (class_tag, value) so heterogeneous
# priorities never compare int-to-tuple.  Class 0 = explicit numeric, class 1
# = bitvector, class 2 = unprioritized (runs after all prioritized work, as
# in Charm where prioritized messages bypass the default queue).
_NUMERIC, _BITVEC, _DEFAULT = 0, 1, 2


def normalize_priority(priority: PriorityLike) -> tuple:
    """Map a user-facing priority to a totally ordered sort key.

    Smaller keys are served first.  ``None`` maps to the lowest class so
    unprioritized messages never starve prioritized ones under a
    priority-queue strategy.
    """
    if priority is None:
        return (_DEFAULT, 0)
    if isinstance(priority, BitVectorPriority):
        return (_BITVEC, priority.bits)
    if isinstance(priority, (int, float)):
        return (_NUMERIC, priority)
    if isinstance(priority, (tuple, list)):
        return (_BITVEC, BitVectorPriority(priority).bits)
    raise ConfigurationError(f"unsupported priority type: {type(priority).__name__}")
