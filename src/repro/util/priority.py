"""Message priorities, including Charm-style bitvector priorities.

The Chare Kernel supports prioritized execution: each message can carry a
priority, and a prioritized queueing strategy delivers smaller priorities
first.  Two kinds are supported, exactly as in Charm:

* **integer priorities** — plain ints; smaller runs first, so a
  branch-and-bound program can use a node's lower bound directly.
* **bitvector priorities** — arbitrary-length bit strings compared
  lexicographically, with the convention that a *prefix* is *higher*
  priority than any of its extensions (``10 < 101``).  These let a tree
  search assign each node a priority encoding its path from the root, which
  makes the global execution order approximate the sequential (depth-first,
  left-to-right) order — the property Charm exploits to tame speculative
  search.

:func:`normalize_priority` maps any user-supplied priority (``None``, int,
``BitVectorPriority``, tuple of bits) onto a key that sorts correctly with
Python tuple comparison, so queue implementations never special-case.

Packed keys
-----------

Bit strings are held and compared as **packed integers**, not per-bit
tuples.  A :class:`BitVectorPriority` stores ``(value, length)`` where
``value`` is the bits read MSB-first (``101`` → ``0b101``), so ``extend``/
``child`` are O(appended bits) shift arithmetic, however deep the search
tree.

A normalized bitvector key is ``(_BITVEC, e0, e1, ...)`` where each
element packs one ``_CHUNK``-bit slice of the string:

    elem = (chunk_bits << (_CHUNK - bits_in_chunk)) << _LEN_BITS | bits_in_chunk

i.e. the slice left-aligned (zero-padded) in ``_CHUNK`` bits, followed by
the slice's true length.  Integer comparison of two elements then matches
bit-string comparison of the slices: if the padded values differ, the
first differing bit decides (the value fields differ by at least
``1 << _LEN_BITS``, which dominates any length difference); if the padded
values tie, the strings agree on their common prefix and the shorter —
the prefix — wins via the length field.  Across elements, plain tuple
comparison finishes the job: a string ending exactly on a chunk boundary
yields a strict tuple prefix, and shorter tuples sort first.  Strings up
to ``_CHUNK`` bits (every practical search tree) therefore compare as a
*single* C-level int compare instead of a per-bit tuple walk; the
equivalence with the historical tuple-of-bits keys is property-tested in
``tests/test_priority_packed.py``.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from repro.util.errors import ConfigurationError

__all__ = ["BitVectorPriority", "normalize_priority", "PriorityLike"]

#: Bits of bit-string payload packed per key element.
_CHUNK = 63
#: Low bits of each key element holding the slice's true length (0..63).
_LEN_BITS = 7


def _pack_elems(value: int, length: int) -> tuple:
    """Pack an MSB-first bit string ``(value, length)`` into key elements."""
    if length <= _CHUNK:
        return ((value << (_CHUNK - length) << _LEN_BITS) | length,)
    elems = []
    rem = length
    while rem > _CHUNK:
        rem -= _CHUNK
        elems.append(((value >> rem) << _LEN_BITS) | _CHUNK)
        value &= (1 << rem) - 1
    elems.append((value << (_CHUNK - rem) << _LEN_BITS) | rem)
    return tuple(elems)


class BitVectorPriority:
    """An immutable bit-string priority with lexicographic order.

    ``BitVectorPriority((1, 0)) < BitVectorPriority((1, 0, 1))`` — a prefix
    beats its extensions, and ``0`` beats ``1`` at the first differing
    position.  The all-empty priority is the highest possible.
    """

    __slots__ = ("_value", "_length", "_key")

    def __init__(self, bits: Iterable[int] = ()) -> None:
        value = 0
        length = 0
        for b in bits:
            b = int(b)
            if b != 0 and b != 1:
                raise ConfigurationError(
                    f"bitvector priority bits must be 0/1, got {b}"
                )
            value = (value << 1) | b
            length += 1
        self._value = value
        self._length = length
        self._key = None

    @classmethod
    def _trusted(cls, value: int, length: int) -> "BitVectorPriority":
        """Construct from an already-validated packed ``(value, length)``.

        Used by :meth:`extend`/:meth:`child` so a validated prefix is never
        re-checked — deep search trees pay O(appended bits), not O(depth).
        """
        p = cls.__new__(cls)
        p._value = value
        p._length = length
        p._key = None
        return p

    @property
    def bits(self) -> tuple:
        length = self._length
        value = self._value
        return tuple((value >> (length - 1 - i)) & 1 for i in range(length))

    def extend(self, *bits: int) -> "BitVectorPriority":
        """Return a child priority: this priority with ``bits`` appended."""
        value = self._value
        length = self._length
        for b in bits:
            b = int(b)
            if b != 0 and b != 1:
                raise ConfigurationError(
                    f"bitvector priority bits must be 0/1, got {b}"
                )
            value = (value << 1) | b
            length += 1
        return BitVectorPriority._trusted(value, length)

    def child(self, index: int, fanout: int) -> "BitVectorPriority":
        """Priority for the ``index``-th of ``fanout`` children.

        Encodes ``index`` in ``ceil(log2(fanout))`` bits (at least one), so
        earlier siblings sort ahead of later ones and every child sorts
        after its parent.
        """
        if fanout < 1:
            raise ConfigurationError("fanout must be >= 1")
        if not 0 <= index < fanout:
            raise ConfigurationError(f"child index {index} out of range for fanout {fanout}")
        width = max(1, (fanout - 1).bit_length())
        return BitVectorPriority._trusted(
            (self._value << width) | index, self._length + width
        )

    def __len__(self) -> int:
        return self._length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVectorPriority):
            return NotImplemented
        return self._value == other._value and self._length == other._length

    def __lt__(self, other: "BitVectorPriority") -> bool:
        if not isinstance(other, BitVectorPriority):
            return NotImplemented
        # Compare as binary fractions value/2**length (exact integer
        # cross-shift); equal fractions means one string is the other plus
        # trailing zeros, and the shorter — the prefix — is higher priority.
        a = self._value << other._length
        b = other._value << self._length
        if a != b:
            return a < b
        return self._length < other._length

    def __le__(self, other: "BitVectorPriority") -> bool:
        if not isinstance(other, BitVectorPriority):
            return NotImplemented
        return not other.__lt__(self)

    def __gt__(self, other: "BitVectorPriority") -> bool:
        if not isinstance(other, BitVectorPriority):
            return NotImplemented
        return other.__lt__(self)

    def __ge__(self, other: "BitVectorPriority") -> bool:
        if not isinstance(other, BitVectorPriority):
            return NotImplemented
        return not self.__lt__(other)

    def __hash__(self) -> int:
        return hash((self._value, self._length))

    def __repr__(self) -> str:
        bit_str = format(self._value, f"0{self._length}b") if self._length else ""
        return "BitVectorPriority(%s)" % (bit_str or "''")


PriorityLike = Union[None, int, float, Sequence[int], BitVectorPriority]

# Sort class tags: every normalized key is (class_tag, ...) so heterogeneous
# priorities never compare int-to-tuple.  Class 0 = explicit numeric, class 1
# = bitvector, class 2 = unprioritized (runs after all prioritized work, as
# in Charm where prioritized messages bypass the default queue).
_NUMERIC, _BITVEC, _DEFAULT = 0, 1, 2

#: The (single) key of every unprioritized message.
_DEFAULT_KEY = (_DEFAULT, 0)


def normalize_priority(priority: PriorityLike) -> tuple:
    """Map a user-facing priority to a totally ordered sort key.

    Smaller keys are served first.  ``None`` maps to the lowest class so
    unprioritized messages never starve prioritized ones under a
    priority-queue strategy.  Bitvector keys are packed-int tuples (see
    the module docstring); the key of a :class:`BitVectorPriority` is
    computed once and cached on the instance.
    """
    if priority is None:
        return _DEFAULT_KEY
    if isinstance(priority, BitVectorPriority):
        key = priority._key
        if key is None:
            key = priority._key = (_BITVEC,) + _pack_elems(
                priority._value, priority._length
            )
        return key
    if isinstance(priority, (int, float)):
        return (_NUMERIC, priority)
    if isinstance(priority, (tuple, list)):
        return normalize_priority(BitVectorPriority(priority))
    raise ConfigurationError(f"unsupported priority type: {type(priority).__name__}")
