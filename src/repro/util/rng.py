"""Deterministic random-number streams.

Everything stochastic in the simulator (workload generation, random seed
placement, synthetic tree shapes) draws from an :class:`RngStream` derived
from a root seed plus a *purpose* string plus optional integer keys (usually
a PE number).  Two runs with the same root seed are bit-identical, and
adding a new consumer of randomness does not perturb existing streams.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "RngStream"]


def derive_seed(root_seed: int, purpose: str, *keys: int) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a purpose label.

    Uses BLAKE2b over the canonical encoding so the mapping is stable across
    Python versions and platforms (``hash()`` is salted, so it is unusable).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(_seed_bytes(root_seed))
    h.update(purpose.encode("utf-8"))
    for k in keys:
        h.update(b"\x00")
        h.update(_seed_bytes(k))
    return int.from_bytes(h.digest(), "little")


def _seed_bytes(value: int) -> bytes:
    """Canonical encoding of an integer seed component.

    Seeds within ±2**127 keep the historical fixed 16-byte encoding (the
    golden-trace fixtures depend on it); wider integers fall back to a
    length-prefixed minimal encoding instead of overflowing.
    """
    value = int(value)
    try:
        return value.to_bytes(16, "little", signed=True)
    except OverflowError:
        width = (value.bit_length() // 8) + 1  # room for the sign bit
        body = value.to_bytes(width, "little", signed=True)
        return b"\xff" + width.to_bytes(8, "little") + body


class RngStream:
    """A named deterministic stream of random numbers.

    Thin wrapper over :class:`numpy.random.Generator` that records its
    derivation so child streams can be split off reproducibly.
    """

    def __init__(self, root_seed: int, purpose: str, *keys: int) -> None:
        self.root_seed = int(root_seed)
        self.purpose = purpose
        self.keys = tuple(int(k) for k in keys)
        self._gen = np.random.Generator(
            np.random.PCG64(derive_seed(root_seed, purpose, *keys))
        )

    def child(self, purpose: str, *keys: int) -> "RngStream":
        """Split off an independent stream keyed by an extra purpose label."""
        return RngStream(
            derive_seed(self.root_seed, self.purpose, *self.keys),
            purpose,
            *keys,
        )

    # -- convenience passthroughs -------------------------------------------------
    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        return int(self._gen.integers(low, high))

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return float(self._gen.random())

    def uniform(self, low: float, high: float) -> float:
        return float(self._gen.uniform(low, high))

    def choice(self, seq):
        """Pick one element of a non-empty sequence."""
        return seq[int(self._gen.integers(0, len(seq)))]

    def shuffle(self, seq: list) -> None:
        """In-place Fisher–Yates shuffle of a Python list."""
        for i in range(len(seq) - 1, 0, -1):
            j = int(self._gen.integers(0, i + 1))
            seq[i], seq[j] = seq[j], seq[i]

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator, for vectorised draws."""
        return self._gen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(root={self.root_seed}, purpose={self.purpose!r}, keys={self.keys})"
