"""Payload size model for network-cost accounting.

The simulator charges ``alpha + nbytes * beta`` per message, so it needs a
deterministic estimate of how many bytes a message payload would occupy on
the wire.  This module implements a recursive, wire-format-flavoured size
model (what a compiler-generated marshaller would produce), *not* Python's
in-memory ``sys.getsizeof`` (which is dominated by interpreter overhead and
would distort grain/communication ratios).
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["payload_nbytes"]

# Wire sizes, in bytes, for scalar leaves.
_BOOL_BYTES = 1
_INT_BYTES = 8
_FLOAT_BYTES = 8
_NONE_BYTES = 1
# Per-container framing (a length field).
_FRAME_BYTES = 4


def payload_nbytes(obj: Any) -> int:
    """Estimate the marshalled size of ``obj`` in bytes.

    Supports the payload vocabulary the runtime allows in messages:
    ``None``, bool, int, float, str, bytes, numpy scalars/arrays, and
    (nested) tuples/lists/dicts/sets of those.  Unknown objects fall back to
    a flat 64-byte estimate (e.g. chare handles, small records), which keeps
    the model total and deterministic.

    Every envelope is sized exactly once, so this sits on the kernel's
    per-message hot path: exact builtin types dispatch on ``type(obj)``
    (no subclass ambiguity — ``type(True) is int`` is False) and only
    subclasses, numpy values and containers of them pay the full
    isinstance chain in :func:`_general_nbytes`, which returns identical
    values for the fast-pathed types.
    """
    t = type(obj)
    if t is int:
        w = (obj.bit_length() + 7) // 8
        return w if w > _INT_BYTES else _INT_BYTES
    if t is float:
        return _FLOAT_BYTES
    if t is tuple or t is list:
        # Message args are overwhelmingly flat tuples of ints/floats;
        # handling those elements inline saves a recursive frame each
        # (and the conditional beats a ``max()`` call per element).
        total = _FRAME_BYTES
        for x in obj:
            tx = type(x)
            if tx is int:
                w = (x.bit_length() + 7) // 8
                total += w if w > _INT_BYTES else _INT_BYTES
            elif tx is float:
                total += _FLOAT_BYTES
            else:
                # Fixed-wire-size elements (handles) skip the recursion.
                w = getattr(x, "__wire_bytes__", None)
                total += w if w is not None else payload_nbytes(x)
        return total
    if t is str:
        return _FRAME_BYTES + len(obj.encode("utf-8"))
    if t is bool:
        return _BOOL_BYTES
    if obj is None:
        return _NONE_BYTES
    # Objects with an explicit wire size (chare/BOC handles ride in almost
    # every seed payload) skip the isinstance chain; builtin subclasses
    # never define __wire_size__/__wire_bytes__, so this cannot shadow the
    # chain's answer.  The class-constant form is checked first — reading
    # it allocates no bound method.
    size = getattr(obj, "__wire_bytes__", None)
    if size is not None:
        return size
    sizer = getattr(obj, "__wire_size__", None)
    if sizer is not None:
        return int(sizer())
    return _general_nbytes(obj)


def _general_nbytes(obj: Any) -> int:
    """The full (subclass-tolerant) size model; order mirrors the original."""
    if obj is None:
        return _NONE_BYTES
    if isinstance(obj, bool):
        return _BOOL_BYTES
    if isinstance(obj, int):
        # Big ints cost their true width; common ints cost a word.
        return max(_INT_BYTES, (obj.bit_length() + 7) // 8)
    if isinstance(obj, float):
        return _FLOAT_BYTES
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return _FRAME_BYTES + len(obj)
    if isinstance(obj, str):
        return _FRAME_BYTES + len(obj.encode("utf-8"))
    if isinstance(obj, np.ndarray):
        return _FRAME_BYTES + int(obj.nbytes)
    if isinstance(obj, np.generic):
        return int(obj.nbytes)
    if isinstance(obj, (tuple, list, set, frozenset)):
        return _FRAME_BYTES + sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return _FRAME_BYTES + sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items()
        )
    # Handles, dataclass records, user objects: flat conservative estimate.
    size = getattr(obj, "__wire_bytes__", None)
    if size is not None:
        return size
    sizer = getattr(obj, "__wire_size__", None)
    if sizer is not None:
        return int(sizer())
    return 64
