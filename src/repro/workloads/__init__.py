"""Workload generators: declarative, seeded descriptions of offered load.

The apps under :mod:`repro.apps` are *closed-world* programs — they create
all their work up front and run to completion.  This package holds the
*open-loop* side: frozen-dataclass specs (picklable, canonicalisable into
:class:`repro.bench.descriptors.RunDescriptor` params) plus pure
``(spec, seed) -> samples`` generator functions, so the same spec always
yields the same stream regardless of backend, ``--jobs`` sharding, or
cache state.
"""

from repro.workloads.arrivals import (
    Bursty,
    Diurnal,
    Poisson,
    ServiceSpec,
    arrival_times,
    offered_rate,
    service_demands,
)

__all__ = [
    "Poisson",
    "Bursty",
    "Diurnal",
    "ServiceSpec",
    "arrival_times",
    "service_demands",
    "offered_rate",
]
