"""Seeded open-loop arrival processes and service-time distributions.

An *open-loop* workload offers requests at externally-determined virtual
times — the system's response never throttles the source, which is what
exposes saturation knees and tail-latency blowup (a closed-loop driver
self-limits and hides them).  Three arrival processes cover the classic
serving regimes:

* :class:`Poisson` — memoryless arrivals at a constant rate; the M/G/k
  baseline.
* :class:`Bursty` — a two-state Markov-modulated Poisson process (MMPP):
  the source alternates between a low-rate and a high-rate phase with
  exponentially distributed dwell times.  Same mean rate as a Poisson
  stream can hide bursts several times over capacity.
* :class:`Diurnal` — a sinusoidally modulated rate (daily ramp compressed
  onto the simulation's time scale), sampled by Lewis-Shedler thinning.

Specs are frozen dataclasses so they canonicalise directly into run
descriptors (:func:`repro.bench.descriptors.canonical_value`), and every
generator is a pure function of ``(spec, seed)`` via
:class:`repro.util.rng.RngStream` — byte-identical across backends,
``--jobs`` sharding, and cache replay.

Service demands are expressed in *work units* (converted to seconds by the
machine's ``work_unit_time``), drawn per request per pipeline stage from a
:class:`ServiceSpec` distribution (fixed / exponential / lognormal /
Pareto — the heavy-tailed one is where p99 stories live).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream

__all__ = [
    "Poisson",
    "Bursty",
    "Diurnal",
    "ServiceSpec",
    "ArrivalSpec",
    "arrival_times",
    "service_demands",
    "offered_rate",
]


# =============================================================== arrival specs
@dataclass(frozen=True)
class Poisson:
    """Constant-rate memoryless arrivals: ``count`` requests at ``rate``/s."""

    rate: float
    count: int
    start: float = 0.0

    def validate(self) -> None:
        if self.rate <= 0.0:
            raise ConfigurationError(f"Poisson rate must be > 0, got {self.rate}")
        if self.count < 0:
            raise ConfigurationError(f"Poisson count must be >= 0, got {self.count}")
        if self.start < 0.0:
            raise ConfigurationError(f"Poisson start must be >= 0, got {self.start}")


@dataclass(frozen=True)
class Bursty:
    """Two-state MMPP: low/high rate phases with exponential dwell times.

    Mean offered rate is the dwell-weighted average of ``rate_low`` and
    ``rate_high``; :meth:`mean_rate` reports it so experiments can hold the
    mean fixed while varying burstiness.
    """

    rate_low: float
    rate_high: float
    count: int
    dwell_low: float = 5e-3   # mean seconds spent in the low-rate phase
    dwell_high: float = 1e-3  # mean seconds spent in the high-rate phase
    start: float = 0.0

    def validate(self) -> None:
        if self.rate_low <= 0.0 or self.rate_high <= 0.0:
            raise ConfigurationError(
                f"Bursty rates must be > 0, got {self.rate_low}/{self.rate_high}"
            )
        if self.dwell_low <= 0.0 or self.dwell_high <= 0.0:
            raise ConfigurationError(
                f"Bursty dwell times must be > 0, got "
                f"{self.dwell_low}/{self.dwell_high}"
            )
        if self.count < 0:
            raise ConfigurationError(f"Bursty count must be >= 0, got {self.count}")
        if self.start < 0.0:
            raise ConfigurationError(f"Bursty start must be >= 0, got {self.start}")

    def mean_rate(self) -> float:
        """Long-run offered rate (dwell-time-weighted average)."""
        total = self.dwell_low + self.dwell_high
        return (self.rate_low * self.dwell_low
                + self.rate_high * self.dwell_high) / total


@dataclass(frozen=True)
class Diurnal:
    """Sinusoidally modulated rate: ``mean * (1 + amplitude*sin(2πt/period))``.

    A compressed "daily" traffic ramp.  ``amplitude`` is a fraction of the
    mean in ``[0, 1)``; generation uses thinning against the peak rate, so
    the stream is exact, not piecewise-approximated.
    """

    rate_mean: float
    count: int
    amplitude: float = 0.5
    period: float = 20e-3
    start: float = 0.0

    def validate(self) -> None:
        if self.rate_mean <= 0.0:
            raise ConfigurationError(
                f"Diurnal rate_mean must be > 0, got {self.rate_mean}"
            )
        if not 0.0 <= self.amplitude < 1.0:
            raise ConfigurationError(
                f"Diurnal amplitude must be in [0, 1), got {self.amplitude}"
            )
        if self.period <= 0.0:
            raise ConfigurationError(
                f"Diurnal period must be > 0, got {self.period}"
            )
        if self.count < 0:
            raise ConfigurationError(f"Diurnal count must be >= 0, got {self.count}")
        if self.start < 0.0:
            raise ConfigurationError(f"Diurnal start must be >= 0, got {self.start}")


ArrivalSpec = Union[Poisson, Bursty, Diurnal]


def _exp_sample(rng: RngStream, mean: float) -> float:
    # Inverse-CDF with U in [0, 1): log1p(-U) is exact near zero and never
    # takes log(0).
    return -mean * math.log1p(-rng.random())


def arrival_times(spec: ArrivalSpec, seed: int) -> List[float]:
    """Generate the full arrival-time list for ``spec`` (nondecreasing)."""
    spec.validate()
    rng = RngStream(seed, "arrivals", 0)
    times: List[float] = []
    t = spec.start
    if isinstance(spec, Poisson):
        mean_gap = 1.0 / spec.rate
        for _ in range(spec.count):
            t += _exp_sample(rng, mean_gap)
            times.append(t)
    elif isinstance(spec, Bursty):
        high = False
        dwell = _exp_sample(rng, spec.dwell_low)
        while len(times) < spec.count:
            rate = spec.rate_high if high else spec.rate_low
            gap = _exp_sample(rng, 1.0 / rate)
            if gap < dwell:
                # Next arrival lands inside the current phase.
                t += gap
                dwell -= gap
                times.append(t)
            else:
                # Phase ends first: advance to the switch point and resample
                # (the exponential's memorylessness makes this exact MMPP).
                t += dwell
                high = not high
                dwell = _exp_sample(
                    rng, spec.dwell_high if high else spec.dwell_low
                )
    elif isinstance(spec, Diurnal):
        peak = spec.rate_mean * (1.0 + spec.amplitude)
        omega = 2.0 * math.pi / spec.period
        while len(times) < spec.count:
            t += _exp_sample(rng, 1.0 / peak)
            lam = spec.rate_mean * (
                1.0 + spec.amplitude * math.sin(omega * (t - spec.start))
            )
            if rng.random() * peak < lam:
                times.append(t)
    else:  # pragma: no cover - guarded by the Union type
        raise ConfigurationError(f"unknown arrival spec {type(spec).__name__}")
    return times


# =============================================================== service times
@dataclass(frozen=True)
class ServiceSpec:
    """Per-stage service demand distribution, in kernel work units.

    ``dist`` is one of ``fixed`` / ``exp`` / ``lognormal`` / ``pareto``;
    ``mean`` is the distribution mean in work units.  ``shape`` is the
    second parameter where one exists: the lognormal's sigma (log-space
    standard deviation) or the Pareto tail index alpha (> 1; smaller =
    heavier tail).
    """

    dist: str = "exp"
    mean: float = 400.0
    shape: float = 1.0

    def validate(self) -> None:
        if self.dist not in ("fixed", "exp", "lognormal", "pareto"):
            raise ConfigurationError(
                f"unknown service distribution {self.dist!r}; "
                "expected fixed/exp/lognormal/pareto"
            )
        if self.mean <= 0.0:
            raise ConfigurationError(
                f"service mean must be > 0, got {self.mean}"
            )
        if self.dist == "lognormal" and self.shape < 0.0:
            raise ConfigurationError(
                f"lognormal sigma must be >= 0, got {self.shape}"
            )
        if self.dist == "pareto" and self.shape <= 1.0:
            raise ConfigurationError(
                f"pareto alpha must be > 1 (finite mean), got {self.shape}"
            )

    def sample(self, rng: RngStream) -> float:
        if self.dist == "fixed":
            return self.mean
        if self.dist == "exp":
            return _exp_sample(rng, self.mean)
        if self.dist == "lognormal":
            sigma = self.shape
            mu = math.log(self.mean) - 0.5 * sigma * sigma
            # Box-Muller from the stream's uniforms keeps the draw count
            # deterministic (numpy's normal() consumes a variable number).
            u1 = rng.random()
            u2 = rng.random()
            while u1 <= 0.0:
                u1 = rng.random()
            z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
            return math.exp(mu + sigma * z)
        # pareto
        alpha = self.shape
        scale = self.mean * (alpha - 1.0) / alpha
        return scale / (1.0 - rng.random()) ** (1.0 / alpha)


def service_demands(
    spec: ServiceSpec, count: int, hops: int, seed: int
) -> List[Tuple[float, ...]]:
    """Per-request, per-stage work-unit demands (``count`` x ``hops``).

    Each pipeline stage draws independently from ``spec`` (so a request's
    total expected demand is ``hops * spec.mean``).  One sequential stream
    in request order keeps the table a pure function of ``(spec, count,
    hops, seed)``.
    """
    spec.validate()
    if hops < 1:
        raise ConfigurationError(f"pipeline needs >= 1 hop, got {hops}")
    if count < 0:
        raise ConfigurationError(f"request count must be >= 0, got {count}")
    rng = RngStream(seed, "service", 0)
    return [
        tuple(spec.sample(rng) for _ in range(hops)) for _ in range(count)
    ]


def offered_rate(spec: ArrivalSpec) -> float:
    """Nominal long-run request rate of ``spec`` (requests/second)."""
    if isinstance(spec, Poisson):
        return spec.rate
    if isinstance(spec, Bursty):
        return spec.mean_rate()
    if isinstance(spec, Diurnal):
        return spec.rate_mean
    raise ConfigurationError(f"unknown arrival spec {type(spec).__name__}")
