"""Shared fixtures: small machines and a tiny reference program."""

from __future__ import annotations

import pytest

from repro import Chare, Kernel, entry
from repro.machine.presets import make_machine


@pytest.fixture
def ideal4():
    """Zero-overhead 4-PE machine (pure algorithm checks)."""
    return make_machine("ideal", 4)


@pytest.fixture
def ipsc8():
    """8-PE iPSC/2-class hypercube (realistic costs)."""
    return make_machine("ipsc2", 8)


@pytest.fixture
def symmetry4():
    """4-PE bus shared-memory machine."""
    return make_machine("symmetry", 4)


class EchoWorker(Chare):
    """Replies to its parent with (index, my_pe)."""

    def __init__(self, parent, index):
        self.charge(10)
        self.send(parent, "reply", index, self.my_pe)


class EchoMain(Chare):
    """Creates n workers; exits with sorted replies once all arrive."""

    def __init__(self, n, pin):
        self.n = n
        self.replies = []
        for i in range(n):
            pe = (i % self.num_pes) if pin else None
            self.create(EchoWorker, self.thishandle, i, pe=pe)

    @entry
    def reply(self, index, pe):
        self.replies.append((index, pe))
        if len(self.replies) == self.n:
            self.exit(sorted(self.replies))


@pytest.fixture
def echo_program():
    """(Main chare class) for quick end-to-end runs."""
    return EchoMain


def run_echo(machine, n=8, pin=False, **kernel_kwargs):
    """Convenience: run the echo program and return its RunResult."""
    kernel = Kernel(machine, **kernel_kwargs)
    return kernel.run(EchoMain, n, pin)


@pytest.fixture
def echo_runner():
    return run_echo
