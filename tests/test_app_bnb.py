"""TSP and knapsack branch-and-bound application tests."""

import pytest

from repro import make_machine
from repro.apps.knapsack import KnapsackInstance, knapsack_seq, run_knapsack
from repro.apps.tsp import TspInstance, _greedy_tour, _lower_bound, tsp_seq, run_tsp


# ------------------------------------------------------------------ instances
def test_tsp_instance_symmetric_and_deterministic():
    a = TspInstance.random(8, seed=5)
    b = TspInstance.random(8, seed=5)
    assert a == b
    for i in range(8):
        assert a.dist[i][i] == 0
        for j in range(8):
            assert a.dist[i][j] == a.dist[j][i]


def test_tsp_lower_bound_admissible():
    inst = TspInstance.random(7, seed=2)
    best, _ = tsp_seq(inst)
    assert _lower_bound(inst, (0,), 0) <= best
    assert _greedy_tour(inst) >= best


def test_knapsack_instance_sorted_by_density():
    inst = KnapsackInstance.random(12, seed=3)
    densities = [v / w for v, w in zip(inst.values, inst.weights)]
    assert densities == sorted(densities, reverse=True)
    assert 0 < inst.capacity < sum(inst.weights)


def test_knapsack_seq_matches_dp():
    inst = KnapsackInstance.random(14, seed=1)
    best, _ = knapsack_seq(inst)
    # Independent check: classic DP over capacity.
    dp = [0] * (inst.capacity + 1)
    for w, v in zip(inst.weights, inst.values):
        for c in range(inst.capacity, w - 1, -1):
            dp[c] = max(dp[c], dp[c - w] + v)
    assert best == dp[inst.capacity]


# ------------------------------------------------------------------- parallel
@pytest.mark.parametrize("machine_name,pes,queueing", [
    ("ideal", 1, "prio"),
    ("symmetry", 4, "fifo"),
    ("ipsc2", 8, "prio"),
    ("ipsc2", 8, "lifo"),
])
def test_tsp_parallel_finds_optimum(machine_name, pes, queueing):
    inst = TspInstance.random(8, seed=4)
    best_ref, _ = tsp_seq(inst)
    (best, nodes, pruned), _ = run_tsp(
        make_machine(machine_name, pes), inst, queueing=queueing
    )
    assert best == best_ref
    assert nodes >= 1


@pytest.mark.parametrize("propagation", ["eager", "lazy", "off"])
def test_tsp_optimum_independent_of_propagation(propagation):
    inst = TspInstance.random(8, seed=9)
    best_ref, _ = tsp_seq(inst)
    (best, _, _), _ = run_tsp(
        make_machine("ipsc2", 8), inst, propagation=propagation
    )
    assert best == best_ref


@pytest.mark.parametrize("grain", [0, 2, 5, 7])
def test_tsp_grain_invariant(grain):
    inst = TspInstance.random(8, seed=7)
    best_ref, _ = tsp_seq(inst)
    (best, _, _), _ = run_tsp(make_machine("ipsc2", 4), inst, grain=grain)
    assert best == best_ref


def test_tsp_loose_incumbent_still_exact():
    inst = TspInstance.random(8, seed=1)
    best_ref, _ = tsp_seq(inst)
    (best, nodes_loose, _), _ = run_tsp(
        make_machine("ipsc2", 8), inst, bound_slack=2.0
    )
    (best2, nodes_tight, _), _ = run_tsp(
        make_machine("ipsc2", 8), inst, bound_slack=1.0
    )
    assert best == best2 == best_ref
    assert nodes_loose >= nodes_tight  # weaker initial bound, more work


@pytest.mark.parametrize("machine_name,pes", [
    ("ideal", 1), ("ipsc2", 8), ("symmetry", 16),
])
def test_knapsack_parallel_finds_optimum(machine_name, pes):
    inst = KnapsackInstance.random(18, seed=6)
    best_ref, _ = knapsack_seq(inst)
    (best, nodes), _ = run_knapsack(make_machine(machine_name, pes), inst, grain=8)
    assert best == best_ref


@pytest.mark.parametrize("grain", [0, 6, 18, 30])
def test_knapsack_grain_invariant(grain):
    inst = KnapsackInstance.random(16, seed=2)
    best_ref, _ = knapsack_seq(inst)
    (best, _), _ = run_knapsack(make_machine("ipsc2", 4), inst, grain=grain)
    assert best == best_ref


def test_knapsack_priority_search_expands_fewer_nodes():
    inst = KnapsackInstance.random(20, seed=0)
    (_, nodes_fifo), _ = run_knapsack(
        make_machine("ipsc2", 8), inst, grain=8, queueing="fifo"
    )
    (_, nodes_prio), _ = run_knapsack(
        make_machine("ipsc2", 8), inst, grain=8, queueing="prio"
    )
    assert nodes_prio <= nodes_fifo


def test_monotonic_sharing_prunes_nodes():
    """The T7 claim at test scale: no propagation => more expanded nodes."""
    inst = TspInstance.random(9, seed=3)
    (_, nodes_eager, _), _ = run_tsp(
        make_machine("ipsc2", 8), inst, grain=2, bound_slack=1.6,
        queueing="fifo", propagation="eager",
    )
    (_, nodes_off, _), _ = run_tsp(
        make_machine("ipsc2", 8), inst, grain=2, bound_slack=1.6,
        queueing="fifo", propagation="off",
    )
    assert nodes_off >= nodes_eager
