"""Fib and primes application tests."""

import pytest

from repro import make_machine
from repro.apps.fib import fib_seq, run_fib
from repro.apps.primes import primes_seq, run_primes


# ------------------------------------------------------------------------ fib
def test_fib_seq_values():
    assert fib_seq(0) == (0, 1)
    assert fib_seq(1) == (1, 1)
    assert [fib_seq(n)[0] for n in range(10)] == [0, 1, 1, 2, 3, 5, 8, 13, 21, 34]


@pytest.mark.parametrize("machine_name,pes", [
    ("ideal", 1), ("symmetry", 4), ("ipsc2", 16),
])
def test_fib_parallel_matches(machine_name, pes):
    value, _ = run_fib(make_machine(machine_name, pes), n=17, threshold=8)
    assert value == fib_seq(17)[0]


@pytest.mark.parametrize("threshold", [1, 5, 12, 20])
def test_fib_threshold_invariant(threshold):
    value, _ = run_fib(make_machine("ipsc2", 8), n=16, threshold=threshold)
    assert value == fib_seq(16)[0]


def test_fib_threshold_above_n_is_sequential():
    value, result = run_fib(make_machine("ideal", 4), n=12, threshold=20)
    assert value == fib_seq(12)[0]
    assert sum(r.seeds_executed for r in result.stats.pe_rows) == 2  # main + root


def test_fib_base_cases_parallel():
    assert run_fib(make_machine("ideal", 2), n=1, threshold=1)[0] == 1
    # n=0 < any threshold -> computed in the root chare.
    assert run_fib(make_machine("ideal", 2), n=0, threshold=5)[0] == 0


# --------------------------------------------------------------------- primes
def test_primes_seq_known_values():
    assert primes_seq(10)[0] == 4        # 2 3 5 7
    assert primes_seq(100)[0] == 25
    assert primes_seq(2)[0] == 0


@pytest.mark.parametrize("machine_name,pes", [
    ("ideal", 1), ("symmetry", 8), ("ncube2", 16),
])
def test_primes_parallel_matches(machine_name, pes):
    count, _ = run_primes(make_machine(machine_name, pes), limit=3000, chunks=32)
    assert count == primes_seq(3000)[0]


@pytest.mark.parametrize("chunks", [1, 3, 17, 100])
def test_primes_chunking_invariant(chunks):
    count, _ = run_primes(make_machine("ipsc2", 8), limit=1000, chunks=chunks)
    assert count == primes_seq(1000)[0]


def test_primes_pinned_round_robin():
    count, result = run_primes(
        make_machine("ipsc2", 4), limit=2000, chunks=8, pin=True
    )
    assert count == primes_seq(2000)[0]
    # Pinned: every PE executed exactly 2 of the 8 workers.
    per_pe = [r.seeds_executed for r in result.stats.pe_rows]
    assert per_pe[0] == 2 + 1  # + main
    assert per_pe[1:] == [2, 2, 2]


def test_primes_pinning_shows_static_imbalance():
    """Higher ranges cost more divisions: pinned equal ranges are imbalanced,
    dynamic placement (random) isn't structurally skewed the same way."""
    _, pinned = run_primes(
        make_machine("ipsc2", 8), limit=20000, chunks=8, pin=True
    )
    busy = [r.busy_time for r in pinned.stats.pe_rows]
    assert max(busy) > 1.5 * min(b for b in busy if b > 0)
