"""Jacobi and matmul (static data-parallel) application tests."""

import numpy as np
import pytest

from repro import make_machine
from repro.apps.jacobi import jacobi_seq, make_grid, run_jacobi
from repro.apps.matmul import run_matmul


# --------------------------------------------------------------------- jacobi
def test_reference_keeps_boundary_fixed():
    grid, _ = jacobi_seq(8, 5)
    assert np.all(grid[0, :] == 100.0)
    assert np.all(grid[-1, :] == -100.0)
    assert np.all(grid[1:-1, 0] == make_grid(8)[1:-1, 0])


def test_reference_converges_toward_linear_profile():
    grid, residual = jacobi_seq(8, 400)
    assert residual < 1e-2
    middle_top = grid[1, 4]
    middle_bottom = grid[-2, 4]
    assert middle_top > 0 > middle_bottom


@pytest.mark.parametrize("machine_name,pes", [
    ("ideal", 1), ("ideal", 4), ("symmetry", 8), ("ipsc2", 16),
])
def test_blocks_match_reference_exactly(machine_name, pes):
    (grid, residual), _ = run_jacobi(
        make_machine(machine_name, pes), n=16, blocks=4, iterations=7
    )
    ref_grid, ref_residual = jacobi_seq(16, 7)
    assert np.array_equal(grid, ref_grid)
    assert residual == pytest.approx(ref_residual)


@pytest.mark.parametrize("blocks", [1, 2, 4, 8])
def test_block_count_invariant(blocks):
    (grid, _), _ = run_jacobi(
        make_machine("ipsc2", 4), n=16, blocks=blocks, iterations=5
    )
    assert np.array_equal(grid, jacobi_seq(16, 5)[0])


def test_zero_iterations_returns_initial_grid():
    (grid, residual), _ = run_jacobi(
        make_machine("ideal", 4), n=8, blocks=2, iterations=0
    )
    assert np.array_equal(grid, make_grid(8))


def test_indivisible_grid_rejected():
    with pytest.raises(Exception):
        run_jacobi(make_machine("ideal", 4), n=10, blocks=3, iterations=1)


def test_more_iterations_cost_more_time():
    _, r5 = run_jacobi(make_machine("ipsc2", 4), n=16, blocks=4, iterations=5)
    _, r10 = run_jacobi(make_machine("ipsc2", 4), n=16, blocks=4, iterations=10)
    assert r10.time > r5.time


# --------------------------------------------------------------------- matmul
@pytest.mark.parametrize("machine_name,pes", [
    ("ideal", 1), ("symmetry", 4), ("ipsc2", 16),
])
def test_matmul_matches_numpy(machine_name, pes):
    (a, b, c), _ = run_matmul(make_machine(machine_name, pes), n=32, g=4)
    assert np.allclose(c, a @ b)


@pytest.mark.parametrize("g", [1, 2, 8])
def test_matmul_block_grid_invariant(g):
    (a, b, c), _ = run_matmul(make_machine("ipsc2", 4), n=16, g=g)
    assert np.allclose(c, a @ b)


def test_matmul_indivisible_rejected():
    with pytest.raises(Exception):
        run_matmul(make_machine("ideal", 2), n=10, g=3)


def test_matmul_data_movement_dominates_on_slow_network():
    """Same computation, much slower wire: time must rise (beta term)."""
    _, fast = run_matmul(make_machine("cluster", 4), n=32, g=4)
    _, slow = run_matmul(make_machine("ipsc2", 4), n=32, g=4)
    assert slow.time > fast.time
    assert slow.stats.total_bytes_sent == fast.stats.total_bytes_sent
