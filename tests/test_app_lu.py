"""Pipelined LU factorization tests."""

import numpy as np
import pytest

from repro import make_machine
from repro.apps.lu import lu_seq, make_matrix, run_lu, split_lu


def test_reference_factorization_reconstructs_a():
    a = make_matrix(24, seed=2)
    lower, upper = split_lu(lu_seq(a))
    assert np.allclose(lower @ upper, a)
    assert np.allclose(np.diag(lower), 1.0)
    assert np.allclose(np.tril(upper, -1), 0.0)


def test_matrix_is_diagonally_dominant():
    a = make_matrix(16, seed=1)
    for i in range(16):
        assert abs(a[i, i]) > np.sum(np.abs(a[i])) - abs(a[i, i])


@pytest.mark.parametrize("machine_name,pes", [
    ("ideal", 1), ("symmetry", 4), ("ipsc2", 16), ("hetero", 4),
])
def test_parallel_bitwise_equal(machine_name, pes):
    ref = lu_seq(make_matrix(32, seed=1))
    (_, lu), _ = run_lu(make_machine(machine_name, pes), n=32, blocks=8,
                        data_seed=1)
    assert np.array_equal(lu, ref)


@pytest.mark.parametrize("blocks", [1, 2, 4, 16, 32])
def test_block_count_invariant(blocks):
    ref = lu_seq(make_matrix(32, seed=3))
    (_, lu), _ = run_lu(make_machine("ipsc2", 4), n=32, blocks=blocks,
                        data_seed=3)
    assert np.array_equal(lu, ref)


def test_indivisible_rows_rejected():
    with pytest.raises(Exception):
        run_lu(make_machine("ideal", 2), n=10, blocks=3)


def test_pipelining_beats_tiny_block_counts():
    """More blocks per PE -> deeper pipeline -> better overlap (up to a
    point): 16 blocks must beat 2 blocks on 8 PEs."""
    _, shallow = run_lu(make_machine("ipsc2", 8), n=64, blocks=2)
    _, deep = run_lu(make_machine("ipsc2", 8), n=64, blocks=16)
    assert deep.time < shallow.time


def test_speedup_exists():
    t1 = run_lu(make_machine("ipsc2", 1), n=64, blocks=16)[1].time
    t8 = run_lu(make_machine("ipsc2", 8), n=64, blocks=16)[1].time
    assert t1 / t8 > 2.5


def test_tiny_matrix():
    ref = lu_seq(make_matrix(2, seed=0))
    (_, lu), _ = run_lu(make_machine("ideal", 2), n=2, blocks=2, data_seed=0)
    assert np.array_equal(lu, ref)
