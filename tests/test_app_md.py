"""Cell-decomposition molecular dynamics tests."""

import numpy as np
import pytest

from repro import make_machine
from repro.apps.md import (
    MdParams,
    _cell_of,
    _min_image,
    _pair_force,
    make_particles,
    md_seq,
    run_md,
)


# ---------------------------------------------------------------- primitives
def test_params_validation():
    with pytest.raises(ValueError):
        MdParams(cells=2)
    p = MdParams(cells=3)
    assert p.box == pytest.approx(3.0)
    assert p.cutoff == p.cell_size


def test_min_image_wraps():
    assert _min_image(np.array([3.9, 0.0]), 4.0)[0] == pytest.approx(-0.1)
    assert _min_image(np.array([-3.9, 0.0]), 4.0)[0] == pytest.approx(0.1)
    assert _min_image(np.array([1.0, 0.0]), 4.0)[0] == pytest.approx(1.0)


def test_pair_force_properties():
    p = MdParams()
    # Repulsive along delta, zero at/beyond cutoff.
    f = _pair_force(np.array([0.5, 0.0]), p)
    assert f[0] > 0 and f[1] == 0
    assert np.all(_pair_force(np.array([1.0, 0.0]), p) == 0)
    assert np.all(_pair_force(np.array([2.0, 0.0]), p) == 0)
    # Newton's third law.
    d = np.array([0.3, -0.2])
    assert np.allclose(_pair_force(d, p), -_pair_force(-d, p))


def test_make_particles_deterministic_and_in_box():
    p = MdParams(seed=5)
    pos1, vel1 = make_particles(p)
    pos2, vel2 = make_particles(p)
    assert np.array_equal(pos1, pos2) and np.array_equal(vel1, vel2)
    assert np.all((0 <= pos1) & (pos1 < p.box))
    assert np.all(np.abs(vel1) * p.dt <= p.cell_size / 4 + 1e-12)


def test_cell_of_wraps():
    p = MdParams(cells=4)
    assert _cell_of(0.5, 3.5, p) == (0, 3)
    assert _cell_of(3.99, 0.0, p) == (3, 0)


# ------------------------------------------------------------------ dynamics
def test_seq_momentum_conserved():
    """Pairwise equal-and-opposite forces keep total momentum constant."""
    p = MdParams(cells=4, n_particles=32, steps=12, seed=2)
    _, vel0 = make_particles(p)
    _, vel = md_seq(p)
    assert np.allclose(vel.sum(axis=0), vel0.sum(axis=0), atol=1e-9)


def test_seq_stays_in_box():
    p = MdParams(cells=4, n_particles=32, steps=12, seed=2)
    pos, _ = md_seq(p)
    assert np.all((0 <= pos) & (pos < p.box))


@pytest.mark.parametrize("machine_name,pes", [
    ("ideal", 1), ("symmetry", 4), ("ipsc2", 16),
])
def test_parallel_bitwise_equal_to_reference(machine_name, pes):
    params = MdParams(cells=4, n_particles=48, steps=8, seed=3)
    ref_pos, ref_vel = md_seq(params)
    (pos, vel), _ = run_md(make_machine(machine_name, pes), params)
    assert np.array_equal(pos, ref_pos)
    assert np.array_equal(vel, ref_vel)


def test_migrations_actually_happen():
    params = MdParams(cells=4, n_particles=64, steps=12, seed=1)
    (pos, vel), result = run_md(make_machine("ideal", 4), params)
    kernel = result.kernel
    migrated = sum(
        kernel.sharing.accumulator_partial("migrations", pe)
        for pe in range(kernel.num_pes)
    )
    assert migrated > 0, "test instance exercises no migration paths"
    assert np.array_equal(pos, md_seq(params)[0])


@pytest.mark.parametrize("cells", [3, 4, 5])
def test_cell_count_invariant(cells):
    params = MdParams(cells=cells, n_particles=30, steps=6, seed=4)
    ref_pos, _ = md_seq(params)
    (pos, _), _ = run_md(make_machine("ipsc2", 4), params)
    assert np.array_equal(pos, ref_pos)


def test_zero_steps_returns_initial_state():
    params = MdParams(cells=3, n_particles=16, steps=0, seed=7)
    pos0, vel0 = make_particles(params)
    (pos, vel), _ = run_md(make_machine("ideal", 2), params)
    assert np.array_equal(pos, pos0)
    assert np.array_equal(vel, vel0)
