"""N-queens application tests."""

import pytest

from repro import make_machine
from repro.apps.nqueens import nqueens_seq, run_nqueens

KNOWN = {4: 2, 5: 10, 6: 4, 7: 40, 8: 92}


@pytest.mark.parametrize("n,expected", sorted(KNOWN.items()))
def test_sequential_reference_known_counts(n, expected):
    solutions, nodes = nqueens_seq(n)
    assert solutions == expected
    assert nodes >= solutions


@pytest.mark.parametrize("machine_name,pes", [
    ("ideal", 1), ("ideal", 4), ("symmetry", 8), ("ipsc2", 16), ("ncube2", 32),
])
def test_parallel_matches_reference(machine_name, pes):
    (solutions, nodes), _ = run_nqueens(make_machine(machine_name, pes), n=7)
    ref_solutions, ref_nodes = nqueens_seq(7)
    assert solutions == ref_solutions
    assert nodes == ref_nodes


@pytest.mark.parametrize("grainsize", [1, 2, 4, 7, 10])
def test_grainsize_does_not_change_answer(grainsize):
    machine = make_machine("ipsc2", 8)
    (solutions, nodes), _ = run_nqueens(machine, n=7, grainsize=grainsize)
    assert (solutions, nodes) == nqueens_seq(7)


def test_grainsize_covering_whole_board_is_sequential():
    machine = make_machine("ideal", 4)
    (solutions, _), result = run_nqueens(machine, n=6, grainsize=6)
    assert solutions == 4
    # Root chare solves everything: exactly one worker seed.
    seeds = sum(r.seeds_executed for r in result.stats.pe_rows)
    assert seeds == 2  # main + root


@pytest.mark.parametrize("queueing", ["fifo", "lifo", "prio", "bitprio"])
def test_all_queueing_strategies_correct(queueing):
    machine = make_machine("ipsc2", 8)
    (solutions, nodes), _ = run_nqueens(
        machine, n=7, queueing=queueing, use_priorities=(queueing == "bitprio")
    )
    assert (solutions, nodes) == nqueens_seq(7)


def test_bitvector_priorities_bound_pool_growth():
    """Bit-prioritized execution approximates sequential order: the pool of
    pending work stays smaller than breadth-first FIFO expansion."""
    machine_f = make_machine("ideal", 2)
    (_, _), fifo = run_nqueens(machine_f, n=8, grainsize=2, queueing="fifo")
    machine_b = make_machine("ideal", 2)
    (_, _), bitp = run_nqueens(
        machine_b, n=8, grainsize=2, queueing="bitprio", use_priorities=True
    )
    fifo_peak = max(r.max_pool for r in fifo.stats.pe_rows)
    bit_peak = max(r.max_pool for r in bitp.stats.pe_rows)
    assert bit_peak < fifo_peak


def test_smaller_grain_more_messages():
    m1 = make_machine("ideal", 4)
    m2 = make_machine("ideal", 4)
    _, fine = run_nqueens(m1, n=7, grainsize=1)
    _, coarse = run_nqueens(m2, n=7, grainsize=5)
    assert fine.stats.total_msgs_executed > coarse.stats.total_msgs_executed


def test_trivial_boards():
    machine = make_machine("ideal", 2)
    (solutions, _), _ = run_nqueens(machine, n=2, grainsize=1)
    assert solutions == 0
    machine = make_machine("ideal", 2)
    (solutions, _), _ = run_nqueens(machine, n=1, grainsize=1)
    assert solutions == 1
