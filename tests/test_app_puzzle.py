"""Sliding-tile IDA* application tests."""

import pytest

from repro import make_machine
from repro.apps.puzzle import (
    _epoch_min,
    goal_state,
    ida_star_seq,
    manhattan,
    neighbors,
    random_puzzle,
    run_puzzle,
)


# ------------------------------------------------------------------ primitives
def test_goal_state_shape():
    assert goal_state(3) == (1, 2, 3, 4, 5, 6, 7, 8, 0)
    assert manhattan(goal_state(3), 3) == 0
    assert manhattan(goal_state(4), 4) == 0


def test_manhattan_single_move():
    board = (1, 2, 3, 4, 5, 6, 7, 0, 8)  # 8 one step left of home
    assert manhattan(board, 3) == 1


def test_neighbors_counts():
    corner = goal_state(3)  # blank bottom-right
    assert len(neighbors(corner, 3)) == 2
    center = (1, 2, 3, 4, 0, 5, 6, 7, 8)
    assert len(neighbors(center, 3)) == 4


def test_neighbors_are_reversible():
    board = random_puzzle(3, 10, seed=4)
    for nb in neighbors(board, 3):
        assert board in neighbors(nb, 3)


def test_random_puzzle_deterministic_and_solvable():
    a = random_puzzle(3, 20, seed=1)
    b = random_puzzle(3, 20, seed=1)
    assert a == b
    cost, rounds, nodes = ida_star_seq(a, 3)
    assert 0 <= cost <= 20
    assert rounds >= 1 and nodes >= 1


def test_epoch_min_combiner_laws():
    assert _epoch_min((2, 5), (1, 1)) == (2, 5)       # newer round wins
    assert _epoch_min((2, 5), (2, 3)) == (2, 3)       # min within round
    assert _epoch_min((1, 4), (2, 9)) == _epoch_min((2, 9), (1, 4))  # comm.
    a, b, c = (1, 7), (2, 9), (2, 4)
    assert _epoch_min(_epoch_min(a, b), c) == _epoch_min(a, _epoch_min(b, c))


def test_seq_already_solved():
    assert ida_star_seq(goal_state(3), 3)[0] == 0


# -------------------------------------------------------------------- parallel
@pytest.mark.parametrize("machine_name,pes", [
    ("ideal", 1), ("symmetry", 4), ("ipsc2", 16),
])
def test_parallel_cost_and_rounds_match(machine_name, pes):
    board = random_puzzle(3, 18, seed=3)
    cost, rounds, _ = ida_star_seq(board, 3)
    (pcost, prounds, pnodes), _ = run_puzzle(
        make_machine(machine_name, pes), board
    )
    assert (pcost, prounds) == (cost, rounds)
    assert pnodes >= 1


@pytest.mark.parametrize("split", [0, 2, 6, 50])
def test_split_grain_invariant(split):
    board = random_puzzle(3, 14, seed=5)
    cost, rounds, _ = ida_star_seq(board, 3)
    (pcost, prounds, _), _ = run_puzzle(
        make_machine("ipsc2", 8), board, split=split
    )
    assert (pcost, prounds) == (cost, rounds)


@pytest.mark.parametrize("queueing", ["fifo", "lifo", "prio"])
def test_queueing_invariant(queueing):
    board = random_puzzle(3, 16, seed=7)
    cost, rounds, _ = ida_star_seq(board, 3)
    (pcost, prounds, _), _ = run_puzzle(
        make_machine("ipsc2", 8), board, queueing=queueing
    )
    assert (pcost, prounds) == (cost, rounds)


def test_solved_board_costs_zero():
    (cost, rounds, nodes), _ = run_puzzle(make_machine("ideal", 4), goal_state(3))
    assert cost == 0
    assert rounds == 1


def test_multiple_rounds_reuse_quiescence():
    board = random_puzzle(3, 24, seed=2)
    cost, rounds, _ = ida_star_seq(board, 3)
    assert rounds >= 3  # the point of this instance
    (pcost, prounds, _), result = run_puzzle(make_machine("ipsc2", 8), board)
    assert (pcost, prounds) == (cost, rounds)
    # QD ran once per round at minimum.
    assert result.stats.qd_waves >= rounds
