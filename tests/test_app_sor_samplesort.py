"""SOR and sample-sort application tests."""

import numpy as np
import pytest

from repro import make_machine
from repro.apps.samplesort import run_samplesort
from repro.apps.sor import sor_seq, run_sor


# ------------------------------------------------------------------------ sor
def test_sor_seq_converges_faster_than_jacobi():
    from repro.apps.jacobi import jacobi_seq

    _, iters, resid = sor_seq(16, tol=1e-2, omega=1.5, max_iters=500)
    grid_j, resid_j = jacobi_seq(16, iters)
    assert resid < resid_j  # over-relaxation accelerates convergence


def test_sor_seq_respects_max_iters():
    _, iters, resid = sor_seq(32, tol=1e-12, max_iters=7)
    assert iters == 7
    assert resid > 1e-12


@pytest.mark.parametrize("machine_name,pes", [
    ("ideal", 1), ("symmetry", 4), ("ipsc2", 16),
])
def test_sor_parallel_matches_reference_exactly(machine_name, pes):
    ref_grid, ref_iters, ref_resid = sor_seq(16, tol=1e-2, max_iters=100)
    (grid, iters, resid), _ = run_sor(
        make_machine(machine_name, pes), n=16, blocks=4, tol=1e-2, max_iters=100
    )
    assert iters == ref_iters
    assert resid == pytest.approx(ref_resid)
    assert np.array_equal(grid, ref_grid)


@pytest.mark.parametrize("blocks", [1, 2, 8])
def test_sor_block_decomposition_invariant(blocks):
    ref_grid, ref_iters, _ = sor_seq(16, tol=1e-2, max_iters=60)
    (grid, iters, _), _ = run_sor(
        make_machine("ipsc2", 4), n=16, blocks=blocks, tol=1e-2, max_iters=60
    )
    assert iters == ref_iters
    assert np.array_equal(grid, ref_grid)


@pytest.mark.parametrize("omega", [1.0, 1.3, 1.8])
def test_sor_omega_invariant(omega):
    ref = sor_seq(16, tol=1e-2, omega=omega, max_iters=200)
    (grid, iters, _), _ = run_sor(
        make_machine("ideal", 4), n=16, blocks=2, tol=1e-2, omega=omega,
        max_iters=200,
    )
    assert iters == ref[1]
    assert np.array_equal(grid, ref[0])


def test_sor_max_iters_cap_parallel():
    (_, iters, resid), _ = run_sor(
        make_machine("ideal", 4), n=16, blocks=2, tol=1e-12, max_iters=5
    )
    assert iters == 5
    assert resid > 1e-12


def test_sor_indivisible_rejected():
    with pytest.raises(Exception):
        run_sor(make_machine("ideal", 2), n=10, blocks=3)


# ----------------------------------------------------------------- samplesort
@pytest.mark.parametrize("machine_name,pes", [
    ("ideal", 1), ("symmetry", 4), ("ipsc2", 16), ("cluster", 8),
])
def test_samplesort_matches_numpy(machine_name, pes):
    (inp, out), _ = run_samplesort(
        make_machine(machine_name, pes), n=1024, workers=8
    )
    assert np.array_equal(out, np.sort(inp))


@pytest.mark.parametrize("workers", [1, 2, 5, 16])
def test_samplesort_worker_count_invariant(workers):
    (inp, out), _ = run_samplesort(
        make_machine("ipsc2", 4), n=512, workers=workers
    )
    assert np.array_equal(out, np.sort(inp))


@pytest.mark.parametrize("oversample", [1, 4, 64])
def test_samplesort_oversampling_invariant(oversample):
    (inp, out), _ = run_samplesort(
        make_machine("ideal", 4), n=512, workers=8, oversample=oversample
    )
    assert np.array_equal(out, np.sort(inp))


def test_samplesort_tiny_inputs():
    (inp, out), _ = run_samplesort(make_machine("ideal", 2), n=3, workers=8)
    assert np.array_equal(out, np.sort(inp))
    (inp, out), _ = run_samplesort(make_machine("ideal", 2), n=1, workers=1)
    assert np.array_equal(out, np.sort(inp))


def test_samplesort_oversampling_balances_buckets():
    """More samples -> better splitters -> flatter final bucket sizes."""

    def spread(oversample):
        (_, out), result = run_samplesort(
            make_machine("ideal", 8), n=4096, workers=8, oversample=oversample
        )
        kernel = result.kernel
        sizes = [
            sum(len(piece) for piece in c.received)
            for c in kernel.chares.values()
            if type(c).__name__ == "SortWorker"
        ]
        return max(sizes) - min(sizes)

    assert spread(64) <= spread(1)


def test_samplesort_alltoall_dominates_bytes():
    _, result = run_samplesort(make_machine("ipsc2", 8), n=4096, workers=8)
    # 8 workers' slices ship twice (seed + buckets) plus samples/results:
    # the byte volume must be within sane bounds of 4x the raw data.
    raw = 4096 * 8
    assert raw < result.stats.total_bytes_sent < 6 * raw
