"""Synthetic-tree and histogram (distributed table) application tests."""

import pytest

from repro import make_machine
from repro.apps.histogram import run_histogram
from repro.apps.tree import TreeParams, run_tree, tree_seq


# ----------------------------------------------------------------------- tree
def test_tree_shape_deterministic():
    params = TreeParams(seed=3, max_depth=8)
    assert tree_seq(params) == tree_seq(params)


def test_tree_seed_changes_shape():
    a = tree_seq(TreeParams(seed=1, max_depth=9))
    b = tree_seq(TreeParams(seed=2, max_depth=9))
    assert a != b


def test_tree_depth_zero_is_single_leaf():
    assert tree_seq(TreeParams(seed=0, max_depth=0)) == (1, 1)


@pytest.mark.parametrize("balancer", ["local", "random", "central", "token", "acwn"])
def test_tree_parallel_counts_match(balancer):
    params = TreeParams(seed=5, max_depth=9, max_fanout=4, branch_bias=0.95)
    expected = tree_seq(params)
    answer, _ = run_tree(make_machine("ipsc2", 8), params, balancer=balancer)
    assert answer == expected


def test_tree_nodes_bound_leaves():
    params = TreeParams(seed=12, max_depth=10)
    nodes, leaves = tree_seq(params)
    assert 1 <= leaves <= nodes


def test_tree_balancing_beats_local_on_time():
    params = TreeParams(seed=7, max_depth=10, max_fanout=5, branch_bias=0.96)
    _, local = run_tree(make_machine("ipsc2", 8), params, balancer="local")
    _, acwn = run_tree(make_machine("ipsc2", 8), params, balancer="acwn")
    assert acwn.time < local.time


# ------------------------------------------------------------------ histogram
@pytest.mark.parametrize("machine_name,pes", [
    ("ideal", 1), ("symmetry", 4), ("ipsc2", 8),
])
def test_histogram_roundtrip_no_mismatches(machine_name, pes):
    (inserted, found, bad), _ = run_histogram(
        make_machine(machine_name, pes), items=80, workers=5
    )
    assert inserted == found == 80
    assert bad == 0


def test_histogram_more_workers_than_items():
    (inserted, found, bad), _ = run_histogram(
        make_machine("ideal", 4), items=3, workers=8
    )
    assert inserted == found == 3
    assert bad == 0


def test_histogram_throughput_improves_with_pes():
    _, r1 = run_histogram(make_machine("ipsc2", 1), items=128, workers=8)
    _, r8 = run_histogram(make_machine("ipsc2", 8), items=128, workers=8)
    assert r8.time < r1.time


def test_histogram_shards_are_populated():
    (_, _, bad), result = run_histogram(
        make_machine("ipsc2", 8), items=64, workers=4
    )
    assert bad == 0
    kernel = result.kernel
    sizes = [len(kernel.sharing.shard("hist", pe)) for pe in range(8)]
    assert sum(sizes) == 64
    assert sum(1 for s in sizes if s > 0) >= 3
