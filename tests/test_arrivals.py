"""Arrival-process and service-distribution generators (repro.workloads)."""

from __future__ import annotations

import math

import pytest

from repro.util.errors import ConfigurationError
from repro.workloads.arrivals import (
    Bursty,
    Diurnal,
    Poisson,
    ServiceSpec,
    arrival_times,
    offered_rate,
    service_demands,
)


# ------------------------------------------------------------------ generic
@pytest.mark.parametrize("spec", [
    Poisson(rate=5000.0, count=400),
    Bursty(rate_low=2000.0, rate_high=12000.0, count=400),
    Diurnal(rate_mean=5000.0, count=400, amplitude=0.7),
])
def test_streams_are_deterministic_sorted_and_sized(spec):
    a = arrival_times(spec, seed=11)
    b = arrival_times(spec, seed=11)
    assert a == b  # bit-identical, not approximately equal
    assert a != arrival_times(spec, seed=12)
    assert len(a) == spec.count
    assert all(t >= spec.start for t in a)
    assert a == sorted(a)


@pytest.mark.parametrize("spec", [
    Poisson(rate=1000.0, count=0),
    Bursty(rate_low=500.0, rate_high=2000.0, count=0),
    Diurnal(rate_mean=1000.0, count=0),
])
def test_zero_count_streams_are_empty(spec):
    assert arrival_times(spec, seed=1) == []


def test_start_offsets_every_arrival():
    base = arrival_times(Poisson(rate=2000.0, count=50), seed=3)
    shifted = arrival_times(Poisson(rate=2000.0, count=50, start=1.5), seed=3)
    assert shifted == pytest.approx([t + 1.5 for t in base])


# ------------------------------------------------------------------ poisson
def test_poisson_mean_rate_is_close():
    spec = Poisson(rate=4000.0, count=8000)
    times = arrival_times(spec, seed=5)
    observed = spec.count / times[-1]
    assert observed == pytest.approx(spec.rate, rel=0.05)


# ------------------------------------------------------------------- bursty
def test_bursty_mean_rate_and_burst_structure():
    spec = Bursty(rate_low=1000.0, rate_high=9000.0, count=8000,
                  dwell_low=3e-3, dwell_high=1e-3)
    times = arrival_times(spec, seed=7)
    observed = spec.count / times[-1]
    assert observed == pytest.approx(spec.mean_rate(), rel=0.10)
    # Burstiness: the squared coefficient of variation of inter-arrival
    # gaps must exceed a Poisson stream's (which has CV^2 == 1).
    gaps = [b - a for a, b in zip(times, times[1:])]
    mean = sum(gaps) / len(gaps)
    cv2 = sum((g - mean) ** 2 for g in gaps) / len(gaps) / mean**2
    assert cv2 > 1.3


def test_bursty_mean_rate_weighting():
    spec = Bursty(rate_low=1000.0, rate_high=5000.0, count=1,
                  dwell_low=3e-3, dwell_high=1e-3)
    assert spec.mean_rate() == pytest.approx((1000 * 3 + 5000 * 1) / 4)


# ------------------------------------------------------------------ diurnal
def test_diurnal_rate_modulates_with_phase():
    spec = Diurnal(rate_mean=5000.0, count=20000, amplitude=0.9,
                   period=50e-3)
    times = arrival_times(spec, seed=9)
    # Count arrivals in the rising half vs the falling half of each cycle:
    # with amplitude 0.9 the first half-period (sin > 0) must hold clearly
    # more arrivals than the second.
    half = spec.period / 2
    rising = sum(1 for t in times if (t % spec.period) < half)
    falling = len(times) - rising
    assert rising > 1.4 * falling


# ----------------------------------------------------------------- validation
@pytest.mark.parametrize("bad", [
    lambda: Poisson(rate=0.0, count=1),
    lambda: Poisson(rate=100.0, count=-1),
    lambda: Poisson(rate=100.0, count=1, start=-1.0),
    lambda: Bursty(rate_low=0.0, rate_high=100.0, count=1),
    lambda: Bursty(rate_low=10.0, rate_high=100.0, count=1, dwell_low=0.0),
    lambda: Diurnal(rate_mean=100.0, count=1, amplitude=1.0),
    lambda: Diurnal(rate_mean=100.0, count=1, period=0.0),
])
def test_invalid_arrival_specs_rejected(bad):
    with pytest.raises(ConfigurationError):
        arrival_times(bad(), seed=0)


def test_offered_rate():
    assert offered_rate(Poisson(rate=123.0, count=1)) == 123.0
    assert offered_rate(Diurnal(rate_mean=77.0, count=1)) == 77.0
    b = Bursty(rate_low=100.0, rate_high=300.0, count=1)
    assert offered_rate(b) == b.mean_rate()


# ------------------------------------------------------------------- service
def test_service_demands_shape_and_determinism():
    spec = ServiceSpec("exp", 300.0)
    d = service_demands(spec, count=50, hops=3, seed=2)
    assert d == service_demands(spec, count=50, hops=3, seed=2)
    assert d != service_demands(spec, count=50, hops=3, seed=3)
    assert len(d) == 50
    assert all(len(row) == 3 for row in d)
    assert all(x > 0.0 for row in d for x in row)


def test_fixed_service_is_constant():
    d = service_demands(ServiceSpec("fixed", 250.0), count=10, hops=2, seed=0)
    assert all(row == (250.0, 250.0) for row in d)


@pytest.mark.parametrize("spec", [
    ServiceSpec("exp", 400.0),
    ServiceSpec("lognormal", 400.0, shape=0.8),
    ServiceSpec("pareto", 400.0, shape=2.5),
])
def test_service_distribution_means(spec):
    d = service_demands(spec, count=20000, hops=1, seed=4)
    mean = sum(x for (x,) in d) / len(d)
    assert mean == pytest.approx(spec.mean, rel=0.08)


def test_pareto_tail_is_heavier_than_exp():
    n = 20000
    exp = sorted(x for (x,) in
                 service_demands(ServiceSpec("exp", 400.0), n, 1, 6))
    par = sorted(x for (x,) in
                 service_demands(ServiceSpec("pareto", 400.0, shape=1.5),
                                 n, 1, 6))
    p999 = math.ceil(0.999 * n) - 1
    assert par[p999] > 2.0 * exp[p999]


@pytest.mark.parametrize("bad", [
    lambda: ServiceSpec("gaussian", 100.0),
    lambda: ServiceSpec("exp", 0.0),
    lambda: ServiceSpec("pareto", 100.0, shape=1.0),
    lambda: ServiceSpec("lognormal", 100.0, shape=-0.5),
])
def test_invalid_service_specs_rejected(bad):
    with pytest.raises(ConfigurationError):
        service_demands(bad(), count=1, hops=1, seed=0)


def test_service_demands_input_validation():
    with pytest.raises(ConfigurationError):
        service_demands(ServiceSpec(), count=1, hops=0, seed=0)
    with pytest.raises(ConfigurationError):
        service_demands(ServiceSpec(), count=-1, hops=1, seed=0)
    assert service_demands(ServiceSpec(), count=0, hops=1, seed=0) == []
