"""Backend equivalence: BatchBackend must be bit-identical to HeapBackend.

The batch backend replaces the binary heap with a calendar queue draining
timestamp cohorts, and the kernel adds a grouped burst lane on top — none
of which may perturb a single bit of virtual time.  These tests pin that
three ways:

* engine-level unit tests of the BatchBackend queue semantics (ordering,
  cancellation, suspension/resume, bulk scheduling, drive stop/budget);
* drive() contract parity between the two backends on the same schedule;
* randomized RngStream-driven app x preset x balancer x queueing runs
  whose full fingerprints (result repr, hex floats, per-PE counters) must
  match across backends — including under fault injection and with
  structured event tracing enabled.
"""

from __future__ import annotations

import pytest

from repro.apps.fib import run_fib
from repro.apps.histogram import run_histogram
from repro.apps.nqueens import run_nqueens
from repro.apps.tree import TreeParams, run_tree
from repro.faults import FaultConfig
from repro.machine.presets import make_machine
from repro.sim.backend import BACKENDS, BatchBackend, HeapBackend, make_backend
from repro.util.errors import ConfigurationError, SchedulingError
from repro.util.rng import RngStream


# ------------------------------------------------------------ engine-level
def test_make_backend_registry():
    assert BACKENDS == ("batch", "heap")
    assert isinstance(make_backend("heap"), HeapBackend)
    assert isinstance(make_backend("batch"), BatchBackend)
    assert make_backend("heap").backend_name == "heap"
    assert make_backend("batch").backend_name == "batch"
    with pytest.raises(ConfigurationError):
        make_backend("wheel")


def test_batch_fires_in_time_then_seq_order():
    eng = BatchBackend()
    order = []
    eng.schedule_call(2.0, order.append, "c")
    eng.schedule_call(1.0, order.append, "a")
    eng.schedule_call(2.0, order.append, "d")
    eng.schedule(1.0, lambda: order.append("b"))
    eng.run()
    assert order == ["a", "b", "c", "d"]
    assert eng.now == 2.0
    assert eng.events_fired == 4
    assert eng.pending == 0


def test_batch_same_time_events_scheduled_mid_cohort_join_in_seq_order():
    eng = BatchBackend()
    order = []

    def first(_):
        order.append("first")
        # Same-time events appended while the t=1 cohort is draining must
        # fire within this cohort, after already-queued entries.
        eng.schedule_call(1.0, order.append, "late")

    eng.schedule_call(1.0, first, None)
    eng.schedule_call(1.0, order.append, "second")
    eng.run()
    assert order == ["first", "second", "late"]


def test_batch_cancel_skips_and_counts():
    eng = BatchBackend()
    fired = []
    ev = eng.schedule(1.0, lambda: fired.append("dead"))
    eng.schedule_call(1.0, fired.append, "live")
    assert eng.pending == 2
    ev.cancel()
    assert ev.cancelled
    assert eng.pending == 1
    ev.cancel()  # idempotent
    assert eng.pending == 1
    eng.run()
    assert fired == ["live"]
    assert eng.events_fired == 1


def test_batch_schedule_past_raises():
    eng = BatchBackend()
    eng.schedule_call(1.0, lambda _: None, None)
    eng.run()
    with pytest.raises(SchedulingError):
        eng.schedule_call(0.5, lambda _: None, None)
    with pytest.raises(SchedulingError):
        eng.schedule(0.5, lambda: None)
    with pytest.raises(SchedulingError):
        eng.schedule_after(-1.0, lambda: None)


def test_batch_schedule_calls_bulk_order_and_interleave():
    eng = BatchBackend()
    order = []
    eng.schedule_call(1.0, order.append, 0)
    eng.schedule_calls(1.0, order.append, [1, 2, 3])
    eng.schedule_call(1.0, order.append, 4)
    eng.schedule_calls(1.0, order.append, [5])
    eng.schedule_calls(2.0, order.append, [7, 8])
    eng.schedule_call(1.0, order.append, 6)
    eng.run()
    assert order == list(range(9))
    assert eng.events_fired == 9


def test_batch_step_and_run_interleave_with_suspended_cohort():
    eng = BatchBackend()
    order = []
    for tag in ("a", "b", "c"):
        eng.schedule_call(1.0, order.append, tag)
    eng.schedule_call(3.0, order.append, "z")
    # Drain one event, leaving the t=1 cohort suspended mid-bucket.
    eng.run(max_events=1)
    assert order == ["a"]
    # More same-time work arrives while suspended; it must queue behind
    # the existing cohort entries, not jump them.
    eng.schedule_call(1.0, order.append, "d")
    assert eng.step() is True
    eng.run()
    assert order == ["a", "b", "c", "d", "z"]
    assert eng.pending == 0


def test_batch_run_until_is_inclusive_and_advances_clock():
    eng = BatchBackend()
    order = []
    eng.schedule_call(1.0, order.append, "a")
    eng.schedule_call(2.0, order.append, "b")
    eng.schedule_call(5.0, order.append, "c")
    eng.run(until=2.0)
    assert order == ["a", "b"]
    # Clock parks exactly at the horizon when the next event lies beyond.
    eng.run(until=3.0)
    assert eng.now == 3.0
    assert order == ["a", "b"]
    eng.run()
    assert order == ["a", "b", "c"]


def test_batch_exception_leaves_queue_consistent():
    eng = BatchBackend()
    order = []

    def boom(_):
        raise RuntimeError("boom")

    eng.schedule_call(1.0, order.append, "a")
    eng.schedule_call(1.0, boom, None)
    eng.schedule_call(1.0, order.append, "b")
    with pytest.raises(RuntimeError):
        eng.run()
    # The raising event is consumed (like the heap engine's pop-then-fire)
    # and counters/cursor stay exact, so the drain can resume.
    assert order == ["a"]
    assert eng.events_fired == 2
    assert eng.pending == 1
    eng.run()
    assert order == ["a", "b"]
    assert eng.pending == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_drive_budget_and_truncation(backend):
    eng = make_backend(backend)
    order = []
    for i in range(5):
        eng.schedule_call(float(i // 2), order.append, i)
    fired, truncated = eng.drive(max_events=3)
    assert (fired, truncated) == (3, True)
    assert order == [0, 1, 2]
    fired, truncated = eng.drive()
    assert (fired, truncated) == (2, False)
    assert order == [0, 1, 2, 3, 4]
    # Budget landing exactly on the drain still reports truncation (the
    # historical kernel loop checked the budget before discovering the
    # queue was empty).
    eng2 = make_backend(backend)
    eng2.schedule_call(0.0, order.append, 9)
    assert eng2.drive(max_events=1) == (1, True)


@pytest.mark.parametrize("backend", BACKENDS)
def test_drive_request_stop_wins_over_budget(backend):
    eng = make_backend(backend)
    order = []

    def stopper(tag):
        order.append(tag)
        eng.request_stop()

    eng.schedule_call(0.0, order.append, "a")
    eng.schedule_call(1.0, stopper, "stop")
    eng.schedule_call(2.0, order.append, "never")
    fired, truncated = eng.drive(max_events=2)
    assert order == ["a", "stop"]
    assert (fired, truncated) == (2, False)  # stop, not truncation
    assert eng.pending == 1


@pytest.mark.parametrize("backend", BACKENDS)
def test_drive_truncation_at_cohort_boundary_keeps_clock(backend):
    # Regression: the batch path used to advance ``now`` to the *next*
    # cohort's timestamp when the budget expired exactly at a cohort
    # boundary (the outer bucket loop set the clock before checking the
    # budget), so a truncated run's final time depended on the backend.
    eng = make_backend(backend)
    order = []
    for i in range(3):
        eng.schedule_call(1.0, order.append, i)
    for i in range(3, 5):
        eng.schedule_call(2.0, order.append, i)
    fired, truncated = eng.drive(max_events=3)
    assert (fired, truncated) == (3, True)
    assert order == [0, 1, 2]
    assert eng.now == 1.0  # must not leak into the unfired cohort
    fired, truncated = eng.drive()
    assert (fired, truncated) == (2, False)
    assert order == [0, 1, 2, 3, 4]
    assert eng.now == 2.0


@pytest.mark.parametrize("backend", BACKENDS)
def test_request_stop_mid_cohort_preserves_remainder(backend):
    # A stop requested while a timestamp cohort is partially drained must
    # not lose or reorder the cohort's remaining events.
    eng = make_backend(backend)
    order = []

    def stopper(tag):
        order.append(tag)
        eng.request_stop()

    eng.schedule_call(1.0, order.append, "a")
    eng.schedule_call(1.0, stopper, "stop")
    eng.schedule_call(1.0, order.append, "b")
    eng.schedule_call(1.0, order.append, "c")
    eng.schedule_call(2.0, order.append, "d")
    fired, truncated = eng.drive()
    assert (fired, truncated) == (2, False)
    assert order == ["a", "stop"]
    assert eng.now == 1.0
    assert eng.pending == 3
    # Resume: the remainder fires exactly once, in schedule order.
    fired, truncated = eng.drive()
    assert (fired, truncated) == (3, False)
    assert order == ["a", "stop", "b", "c", "d"]
    assert eng.now == 2.0
    assert eng.pending == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_budgeted_stop_then_boundary_truncation(backend):
    # Stop mid-cohort under a budget, then resume with a budget that runs
    # out exactly at the cohort boundary — the two edge cases composed.
    eng = make_backend(backend)
    order = []

    def stopper(tag):
        order.append(tag)
        eng.request_stop()

    eng.schedule_call(1.0, order.append, "a")
    eng.schedule_call(1.0, stopper, "stop")
    eng.schedule_call(1.0, order.append, "b")
    eng.schedule_call(1.0, order.append, "c")
    eng.schedule_call(2.0, order.append, "d")
    assert eng.drive(max_events=4) == (2, False)  # stop wins over budget
    assert order == ["a", "stop"]
    assert eng.drive(max_events=2) == (2, True)
    assert order == ["a", "stop", "b", "c"]
    assert eng.now == 1.0  # boundary truncation: clock stays on the cohort
    assert eng.drive() == (1, False)
    assert order == ["a", "stop", "b", "c", "d"]
    assert eng.now == 2.0


def test_drive_parity_on_random_schedule():
    rng = RngStream(77, "drive-parity")
    times = [float(rng.randint(0, 9)) for _ in range(200)]
    logs = {}
    for backend in BACKENDS:
        eng = make_backend(backend)
        log = []
        for i, t in enumerate(times):
            eng.schedule_call(t, log.append, i)
        out = [eng.drive(max_events=37)]
        while eng.pending:
            out.append(eng.drive(max_events=37))
        logs[backend] = (log, out, eng.now, eng.events_fired)
    assert logs["heap"] == logs["batch"]


# ------------------------------------------------------------ kernel-level
def _fingerprint(answer, result) -> dict:
    k = result.kernel
    return {
        "result": repr(answer),
        "time": float(result.time).hex(),
        "events": result.events,
        "truncated": result.truncated,
        "counted_sent": tuple(k.counted_sent),
        "counted_processed": tuple(k.counted_processed),
        "total_message_hops": k.total_message_hops,
        "pes": tuple(
            (
                float(pe.busy_time).hex(),
                pe.msgs_executed,
                pe.seeds_executed,
                pe.system_executed,
                pe.msgs_sent,
                pe.bytes_sent,
                pe.seeds_created,
                pe.max_queued,
            )
            for pe in (k.pes[i] for i in range(k.num_pes))
        ),
    }


_RUNNERS = {
    "fib": lambda machine, common: run_fib(
        machine, n=12, threshold=5, **common
    ),
    "queens": lambda machine, common: run_nqueens(
        machine, n=6, grainsize=2, **common
    ),
    "tree": lambda machine, common: run_tree(
        machine, TreeParams(seed=5, max_depth=6), **common
    ),
    "histogram": lambda machine, common: run_histogram(
        machine, items=64, workers=5, **common
    ),
}


def _run_on(backend, app, machine_name, pes, common, **kernel_kwargs):
    machine = make_machine(machine_name, pes, backend=backend)
    answer, result = _RUNNERS[app](machine, dict(common, **kernel_kwargs))
    return _fingerprint(answer, result), result


def test_randomized_config_equivalence():
    """Random app x preset x balancer x queueing draws match across backends."""
    rng = RngStream(2026, "backend-equiv")
    apps = sorted(_RUNNERS)
    machines = ["symmetry", "multimax", "ipsc2", "ncube2", "cluster",
                "ideal", "hetero"]
    balancers = ["random", "acwn", "token", "central"]
    queueings = ["fifo", "lifo", "prio", "bitprio"]
    for draw in range(8):
        app = apps[rng.randint(0, len(apps) - 1)]
        machine_name = machines[rng.randint(0, len(machines) - 1)]
        pes = 8  # hypercubes need powers of two; 8 exists everywhere
        common = dict(
            balancer=balancers[rng.randint(0, len(balancers) - 1)],
            queueing=queueings[rng.randint(0, len(queueings) - 1)],
            seed=rng.randint(0, 10_000),
        )
        heap_fp, _ = _run_on("heap", app, machine_name, pes, common)
        batch_fp, _ = _run_on("batch", app, machine_name, pes, common)
        assert heap_fp == batch_fp, (
            f"draw {draw}: {app}@{machine_name} {common} diverged"
        )


@pytest.mark.parametrize("cfg_kw", [
    dict(jitter=3e-6),
    dict(drop_prob=0.05, ack_timeout=2e-3),
    dict(dup_prob=0.05),
    dict(slow_pes=(1, 3), slow_factor=2.0, stall_prob=0.02, stall_time=1e-4),
])
def test_fault_injection_equivalence(cfg_kw):
    """Drops/retries/jitter perturb both backends identically."""
    common = dict(balancer="acwn", queueing="fifo", seed=4)
    fps = {}
    for backend in BACKENDS:
        fps[backend], _ = _run_on(
            backend, "fib", "ipsc2", 8, common, faults=FaultConfig(**cfg_kw)
        )
    assert fps["heap"] == fps["batch"]


def test_tracing_equivalence():
    """Structured event logs (ids, times, payloads) match record for record."""
    common = dict(balancer="acwn", queueing="fifo", seed=1)
    records = {}
    for backend in BACKENDS:
        fp, result = _run_on(
            backend, "queens", "ncube2", 8, common, trace_events="all"
        )
        records[backend] = (fp, result.kernel.events.as_records())
    assert records["heap"] == records["batch"]


def test_burst_lane_matches_scalar_flush():
    """The batch burst lane (tracing/faults off) equals the scalar path.

    Forcing the scalar fallback on the batch backend by enabling a no-op
    fault layer would change RNG draws, so instead compare batch-with-burst
    against heap (always scalar): the fanout-heavy histogram/tree shapes
    exercise outboxes well past the burst threshold.
    """
    for app, machine_name in (("histogram", "ideal"), ("tree", "ncube2")):
        common = dict(balancer="random", queueing="fifo", seed=2)
        heap_fp, _ = _run_on("heap", app, machine_name, 16, common)
        batch_fp, _ = _run_on("batch", app, machine_name, 16, common)
        assert heap_fp == batch_fp


def test_randomized_turn_loop_vs_scalar_equivalence():
    """The run-to-completion turn loop must be observationally invisible.

    Random draws over app x preset x balancer x queueing x faults x
    tracing x backend compare a default kernel (turn loop armed where
    eligible) against ``turn_loop=False`` (per-event scalar scheduling,
    the historical path) — full fingerprints, including ``max_queued``
    and event counts, must match bit for bit.  Draws with faults or
    tracing exercise the lane's bail-out (it must disarm, not perturb);
    plain draws exercise the inline turns, cohort bundling and the
    elided-completion accounting.
    """
    rng = RngStream(1991, "turn-equiv")
    apps = sorted(_RUNNERS)
    machines = ["symmetry", "multimax", "ipsc2", "ncube2", "cluster",
                "ideal", "hetero"]
    balancers = ["random", "acwn", "token", "central", "roundrobin"]
    queueings = ["fifo", "lifo", "prio", "bitprio"]
    fault_draws = [None, None, FaultConfig(jitter=3e-6),
                   FaultConfig(drop_prob=0.05, ack_timeout=2e-3)]
    for draw in range(10):
        app = apps[rng.randint(0, len(apps) - 1)]
        machine_name = machines[rng.randint(0, len(machines) - 1)]
        backend = ("heap", "batch")[rng.randint(0, 1)]
        common = dict(
            balancer=balancers[rng.randint(0, len(balancers) - 1)],
            queueing=queueings[rng.randint(0, len(queueings) - 1)],
            seed=rng.randint(0, 10_000),
        )
        kw = {}
        faults = fault_draws[rng.randint(0, len(fault_draws) - 1)]
        if faults is not None:
            kw["faults"] = faults
        if rng.randint(0, 1):
            kw["trace_events"] = "all"
        turn_fp, turn_res = _run_on(backend, app, machine_name, 8, common,
                                    **kw)
        scalar_fp, scalar_res = _run_on(backend, app, machine_name, 8,
                                        common, turn_loop=False, **kw)
        assert turn_fp == scalar_fp, (
            f"draw {draw}: {app}@{machine_name}/{backend} {common} "
            f"{sorted(kw)} diverged"
        )
        if "trace_events" in kw:
            assert (turn_res.kernel.events.as_records()
                    == scalar_res.kernel.events.as_records())


def test_sparse_boc_equivalence_p10k():
    """Sparse BOC collectives (write-once spans) must be backend- and
    turn-loop-invariant at P=10⁴: create/broadcast/reduce over the
    touched-rank virtual tree produce identical times, event counts and
    per-rank counters on heap vs batch, turn vs scalar."""
    from repro.core.chare import BranchOfficeChare, Chare, entry
    from repro.core.kernel import Kernel

    def merge(a, b):
        return tuple(sorted(set(a) | set(b)))

    class SpanBoc(BranchOfficeChare):
        def __init__(self):
            pass

        @entry
        def ping(self, target):
            self.contribute("who", (self.my_pe,), merge, target=target,
                            entry_name="collected")

    class Toucher(Chare):
        def __init__(self, parent):
            self.send(parent, "touched")

    class Main(Chare):
        def __init__(self, ranks):
            self.pending = len(ranks)
            for pe in ranks:
                self.create(Toucher, self.thishandle, pe=pe)

        @entry
        def touched(self):
            self.pending -= 1
            if self.pending == 0:
                boc = self.create_boc(SpanBoc)
                self.broadcast_branches(boc, "ping", self.thishandle)

        @entry
        def collected(self, tag, value):
            self.exit(value)

    ranks = sorted(i * 419 for i in range(1, 17))  # 16 ranks within 10k
    fps = {}
    for backend in BACKENDS:
        for turn in (None, False):
            machine = make_machine("cluster", 10_000, backend=backend,
                                   sparse=True)
            res = Kernel(machine, turn_loop=turn).run(Main, ranks)
            k = res.kernel
            boc_id = next(iter(k.boc_spans))
            fps[(backend, turn)] = (
                repr(res.result), float(res.time).hex(), res.events,
                tuple(k.boc_spans[boc_id][0]),
                tuple(sorted(k.bocs[boc_id])),
                tuple(sorted(k.pes)),
                tuple((s.index, s.msgs_executed, s.system_executed,
                       s.msgs_sent, s.bytes_sent, s.counted_sent,
                       s.counted_processed, s.max_queued)
                      for s in k.pes.states()),
            )
    baseline = fps[("heap", None)]
    assert baseline[3] == tuple(sorted([0] + ranks))  # span == touched set
    for key, fp in fps.items():
        assert fp == baseline, f"{key} diverged from heap/turn"


def test_backend_selection_plumbing():
    """Explicit Kernel arg > machine.backend > heap default."""
    from repro.core.kernel import Kernel

    m = make_machine("ideal", 2)
    assert Kernel(m).backend_name == "heap"
    m2 = make_machine("ideal", 2, backend="batch")
    assert m2.backend == "batch"
    assert Kernel(m2).backend_name == "batch"
    assert Kernel(m2, backend="heap").backend_name == "heap"
    k = Kernel(make_machine("ideal", 2), backend="batch")
    assert isinstance(k.engine, BatchBackend)
    with pytest.raises(ConfigurationError):
        Kernel(make_machine("ideal", 2), backend="bogus")


def test_describe_carries_backend_into_params_and_cache_key():
    from repro.bench.harness import describe, use_backend

    base = describe("fib", "ideal", 4)
    assert dict(base.params).get("backend") is None
    explicit = describe("fib", "ideal", 4, backend="batch")
    assert dict(explicit.params)["backend"] == "batch"
    assert explicit.key() != base.key()
    # heap is the default: explicitly asking for it keeps the historical
    # descriptor shape (and therefore existing cache keys).
    assert describe("fib", "ideal", 4, backend="heap").key() == base.key()
    with use_backend("batch"):
        ambient = describe("fib", "ideal", 4)
        assert dict(ambient.params)["backend"] == "batch"
        assert ambient.key() == explicit.key()
        # Explicit argument overrides the ambient backend.
        assert describe("fib", "ideal", 4, backend="").key() == base.key()
    assert describe("fib", "ideal", 4).key() == base.key()
    with pytest.raises(ConfigurationError):
        use_backend("bogus").__enter__()


def test_execute_descriptor_runs_batch_backend():
    from repro.bench.harness import describe, execute_descriptor

    heap_row = execute_descriptor(describe("fib", "ipsc2", 8, n=12,
                                           threshold=5))
    batch_row = execute_descriptor(describe("fib", "ipsc2", 8, n=12,
                                            threshold=5, backend="batch"))
    assert batch_row.result.kernel.backend_name == "batch"
    assert heap_row.answer == batch_row.answer
    assert float(heap_row.vtime).hex() == float(batch_row.vtime).hex()
