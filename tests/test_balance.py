"""Load-balancing strategies: placement behavior and invariants."""

import pytest

from repro import Chare, Kernel, entry, make_machine
from repro.balance import make_balancer
from repro.util.errors import ConfigurationError


class Worker(Chare):
    def __init__(self, parent, i):
        self.charge(200)
        self.send(parent, "ran_on", i, self.my_pe)


class FanoutMain(Chare):
    def __init__(self, n):
        self.n = n
        self.placements = {}
        for i in range(n):
            self.create(Worker, self.thishandle, i)

    @entry
    def ran_on(self, i, pe):
        self.placements[i] = pe
        if len(self.placements) == self.n:
            self.exit(self.placements)


def _run(balancer, pes=8, n=64, machine="ipsc2", seed=0, **kw):
    kernel = Kernel(make_machine(machine, pes), balancer=balancer, seed=seed, **kw)
    result = kernel.run(FanoutMain, n)
    return result, kernel


def test_make_balancer_unknown():
    with pytest.raises(ConfigurationError):
        make_balancer("psychic")


def test_local_keeps_everything_on_creator():
    result, _ = _run("local")
    assert set(result.result.values()) == {0}


def test_random_spreads_over_all_pes():
    result, _ = _run("random", n=128)
    used = set(result.result.values())
    assert len(used) >= 6  # 128 seeds over 8 PEs: near-certainly most PEs


def test_roundrobin_is_cyclic():
    result, _ = _run("roundrobin", n=16)
    # Creator is PE0 with cursor starting at 0: seeds go 1,2,...,7,0,1,...
    expected = {i: (i + 1) % 8 for i in range(16)}
    assert result.result == expected


def test_central_distributes_beyond_manager():
    result, kernel = _run("central", n=64)
    used = set(result.result.values())
    assert len(used) >= 4
    # All seeds transited PE0; remote assignments were recorded.
    assert kernel.balancer.seeds_placed_remote > 0


def test_token_work_arrives_at_thieves():
    result, kernel = _run("token", n=64)
    used = set(result.result.values())
    assert len(used) > 1, "stealing never moved any work"
    st = result.stats
    attempts = sum(r.steal_attempts for r in st.pe_rows)
    satisfied = sum(r.steals_satisfied for r in st.pe_rows)
    assert attempts >= satisfied > 0


def test_acwn_spreads_and_bounds_hops():
    result, kernel = _run("acwn", n=128)
    used = set(result.result.values())
    assert len(used) >= 4
    max_hops = kernel.balancer.max_hops
    assert max_hops >= 2  # hypercube diameter of 8 PEs is 3


def test_acwn_threshold_validation():
    with pytest.raises(ConfigurationError):
        make_balancer("acwn", threshold=0)


def test_answers_identical_across_balancers():
    answers = set()
    for strategy in ("local", "random", "roundrobin", "central", "token", "acwn"):
        result, _ = _run(strategy, n=32)
        answers.add(tuple(sorted(result.result.keys())))
    assert len(answers) == 1


def test_all_balancers_single_pe():
    for strategy in ("local", "random", "roundrobin", "central", "token", "acwn"):
        result, _ = _run(strategy, pes=1, n=8, machine="ideal")
        assert set(result.result.values()) == {0}


def test_note_load_piggyback_updates_table():
    _, kernel = _run("acwn", n=32)
    bal = kernel.balancer
    known_entries = sum(len(d) for d in bal.known.values())
    assert known_entries > 0


def test_explicit_balancer_instance_accepted():
    bal = make_balancer("acwn", threshold=3)
    kernel = Kernel(make_machine("ipsc2", 4), balancer=bal)
    result = kernel.run(FanoutMain, 16)
    assert len(result.result) == 16
    assert kernel.balancer is bal


def test_pinned_seeds_never_stolen():
    class PinnedMain(Chare):
        def __init__(self, n):
            self.n = n
            self.placements = {}
            for i in range(n):
                self.create(Worker, self.thishandle, i, pe=0)  # all pinned

        @entry
        def ran_on(self, i, pe):
            self.placements[i] = pe
            if len(self.placements) == self.n:
                self.exit(self.placements)

    kernel = Kernel(make_machine("ipsc2", 8), balancer="token", seed=1)
    result = kernel.run(PinnedMain, 24)
    assert set(result.result.values()) == {0}
