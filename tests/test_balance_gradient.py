"""Gradient balancer + priolifo queueing + new machine presets."""

import pytest

from repro import Kernel, make_machine
from repro.apps.tree import TreeParams, run_tree, tree_seq
from repro.balance import make_balancer
from repro.queueing.strategies import LifoPriorityStrategy, make_strategy
from repro.util.errors import ConfigurationError
from tests.conftest import run_echo


# ------------------------------------------------------------------- gradient
def test_gradient_correctness_on_tree():
    params = TreeParams(seed=5, max_depth=9, max_fanout=4, branch_bias=0.95)
    expected = tree_seq(params)
    answer, result = run_tree(make_machine("ipsc2", 8), params, balancer="gradient")
    assert answer == expected
    assert result.stats.lb_control_msgs > 0  # gradient floods happened


def test_gradient_spreads_work():
    params = TreeParams(seed=7, max_depth=10, max_fanout=5, branch_bias=0.96)
    _, grad = run_tree(make_machine("ipsc2", 8), params, balancer="gradient")
    _, local = run_tree(make_machine("ipsc2", 8), params, balancer="local")
    assert grad.time < local.time
    busy = [r.busy_time for r in grad.stats.pe_rows]
    assert sum(1 for b in busy if b > 0) >= 4


def test_gradient_radius_validation():
    with pytest.raises(ConfigurationError):
        make_balancer("gradient", radius=0)


def test_gradient_single_pe():
    result = run_echo(make_machine("ideal", 1), n=4, balancer="gradient")
    assert len(result.result) == 4


def test_gradient_deterministic():
    params = TreeParams(seed=2, max_depth=9)
    a = run_tree(make_machine("ipsc2", 8), params, balancer="gradient", seed=3)[1]
    b = run_tree(make_machine("ipsc2", 8), params, balancer="gradient", seed=3)[1]
    assert a.time == b.time


# ------------------------------------------------------------------- priolifo
def test_priolifo_orders_by_priority_then_lifo():
    q = LifoPriorityStrategy()
    q.push("a", 5)
    q.push("b", 1)
    q.push("c", 5)
    q.push("d", 1)
    out = [q.pop() for _ in range(4)]
    assert out == ["d", "b", "c", "a"]


def test_priolifo_unprioritized_last():
    q = make_strategy("priolifo")
    q.push("none1", None)
    q.push("none2", None)
    q.push("prio", 100)
    assert q.pop() == "prio"
    assert q.pop() == "none2"  # LIFO among unprioritized
    assert q.pop() == "none1"


def test_priolifo_empty_pop_raises():
    from repro.util.errors import SchedulingError

    with pytest.raises(SchedulingError):
        make_strategy("priolifo").pop()


def test_priolifo_runs_programs():
    result = run_echo(make_machine("ipsc2", 4), n=8, queueing="priolifo")
    assert [i for i, _ in result.result] == list(range(8))


# -------------------------------------------------------------------- presets
def test_new_presets_exist_and_contrast():
    i860 = make_machine("ipsc860", 8)
    i2 = make_machine("ipsc2", 8)
    n1 = make_machine("ncube1", 8)
    assert i860.params.work_unit_time < i2.params.work_unit_time
    assert n1.params.work_unit_time > i2.params.work_unit_time
    assert n1.params.alpha > i2.params.alpha


def test_faster_cpu_same_network_is_more_comm_bound():
    """iPSC/860 vs iPSC/2: faster nodes => lower parallel efficiency at the
    same fine grain (communication can't keep up) — the classic effect."""
    from repro.apps.nqueens import run_nqueens

    def eff(machine_name):
        t1 = run_nqueens(make_machine(machine_name, 1), n=7, grainsize=2)[1].time
        tp = run_nqueens(make_machine(machine_name, 8), n=7, grainsize=2)[1].time
        return t1 / tp / 8

    assert eff("ipsc860") < eff("ipsc2")
