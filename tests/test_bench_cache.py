"""Cache invalidation and robustness for the content-addressed result cache.

The safety property: a cached row may only be replayed when *neither* the
run configuration nor the simulator sources changed, and nothing on disk
— corruption, truncation, format skew — may ever crash a sweep or leak a
wrong row.  Bad files are misses; the next store overwrites them.
"""

import os
import pickle

from repro.bench.cache import ResultCache
from repro.bench.harness import describe
from repro.bench.parallel import SweepExecutor, use_executor
from repro.util.hashing import source_fingerprint


def _tree(tmp_path, name="tree"):
    root = tmp_path / name
    (root / "pkg").mkdir(parents=True)
    (root / "mod.py").write_text("X = 1\n")
    (root / "pkg" / "__init__.py").write_text("")
    (root / "pkg" / "core.py").write_text("def f():\n    return 2\n")
    (root / "notes.txt").write_text("ignored: not a .py file\n")
    return root


# ---------------------------------------------------------- fingerprinting
def test_source_fingerprint_stable(tmp_path):
    root = _tree(tmp_path)
    assert source_fingerprint(str(root)) == source_fingerprint(str(root))


def test_source_fingerprint_changes_on_edit(tmp_path):
    root = _tree(tmp_path)
    before = source_fingerprint(str(root))
    (root / "pkg" / "core.py").write_text("def f():\n    return 3\n")
    assert source_fingerprint(str(root)) != before


def test_source_fingerprint_changes_on_rename_and_add(tmp_path):
    root = _tree(tmp_path)
    before = source_fingerprint(str(root))
    os.rename(root / "mod.py", root / "mod2.py")
    renamed = source_fingerprint(str(root))
    assert renamed != before
    (root / "extra.py").write_text("")
    assert source_fingerprint(str(root)) != renamed


def test_source_fingerprint_ignores_non_python(tmp_path):
    root = _tree(tmp_path)
    before = source_fingerprint(str(root))
    (root / "notes.txt").write_text("edited\n")
    assert source_fingerprint(str(root)) == before


def test_default_fingerprint_covers_repro_package():
    import repro

    pkg_root = os.path.dirname(os.path.abspath(repro.__file__))
    assert source_fingerprint() == source_fingerprint(pkg_root)


# ---------------------------------------------------- invalidation on edit
def test_source_edit_forces_reexecution(tmp_path):
    """Editing a source file flips the fingerprint: old rows become misses."""
    src = _tree(tmp_path, "src")
    cache_dir = str(tmp_path / "cache")
    desc = describe("fib", "ideal", 2, n=10, threshold=5)

    old = ResultCache(cache_dir, fingerprint=source_fingerprint(str(src)))
    with SweepExecutor(jobs=1, cache=old) as ex, use_executor(ex):
        row = ex.run_one(desc)
    assert old.stores == 1

    (src / "mod.py").write_text("X = 99\n")
    edited = ResultCache(cache_dir, fingerprint=source_fingerprint(str(src)))
    assert edited.fingerprint != old.fingerprint
    with SweepExecutor(jobs=1, cache=edited) as ex, use_executor(ex):
        rerun = ex.run_one(desc)
    assert edited.misses == 1 and edited.hits == 0 and edited.stores == 1
    assert rerun.vtime == row.vtime  # same config → same virtual time

    # Reverting the edit restores the original fingerprint and its entry.
    (src / "mod.py").write_text("X = 1\n")
    reverted = ResultCache(cache_dir, fingerprint=source_fingerprint(str(src)))
    assert reverted.fingerprint == old.fingerprint
    assert reverted.get(desc) is not None


# ------------------------------------------------------- corruption = miss
def test_corrupt_cache_file_is_miss_not_crash(tmp_path):
    cache = ResultCache(str(tmp_path), fingerprint="fp")
    desc = describe("fib", "ideal", 1, n=10, threshold=5)
    with SweepExecutor(jobs=1, cache=cache) as ex, use_executor(ex):
        row = ex.run_one(desc)
    path = cache.path(desc)

    with open(path, "wb") as fh:
        fh.write(b"\x00garbage not a pickle")
    fresh = ResultCache(str(tmp_path), fingerprint="fp")
    assert fresh.get(desc) is None
    assert fresh.misses == 1

    # The next store overwrites the corpse and restores service.
    fresh.put(desc, row)
    assert fresh.get(desc) is not None


def test_truncated_cache_file_is_miss(tmp_path):
    cache = ResultCache(str(tmp_path), fingerprint="fp")
    desc = describe("fib", "ideal", 1, n=10, threshold=5)
    with SweepExecutor(jobs=1, cache=cache) as ex, use_executor(ex):
        ex.run_one(desc)
    path = cache.path(desc)
    blob = open(path, "rb").read()
    with open(path, "wb") as fh:
        fh.write(blob[: len(blob) // 2])
    assert ResultCache(str(tmp_path), fingerprint="fp").get(desc) is None


def test_empty_cache_file_is_miss(tmp_path):
    cache = ResultCache(str(tmp_path), fingerprint="fp")
    desc = describe("fib", "ideal", 1, n=10, threshold=5)
    path = cache.path(desc)
    os.makedirs(os.path.dirname(path))
    open(path, "wb").close()
    assert cache.get(desc) is None
    assert cache.misses == 1


def test_format_or_key_skew_is_miss(tmp_path):
    cache = ResultCache(str(tmp_path), fingerprint="fp")
    desc = describe("fib", "ideal", 1, n=10, threshold=5)
    path = cache.path(desc)
    os.makedirs(os.path.dirname(path))
    with open(path, "wb") as fh:
        pickle.dump({"format": 999, "key": cache.key(desc), "row": "bogus"},
                    fh)
    assert cache.get(desc) is None
    with open(path, "wb") as fh:
        pickle.dump({"format": 1, "key": "someone-elses-key", "row": "bogus"},
                    fh)
    assert cache.get(desc) is None
    assert cache.misses == 2


def test_put_never_pickles_live_kernel(tmp_path):
    from repro.bench.harness import execute_descriptor

    cache = ResultCache(str(tmp_path), fingerprint="fp")
    desc = describe("fib", "ideal", 1, n=10, threshold=5)
    row = execute_descriptor(desc)
    assert row.result is not None  # inline rows carry the live run
    cache.put(desc, row)
    cached = cache.get(desc)
    assert cached.result is None
    assert cached.vtime == row.vtime


def test_hit_rate_accounting(tmp_path):
    cache = ResultCache(str(tmp_path), fingerprint="fp")
    desc = describe("fib", "ideal", 1, n=10, threshold=5)
    assert cache.hit_rate == 0.0
    assert cache.get(desc) is None
    with SweepExecutor(jobs=1, cache=cache) as ex, use_executor(ex):
        ex.run_one(desc)
    assert cache.get(desc) is not None
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 2 and stats["stores"] == 1
    assert stats["hit_rate"] == round(1 / 3, 4)
