"""Unit tests for the bench harness, table formatting, and CLIs."""

import pytest

from repro.bench.harness import APPS, MeasureRow, measure, speedup_sweep
from repro.bench.tables import format_series, format_table
from repro.util.errors import ConfigurationError


# --------------------------------------------------------------------- tables
def test_format_table_alignment():
    text = format_table(
        ["name", "value"], [["alpha", 1.5], ["b", 12345.678]], title="T"
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert len(lines) == 5


def test_format_table_number_formats():
    text = format_table(["x"], [[0.123456], [12.3456], [12345.6], [0]])
    assert "0.123" in text
    assert "12.35" in text
    assert "12,346" in text
    assert "\n0" in text


def test_format_series():
    line = format_series("s", [1, 2], [1.0, 1.5])
    assert line == "s: (1,1.000) (2,1.500)"


# -------------------------------------------------------------------- harness
def test_all_app_specs_have_runners():
    for name, spec in APPS.items():
        assert callable(spec.runner)
        assert spec.name == name
        assert isinstance(spec.defaults, dict)


def test_measure_returns_row():
    row = measure("fib", "ideal", 2, n=12, threshold=6)
    assert isinstance(row, MeasureRow)
    assert row.answer == 144
    assert row.vtime_ms > 0
    assert row.machine == "ideal"


def test_measure_override_wins_over_default():
    row = measure("queens", "ideal", 1, n=5, grainsize=2)
    assert row.answer[0] == 10  # 5-queens, not the default 8-queens (92)


def test_measure_queueing_kwarg():
    row = measure("fib", "ideal", 2, queueing="lifo", n=10, threshold=5)
    assert row.queueing == "lifo"


def test_speedup_sweep_shapes():
    sweep = speedup_sweep("fib", "ipsc2", [1, 2, 4], n=14, threshold=7)
    assert sweep.pes == [1, 2, 4]
    assert len(sweep.times) == 3
    assert sweep.speedups[0] == pytest.approx(1.0)
    assert sweep.consistent()
    assert all(e > 0 for e in sweep.efficiencies)


def test_measure_unknown_app_rejected():
    with pytest.raises(ConfigurationError):
        measure("quicksort3000", "ideal", 1)


# ------------------------------------------------------------------------ CLI
def test_bench_cli_single_experiment(capsys):
    from repro.bench.__main__ import main

    assert main(["--exp", "t9", "--scale", "quick", "--jobs", "1",
                 "--no-cache", "--no-progress"]) == 0
    out = capsys.readouterr().out
    assert "T9" in out
    assert "QD waves" in out


def test_bench_cli_rejects_unknown(capsys):
    from repro.bench.__main__ import main
    from repro.util.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        main(["--exp", "t99"])


def test_apps_cli_runs_app(capsys):
    from repro.apps.__main__ import main

    rc = main(["fib", "--machine", "ideal", "-P", "2",
               "--set", "n=12", "threshold=6"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "answer    : 144" in out


def test_apps_cli_timeline(capsys):
    from repro.apps.__main__ import main

    rc = main(["fib", "--machine", "ideal", "-P", "2", "--timeline",
               "--set", "n=10", "threshold=5"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "timeline" in out
    assert "PE  0" in out


def test_apps_cli_bad_set_pair():
    from repro.apps.__main__ import main

    with pytest.raises(SystemExit):
        main(["fib", "--set", "n:12"])


def test_apps_cli_value_parsing():
    from repro.apps.__main__ import _parse_value

    assert _parse_value("3") == 3
    assert _parse_value("2.5") == 2.5
    assert _parse_value("true") is True
    assert _parse_value("false") is False
    assert _parse_value("eager") == "eager"
