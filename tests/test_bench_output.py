"""The bench CLI's --output recording and small leftovers."""

import json

import pytest

from repro.bench.__main__ import main, _jsonable


def test_output_writes_txt_and_json(tmp_path, capsys):
    out = tmp_path / "results"
    assert main(["--exp", "t9", "--scale", "quick", "--output", str(out),
                 "--jobs", "1", "--cache-dir", str(tmp_path / "cache"),
                 "--no-progress"]) == 0
    txt = (out / "t9.txt").read_text()
    assert "T9" in txt and "QD waves" in txt
    payload = json.loads((out / "t9.json").read_text())
    assert payload["id"] == "T9"
    assert payload["scale"] == "quick"
    assert payload["data"]


def test_jsonable_coerces_everything():
    class Odd:
        def __repr__(self):
            return "<odd>"

    data = {(1, 2): [Odd(), 3, (4.5, None)], "k": {"n": True}}
    out = _jsonable(data)
    assert out == {"(1, 2)": ["<odd>", 3, [4.5, None]], "k": {"n": True}}
    json.dumps(out)  # must round-trip


def test_engine_advance_to_never_goes_backward():
    from repro.sim.engine import Engine

    eng = Engine()
    eng.schedule(1.0, lambda: None)
    eng.run()
    eng.advance_to(0.5)
    assert eng.now == 1.0
    eng.advance_to(2.5)
    assert eng.now == 2.5


def test_envelope_kind_name_unknown():
    from repro.core.handles import ChareHandle
    from repro.core.messages import Envelope

    env = Envelope(kind=99, src_pe=0, dst_pe=0, entry="x",
                   handle=ChareHandle(0))
    assert env.kind_name() == "?"


def test_load_imbalance_zero_when_idle():
    from repro.trace.report import PERow, TraceReport

    report = TraceReport(machine="m", num_pes=1, queueing="fifo",
                         balancer="local", total_time=0.0,
                         pe_rows=[PERow(0, 0.0, 0.0, 0, 0, 0, 0, 0, 0,
                                        0.0, 0, 0, 0)])
    assert report.load_imbalance == 0.0
    assert report.mean_utilization == 0.0


def test_entry_error_propagates_not_swallowed(ideal4):
    from repro import Chare, Kernel, entry

    class Boom(Chare):
        def __init__(self, main):
            self.send(main, "ok")

        @entry
        def explode(self):
            raise ValueError("app bug")

    class Main(Chare):
        def __init__(self):
            self.child = self.create(Boom, self.thishandle, pe=1)

        @entry
        def ok(self):
            self.send(self.child, "explode")

    with pytest.raises(ValueError, match="app bug"):
        Kernel(ideal4).run(Main)
