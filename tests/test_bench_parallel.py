"""Determinism guard and failure isolation for the parallel sweep executor.

The tentpole invariant: because every run is deterministic virtual time,
``--jobs N`` must produce *byte-identical* experiment tables to the
serial path, and a cache hit must replay the identical row.  These tests
pin that, plus the executor's failure-isolation contract (a failing run
is reported by descriptor, not by killing the sweep).
"""

import json
from dataclasses import replace

import pytest

from repro.bench.cache import ResultCache
from repro.bench.descriptors import RunDescriptor
from repro.bench.experiments import run_experiment
from repro.bench.harness import APPS, AppSpec, describe, measure, measure_many
from repro.bench.parallel import SweepExecutor, SweepRunError, use_executor


def _run(exp_id, **executor_kwargs):
    with SweepExecutor(**executor_kwargs) as ex, use_executor(ex):
        return run_experiment(exp_id, scale="quick")


def _payload(result):
    return (result.text, json.dumps(result.data, default=repr, sort_keys=True))


# ------------------------------------------------------- determinism guard
def test_t2_jobs4_byte_identical_to_serial():
    serial = _run("t2", jobs=1)
    parallel = _run("t2", jobs=4)
    assert _payload(parallel) == _payload(serial)


def test_r1_jobs4_byte_identical_to_serial():
    """R1 engages the fault layer (drops/retries) — still schedule-invariant."""
    serial = _run("r1", jobs=1)
    parallel = _run("r1", jobs=4)
    assert _payload(parallel) == _payload(serial)


def test_cache_hit_replays_identical_row(tmp_path):
    cache = ResultCache(str(tmp_path), fingerprint="pinned")
    with SweepExecutor(jobs=1, cache=cache) as ex, use_executor(ex):
        first = measure("fib", "ipsc2", 4, n=12, threshold=6)
    assert cache.stores == 1 and cache.hits == 0
    replay_cache = ResultCache(str(tmp_path), fingerprint="pinned")
    with SweepExecutor(jobs=1, cache=replay_cache) as ex, use_executor(ex):
        second = measure("fib", "ipsc2", 4, n=12, threshold=6)
    assert replay_cache.hits == 1 and replay_cache.stores == 0
    # The replayed row equals the executed one in every projected field
    # (the live RunResult is inline-only by design).
    assert second.result is None
    assert replace(first, result=None) == second


def test_cached_experiment_table_identical(tmp_path):
    cache_dir = str(tmp_path)
    cold = _run("t9", jobs=1, cache=ResultCache(cache_dir))
    warm_cache = ResultCache(cache_dir)
    warm = _run("t9", jobs=1, cache=warm_cache)
    assert warm_cache.hits > 0 and warm_cache.misses == 0
    assert _payload(warm) == _payload(cold)


# -------------------------------------------------------- failure isolation
@pytest.fixture
def exploding_app(monkeypatch):
    def boom(machine, seed=0, **params):
        raise ValueError("deliberate kaboom")

    monkeypatch.setitem(APPS, "exploding", AppSpec("exploding", boom, {}))
    return "exploding"


def test_inline_failure_names_descriptor(exploding_app):
    good = describe("fib", "ideal", 1, n=10, threshold=5)
    bad = describe(exploding_app, "ideal", 2)
    with SweepExecutor(jobs=1) as ex, use_executor(ex):
        with pytest.raises(SweepRunError) as err:
            measure_many([good, bad, good])
    assert "exploding@ideal P=2" in str(err.value)
    assert "deliberate kaboom" in str(err.value)


def test_pooled_failure_names_descriptor_and_batch_survives(exploding_app):
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("monkeypatched app registry needs fork start method")
    good = describe("fib", "ideal", 1, n=10, threshold=5)
    bad = describe(exploding_app, "ideal", 2)
    with SweepExecutor(jobs=2) as ex, use_executor(ex):
        with pytest.raises(SweepRunError) as err:
            measure_many([good, bad, good])
    assert "exploding@ideal P=2" in str(err.value)
    # Exactly the one bad descriptor failed; the good runs completed.
    assert len(err.value.failures) == 1


def test_pool_reused_warm_across_batches():
    descs = [describe("fib", "ideal", p, n=10, threshold=5) for p in (1, 2)]
    with SweepExecutor(jobs=2) as ex, use_executor(ex):
        measure_many(descs)
        pool_first = ex._pool
        measure_many(descs)
        assert ex._pool is pool_first
        assert pool_first is not None


def test_jobs1_never_creates_pool():
    with SweepExecutor(jobs=1) as ex, use_executor(ex):
        measure("fib", "ideal", 1, n=10, threshold=5)
        assert ex._pool is None


def test_executor_summary_counts(tmp_path):
    cache = ResultCache(str(tmp_path), fingerprint="pinned")
    descs = [describe("fib", "ideal", p, n=10, threshold=5) for p in (1, 2)]
    with SweepExecutor(jobs=1, cache=cache) as ex, use_executor(ex):
        measure_many(descs)
        measure_many(descs)  # replayed
        summary = ex.summary()
    assert summary["runs_executed"] == 2
    assert summary["runs_cached"] == 2
    assert summary["cache"]["hit_rate"] == pytest.approx(0.5)


# ------------------------------------------------------------- descriptors
def test_descriptor_key_stable_and_discriminating():
    a = describe("queens", "ipsc2", 4, n=6, grainsize=2)
    b = describe("queens", "ipsc2", 4, n=6, grainsize=2)
    assert a == b
    assert a.key("fp") == b.key("fp")
    assert a.key("fp") != a.key("other-code")
    assert a.key("fp") != describe("queens", "ipsc2", 4, n=7,
                                   grainsize=2).key("fp")
    assert a.key("fp") != describe("queens", "ipsc2", 8, n=6,
                                   grainsize=2).key("fp")


def test_descriptor_rejects_live_objects():
    from repro.util.errors import ConfigurationError

    desc = RunDescriptor("fib", "ideal", 1, 0,
                         params=(("callback", object()),))
    with pytest.raises(ConfigurationError):
        desc.key("fp")


def test_describe_unknown_app_rejected():
    from repro.util.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        describe("doom", "ideal", 2)
