"""Host-throughput reporter: the `_best_rate` pairing/degenerate fixes."""

import json
import time

import pytest

from repro.bench.perf import _best_rate


class _Clock:
    """Scripted replacement for time.perf_counter."""

    def __init__(self, values):
        self._values = list(values)

    def __call__(self):
        return self._values.pop(0)


def test_best_rate_pairs_ops_with_their_own_timing(monkeypatch):
    """A fast run with few ops must not borrow a slow run's op count.

    Run 1: 100 ops in 1.0 s (100/s).  Run 2: 5 ops in 0.1 s (50/s).  The
    old code paired the *last* ops (5) with the *best* time (0.1) — a rate
    of 50/s; worse pairings could fabricate rates no run achieved.  The
    answer is the best per-run rate: 100/s.
    """
    monkeypatch.setattr(time, "perf_counter", _Clock([0.0, 1.0, 1.0, 1.1]))
    ops = iter([100, 5])
    assert _best_rate(lambda: next(ops), repeats=2) == pytest.approx(100.0)


def test_best_rate_takes_max_rate(monkeypatch):
    monkeypatch.setattr(time, "perf_counter",
                        _Clock([0.0, 2.0, 2.0, 2.5, 2.5, 3.5]))
    ops = iter([10, 10, 10])
    # Rates: 5/s, 20/s, 10/s -> 20/s.
    assert _best_rate(lambda: next(ops), repeats=3) == pytest.approx(20.0)


def test_best_rate_zero_duration_guarded(monkeypatch):
    """Runs the clock cannot resolve yield 0.0, not inf (JSON-safe)."""
    monkeypatch.setattr(time, "perf_counter", _Clock([1.0, 1.0, 1.0, 1.0]))
    rate = _best_rate(lambda: 1000, repeats=2)
    assert rate == 0.0
    assert json.loads(json.dumps({"r": rate}))["r"] == 0.0


def test_best_rate_skips_only_degenerate_runs(monkeypatch):
    monkeypatch.setattr(time, "perf_counter",
                        _Clock([0.0, 0.0, 0.0, 0.5]))
    ops = iter([100, 100])
    # First run unresolvable, second gives 200/s.
    assert _best_rate(lambda: next(ops), repeats=2) == pytest.approx(200.0)


# ------------------------------------------------- host context & baselines
def test_record_includes_host_context(tmp_path):
    from repro.bench import perf

    path = str(tmp_path / "bench.json")
    entry = perf.record(path, "test-entry", metrics={"engine_events_per_s": 1.0})
    host = entry["host"]
    assert isinstance(host["cpu_count"], int) and host["cpu_count"] >= 1
    assert host["load_avg_1m"] is None or isinstance(host["load_avg_1m"], float)
    on_disk = json.loads(open(path).read())["entries"]
    assert on_disk[-1]["host"] == host


def test_host_context_without_getloadavg(monkeypatch):
    import os

    from repro.bench.perf import host_context

    monkeypatch.delattr(os, "getloadavg")
    ctx = host_context()
    assert ctx["load_avg_1m"] is None
    assert ctx["cpu_count"] == os.cpu_count()


def test_guard_baseline_skips_exp_wall_entries():
    from repro.bench.perf import _guard_baseline

    guarded = {"label": "hot-path", "metrics": {"engine_events_per_s": 9.9}}
    entries = [
        {"label": "older", "metrics": {"kernel_msgs_per_s": 1.0}},
        guarded,
        {"label": "wall", "metrics": {"exp_all_wall_s_serial": 12.0}},
        {"label": "wall-2", "metrics": {"exp_all_cache_hit_rate": 1.0}},
    ]
    assert _guard_baseline(entries) is guarded


def test_guard_baseline_tolerates_malformed_entries():
    from repro.bench.perf import _guard_baseline

    assert _guard_baseline([]) is None
    assert _guard_baseline([{"label": "no-metrics"}]) is None
    assert _guard_baseline([{"metrics": {"exp_all_jobs": 4.0}}]) is None


def test_check_uses_last_guarded_entry(tmp_path, monkeypatch, capsys):
    """--check must not be disabled (or misled) by a trailing exp-wall
    entry or by pre-host-context entries missing fields."""
    from repro.bench import perf

    path = str(tmp_path / "bench.json")
    data = {"entries": [
        # Old-format entry: no "host", guarded metrics present.
        {"label": "seed", "timestamp": "t0", "python": "3",
         "metrics": {"engine_events_per_s": 100.0,
                     "kernel_msgs_per_s": 100.0,
                     "kernel_seeds_per_s": 100.0}},
        # Newest entry only has wall-clock metrics.
        {"label": "wall", "timestamp": "t1", "python": "3",
         "host": {"cpu_count": 1, "load_avg_1m": None},
         "metrics": {"exp_all_wall_s_serial": 9.0}},
    ]}
    with open(path, "w") as fh:
        json.dump(data, fh)
    monkeypatch.setattr(
        perf, "measure_throughput",
        lambda repeats=3, backend="heap": {"engine_events_per_s": 95.0,
                                           "kernel_msgs_per_s": 95.0,
                                           "kernel_seeds_per_s": 95.0})
    assert perf.check(path) is True
    out = capsys.readouterr().out
    assert "'seed'" in out

    monkeypatch.setattr(
        perf, "measure_throughput",
        lambda repeats=3, backend="heap": {"engine_events_per_s": 10.0,
                                           "kernel_msgs_per_s": 95.0,
                                           "kernel_seeds_per_s": 95.0})
    assert perf.check(path) is False
    assert "REGRESSION" in capsys.readouterr().out


def test_host_context_records_backend():
    from repro.bench.perf import host_context

    assert host_context()["backend"] == "heap"
    assert host_context(backend="batch")["backend"] == "batch"


def test_guard_baseline_never_crosses_backends():
    """A batch entry's 3x rate must not become the heap path's bar."""
    from repro.bench.perf import _guard_baseline

    heap_entry = {"label": "heap", "timestamp": "t0",
                  "host": {"backend": "heap"},
                  "metrics": {"engine_events_per_s": 100.0}}
    legacy_entry = {"label": "pre-backend", "timestamp": "t0",
                    "metrics": {"engine_events_per_s": 90.0}}
    batch_entry = {"label": "batch", "timestamp": "t1",
                   "host": {"backend": "batch"},
                   "metrics": {"engine_batch_events_per_s": 300.0}}
    entries = [legacy_entry, heap_entry, batch_entry]
    assert _guard_baseline(entries, "heap") is heap_entry
    assert _guard_baseline(entries, "batch") is batch_entry
    # Entries predating host.backend count as heap.
    assert _guard_baseline([legacy_entry, batch_entry], "heap") is legacy_entry
    assert _guard_baseline([heap_entry], "batch") is None


def test_check_skips_metrics_missing_on_either_side(tmp_path, monkeypatch,
                                                    capsys):
    """Batch-mode check guards only the batch metric family."""
    from repro.bench import perf

    path = str(tmp_path / "bench.json")
    data = {"entries": [
        {"label": "batch-base", "timestamp": "t0", "python": "3",
         "host": {"cpu_count": 1, "load_avg_1m": None, "backend": "batch"},
         "metrics": {"engine_batch_events_per_s": 300.0,
                     "kernel_batch_seeds_per_s": 300.0}},
    ]}
    with open(path, "w") as fh:
        json.dump(data, fh)
    monkeypatch.setattr(
        perf, "measure_throughput",
        lambda repeats=3, backend="heap": {
            "engine_batch_events_per_s": 290.0,
            "kernel_batch_seeds_per_s": 290.0})
    assert perf.check(path, backend="batch") is True
    out = capsys.readouterr().out
    assert "'batch-base'" in out
    # Heap-family metrics are absent on both sides: no spurious comparison.
    assert "engine_events_per_s:" not in out


def test_measure_exp_wall_records_all_passes(tmp_path, monkeypatch):
    from repro.bench import perf

    metrics = perf.measure_exp_wall(scale="quick", jobs=2, exps=["t9"])
    assert metrics["exp_all_jobs"] == 2.0
    assert metrics["exp_all_wall_s_serial"] > 0
    assert metrics["exp_all_wall_s_jobs2"] > 0
    assert metrics["exp_all_wall_s_warm_cache"] > 0
    assert metrics["exp_all_cache_hit_rate"] == pytest.approx(1.0)
    # Warm-cache replay must be dramatically cheaper than executing.
    assert (metrics["exp_all_wall_s_warm_cache"]
            < metrics["exp_all_wall_s_serial"])
