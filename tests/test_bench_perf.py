"""Host-throughput reporter: the `_best_rate` pairing/degenerate fixes."""

import json
import time

import pytest

from repro.bench.perf import _best_rate


class _Clock:
    """Scripted replacement for time.perf_counter."""

    def __init__(self, values):
        self._values = list(values)

    def __call__(self):
        return self._values.pop(0)


def test_best_rate_pairs_ops_with_their_own_timing(monkeypatch):
    """A fast run with few ops must not borrow a slow run's op count.

    Run 1: 100 ops in 1.0 s (100/s).  Run 2: 5 ops in 0.1 s (50/s).  The
    old code paired the *last* ops (5) with the *best* time (0.1) — a rate
    of 50/s; worse pairings could fabricate rates no run achieved.  The
    answer is the best per-run rate: 100/s.
    """
    monkeypatch.setattr(time, "perf_counter", _Clock([0.0, 1.0, 1.0, 1.1]))
    ops = iter([100, 5])
    assert _best_rate(lambda: next(ops), repeats=2) == pytest.approx(100.0)


def test_best_rate_takes_max_rate(monkeypatch):
    monkeypatch.setattr(time, "perf_counter",
                        _Clock([0.0, 2.0, 2.0, 2.5, 2.5, 3.5]))
    ops = iter([10, 10, 10])
    # Rates: 5/s, 20/s, 10/s -> 20/s.
    assert _best_rate(lambda: next(ops), repeats=3) == pytest.approx(20.0)


def test_best_rate_zero_duration_guarded(monkeypatch):
    """Runs the clock cannot resolve yield 0.0, not inf (JSON-safe)."""
    monkeypatch.setattr(time, "perf_counter", _Clock([1.0, 1.0, 1.0, 1.0]))
    rate = _best_rate(lambda: 1000, repeats=2)
    assert rate == 0.0
    assert json.loads(json.dumps({"r": rate}))["r"] == 0.0


def test_best_rate_skips_only_degenerate_runs(monkeypatch):
    monkeypatch.setattr(time, "perf_counter",
                        _Clock([0.0, 0.0, 0.0, 0.5]))
    ops = iter([100, 100])
    # First run unresolvable, second gives 200/s.
    assert _best_rate(lambda: next(ops), repeats=2) == pytest.approx(200.0)
