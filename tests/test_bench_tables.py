"""Edge cases for table/series formatting and ASCII figure rendering.

Pins the corners the experiment suite can actually hit: thousands
separators widening a column, empty sweeps, single-P sweeps, and
degenerate (flat/single-point) chart ranges.
"""

from repro.bench.figures import render_chart
from repro.bench.harness import describe, measure_many, sweep_from_rows
from repro.bench.tables import format_series, format_table


# ------------------------------------------------------------ format_table
def test_separator_alignment_with_thousands_grouping():
    """1,000-style grouping adds characters; widths must track the
    *rendered* cell, so the dashed rule still spans every column."""
    text = format_table(["app", "events"], [["fib", 1234567.0], ["q", 5.0]])
    header, rule, wide_row, narrow_row = text.splitlines()
    assert "1,234,567" in wide_row
    assert len(header) == len(rule) == len(wide_row) == len(narrow_row)
    # Rule segments mirror the final column widths exactly.
    assert rule == "-" * 3 + "  " + "-" * len("1,234,567")
    # Numeric column is right-aligned: narrow value ends flush.
    assert narrow_row.endswith("5.000")
    assert len(narrow_row.split()[-1]) == 5


def test_format_table_empty_rows():
    text = format_table(["P", "time"], [], title="empty sweep")
    lines = text.splitlines()
    assert lines == ["empty sweep", "P  time", "-  ----"]


def test_format_table_no_title_no_blank_line():
    text = format_table(["a"], [["x"]])
    assert text.splitlines()[0] == "a"


def test_format_table_negative_and_zero():
    text = format_table(["v"], [[-1500.0], [0.0], [-0.25]])
    assert "-1,500" in text
    assert "\n0" in text
    assert "-0.250" in text


def test_format_series_empty():
    assert format_series("s", [], []) == "s: "


def test_format_series_mismatched_lengths_zip_truncates():
    assert format_series("s", [1, 2, 3], [1.0]) == "s: (1,1.000)"


# ----------------------------------------------------------- single-P sweep
def test_single_p_sweep_is_well_defined():
    descs = [describe("fib", "ideal", 1, n=10, threshold=5)]
    rows = measure_many(descs)
    sweep = sweep_from_rows("fib", "ideal", [1], rows)
    assert sweep.pes == [1]
    assert sweep.speedups == [1.0]
    assert sweep.efficiencies == [1.0]
    assert sweep.consistent()
    table = format_table(
        ["P", "speedup"], [[p, s] for p, s in zip(sweep.pes, sweep.speedups)]
    )
    assert table.splitlines()[-1].split() == ["1", "1.000"]


# ------------------------------------------------------------- render_chart
def test_render_chart_empty_series_dict():
    assert render_chart({}) == "(empty chart)"


def test_render_chart_series_with_no_points():
    assert render_chart({"s": []}) == "(empty chart)"


def test_render_chart_single_point_degenerate_ranges():
    """One point: x and y ranges are zero-width; scaling must not divide
    by zero, and the point lands at the origin corner of the grid."""
    text = render_chart({"only": [(4.0, 2.0)]}, width=20, height=6)
    lines = text.splitlines()
    assert lines[0].startswith(f"{3.0:>10.2f}")   # y_hi = y_lo + 1
    assert lines[5].startswith(f"{2.0:>10.2f}")   # y_lo row carries the mark
    assert "o" in lines[5]
    assert "o" not in lines[0]
    assert "    o only" in text


def test_render_chart_flat_series():
    """All-equal y values (perfect efficiency line) must still render."""
    text = render_chart({"eff": [(1, 1.0), (2, 1.0), (4, 1.0)]},
                        width=24, height=5)
    bottom_row = text.splitlines()[4]
    assert bottom_row.count("o") == 3


def test_render_chart_mark_cycling_and_legend_order():
    series = {f"s{i}": [(i, i)] for i in range(10)}
    text = render_chart(series)
    legend = [l.strip() for l in text.splitlines()[-10:]]
    assert legend[0] == "o s0"
    assert legend[8] == "o s8"  # marks cycle after 8 series
    assert legend[9] == "x s9"
