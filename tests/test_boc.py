"""Branch-office chares: replication, branch messaging, reductions."""

import pytest

from repro import BranchOfficeChare, Chare, Kernel, entry, make_machine
from repro.util.errors import RoutingError


class CounterBoc(BranchOfficeChare):
    """Per-PE counter with a broadcast bump and a reduction collect."""

    def __init__(self, start):
        self.count = start

    @entry
    def bump(self, by):
        self.charge(5)
        self.count += by

    @entry
    def report(self, target):
        self.contribute("counts", self.count, "sum", target=target,
                        entry_name="collected")

    @entry
    def who(self, target):
        self.contribute("pes", (self.branch_pe_marker(),), _concat,
                        target=target, entry_name="collected")

    def branch_pe_marker(self):
        return self.my_pe


def _concat(a, b):
    return tuple(sorted(a + b))


class BocMain(Chare):
    def __init__(self, mode):
        self.boc = self.create_boc(CounterBoc, 10)
        if mode == "broadcast":
            self.broadcast_branches(self.boc, "bump", 1)
            self.broadcast_branches(self.boc, "report", self.thishandle)
        elif mode == "single":
            self.send_branch(self.boc, self.num_pes - 1, "bump", 5)
            self.broadcast_branches(self.boc, "report", self.thishandle)
        elif mode == "who":
            self.broadcast_branches(self.boc, "who", self.thishandle)

    @entry
    def collected(self, tag, value):
        self.exit(value)


@pytest.mark.parametrize("machine_name", ["ideal", "symmetry", "ipsc2"])
def test_broadcast_reaches_every_branch(machine_name):
    p = 8
    machine = make_machine(machine_name, p)
    result = Kernel(machine).run(BocMain, "broadcast")
    assert result.result == p * 11  # each branch 10 + 1


def test_send_branch_targets_one_pe(ideal4):
    result = Kernel(ideal4).run(BocMain, "single")
    assert result.result == 4 * 10 + 5


def test_reduction_with_custom_op(ipsc8):
    result = Kernel(ipsc8).run(BocMain, "who")
    assert result.result == tuple(range(8))


def test_reduction_min_max():
    class MinBoc(BranchOfficeChare):
        def __init__(self):
            pass

        @entry
        def go(self, target):
            self.contribute("m", self.my_pe * 10, "max", target=target,
                            entry_name="collected")

    class Main(Chare):
        def __init__(self):
            boc = self.create_boc(MinBoc)
            self.broadcast_branches(boc, "go", self.thishandle)

        @entry
        def collected(self, tag, value):
            self.exit(value)

    result = Kernel(make_machine("ideal", 6)).run(Main)
    assert result.result == 50


def test_local_branch_is_same_pe_object():
    class Probe(BranchOfficeChare):
        def __init__(self):
            self.touched = False

    class Main(Chare):
        def __init__(self):
            self.boc = self.create_boc(Probe)
            self.send(self.thishandle, "later")

        @entry
        def later(self):
            branch = self.local_branch(self.boc)
            assert branch.my_pe == self.my_pe == 0
            branch.touched = True
            self.exit(branch.touched)

    assert Kernel(make_machine("ideal", 4)).run(Main).result is True


def test_local_branch_before_construction_raises(ideal4):
    class Probe(BranchOfficeChare):
        def __init__(self):
            pass

    class Main(Chare):
        def __init__(self):
            boc = self.create_boc(Probe)
            # Constructed by a *message*; not yet present inside this ctor.
            self.local_branch(boc)

    with pytest.raises(RoutingError):
        Kernel(ideal4).run(Main)


def test_contribute_requires_target(ideal4):
    class Probe(BranchOfficeChare):
        def __init__(self):
            pass

        @entry
        def go(self):
            self.contribute("t", 1, "sum")

    class Main(Chare):
        def __init__(self):
            boc = self.create_boc(Probe)
            self.send_branch(boc, 0, "go")

    with pytest.raises(RoutingError):
        Kernel(ideal4).run(Main)


def test_messages_to_branches_before_construction_buffered():
    """send_branch racing ahead of the replication broadcast must be held."""

    class Probe(BranchOfficeChare):
        def __init__(self):
            self.ready = True

        @entry
        def poke(self, target):
            assert self.ready
            self.send(target, "done", self.my_pe)

    class Main(Chare):
        def __init__(self):
            boc = self.create_boc(Probe)
            # Race: branch creation travels down the tree; this message goes
            # point-to-point and can arrive first on far PEs.
            self.send_branch(boc, self.num_pes - 1, "poke", self.thishandle)

        @entry
        def done(self, pe):
            self.exit(pe)

    machine = make_machine("ipsc2", 16)
    assert Kernel(machine).run(Main).result == 15


def test_two_bocs_are_independent(ideal4):
    class A(BranchOfficeChare):
        def __init__(self):
            self.tag = "a"

    class B(BranchOfficeChare):
        def __init__(self):
            self.tag = "b"

    class Main(Chare):
        def __init__(self):
            self.a = self.create_boc(A)
            self.b = self.create_boc(B)
            self.send(self.thishandle, "later")

        @entry
        def later(self):
            assert self.local_branch(self.a).tag == "a"
            assert self.local_branch(self.b).tag == "b"
            self.exit(True)

    assert Kernel(ideal4).run(Main).result is True


def test_p1_boc_works():
    machine = make_machine("ideal", 1)
    result = Kernel(machine).run(BocMain, "broadcast")
    assert result.result == 11
