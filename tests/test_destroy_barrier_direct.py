"""Chare destruction, BOC barriers, and the direct runner."""

import pytest

from repro import BranchOfficeChare, Chare, Kernel, entry, make_machine
from repro.core.direct import DirectRunner, stress
from repro.util.errors import RoutingError


# -------------------------------------------------------------------- destroy
def test_self_destroy_removes_chare(ideal4):
    class Ephemeral(Chare):
        def __init__(self, main):
            self.send(main, "done", self.my_pe)
            self.destroy()

    class Main(Chare):
        def __init__(self):
            self.h = self.create(Ephemeral, self.thishandle, pe=1)

        @entry
        def done(self, pe):
            self.exit(self.h.gid not in self._kernel.chares)

    assert Kernel(ideal4).run(Main).result is True


def test_message_to_destroyed_chare_raises(ideal4):
    class Ephemeral(Chare):
        def __init__(self):
            self.destroy()

    class Main(Chare):
        def __init__(self):
            h = self.create(Ephemeral, pe=1)
            self.send(h, "poke")

        @entry
        def poke(self):  # pragma: no cover - never reached
            pass

    with pytest.raises(RoutingError):
        Kernel(ideal4).run(Main)


def test_destroy_remote_chare_rejected(ideal4):
    class Victim(Chare):
        def __init__(self):
            pass

    class Main(Chare):
        def __init__(self):
            self.h = self.create(Victim, pe=1)
            self.send(self.thishandle, "later")

        @entry
        def later(self):
            self.destroy(self.h)  # lives on PE 1, we are PE 0

    with pytest.raises(RoutingError):
        Kernel(ideal4).run(Main)


def test_destroy_unknown_handle_rejected(ideal4):
    from repro.core.handles import ChareHandle

    class Main(Chare):
        def __init__(self):
            self.destroy(ChareHandle(999))

    with pytest.raises(RoutingError):
        Kernel(ideal4).run(Main)


# -------------------------------------------------------------------- barrier
class PhaseBoc(BranchOfficeChare):
    """Counts phases; every branch re-arrives at each barrier together."""

    def __init__(self, main, phases):
        self.main = main
        self.phases = phases
        self.my_phase = 0

    @entry
    def go(self):
        self.charge(10 * (self.my_pe + 1))  # deliberately skewed work
        self.barrier(f"phase{self.my_phase}", "released")

    @entry
    def released(self, tag, count):
        assert count == self.num_pes
        assert tag == f"phase{self.my_phase}"
        self.my_phase += 1
        if self.my_phase == self.phases:
            if self.my_pe == 0:
                self.send(self.main, "finished", self.my_phase)
        else:
            self.go()


class BarrierMain(Chare):
    def __init__(self, phases):
        boc = self.create_boc(PhaseBoc, self.thishandle, phases)
        self.broadcast_branches(boc, "go")

    @entry
    def finished(self, phases):
        self.exit(phases)


@pytest.mark.parametrize("machine_name,pes", [
    ("ideal", 1), ("ideal", 4), ("ipsc2", 16),
])
def test_barrier_releases_all_branches(machine_name, pes):
    result = Kernel(make_machine(machine_name, pes)).run(BarrierMain, 3)
    assert result.result == 3


def test_barrier_is_actually_synchronizing():
    """No branch may enter phase k+1 before all reached the phase-k barrier."""
    entered = []

    class Probe(BranchOfficeChare):
        def __init__(self):
            pass

        @entry
        def go(self):
            self.charge(100 * (self.my_pe + 1))
            entered.append(("arrive", self.my_pe, self.now))
            self.barrier("b", "released")

        @entry
        def released(self, tag, count):
            entered.append(("release", self.my_pe, self.now))
            if self.my_pe == 0:
                self.send(self.mainhandle, "finished", None)

    class Main(Chare):
        def __init__(self):
            boc = self.create_boc(Probe)
            self.broadcast_branches(boc, "go")

        @entry
        def finished(self, _):
            self.exit(True)

    Kernel(make_machine("ipsc2", 8)).run(Main)
    last_arrival = max(t for kind, _, t in entered if kind == "arrive")
    first_release = min(t for kind, _, t in entered if kind == "release")
    assert first_release >= last_arrival


# --------------------------------------------------------------------- direct
def test_direct_runner_returns_answer(echo_program):
    runner = DirectRunner(4, seed=1)
    answer = runner(echo_program, 6, False)
    assert [i for i, _ in answer] == list(range(6))


def test_direct_runner_run_gives_result_object(echo_program):
    result = DirectRunner(2).run(echo_program, 3, False)
    assert result.stats.num_pes == 2
    assert not result.truncated


def test_stress_detects_schedule_independence(echo_program):
    class Deterministic(Chare):
        def __init__(self):
            self.exit(42)

    answers, detail = stress(Deterministic, num_pes=(1, 2), seeds=(0, 1),
                             queueings=("fifo",), balancers=("random",))
    assert answers == [42]
    assert len(detail) == 4


def test_stress_surfaces_schedule_dependence():
    class Racy(Chare):
        """Deliberately schedule-dependent: first reply wins."""

        def __init__(self):
            self.done = False
            for i in range(4):
                self.create(_Racer, self.thishandle, i)

        @entry
        def claim(self, i):
            if not self.done:
                self.done = True
                self.exit(i)

    answers, _ = stress(Racy, num_pes=(2, 4), seeds=(0, 1, 2),
                        queueings=("fifo", "lifo"), balancers=("random",))
    assert len(answers) > 1  # the race is visible across schedules


class _Racer(Chare):
    def __init__(self, main, i):
        self.charge(10)
        self.send(main, "claim", i)
