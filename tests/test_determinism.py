"""Whole-run determinism: the simulator is a pure function of its inputs."""

import pytest

from repro import make_machine
from repro.apps.nqueens import run_nqueens
from repro.apps.tree import TreeParams, run_tree
from repro.apps.tsp import TspInstance, run_tsp


def _fingerprint(result):
    st = result.stats
    return (
        result.time,
        result.events,
        st.counted_sent,
        st.total_bytes_sent,
        tuple(round(r.busy_time, 15) for r in st.pe_rows),
    )


@pytest.mark.parametrize("balancer", ["random", "acwn", "token", "central"])
def test_identical_runs_identical_traces(balancer):
    a = run_nqueens(make_machine("ipsc2", 8), n=7, balancer=balancer, seed=9)[1]
    b = run_nqueens(make_machine("ipsc2", 8), n=7, balancer=balancer, seed=9)[1]
    assert _fingerprint(a) == _fingerprint(b)


def test_seed_changes_schedule_not_answer():
    answers = set()
    times = set()
    for seed in range(5):
        (sol, nodes), result = run_nqueens(
            make_machine("ipsc2", 8), n=7, balancer="random", seed=seed
        )
        answers.add((sol, nodes))
        times.add(result.time)
    assert len(answers) == 1
    assert len(times) > 1


def test_tsp_trace_deterministic():
    inst = TspInstance.random(8, seed=2)
    a = run_tsp(make_machine("symmetry", 8), inst, seed=4)[1]
    b = run_tsp(make_machine("symmetry", 8), inst, seed=4)[1]
    assert _fingerprint(a) == _fingerprint(b)


def test_tree_trace_deterministic_across_strategies():
    params = TreeParams(seed=3, max_depth=9)
    for balancer in ("random", "acwn"):
        for queueing in ("fifo", "lifo"):
            a = run_tree(make_machine("ncube2", 16), params,
                         balancer=balancer, queueing=queueing, seed=1)[1]
            b = run_tree(make_machine("ncube2", 16), params,
                         balancer=balancer, queueing=queueing, seed=1)[1]
            assert _fingerprint(a) == _fingerprint(b)
