"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Engine
from repro.util.errors import SchedulingError


def test_runs_in_time_order():
    eng = Engine()
    fired = []
    eng.schedule(3.0, lambda: fired.append(3))
    eng.schedule(1.0, lambda: fired.append(1))
    eng.schedule(2.0, lambda: fired.append(2))
    eng.run()
    assert fired == [1, 2, 3]
    assert eng.now == 3.0


def test_equal_times_fire_in_schedule_order():
    eng = Engine()
    fired = []
    for i in range(10):
        eng.schedule(1.0, lambda i=i: fired.append(i))
    eng.run()
    assert fired == list(range(10))


def test_schedule_after_is_relative():
    eng = Engine()
    times = []
    eng.schedule(5.0, lambda: eng.schedule_after(2.5, lambda: times.append(eng.now)))
    eng.run()
    assert times == [7.5]


def test_schedule_in_past_raises():
    eng = Engine()
    eng.schedule(1.0, lambda: None)
    eng.run()
    with pytest.raises(SchedulingError):
        eng.schedule(0.5, lambda: None)


def test_negative_delay_raises():
    eng = Engine()
    with pytest.raises(SchedulingError):
        eng.schedule_after(-1.0, lambda: None)


def test_cancel_skips_event():
    eng = Engine()
    fired = []
    ev = eng.schedule(1.0, lambda: fired.append("a"))
    eng.schedule(2.0, lambda: fired.append("b"))
    ev.cancel()
    eng.run()
    assert fired == ["b"]


def test_events_can_schedule_at_current_time():
    eng = Engine()
    fired = []
    eng.schedule(1.0, lambda: eng.schedule(1.0, lambda: fired.append("nested")))
    eng.run()
    assert fired == ["nested"]
    assert eng.now == 1.0


def test_run_until_horizon_inclusive():
    eng = Engine()
    fired = []
    eng.schedule(1.0, lambda: fired.append(1))
    eng.schedule(2.0, lambda: fired.append(2))
    eng.schedule(3.0, lambda: fired.append(3))
    eng.run(until=2.0)
    assert fired == [1, 2]
    assert eng.now == 2.0
    eng.run()
    assert fired == [1, 2, 3]


def test_run_max_events_budget():
    eng = Engine()
    fired = []
    for i in range(5):
        eng.schedule(float(i), lambda i=i: fired.append(i))
    eng.run(max_events=2)
    assert fired == [0, 1]
    eng.run()
    assert fired == [0, 1, 2, 3, 4]


def test_step_returns_false_when_drained():
    eng = Engine()
    assert eng.step() is False
    eng.schedule(1.0, lambda: None)
    assert eng.step() is True
    assert eng.step() is False


def test_events_fired_counter():
    eng = Engine()
    for i in range(7):
        eng.schedule(float(i), lambda: None)
    eng.run()
    assert eng.events_fired == 7


def test_pending_excludes_cancelled():
    eng = Engine()
    ev1 = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    ev1.cancel()
    assert eng.pending == 1


def test_run_not_reentrant():
    eng = Engine()
    errors = []

    def reenter():
        try:
            eng.run()
        except SchedulingError as exc:
            errors.append(exc)

    eng.schedule(1.0, reenter)
    eng.run()
    assert len(errors) == 1


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=60))
def test_property_fires_in_nondecreasing_time(times):
    eng = Engine()
    observed = []
    for t in times:
        eng.schedule(t, lambda: observed.append(eng.now))
    eng.run()
    assert observed == sorted(observed)
    assert len(observed) == len(times)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.floats(min_value=0, max_value=100, allow_nan=False),
        ),
        max_size=30,
    )
)
def test_property_chained_relative_delays_accumulate(pairs):
    eng = Engine()
    hits = []
    for base, delta in pairs:
        eng.schedule(
            base,
            lambda base=base, delta=delta: eng.schedule_after(
                delta, lambda: hits.append(eng.now)
            ),
        )
    eng.run()
    assert len(hits) == len(pairs)
    assert hits == sorted(hits)
