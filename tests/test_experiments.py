"""Integration tests: every experiment runs (quick scale) and its claim
shape — the thing the reproduction is *for* — holds."""

import pytest

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.harness import measure, speedup_sweep
from repro.util.errors import ConfigurationError


@pytest.fixture(scope="module")
def results():
    """Run every experiment once at quick scale; share across tests."""
    return {exp_id: run_experiment(exp_id, scale="quick") for exp_id in EXPERIMENTS}


def test_all_experiments_produce_tables(results):
    for exp_id, res in results.items():
        assert res.exp_id.lower() == exp_id
        assert res.text.strip()
        assert res.data


def test_unknown_experiment_rejected():
    with pytest.raises(ConfigurationError):
        run_experiment("t99")


def test_t2_shared_memory_speedup_shapes(results):
    apps = results["t2"].data["apps"]
    for name, d in apps.items():
        speedups = d["speedups"]
        assert speedups[0] == pytest.approx(1.0)
        assert speedups[1] > 1.2, f"{name} gained nothing from 2 PEs"
        # Coarse tree programs keep scaling; nothing exceeds linear by much.
        for p, s in zip(results["t2"].data["pes"], speedups):
            assert s <= p * 1.5


def test_t3_hypercube_latency_hurts_vs_bus(results):
    t2 = results["t2"].data["apps"]
    t3 = results["t3"].data["apps"]
    # At equal P=4, the fine-grain queens program does no better on the
    # high-latency hypercube than on the bus machine.
    s_bus = t2["queens"]["speedups"][results["t2"].data["pes"].index(4)]
    s_cube = t3["queens"]["speedups"][results["t3"].data["pes"].index(4)]
    assert s_cube <= s_bus + 0.3


def test_t4_tree_scales_to_large_p(results):
    tree = results["t4"].data["apps"]["tree"]["speedups"]
    assert tree[-1] > tree[1]


def test_t5_balancing_beats_no_balancing(results):
    d = results["t5"].data
    assert d["local"]["time"] > 2 * d["acwn"]["time"]
    assert d["local"]["time"] > 2 * d["random"]["time"]
    assert d["acwn"]["imbalance"] < d["local"]["imbalance"]
    # ACWN ships fewer seeds around than blind random placement.
    assert d["acwn"]["remote_seeds"] < d["random"]["remote_seeds"]


def test_t6_priority_expands_fewest_nodes(results):
    d = results["t6"].data
    assert d["('knapsack', 'prio')"]["nodes"] <= d["('knapsack', 'fifo')"]["nodes"]
    # All strategies find the same optimum.
    bests = {v["best"] for k, v in d.items() if "tsp" in k}
    assert len(bests) == 1


def test_t7_sharing_prunes(results):
    d = results["t7"].data
    assert d["off"]["nodes"] >= d["eager"]["nodes"]
    assert d["off"]["msgs"] == 0
    assert d["eager"]["msgs"] > 0
    assert d["eager"]["best"] == d["off"]["best"] == d["lazy"]["best"]


def test_t8_throughput_scales(results):
    d = results["t8"].data
    ps = sorted(d)
    assert d[ps[-1]]["time"] < d[ps[0]]["time"]


def test_t9_latency_nonnegative_and_bounded(results):
    d = results["t9"].data
    for p, row in d.items():
        assert row["latency"] >= 0
        assert row["waves"] >= 2


def test_t11_sparse_scale_curve_is_flat(results):
    d = results["t11"].data
    for app, series in d["apps"].items():
        times = [row["time"] for row in series]
        touched = [row["touched"] for row in series]
        # Virtual time is essentially P-independent (the sparse machine
        # adds no per-rank cost) and the touched set never tracks P.
        assert max(times) <= min(times) * 1.1, f"{app} vtime grew with P"
        for p, k in zip(d["pes"], touched):
            assert k < p, f"{app} touched every rank at P={p}"
        assert max(touched) <= min(touched) * 2, f"{app} touched grew with P"


def test_s5_serving_latency_independent_of_farm_size(results):
    d = results["s5"].data
    p99s = [row["p99"] for row in d["series"]]
    assert max(p99s) <= min(p99s) * 1.2, "p99 depends on sparse farm size"
    for pes, row in zip(d["pes"], d["series"]):
        assert row["completed"] == row["offered"]
        assert row["touched"] <= d["count"] + 2


def test_f1_series_complete(results):
    data = results["f1"].data
    assert any(k.startswith("queens@") for k in data)
    for series in data.values():
        assert series[0] == pytest.approx(1.0)


def test_f2_efficiency_decreases_with_tiny_grain(results):
    q = results["f2"].data["queens"]
    grains = sorted(q)
    # Efficiency at the coarsest measured grain is lower than at the knee
    # (too few chares), and mid grains beat the extremes on this size.
    assert max(q.values()) <= 1.1


def test_f3_balancers_flatten_utilization(results):
    d = results["f3"].data
    spread = lambda utils: max(utils) - min(utils)
    assert spread(d["acwn"]) < spread(d["local"])


# --------------------------------------------------------------- harness unit
def test_measure_unknown_app():
    with pytest.raises(ConfigurationError):
        measure("doom", "ideal", 2)


def test_sweep_consistency_flag():
    sweep = speedup_sweep("queens", "ideal", [1, 2], n=6, grainsize=2)
    assert sweep.consistent()
    assert sweep.speedups[0] == pytest.approx(1.0)
    assert len(sweep.efficiencies) == 2
