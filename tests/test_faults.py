"""Fault-injection subsystem: determinism, protocol correctness, zero-cost.

Three claims are pinned here:

1. **Inert means invisible** — a kernel with no fault layer, and a kernel
   with an all-zero :class:`FaultConfig`, both reproduce the golden-trace
   fixtures bit-for-bit (the hooks are a single ``is None`` check).
2. **Faults cost latency, not correctness** — under drops (with the
   ack/timeout/retry protocol), duplicates (with idempotent receive),
   delay spikes, jitter, stalls and slow PEs, every program still produces
   its fault-free answer and quiescence detection still terminates with
   ``counted_sent == counted_processed``.
3. **Determinism survives** — the same root seed and fault config yield a
   bit-identical run, every time.
"""

import json

import pytest

from repro import FaultConfig, FaultLayer, Kernel, make_machine
from repro.apps.fib import run_fib
from repro.apps.nqueens import run_nqueens
from repro.util.errors import ConfigurationError, FaultError
from tests.conftest import run_echo
from tests.test_golden_trace import _fingerprint, _load_fixtures


# ------------------------------------------------------------- configuration
def test_config_validation():
    with pytest.raises(FaultError):
        FaultConfig(jitter=-1e-6)
    with pytest.raises(FaultError):
        FaultConfig(drop_prob=1.0)          # certain loss can never converge
    with pytest.raises(FaultError):
        FaultConfig(dup_prob=-0.1)
    with pytest.raises(FaultError):
        FaultConfig(drop_prob=0.1, ack_timeout=0.0)
    with pytest.raises(FaultError):
        FaultConfig(drop_prob=0.1, retry_backoff=0.5)
    with pytest.raises(FaultError):
        FaultConfig(drop_prob=0.1, max_retries=0)
    with pytest.raises(FaultError):
        FaultConfig(slow_pes=(0,), slow_factor=0.5)
    with pytest.raises(FaultError):
        FaultConfig(stall_prob=0.1, stall_time=-1.0)
    with pytest.raises(FaultError):
        FaultConfig(drop_prob=0.1, max_backoff=0.0)


def test_config_describe():
    assert FaultConfig().describe() == "inert"
    desc = FaultConfig(drop_prob=0.1, jitter=1e-6).describe()
    assert "drop_prob=0.1" in desc and "jitter=1e-06" in desc


def test_kernel_rejects_bad_faults_argument(ideal4):
    with pytest.raises(ConfigurationError):
        Kernel(ideal4, faults=42)


def test_kernel_accepts_prebuilt_layer(ideal4):
    layer = FaultLayer(FaultConfig(drop_prob=0.05))
    result = run_echo(ideal4, n=8, faults=layer)
    assert result.result is not None
    assert result.kernel.faults is layer


def test_slow_pes_out_of_range_rejected(ideal4):
    with pytest.raises(FaultError):
        Kernel(ideal4, faults=FaultConfig(slow_pes=(7,)))


# ------------------------------------------------------- inert layer, golden
INERT_CASES = [
    ("fib-ideal-random-fifo",
     lambda cfg: run_fib(make_machine("ideal", 8), n=14, threshold=6,
                         balancer="random", queueing="fifo", seed=0,
                         faults=cfg)),
    ("queens-ipsc2-acwn-fifo",
     lambda cfg: run_nqueens(make_machine("ipsc2", 8), n=6, grainsize=2,
                             balancer="acwn", queueing="fifo", seed=3,
                             faults=cfg)),
]


@pytest.mark.parametrize("case_id,runner", INERT_CASES,
                         ids=[c[0] for c in INERT_CASES])
def test_inert_layer_is_golden(case_id, runner):
    """An all-zero fault config reproduces the golden fixtures exactly."""
    answer, result = runner(FaultConfig())
    assert _fingerprint(answer, result) == _load_fixtures()[case_id]


def test_inert_layer_reports_enabled(ideal4):
    result = run_echo(ideal4, n=8, faults=FaultConfig())
    st = result.stats
    assert st.faults_enabled and st.fault_config == "inert"
    d = st.as_dict()["faults"]
    assert d["enabled"] and all(
        d[k] == 0 for k in ("dropped", "delayed", "duplicated",
                            "dups_suppressed", "retries", "stalls"))


def test_no_layer_reports_disabled(ideal4):
    st = run_echo(ideal4, n=8).stats
    assert not st.faults_enabled
    assert "faults" not in st.summary()


# -------------------------------------------------------------- determinism
DROPPY = dict(drop_prob=0.10, dup_prob=0.05, delay_prob=0.05,
              jitter=20e-6, stall_prob=0.01)


def _queens(seed, **cfg_kw):
    cfg = FaultConfig(**cfg_kw) if cfg_kw else None
    return run_nqueens(make_machine("ncube2", 16), n=6, grainsize=2,
                       seed=seed, faults=cfg)


def test_same_seed_same_config_bit_identical():
    a1, r1 = _queens(3, **DROPPY)
    a2, r2 = _queens(3, **DROPPY)
    assert _fingerprint(a1, r1) == _fingerprint(a2, r2)


def test_fault_seed_decoupled_from_kernel_seed():
    """An explicit fault seed pins the fault schedule independently."""
    _, r1 = run_nqueens(make_machine("ncube2", 16), n=6, grainsize=2, seed=3,
                        faults=FaultConfig(drop_prob=0.10, seed=99))
    _, r2 = run_nqueens(make_machine("ncube2", 16), n=6, grainsize=2, seed=3,
                        faults=FaultConfig(drop_prob=0.10, seed=98))
    assert float(r1.time).hex() != float(r2.time).hex()


# -------------------------------------------------- drop + retry protocol
def test_drop_retry_converges_and_answer_survives():
    base_answer, base = _queens(3)
    answer, result = _queens(3, drop_prob=0.10)
    k = result.kernel
    assert answer == base_answer
    assert not result.truncated
    assert result.time > base.time           # loss costs latency...
    assert k.qd.detected_at is not None      # ...but QD still terminates
    assert sum(k.counted_sent) == sum(k.counted_processed)
    assert k.faults.msgs_dropped > 0 and k.faults.retries > 0
    assert k.faults.acks_sent > 0
    assert k.qd._agg == {}                   # no stale wave state leaked


def test_duplicates_are_suppressed():
    base_answer, _ = _queens(3)
    answer, result = _queens(3, dup_prob=0.25)
    f = result.kernel.faults
    assert answer == base_answer
    assert f.msgs_duplicated > 0
    # Every duplicate that arrived before exit was deduplicated; none
    # executed twice (the answer and counted totals would diverge).
    assert f.dups_suppressed <= f.msgs_duplicated
    k = result.kernel
    assert sum(k.counted_sent) == sum(k.counted_processed)


def test_drop_plus_dup_combined():
    base_answer, _ = _queens(3)
    answer, result = _queens(3, drop_prob=0.12, dup_prob=0.10)
    assert answer == base_answer
    assert not result.truncated
    assert result.kernel.qd.detected_at is not None


def test_retry_safety_valve_trips():
    with pytest.raises(FaultError):
        _queens(3, drop_prob=0.9, max_retries=1)


def test_backoff_cap_dormant_at_default_loss_rates():
    """The ceiling pins historical results: R-series-style configs never
    reach it, so a run with the default cap is bit-identical to one with
    an effectively infinite cap (pre-ceiling behaviour)."""
    a_cap, r_cap = _queens(3, **DROPPY)
    a_inf, r_inf = _queens(3, **DROPPY, max_backoff=1e9)
    assert _fingerprint(a_cap, r_cap) == _fingerprint(a_inf, r_inf)


def test_backoff_cap_engages_and_bounds_retry_delay():
    """Under heavy loss with an aggressive timeout, uncapped doubling used
    to push retransmissions seconds into virtual time; the ceiling keeps
    the retry cadence bounded without changing the answer."""
    heavy = dict(drop_prob=0.55, ack_timeout=1e-4, max_retries=24)
    a_tight, r_tight = _queens(3, max_backoff=2e-4, **heavy)
    a_loose, r_loose = _queens(3, max_backoff=1e9, **heavy)
    base_answer, _ = _queens(3)
    assert a_tight == a_loose == base_answer
    assert r_tight.kernel.faults.retries > 0
    # Same loss schedule, same retries needed — but the capped run pays a
    # bounded delay per attempt and finishes strictly sooner.
    assert r_tight.time < r_loose.time


def test_per_pe_counters_sum_to_aggregates():
    _, result = _queens(3, **DROPPY)
    f = result.kernel.faults
    rows = result.stats.pe_rows
    assert sum(r.msgs_dropped for r in rows) == f.msgs_dropped
    assert sum(r.retries for r in rows) == f.retries
    assert sum(r.dups_suppressed for r in rows) == f.dups_suppressed
    assert sum(r.stalls for r in rows) == f.stalls


# ------------------------------------------------------------ latency models
def test_delay_and_jitter_perturb_timing():
    _, base = _queens(3)
    _, result = _queens(3, delay_prob=0.2, jitter=50e-6)
    f = result.kernel.faults
    assert f.msgs_delayed > 0 and f.msgs_dropped == 0
    assert float(result.time).hex() != float(base.time).hex()


def test_slow_pe_stretches_execution():
    a0, base = _queens(3)
    a1, result = _queens(3, slow_pes=tuple(range(16)), slow_factor=3.0)
    assert a1 == a0
    assert result.time > base.time
    busy0 = sum(r.busy_time for r in base.stats.pe_rows)
    busy1 = sum(r.busy_time for r in result.stats.pe_rows)
    assert busy1 == pytest.approx(3.0 * busy0)


def test_stalls_counted_and_charged():
    a0, _ = _queens(3)
    a1, result = _queens(3, stall_prob=0.3, stall_time=2e-3)
    f = result.kernel.faults
    assert a1 == a0
    assert f.stalls > 0
    assert sum(r.stall_time for r in result.stats.pe_rows) == pytest.approx(
        f.stalls * 2e-3)


# -------------------------------------------------------------- reporting
def test_report_roundtrips_through_json():
    _, result = _queens(3, **DROPPY)
    d = result.stats.as_dict()
    blob = json.loads(json.dumps(d))
    assert blob["faults"]["enabled"] is True
    assert blob["faults"]["retries"] == result.kernel.faults.retries
    assert "faults [" in result.stats.summary()


def test_counters_accessor_and_repr():
    _, result = _queens(3, drop_prob=0.05)
    f = result.kernel.faults
    c = f.counters()
    assert c["msgs_dropped"] == f.msgs_dropped
    assert "FaultLayer" in repr(f) and "drop_prob" in repr(f)


# ------------------------------------------------------- local immunity
def test_local_messages_unperturbed(ideal4):
    """Self-sends never traverse the network: no fault model touches them."""
    # On 1 PE every message is local — a brutal config must change nothing.
    machine = make_machine("ideal", 1)
    a0, r0 = run_fib(machine, n=10, threshold=4, seed=0)
    cfg = FaultConfig(drop_prob=0.5, dup_prob=0.5, delay_prob=0.5,
                      jitter=1e-3)
    a1, r1 = run_fib(machine, n=10, threshold=4, seed=0, faults=cfg)
    assert (a0, float(r0.time).hex()) == (a1, float(r1.time).hex())
    f = r1.kernel.faults
    assert f.msgs_dropped == f.msgs_duplicated == f.msgs_delayed == 0
