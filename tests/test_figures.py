"""ASCII chart renderer tests."""

from repro.bench.figures import render_chart


def test_empty_chart():
    assert render_chart({}) == "(empty chart)"


def test_single_series_axes_and_legend():
    text = render_chart(
        {"s": [(1, 1.0), (2, 2.0), (4, 3.5)]},
        title="T", x_label="P", y_label="S",
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "3.50" in lines[1]          # y max on top axis row
    assert "1.00" in text              # y min
    assert "(P vs S)" in text
    assert "o s" in text               # legend mark


def test_marks_distinct_per_series():
    text = render_chart({"a": [(0, 0)], "b": [(1, 1)], "c": [(2, 2)]})
    assert "o a" in text and "x b" in text and "* c" in text


def test_flat_series_does_not_crash():
    text = render_chart({"flat": [(1, 2.0), (2, 2.0), (3, 2.0)]})
    assert "flat" in text


def test_extreme_points_land_on_edges():
    text = render_chart({"s": [(0, 0.0), (10, 10.0)]}, width=20, height=6)
    rows = [line for line in text.splitlines() if "┤" in line or "│" in line]
    # min point bottom-left, max point top-right
    assert rows[0].rstrip().endswith("o")
    assert rows[-1].split("┤")[1].startswith("o")


def test_points_within_grid_bounds():
    series = {"z": [(x, x * x) for x in range(8)]}
    text = render_chart(series, width=30, height=10)
    for line in text.splitlines():
        assert len(line) < 50
