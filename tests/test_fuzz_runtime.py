"""Runtime fuzzing: random chare programs, checked for invariants.

A deterministic generator builds a random program shape from a seed — a
tree of chares with random fanouts, work sizes, priorities, pinned or
balanced placement, accumulator updates and parent replies — and the test
asserts, across machines/strategies/seeds:

* the answer (a pure function of the shape) is schedule-independent,
* every counted message is processed (nothing lost or duplicated),
* quiescence detection fires exactly once, after all app work.

This is the closest thing to an adversarial workload for the scheduler,
balancer, and QD machinery working together.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Chare, Kernel, entry, make_machine
from repro.util.rng import derive_seed


def _shape(shape_seed: int, node_id: int, depth: int):
    """Deterministic per-node shape: (fanout, work, use_priority, pin)."""
    h = derive_seed(shape_seed, "fuzz", node_id, depth)
    max_depth = 4
    fanout = (h % 4) if depth < max_depth else 0
    work = 10 + (h >> 8) % 200
    use_priority = bool((h >> 16) & 1)
    pin = (h >> 20) % 3 == 0
    return fanout, work, use_priority, pin


class FuzzNode(Chare):
    def __init__(self, shape_seed, node_id, depth):
        fanout, work, use_priority, pin = _shape(shape_seed, node_id, depth)
        self.charge(work)
        self.accumulate("sum", node_id % 97)
        self.accumulate("count", 1)
        for i in range(fanout):
            child_id = node_id * 5 + i + 1
            kwargs = {}
            if use_priority:
                kwargs["priority"] = child_id % 13
            if pin:
                kwargs["pe"] = child_id % self.num_pes
            self.create(FuzzNode, shape_seed, child_id, depth + 1, **kwargs)


class FuzzMain(Chare):
    def __init__(self, shape_seed):
        self.new_accumulator("sum", 0, "sum")
        self.new_accumulator("count", 0, "sum")
        self._got = {}
        self.create(FuzzNode, shape_seed, 0, 0)
        self.start_quiescence(self.thishandle, "quiet")

    @entry
    def quiet(self):
        for name in ("sum", "count"):
            self.collect_accumulator(name, self.thishandle, "collected")

    @entry
    def collected(self, tag, value):
        self._got[tag.split(":")[1]] = value
        if len(self._got) == 2:
            self.exit((self._got["count"], self._got["sum"]))


def _expected(shape_seed: int):
    """Walk the same shape sequentially."""
    count = total = 0
    stack = [(0, 0)]
    while stack:
        node_id, depth = stack.pop()
        count += 1
        total += node_id % 97
        fanout, _, _, _ = _shape(shape_seed, node_id, depth)
        for i in range(fanout):
            stack.append((node_id * 5 + i + 1, depth + 1))
    return count, total


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(shape_seed=st.integers(min_value=0, max_value=10_000))
def test_fuzz_answer_matches_shape(shape_seed):
    result = Kernel(make_machine("ipsc2", 8), seed=1).run(FuzzMain, shape_seed)
    assert result.result == _expected(shape_seed)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    shape_seed=st.integers(min_value=0, max_value=10_000),
    kernel_seed=st.integers(min_value=0, max_value=5),
    queueing=st.sampled_from(["fifo", "lifo", "prio"]),
    balancer=st.sampled_from(["random", "acwn", "token", "central"]),
    pes=st.sampled_from([1, 4, 8]),
)
def test_fuzz_schedule_independence(shape_seed, kernel_seed, queueing,
                                    balancer, pes):
    kernel = Kernel(
        make_machine("ipsc2", pes), seed=kernel_seed,
        queueing=queueing, balancer=balancer,
    )
    result = kernel.run(FuzzMain, shape_seed)
    assert result.result == _expected(shape_seed)
    assert sum(kernel.counted_sent) == sum(kernel.counted_processed)
    assert kernel.qd.detected_at is not None
    assert kernel.qd.detected_at >= kernel.qd.work_end_at_detection


@pytest.mark.parametrize("machine_name", ["ideal", "symmetry", "ncube2"])
def test_fuzz_across_machines(machine_name):
    for shape_seed in (3, 77, 4242):
        result = Kernel(make_machine(machine_name, 4), seed=0).run(
            FuzzMain, shape_seed
        )
        assert result.result == _expected(shape_seed)
