"""Golden-trace determinism tests for the simulator hot path.

The hot-path optimization work (closure-free event loop, slotted
envelopes, memoized network costs) must preserve *bit-identical* virtual
time results.  These tests pin a matrix of {app x machine preset x
balancer x queueing} runs against fixtures captured from the
pre-optimization kernel: result value, ``RunResult.time``, events fired,
quiescence counters, message-hop totals and per-PE counters all have to
match exactly — floats are compared via ``float.hex`` so there is no
tolerance to hide behind.

Regenerate fixtures (only when *intentionally* changing simulation
semantics) with::

    PYTHONPATH=src python tests/test_golden_trace.py --regen
"""

from __future__ import annotations

import json
import os
import sys

import pytest

from repro.apps.fib import run_fib
from repro.apps.histogram import run_histogram
from repro.apps.nqueens import run_nqueens
from repro.apps.tree import TreeParams, run_tree
from repro.apps.tsp import TspInstance, run_tsp
from repro.machine.presets import make_machine

FIXTURE_PATH = os.path.join(os.path.dirname(__file__), "fixtures",
                            "golden_traces.json")

# One entry per {app x machine preset x balancer x queueing} combination.
# Small problem sizes keep the whole matrix under a few seconds while still
# exercising seeds, balancer forwarding, priorities, QD and table traffic.
CASES = [
    # (case_id, runner_name, kwargs)
    ("queens-ipsc2-random-fifo",
     "queens", dict(machine="ipsc2", pes=8, balancer="random",
                    queueing="fifo", n=6, seed=3)),
    ("queens-ipsc2-acwn-fifo",
     "queens", dict(machine="ipsc2", pes=8, balancer="acwn",
                    queueing="fifo", n=6, seed=3)),
    ("queens-ipsc2-token-fifo",
     "queens", dict(machine="ipsc2", pes=8, balancer="token",
                    queueing="fifo", n=6, seed=3)),
    ("queens-ipsc2-central-fifo",
     "queens", dict(machine="ipsc2", pes=8, balancer="central",
                    queueing="fifo", n=6, seed=3)),
    ("queens-symmetry-random-lifo",
     "queens", dict(machine="symmetry", pes=8, balancer="random",
                    queueing="lifo", n=6, seed=1)),
    ("queens-ncube2-acwn-prio",
     "queens", dict(machine="ncube2", pes=16, balancer="acwn",
                    queueing="prio", n=6, seed=2)),
    ("tree-ncube2-acwn-fifo",
     "tree", dict(machine="ncube2", pes=16, balancer="acwn",
                  queueing="fifo", seed=1)),
    ("tree-ipsc2-random-lifo",
     "tree", dict(machine="ipsc2", pes=8, balancer="random",
                  queueing="lifo", seed=1)),
    ("tree-multimax-token-fifo",
     "tree", dict(machine="multimax", pes=8, balancer="token",
                  queueing="fifo", seed=4)),
    ("fib-ideal-random-fifo",
     "fib", dict(machine="ideal", pes=8, balancer="random",
                 queueing="fifo", n=14, seed=0)),
    ("fib-cluster-acwn-lifo",
     "fib", dict(machine="cluster", pes=16, balancer="acwn",
                 queueing="lifo", n=14, seed=5)),
    ("tsp-symmetry-random-prio",
     "tsp", dict(machine="symmetry", pes=8, balancer="random",
                 queueing="prio", n=7, seed=4)),
    ("tsp-ipsc2-acwn-bitprio",
     "tsp", dict(machine="ipsc2", pes=8, balancer="acwn",
                 queueing="bitprio", n=7, seed=4)),
    ("histogram-multimax-random-fifo",
     "histogram", dict(machine="multimax", pes=8, balancer="random",
                       queueing="fifo", seed=0)),
    ("histogram-ideal-central-fifo",
     "histogram", dict(machine="ideal", pes=8, balancer="central",
                       queueing="fifo", seed=2)),
]


def _run_case(runner: str, spec: dict, backend: str = "heap", **extra):
    machine = make_machine(spec["machine"], spec["pes"], backend=backend)
    common = dict(balancer=spec["balancer"], queueing=spec["queueing"],
                  seed=spec["seed"], **extra)
    if runner == "queens":
        return run_nqueens(machine, n=spec["n"], grainsize=2, **common)
    if runner == "tree":
        return run_tree(machine, TreeParams(seed=7, max_depth=7), **common)
    if runner == "fib":
        return run_fib(machine, n=spec["n"], threshold=6, **common)
    if runner == "tsp":
        inst = TspInstance.random(spec["n"], seed=11)
        return run_tsp(machine, inst, grain=4, **common)
    if runner == "histogram":
        return run_histogram(machine, items=96, workers=6, **common)
    raise ValueError(f"unknown runner {runner!r}")


def _fingerprint(answer, result) -> dict:
    """Everything that must be bit-identical across the optimization."""
    k = result.kernel
    return {
        "result": repr(answer),
        "time": float(result.time).hex(),
        "events": result.events,
        "counted_sent": sum(k.counted_sent),
        "counted_processed": sum(k.counted_processed),
        "total_message_hops": k.total_message_hops,
        "pes": [
            {
                "busy_time": float(pe.busy_time).hex(),
                "msgs_executed": pe.msgs_executed,
                "seeds_executed": pe.seeds_executed,
                "system_executed": pe.system_executed,
                "msgs_sent": pe.msgs_sent,
                "bytes_sent": pe.bytes_sent,
                "seeds_created": pe.seeds_created,
                "max_queued": pe.max_queued,
            }
            # Dense iteration: materializing an untouched rank yields the
            # same all-zero counters the old eager list carried.
            for pe in (k.pes[i] for i in range(k.num_pes))
        ],
    }


def _load_fixtures() -> dict:
    with open(FIXTURE_PATH, encoding="utf-8") as fh:
        return json.load(fh)


@pytest.mark.parametrize("backend", ["heap", "batch"])
@pytest.mark.parametrize("case_id,runner,spec",
                         CASES, ids=[c[0] for c in CASES])
def test_golden_trace(case_id, runner, spec, backend):
    # Both engine backends are pinned against the SAME fixtures: the batch
    # backend's cohort draining must reproduce the heap's (time, seq) order
    # bit for bit, so there is exactly one golden truth per case.
    fixtures = _load_fixtures()
    assert case_id in fixtures, (
        f"no golden fixture for {case_id}; regenerate with "
        f"PYTHONPATH=src python tests/test_golden_trace.py --regen"
    )
    answer, result = _run_case(runner, spec, backend)
    assert _fingerprint(answer, result) == fixtures[case_id]


def regenerate() -> None:
    os.makedirs(os.path.dirname(FIXTURE_PATH), exist_ok=True)
    fixtures = {}
    for case_id, runner, spec in CASES:
        answer, result = _run_case(runner, spec)
        fixtures[case_id] = _fingerprint(answer, result)
        print(f"  {case_id}: time={result.time:.6f}s events={result.events}")
    with open(FIXTURE_PATH, "w", encoding="utf-8") as fh:
        json.dump(fixtures, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(fixtures)} fixtures to {FIXTURE_PATH}")


if __name__ == "__main__":
    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
