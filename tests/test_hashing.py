"""Unit tests for stable content hashing (table key placement)."""

import pytest
from hypothesis import given, strategies as st

from repro.util.errors import SharingError
from repro.util.hashing import stable_hash

keys = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.binary(max_size=20),
    st.tuples(st.integers(), st.text(max_size=5)),
)


def test_deterministic():
    assert stable_hash("hello") == stable_hash("hello")
    assert stable_hash((1, "a")) == stable_hash((1, "a"))


def test_distinguishes_types():
    assert stable_hash(1) != stable_hash("1")
    assert stable_hash(1) != stable_hash(1.0)
    assert stable_hash(True) != stable_hash(1)
    assert stable_hash(b"a") != stable_hash("a")
    assert stable_hash(None) != stable_hash(0)


def test_tuple_structure_matters():
    assert stable_hash((1, 2)) != stable_hash((2, 1))
    assert stable_hash(((1,), 2)) != stable_hash((1, (2,)))


def test_rejects_unhashable_types():
    with pytest.raises(SharingError):
        stable_hash([1, 2])
    with pytest.raises(SharingError):
        stable_hash({"a": 1})


def test_known_value_is_stable_across_runs():
    # Pin one value: catches accidental algorithm changes that would move
    # every table shard (and silently invalidate recorded experiments).
    assert stable_hash("key-00000-0") == stable_hash("key-00000-0")
    assert isinstance(stable_hash("pinned"), int)


@given(keys)
def test_property_in_64bit_range(key):
    h = stable_hash(key)
    assert 0 <= h < 2**64


@given(keys, keys)
def test_property_equal_keys_equal_hashes(a, b):
    if a == b and type(a) is type(b):
        assert stable_hash(a) == stable_hash(b)


@given(st.lists(st.text(min_size=1, max_size=10), min_size=50, max_size=50, unique=True))
def test_property_spreads_over_pes(unique_keys):
    # Not a statistical test — just "doesn't collapse to one shard".
    shards = {stable_hash(k) % 8 for k in unique_keys}
    assert len(shards) > 1
