"""Heterogeneous-machine (per-PE speed) semantics."""

import pytest

from repro import Chare, Kernel, entry, make_machine
from repro.machine.network import Machine, MachineParams
from repro.machine.topology import FullyConnectedTopology


def test_compute_time_respects_pe_speeds():
    m = Machine("h", FullyConnectedTopology(2),
                MachineParams(work_unit_time=1e-6), pe_speeds=(1.0, 3.0))
    assert m.compute_time(100, 0) == pytest.approx(100e-6)
    assert m.compute_time(100, 1) == pytest.approx(300e-6)


def test_homogeneous_default_ignores_pe_index():
    m = Machine("m", FullyConnectedTopology(2), MachineParams())
    assert m.compute_time(50, 0) == m.compute_time(50, 1)


def test_hetero_preset_shape():
    m = make_machine("hetero", 8)
    assert len(m.pe_speeds) == 8
    assert min(m.pe_speeds) == 1.0
    assert max(m.pe_speeds) == 4.0


def test_slow_pe_takes_proportionally_longer():
    marks = {}

    class Timed(Chare):
        def __init__(self, main, label):
            start = self.now
            self.charge(10_000)
            self.send(main, "done", label, start)

    class Main(Chare):
        def __init__(self):
            self.reports = {}
            self.create(Timed, self.thishandle, "fast", pe=0)  # speed 1.0
            self.create(Timed, self.thishandle, "slow", pe=3)  # speed 4.0

        @entry
        def done(self, label, start):
            self.reports[label] = start
            if len(self.reports) == 2:
                self.exit(None)

    machine = make_machine("hetero", 4)
    result = Kernel(machine).run(Main)
    rows = {r.pe: r for r in result.stats.pe_rows}
    # Same charged work; PE 3 spent ~4x the busy time on it.
    fast_busy = rows[0].busy_time
    slow_busy = rows[3].busy_time
    assert slow_busy > 3.5 * fast_busy


def test_send_offsets_scale_with_pe_speed():
    arrivals = []

    class Sink(Chare):
        def __init__(self):
            pass

        @entry
        def hit(self, who):
            arrivals.append((who, self.now))
            if len(arrivals) == 2:
                self.exit(None)

    class Emitter(Chare):
        def __init__(self, sink, who):
            self.charge(10_000)
            self.send(sink, "hit", who)

    class Main(Chare):
        def __init__(self):
            sink = self.create(Sink, pe=1)
            self.create(Emitter, sink, "fast", pe=0)   # speed 1.0
            self.create(Emitter, sink, "slow", pe=3)   # speed 4.0

    machine = make_machine("hetero", 4)
    Kernel(machine).run(Main)
    times = dict(arrivals)
    assert times["slow"] > times["fast"]
    # The gap is roughly the 3x extra compute time on the slow node.
    assert times["slow"] - times["fast"] > 2.0 * 10_000e-6
