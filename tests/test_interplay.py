"""Cross-feature interplay: combinations the single-feature tests skip."""

import numpy as np
import pytest

from repro import make_machine
from repro.apps.jacobi import jacobi_seq, run_jacobi
from repro.apps.nqueens import nqueens_seq, run_nqueens
from repro.apps.histogram import run_histogram
from repro.apps.tsp import TspInstance, tsp_seq, run_tsp


@pytest.mark.parametrize("balancer", ["local", "roundrobin", "central",
                                      "token", "acwn", "gradient"])
def test_branch_and_bound_correct_under_every_balancer(balancer):
    """Work stealing reorders/migrates prioritized seeds; the optimum must
    survive any such reshuffling."""
    inst = TspInstance.random(8, 2)
    best_ref, _ = tsp_seq(inst)
    (best, _, _), _ = run_tsp(make_machine("ipsc2", 8), inst,
                              balancer=balancer)
    assert best == best_ref


@pytest.mark.parametrize("queueing", ["priolifo", "bitprio"])
@pytest.mark.parametrize("balancer", ["token", "acwn"])
def test_queens_with_exotic_queue_and_stealing(queueing, balancer):
    (solutions, nodes), _ = run_nqueens(
        make_machine("ncube2", 8), n=7, queueing=queueing, balancer=balancer,
        use_priorities=(queueing == "bitprio"),
    )
    assert (solutions, nodes) == nqueens_seq(7)


@pytest.mark.parametrize("tree_name", ["rank", "binomial"])
def test_jacobi_exact_under_both_spanning_trees(tree_name):
    (grid, _), _ = run_jacobi(
        make_machine("ipsc2", 16), n=16, blocks=4, iterations=5,
        spanning_tree=tree_name,
    )
    assert np.array_equal(grid, jacobi_seq(16, 5)[0])


def test_table_ops_with_binomial_tree_and_contention():
    machine = make_machine("ipsc2", 16)
    machine.params = machine.params.scaled(link_bandwidth=2.8e6)
    (ins, found, bad), _ = run_histogram(
        machine, items=64, workers=8, spanning_tree="binomial"
    )
    assert (ins, found, bad) == (64, 64, 0)


def test_fuzz_program_on_heterogeneous_machine():
    from tests.test_fuzz_runtime import FuzzMain, _expected

    from repro import Kernel

    for shape_seed in (5, 99):
        result = Kernel(make_machine("hetero", 8), balancer="acwn").run(
            FuzzMain, shape_seed
        )
        assert result.result == _expected(shape_seed)


def test_contention_plus_hetero_plus_stealing():
    """Pile every optional model on at once: still exact."""
    machine = make_machine("hetero", 8)
    # hetero is a crossbar (no routes), so contention silently no-ops;
    # use it anyway to prove the combination is safe.
    machine.params = machine.params.scaled(link_bandwidth=1e6)
    (solutions, nodes), _ = run_nqueens(
        machine, n=7, balancer="token", queueing="prio"
    )
    assert (solutions, nodes) == nqueens_seq(7)


def test_strip_arrays_checksums():
    from repro.bench.harness import _strip_arrays

    arr = np.arange(6, dtype=float).reshape(2, 3)
    tag = _strip_arrays((1, arr))
    assert tag == (1, ("ndarray", (2, 3), 15.0))
