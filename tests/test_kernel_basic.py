"""Kernel basics: running programs, handles, errors, exit plumbing."""

import pytest

from repro import Chare, Kernel, entry, make_machine
from repro.util.errors import (
    ConfigurationError,
    RoutingError,
    SchedulingError,
)


class Nop(Chare):
    def __init__(self):
        self.exit("done")


def test_run_returns_exit_result(ideal4):
    result = Kernel(ideal4).run(Nop)
    assert result.result == "done"
    assert not result.truncated
    assert result.events > 0


def test_kernel_single_use(ideal4):
    kernel = Kernel(ideal4)
    kernel.run(Nop)
    with pytest.raises(SchedulingError):
        kernel.run(Nop)


def test_main_must_be_chare(ideal4):
    class NotAChare:
        pass

    with pytest.raises(ConfigurationError):
        Kernel(ideal4).run(NotAChare)


def test_echo_program_all_workers_reply(ideal4, echo_runner):
    result = echo_runner(ideal4, n=12)
    assert [i for i, _ in result.result] == list(range(12))


def test_pinned_placement_respected(ideal4, echo_runner):
    result = echo_runner(ideal4, n=8, pin=True)
    assert result.result == [(i, i % 4) for i in range(8)]


def test_create_invalid_pe_raises(ideal4):
    class BadMain(Chare):
        def __init__(self):
            self.create(Nop, pe=99)

    with pytest.raises(RoutingError):
        Kernel(ideal4).run(BadMain)


def test_send_to_unknown_entry_raises(ideal4):
    class Child(Chare):
        def __init__(self):
            pass

    class BadMain(Chare):
        def __init__(self):
            h = self.create(Child, pe=0)
            self.send(h, "no_such_entry")

    with pytest.raises(RoutingError):
        Kernel(ideal4).run(BadMain)


def test_unmarked_entry_rejected_when_strict(ideal4):
    class Child(Chare):
        def __init__(self):
            pass

        def not_an_entry(self):  # missing @entry
            pass

    class BadMain(Chare):
        def __init__(self):
            h = self.create(Child, pe=0)
            self.send(h, "not_an_entry")

    with pytest.raises(RoutingError):
        Kernel(ideal4).run(BadMain)


def test_unmarked_entry_allowed_when_lenient():
    class Child(Chare):
        def __init__(self, main):
            self.main = main

        def not_an_entry(self):
            self.send(self.main, "done")

    class Main(Chare):
        def __init__(self):
            h = self.create(Child, self.thishandle, pe=0)
            self.send(h, "not_an_entry")

        def done(self):
            self.exit(True)

    machine = make_machine("ideal", 2)
    result = Kernel(machine, strict_entries=False).run(Main)
    assert result.result is True


def test_api_outside_execution_raises(ideal4):
    kernel = Kernel(ideal4)
    with pytest.raises(SchedulingError):
        kernel.api_charge(10)


def test_negative_charge_rejected(ideal4):
    class BadMain(Chare):
        def __init__(self):
            self.charge(-5)

    with pytest.raises(ConfigurationError):
        Kernel(ideal4).run(BadMain)


def test_create_boc_via_create_rejected(ideal4):
    from repro import BranchOfficeChare

    class SomeBoc(BranchOfficeChare):
        def __init__(self):
            pass

    class BadMain(Chare):
        def __init__(self):
            self.create(SomeBoc)

    with pytest.raises(ConfigurationError):
        Kernel(ideal4).run(BadMain)


def test_max_events_truncates(ideal4):
    class Forever(Chare):
        def __init__(self):
            self.send(self.thishandle, "again")

        @entry
        def again(self):
            self.send(self.thishandle, "again")

    result = Kernel(ideal4).run(Forever, max_events=500)
    assert result.truncated
    assert result.result is None


def test_until_horizon_truncates(ipsc8):
    class Forever(Chare):
        def __init__(self):
            self.send(self.thishandle, "again")

        @entry
        def again(self):
            self.charge(1000)
            self.send(self.thishandle, "again")

    result = Kernel(ipsc8).run(Forever, until=0.01)
    assert result.truncated
    assert result.time >= 0.01


def test_identity_properties(ideal4):
    seen = {}

    class Probe(Chare):
        def __init__(self):
            seen["pe"] = self.my_pe
            seen["num"] = self.num_pes
            seen["handle"] = self.thishandle
            seen["main"] = self.mainhandle
            seen["now"] = self.now
            self.exit(None)

    Kernel(ideal4).run(Probe)
    assert seen["pe"] == 0
    assert seen["num"] == 4
    assert seen["handle"] == seen["main"]
    assert seen["now"] == 0.0


def test_run_result_has_stats(ideal4, echo_runner):
    result = echo_runner(ideal4, n=4)
    stats = result.stats
    assert stats.num_pes == 4
    assert stats.total_msgs_executed >= 8  # 4 seeds + 4 replies
    assert stats.total_time == result.time
