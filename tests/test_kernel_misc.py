"""Miscellaneous kernel edge cases and cross-cutting behaviors."""

import pytest

from repro import Chare, Kernel, entry, make_machine
from repro.core.handles import ChareHandle
from repro.util.errors import RoutingError


def test_send_to_never_created_handle_raises(ideal4):
    class Main(Chare):
        def __init__(self):
            self.send(ChareHandle(12345), "anything")

    with pytest.raises(RoutingError):
        Kernel(ideal4).run(Main)


def test_send_branch_to_invalid_pe_raises(ideal4):
    from repro import BranchOfficeChare

    class B(BranchOfficeChare):
        def __init__(self):
            pass

    class Main(Chare):
        def __init__(self):
            boc = self.create_boc(B)
            self.send_branch(boc, 99, "whatever")

    with pytest.raises(RoutingError):
        Kernel(ideal4).run(Main)


def test_handles_usable_as_dict_keys(ideal4):
    class Child(Chare):
        def __init__(self, main):
            self.send(main, "from_child", self.thishandle)

    class Main(Chare):
        def __init__(self):
            self.seen = {}
            self.h1 = self.create(Child, self.thishandle, pe=1)
            self.h2 = self.create(Child, self.thishandle, pe=2)

        @entry
        def from_child(self, handle):
            self.seen[handle] = True
            if len(self.seen) == 2:
                self.exit(set(self.seen) == {self.h1, self.h2})

    assert Kernel(ideal4).run(Main).result is True


def test_priorities_on_regular_messages(ideal4):
    """Priorities order messages to *existing* chares, not only seeds."""
    order = []

    class Sink(Chare):
        def __init__(self, main):
            self.main = main
            self.send(main, "ready")

        @entry
        def block(self):
            # Keep the PE busy so the tagged messages pile up in the pool
            # (on an idle PE each would execute the instant it arrived).
            self.charge(1000)

        @entry
        def tagged(self, label):
            order.append(label)
            if len(order) == 3:
                self.send(self.main, "finish")

    class Main(Chare):
        def __init__(self):
            self.sink = self.create(Sink, self.thishandle, pe=1)

        @entry
        def ready(self):
            self.send(self.sink, "block")
            # All three depart together and queue behind 'block'; the
            # sink's pool must reorder them.
            self.send(self.sink, "tagged", "low", priority=30)
            self.send(self.sink, "tagged", "high", priority=1)
            self.send(self.sink, "tagged", "mid", priority=10)

        @entry
        def finish(self):
            self.exit(tuple(order))

    machine = make_machine("ideal", 2)
    result = Kernel(machine, queueing="prio").run(Main)
    assert result.result == ("high", "mid", "low")


def test_priolifo_end_to_end(ideal4):
    order = []

    class Sink(Chare):
        def __init__(self, main):
            self.main = main
            self.send(main, "ready")

        @entry
        def block(self):
            self.charge(1000)

        @entry
        def tagged(self, label):
            order.append(label)
            if len(order) == 4:
                self.exit(tuple(order))

    class Main(Chare):
        def __init__(self):
            self.sink = self.create(Sink, self.thishandle, pe=1)

        @entry
        def ready(self):
            self.send(self.sink, "block")
            self.send(self.sink, "tagged", "a5", priority=5)
            self.send(self.sink, "tagged", "b5", priority=5)
            self.send(self.sink, "tagged", "a1", priority=1)
            self.send(self.sink, "tagged", "b1", priority=1)

    machine = make_machine("ideal", 2)
    result = Kernel(machine, queueing="priolifo").run(Main)
    # Within equal priority: most recent first (LIFO).
    assert result.result == ("b1", "a1", "b5", "a5")


def test_main_ctor_charge_occupies_pe0(ideal4):
    class Busy(Chare):
        def __init__(self):
            self.charge(12345)
            self.exit(None)

    result = Kernel(ideal4).run(Busy)
    assert result.stats.pe_rows[0].busy_time == pytest.approx(12345e-6)


def test_kernel_exposes_services(ideal4):
    kernel = Kernel(ideal4)
    assert set(kernel.services) == {"share", "qd", "lb"}
    assert kernel.tree.num_pes == 4


def test_spanning_tree_param_validated(ideal4):
    from repro.util.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        Kernel(ideal4, spanning_tree="moebius")


def test_timeline_kind_filter(ipsc8):
    from tests.conftest import run_echo

    result = run_echo(ipsc8, n=16, seed=1, timeline=True)
    tl = result.kernel.timeline
    app_only = tl.utilization_profile(buckets=8, kinds={"app", "seed"})
    everything = tl.utilization_profile(buckets=8)
    assert all(a <= e + 1e-12 for a, e in zip(app_only, everything))


def test_timeline_json_roundtrip(tmp_path, ipsc8):
    import json

    from tests.conftest import run_echo

    result = run_echo(ipsc8, n=8, seed=1, timeline=True)
    path = tmp_path / "tl.json"
    count = result.kernel.timeline.dump_json(str(path))
    records = json.loads(path.read_text())
    assert len(records) == count > 0
    assert {"pe", "start", "duration", "kind", "label"} <= set(records[0])


def test_bus_saturation_flattens_speedup():
    """The symmetry preset's bus cap must actually bite at high P."""
    from repro.apps.matmul import run_matmul

    _, r8 = run_matmul(make_machine("symmetry", 8), n=48, g=4)
    _, r16 = run_matmul(make_machine("symmetry", 16), n=48, g=4)
    # Data-heavy matmul gains little beyond bus saturation.
    assert r16.time > 0.5 * r8.time


def test_two_kernels_are_isolated(ideal4):
    class Main(Chare):
        def __init__(self):
            self.new_accumulator("x", 0, "sum")
            self.accumulate("x", 1)
            self.exit(None)

    k1 = Kernel(make_machine("ideal", 2))
    k2 = Kernel(make_machine("ideal", 2))
    k1.run(Main)
    k2.run(Main)
    assert k1.sharing.accumulator_partial("x", 0) == 1
    assert k2.sharing.accumulator_partial("x", 0) == 1
