"""Execution-model semantics: timing math, serialization, buffering.

These tests pin the *normative* semantics of DESIGN.md §5 with hand-computed
virtual times on machines with simple constants.
"""

import pytest

from repro import Chare, Kernel, entry
from repro.machine.network import Machine, MachineParams
from repro.machine.topology import BusTopology


def flat_machine(
    num_pes=2,
    work_unit_time=1e-6,
    sched_overhead=10e-6,
    recv_overhead=5e-6,
    alpha=100e-6,
    local_alpha=1e-6,
):
    """A machine with hand-friendly constants and no size/hop terms."""
    params = MachineParams(
        work_unit_time=work_unit_time,
        sched_overhead=sched_overhead,
        recv_overhead=recv_overhead,
        alpha=alpha,
        beta=0.0,
        per_hop=0.0,
        local_alpha=local_alpha,
    )
    return Machine("flat", BusTopology(num_pes), params)


def test_single_entry_timing():
    """Main ctor charging W occupies PE0 for sched+recv+W*wut exactly."""

    class Main(Chare):
        def __init__(self):
            self.charge(100)
            self.exit(None)

    result = Kernel(flat_machine()).run(Main)
    # Main ctor: 10+5+100 us; init broadcast + gates follow but exit stops it.
    assert result.time == pytest.approx(115e-6)


def test_remote_roundtrip_timing():
    """Reply latency = sender execution tail + alpha, exactly.

    Measured from the child's constructor start (after the startup gates
    have opened) so the assertion is independent of init-broadcast timing.
    """
    marks = {}

    class Child(Chare):
        def __init__(self, parent):
            marks["ctor_start"] = self.now
            self.charge(40)
            self.send(parent, "back")

    class Main(Chare):
        def __init__(self):
            self.create(Child, self.thishandle, pe=1)

        @entry
        def back(self):
            marks["back_start"] = self.now
            self.exit(None)

    Kernel(flat_machine()).run(Main)
    # Child execution: sched 10 + recv 5 + 40 work = 55us; reply departs at
    # its end, pays alpha = 100us; PE0 is idle so 'back' starts on arrival.
    assert marks["back_start"] - marks["ctor_start"] == pytest.approx(155e-6)


def test_sends_depart_at_charge_offsets():
    """Two sends bracketing a charge leave at different virtual times."""
    arrivals = []

    class Sink(Chare):
        def __init__(self, main):
            # Tell the main chare we exist: once 'go' runs, this PE is idle,
            # so each hit executes exactly when it arrives.
            self.send(main, "go")

        @entry
        def hit(self, label):
            arrivals.append((label, self.now))
            if len(arrivals) == 2:
                self.exit(arrivals)

    class Main(Chare):
        def __init__(self):
            self.sink = self.create(Sink, self.thishandle, pe=1)

        @entry
        def go(self):
            self.send(self.sink, "hit", "early")
            self.charge(1000)
            self.send(self.sink, "hit", "late")

    result = Kernel(flat_machine()).run(Main)
    (l1, t1), (l2, t2) = sorted(result.result, key=lambda p: p[1])
    assert (l1, l2) == ("early", "late")
    assert t2 - t1 == pytest.approx(1000e-6)


def test_pe_executes_one_message_at_a_time():
    """Messages to one chare serialize; overlap would break busy accounting."""
    spans = []

    class Busy(Chare):
        def __init__(self, main, n):
            self.main = main
            self.n = n
            self.done = 0

        @entry
        def work(self):
            spans.append(self.now)
            self.charge(100)
            self.done += 1
            if self.done == self.n:
                self.send(self.main, "finished")

    class Main(Chare):
        def __init__(self, n):
            h = self.create(Busy, self.thishandle, n, pe=1)
            for _ in range(n):
                self.send(h, "work")

        @entry
        def finished(self):
            self.exit(spans)

    result = Kernel(flat_machine()).run(Main, 5)
    starts = result.result
    # Each execution takes 115us (10+5+100); consecutive starts are >= that.
    for a, b in zip(starts, starts[1:]):
        assert b - a >= 115e-6 - 1e-12


def test_messages_to_unplaced_handle_are_buffered():
    """Sends races with balancer placement must still be delivered."""

    class Child(Chare):
        def __init__(self, main):
            self.main = main
            self.got = 0

        @entry
        def poke(self, i):
            self.got += 1
            if self.got == 3:
                self.send(self.main, "done", self.my_pe)

    class Main(Chare):
        def __init__(self):
            h = self.create(Child, self.thishandle)  # balancer-routed
            for i in range(3):
                self.send(h, "poke", i)              # before placement!

        @entry
        def done(self, pe):
            self.exit(pe)

    result = Kernel(flat_machine(4), balancer="random", seed=5).run(Main)
    assert result.result in range(4)


def test_messages_arriving_before_construction_are_held():
    """A zero-payload message can overtake the (larger) seed: buffered."""

    class Child(Chare):
        def __init__(self, main, payload):
            self.main = main
            self.seen_ctor = True

        @entry
        def poke(self):
            assert self.seen_ctor
            self.send(self.main, "done")

    class Main(Chare):
        def __init__(self):
            # Big ctor payload + same-size alpha means the seed and the poke
            # race; correctness must not depend on who wins.
            h = self.create(Child, self.thishandle, b"x" * 4096, pe=1)
            self.send(h, "poke")

        @entry
        def done(self):
            self.exit(True)

    params = MachineParams(alpha=10e-6, beta=1e-6)  # size-dependent transit
    machine = Machine("sized", BusTopology(2), params)
    assert Kernel(machine).run(Main).result is True


def test_deterministic_virtual_time(ipsc8):
    """Same seed, same program -> bit-identical virtual end time."""
    from tests.conftest import run_echo

    t1 = run_echo(ipsc8, n=16, seed=3).time
    ipsc8b = Machine(ipsc8.name, ipsc8.topology, ipsc8.params)
    t2 = run_echo(ipsc8b, n=16, seed=3).time
    assert t1 == t2


def test_different_seeds_may_change_schedule():
    from tests.conftest import run_echo

    times = {
        run_echo(flat_machine(4), n=16, seed=s, balancer="random").time
        for s in range(6)
    }
    assert len(times) > 1  # random placement actually varies


def test_charged_units_accounted(ideal4):
    class Main(Chare):
        def __init__(self):
            self.charge(123.5)
            self.exit(None)

    result = Kernel(ideal4).run(Main)
    assert result.stats.total_charged == pytest.approx(123.5)
