"""Unit tests for envelopes, the rank tree, and per-PE scheduler state."""

from repro.core.handles import BocHandle, ChareHandle
from repro.core.messages import Envelope, HEADER_BYTES, Kind
from repro.core.pe import PEState
from repro.core.tree import subtree_size, tree_children, tree_parent


# ---------------------------------------------------------------- envelopes
def test_envelope_size_includes_header_and_payload():
    env = Envelope(kind=Kind.APP, src_pe=0, dst_pe=1, entry="go", args=(1, 2.0))
    assert env.nbytes == HEADER_BYTES + 4 + 16


def test_envelope_size_cached():
    env = Envelope(kind=Kind.APP, src_pe=0, dst_pe=1, entry="go", args=("x",))
    first = env.nbytes
    assert env.nbytes == first


def test_seed_size_includes_class_name():
    class Worker:
        pass

    env = Envelope(
        kind=Kind.SEED, src_pe=0, dst_pe=1, entry="__init__", chare_cls=Worker
    )
    assert env.nbytes == HEADER_BYTES + 4 + len("Worker")


def test_forwarded_seed_bumps_hops_and_suppresses_count():
    env = Envelope(
        kind=Kind.SEED, src_pe=0, dst_pe=3, entry="__init__",
        handle=ChareHandle(5), hops=1,
    )
    env.uid = 7  # pretend a kernel already stamped the first leg
    fwd = env.forwarded(6)
    assert (fwd.src_pe, fwd.dst_pe, fwd.hops) == (3, 6, 2)
    assert fwd.suppress_sent_count
    assert fwd.uid is None  # fresh leg: the kernel stamps it at delivery
    assert fwd.handle == env.handle
    assert not env.suppress_sent_count


def test_envelope_uid_is_kernel_assigned_not_global():
    """Construction must not draw from any global counter; the owning
    kernel allocates uids, so uid streams are reproducible run-to-run and
    unaffected by other kernels in the same process."""
    from repro import Kernel, entry, make_machine
    from repro.core.chare import Chare

    assert Envelope(kind=Kind.APP, src_pe=0, dst_pe=1, entry="go").uid is None

    class Main(Chare):
        def __init__(self):
            self.send(self.thishandle, "step", 0)

        @entry
        def step(self, i):
            if i >= 3:
                self.exit(i)
            else:
                self.send(self.thishandle, "step", i + 1)

    def uid_high_water():
        kernel = Kernel(make_machine("ideal", 2))
        kernel.run(Main)
        return kernel._next_uid

    first = uid_high_water()
    # A second kernel in the same process sees the identical uid stream.
    assert uid_high_water() == first


def test_envelope_repr_mentions_kind():
    env = Envelope(kind=Kind.BOC, src_pe=0, dst_pe=1, entry="e", boc=BocHandle(2))
    assert "boc" in repr(env)


def test_handles_have_fixed_wire_size():
    assert ChareHandle(1).__wire_size__() == 12
    assert BocHandle(1).__wire_size__() == 12


# ---------------------------------------------------------------- rank tree
def test_tree_parent_child_inverse():
    n = 23
    for rank in range(1, n):
        assert rank in tree_children(tree_parent(rank), n)
    for rank in range(n):
        for child in tree_children(rank, n):
            assert tree_parent(child) == rank


def test_tree_root_has_no_parent():
    assert tree_parent(0) is None


def test_subtree_sizes_sum():
    n = 17
    kids = tree_children(0, n)
    assert 1 + sum(subtree_size(k, n) for k in kids) == n
    assert subtree_size(0, n) == n


# ----------------------------------------------------------------- PE state
def _env(kind=Kind.APP, system=False, priority=None, fixed=False):
    return Envelope(
        kind=kind, src_pe=0, dst_pe=0, entry="e",
        handle=ChareHandle(0), system=system, priority=priority, fixed=fixed,
    )


def test_pe_service_order_system_msgs_seeds():
    pe = PEState(0)
    pe.gated = False
    seed = _env(Kind.SEED)
    app = _env(Kind.APP)
    svc = _env(Kind.SVC, system=True)
    pe.enqueue(seed)
    pe.enqueue(app)
    pe.enqueue(svc)
    assert pe.next_envelope() is svc
    assert pe.next_envelope() is app
    assert pe.next_envelope() is seed
    assert pe.next_envelope() is None


def test_pe_gated_serves_only_system():
    pe = PEState(0)
    assert pe.gated
    pe.enqueue(_env(Kind.APP))
    assert pe.next_envelope() is None
    svc = _env(Kind.SVC, system=True)
    pe.enqueue(svc)
    assert pe.next_envelope() is svc
    assert pe.next_envelope() is None
    pe.gated = False
    assert pe.next_envelope() is not None


def test_pe_priority_strategy_orders_both_lanes():
    pe = PEState(0, strategy_name="prio")
    pe.gated = False
    lo = _env(Kind.SEED, priority=10)
    hi = _env(Kind.SEED, priority=1)
    pe.enqueue(lo)
    pe.enqueue(hi)
    assert pe.next_envelope() is hi
    assert pe.next_envelope() is lo


def test_pe_steal_seed_only_touches_seed_pool():
    pe = PEState(0)
    pe.gated = False
    app = _env(Kind.APP)
    seed = _env(Kind.SEED)
    pe.enqueue(app)
    assert pe.steal_seed() is None
    pe.enqueue(seed)
    assert pe.steal_seed() is seed
    assert pe.next_envelope() is app


def test_pe_load_counts_queues_and_busy():
    pe = PEState(0)
    pe.gated = False
    assert pe.load == 0
    pe.enqueue(_env(Kind.APP))
    pe.enqueue(_env(Kind.SEED))
    pe.enqueue(_env(Kind.SVC, system=True))  # system lane not load
    assert pe.load == 2
    pe.busy = True
    assert pe.load == 3
    assert pe.has_work()
