"""Edge-case hardening for the trace analyzers.

Two satellites of the telemetry PR:

* :mod:`repro.metrics.latency` — nearest-rank percentiles and the
  parent-chain walk must behave on degenerate inputs: empty traces,
  single-request logs, truncated chains, and (hand-built or corrupted)
  logs containing parent *cycles*, which must terminate the walk rather
  than hang the analyzer.
* :mod:`repro.trace.critical_path` — empty logs, a single event, logs
  with no execution to anchor the walk, dropped parents, and cycles.

All inputs here are synthetic event dicts — the analyzers are documented
as pure functions of the records, so hand-built logs are legal inputs.
"""

from __future__ import annotations

import pytest

from repro.metrics.latency import (
    latency_summary,
    percentile,
    request_latencies,
)
from repro.trace.critical_path import critical_path
from repro.util.errors import ConfigurationError


def _ev(eid, kind, t, parent=None, name=None, dur=None, info=None, pe=0):
    return {"eid": eid, "kind": kind, "t": t, "pe": pe, "uid": eid,
            "name": name, "parent": parent, "dur": dur, "info": info}


def _single_request_log():
    """source tick -> send -> deliver -> Request exec -> done send."""
    return [
        _ev(1, "exec_begin", 0.000, name="tick"),
        _ev(2, "send", 0.001, parent=1),
        _ev(3, "deliver", 0.002, parent=2),
        _ev(4, "exec_begin", 0.003, parent=3, name="Request"),
        _ev(5, "exec_end", 0.004, parent=4, name="Request", dur=0.001),
        _ev(6, "send", 0.004, parent=4, name="done"),
    ]


# ============================================================== percentile
class TestPercentile:
    def test_empty_sample_raises(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101)
        with pytest.raises(ConfigurationError):
            percentile([1.0], -1)

    def test_single_sample_every_quantile(self):
        for q in (0.0, 1.0, 50.0, 99.0, 100.0):
            assert percentile([7.5], q) == 7.5

    def test_nearest_rank_small_samples(self):
        vals = [30.0, 10.0, 20.0]  # unsorted on purpose
        assert percentile(vals, 0) == 10.0     # rank clamps to 1
        assert percentile(vals, 50) == 20.0    # ceil(1.5) = 2nd
        assert percentile(vals, 66.7) == 30.0  # ceil(2.001) = 3rd
        assert percentile(vals, 100) == 30.0


# ====================================================== request_latencies
class TestRequestLatencies:
    def test_empty_trace(self):
        assert request_latencies([]) == []

    def test_single_request_reconstruction(self):
        rows = request_latencies(_single_request_log())
        assert len(rows) == 1
        r = rows[0]
        assert r["kind"] == "done"
        assert r["inject_t"] == 0.001
        assert r["complete_t"] == 0.004  # the exec_end, not the done send
        assert r["latency"] == pytest.approx(0.003)
        assert r["queue_wait"] == pytest.approx(0.001)
        assert r["service"] == pytest.approx(0.001)
        assert r["stages"] == 1

    def test_truncated_chain_is_skipped(self):
        # Drop the deliver: the stage walk cannot reach an injection point.
        log = [e for e in _single_request_log() if e["eid"] != 3]
        assert request_latencies(log) == []

    def test_origin_walk_cycle_terminates(self):
        # send <-> deliver parent cycle upstream of the request stage; the
        # walk must terminate (keeping the earliest send it saw) instead
        # of hanging.
        log = _single_request_log()
        log[1]["parent"] = 3  # send's parent is the deliver it produced
        rows = request_latencies(log)
        assert len(rows) == 1
        assert rows[0]["inject_t"] == 0.001

    def test_stage_walk_cycle_terminates(self):
        # A "previous stage" chain that loops back onto the final stage.
        log = [
            _ev(1, "exec_begin", 0.003, parent=2, name="Request"),
            _ev(2, "deliver", 0.002, parent=3),
            _ev(3, "send", 0.001, parent=1),  # emitted by eid 1: a cycle
            _ev(4, "send", 0.004, parent=1, name="done"),
        ]
        assert request_latencies(log) == []  # no hang, no bogus record

    def test_non_request_completion_ignored(self):
        log = _single_request_log()
        log[3]["name"] = "Imposter"
        log[4]["name"] = "Imposter"
        assert request_latencies(log) == []


# ========================================================= latency_summary
class TestLatencySummary:
    def test_empty_trace_summary_stays_visibly_empty(self):
        s = latency_summary(())
        assert (s["requests"], s["completed"], s["shed"]) == (0, 0, 0)
        for key in ("p50", "p95", "p99", "mean", "min", "max",
                    "mean_queue_wait", "mean_service", "mean_transit"):
            assert s[key] is None, key

    def test_single_request_summary(self):
        s = latency_summary(_single_request_log())
        assert (s["requests"], s["completed"], s["shed"]) == (1, 1, 0)
        lat = 0.003
        assert s["p50"] == s["p95"] == s["p99"] == pytest.approx(lat)
        assert s["mean"] == s["min"] == s["max"] == pytest.approx(lat)
        assert s["mean_transit"] == pytest.approx(
            lat - s["mean_queue_wait"] - s["mean_service"])


# =========================================================== critical path
class TestCriticalPathEdges:
    def test_empty_log(self):
        assert critical_path([]) is None

    def test_no_execution_to_anchor(self):
        # An all-idle (send/deliver-only) filtered trace has no exec_end.
        log = [_ev(1, "send", 0.0), _ev(2, "deliver", 0.1, parent=1)]
        assert critical_path(log) is None

    def test_single_event(self):
        cp = critical_path([
            _ev(1, "exec_end", 2.0, info={"exit": True}),
        ])
        assert cp is not None
        assert len(cp.steps) == 1
        assert cp.length == 0.0
        assert cp.start_time == cp.end_time == 2.0
        assert not cp.truncated
        assert cp.hops == 0
        assert "critical path" in cp.summary()

    def test_dropped_parent_marks_truncated(self):
        cp = critical_path([_ev(5, "exec_end", 1.0, parent=4)])
        assert cp is not None and cp.truncated

    def test_parent_cycle_marks_truncated(self):
        cp = critical_path([
            _ev(1, "exec_begin", 0.0, parent=2, name="m"),
            _ev(2, "exec_end", 1.0, parent=1, info={"exit": True}),
        ])
        assert cp is not None
        assert cp.truncated
        assert cp.length >= 0.0
