"""Unit tests for the machine cost model and presets."""

import pytest

from repro.machine.network import Machine, MachineParams
from repro.machine.presets import MACHINE_PRESETS, make_machine
from repro.machine.topology import BusTopology, HypercubeTopology
from repro.util.errors import ConfigurationError


def test_params_reject_negative():
    with pytest.raises(ConfigurationError):
        MachineParams(alpha=-1.0)
    with pytest.raises(ConfigurationError):
        MachineParams(work_unit_time=-1e-9)


def test_scaled_returns_modified_copy():
    p = MachineParams(alpha=100e-6)
    q = p.scaled(alpha=5e-6)
    assert q.alpha == 5e-6
    assert p.alpha == 100e-6
    assert q.beta == p.beta


def test_compute_time_linear():
    m = Machine("m", BusTopology(2), MachineParams(work_unit_time=2e-6))
    assert m.compute_time(100) == pytest.approx(200e-6)
    assert m.compute_time(0) == 0.0


def test_local_transit_uses_local_alpha():
    params = MachineParams(alpha=1.0, beta=1.0, local_alpha=5e-6)
    m = Machine("m", BusTopology(4), params)
    assert m.transit_time(2, 2, 10_000, 0.0) == pytest.approx(5e-6)


def test_remote_transit_alpha_beta():
    params = MachineParams(alpha=100e-6, beta=1e-6, per_hop=0.0, bus_bandwidth=0.0)
    m = Machine("m", BusTopology(4), params)
    assert m.transit_time(0, 1, 50, 0.0) == pytest.approx(100e-6 + 50e-6)


def test_hop_cost_applies_beyond_first_hop():
    params = MachineParams(alpha=10e-6, beta=0.0, per_hop=7e-6)
    m = Machine("m", HypercubeTopology(8), params)
    one_hop = m.transit_time(0, 1, 0, 0.0)      # hops=1
    three_hops = m.transit_time(0, 7, 0, 0.0)   # hops=3
    assert one_hop == pytest.approx(10e-6)
    assert three_hops == pytest.approx(10e-6 + 2 * 7e-6)


def test_bus_serialization_queues_messages():
    params = MachineParams(alpha=0.0, beta=0.0, per_hop=0.0, bus_bandwidth=1e6)
    m = Machine("m", BusTopology(4), params)
    # Two 1000-byte messages at t=0: second waits for the first's bus slot.
    t_first = m.transit_time(0, 1, 1000, 0.0)
    t_second = m.transit_time(2, 3, 1000, 0.0)
    assert t_first == pytest.approx(1e-3)
    assert t_second == pytest.approx(2e-3)
    m.reset()
    assert m.transit_time(0, 1, 1000, 0.0) == pytest.approx(1e-3)


def test_all_presets_construct_and_price_messages():
    for name, factory in MACHINE_PRESETS.items():
        n = 8 if "ipsc" in name or "ncube" in name else 6  # hypercubes: 2^k
        m = factory(n)
        assert m.num_pes == n
        t = m.transit_time(0, n - 1, 128, 0.0)
        assert t >= 0.0
        assert m.compute_time(1000) > 0 or name == "ideal"


def test_preset_relative_ordering():
    """The presets must preserve the architectural contrasts they model."""
    sym, ipsc = make_machine("symmetry", 8), make_machine("ipsc2", 8)
    # Message startup: shared-memory enqueue is much cheaper than hypercube send.
    assert sym.params.alpha * 5 < ipsc.params.alpha
    # The iPSC/2 node is faster than the Symmetry's 80386.
    assert ipsc.params.work_unit_time < sym.params.work_unit_time
    ideal = make_machine("ideal", 4)
    assert ideal.transit_time(0, 1, 10**6, 0.0) == 0.0


def test_make_machine_unknown_preset():
    with pytest.raises(ConfigurationError):
        make_machine("cray", 4)


def test_hypercube_presets_require_power_of_two():
    from repro.util.errors import TopologyError

    with pytest.raises(TopologyError):
        make_machine("ipsc2", 12)
