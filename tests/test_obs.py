"""Tests for the telemetry plane (:mod:`repro.obs`).

Four contracts, in the order the module docstring states them:

1. **Primitives** — counters/gauges/log-bucketed histograms: bucket math,
   nearest-rank quantiles (within one bucket of the exact trace-walked
   percentile), record round-trips, registry semantics.
2. **Invisible when on** — a telemetry-on run reproduces the telemetry-off
   run's answer, virtual time, and event count bit for bit, on both
   backends, including against the golden-trace fixtures; and the turn
   loop stays armed: turn-mode and scalar-mode runs yield equal final
   metrics.
3. **Online serving latency** — the in-app histogram's p50/p95/p99 land in
   (or adjacent to) the bucket of the exact trace-walked percentile, and
   the digest survives with tracing disabled entirely.
4. **Plumbing** — exporters round-trip, run health reads the snapshot
   stream, and the bench layer threads telemetry through descriptors,
   cache keys (only when enabled), and sweep-executor output files.
"""

from __future__ import annotations

import json
import math
import random

import pytest

from repro.core.chare import Chare
from repro.core.kernel import Kernel
from repro.machine.presets import make_machine
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    RunHealth,
    Telemetry,
    TelemetryConfig,
    parse_jsonl,
    quantile_from_record,
    to_jsonl,
    to_prometheus,
)
from repro.util.errors import ConfigurationError

BACKENDS = ["heap", "batch"]


class _NoopMain(Chare):
    """Minimal main chare for live-plane exporter smoke."""

    def __init__(self):
        self.exit(0)


# ================================================================ primitives
class TestHistogram:
    def test_bucket_contains_value(self):
        h = Histogram()
        rng = random.Random(7)
        for _ in range(200):
            v = math.exp(rng.uniform(-20, 20))
            lo, hi = h.bucket_bounds(h.bucket_index(v))
            assert lo <= v < hi

    def test_relative_width_bound(self):
        h = Histogram(subbuckets=32)
        for v in (1e-9, 3.7e-4, 1.0, 42.0, 9e12):
            lo, hi = h.bucket_bounds(h.bucket_index(v))
            assert (hi - lo) / lo <= 1.0 / 32 + 1e-12

    def test_observe_accounting(self):
        h = Histogram()
        for v in (0.5, 1.5, 0.0, -3.0, 2.5):
            h.observe(v)
        assert h.count == 5
        assert h.zero == 2  # 0.0 and -3.0
        assert h.total == pytest.approx(1.5)
        assert h.vmin == -3.0 and h.vmax == 2.5

    def test_empty_histogram(self):
        h = Histogram()
        assert h.quantile(50) is None
        assert h.mean is None
        assert h.vmin is None and h.vmax is None

    def test_quantile_bounds_checked(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ConfigurationError):
            h.quantile(101)
        with pytest.raises(ConfigurationError):
            h.quantile(-0.1)

    def test_zero_dominated_quantile(self):
        h = Histogram()
        for _ in range(9):
            h.observe(0.0)
        h.observe(5.0)
        assert h.quantile(50) == 0.0
        assert h.quantile(99) > 0.0

    def test_quantile_within_one_bucket_of_exact(self):
        """The S6 contract in miniature, against the exact nearest-rank."""
        from repro.metrics.latency import percentile

        rng = random.Random(13)
        samples = [rng.expovariate(1.0) * 1e-3 for _ in range(5000)]
        h = Histogram()
        for v in samples:
            h.observe(v)
        for q in (50.0, 90.0, 95.0, 99.0, 99.9):
            exact = percentile(samples, q)
            est = h.quantile(q)
            assert abs(h.bucket_index(exact) - h.bucket_index(est)) <= 1

    def test_record_round_trip(self):
        h = Histogram(subbuckets=16)
        for v in (0.0, 1e-6, 0.25, 3.9, 3.9, 1e4):
            h.observe(v)
        rec = h.as_record()
        json.dumps(rec)  # JSON-safe
        h2 = Histogram.from_record(rec)
        assert h2.as_record() == rec
        for q in (1.0, 50.0, 99.0):
            assert h2.quantile(q) == h.quantile(q)
            assert quantile_from_record(rec, q) == h.quantile(q)

    def test_empty_record_round_trip(self):
        rec = Histogram().as_record()
        h = Histogram.from_record(rec)
        assert h.count == 0 and h.vmin is None and h.quantile(50) is None

    def test_subbuckets_validated(self):
        with pytest.raises(ConfigurationError):
            Histogram(subbuckets=0)


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = MetricRegistry()
        c1 = reg.counter("sends", pe=3)
        c1.inc(2)
        assert reg.counter("sends", pe=3) is c1
        assert reg.counter("sends", pe=4) is not c1
        assert reg.get("sends", pe=3).value == 2
        assert reg.get("sends", pe=99) is None
        assert len(reg) == 2

    def test_label_called_name(self):
        # The metric-name parameter is positional-only, so a label may
        # itself be called "name" (exec_total{kind=..., name=...} relies
        # on this).
        reg = MetricRegistry()
        c = reg.counter("exec_total", kind="app", name="tick")
        c.inc()
        assert reg.get("exec_total", kind="app", name="tick").value == 1

    def test_type_conflict_raises(self):
        reg = MetricRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")

    def test_series_sorted_and_records(self):
        reg = MetricRegistry()
        reg.gauge("b", pe=2).set(1.0)
        reg.gauge("b", pe=1).set(2.0)
        reg.counter("a").inc(5)
        names = [(n, labels) for n, labels, _ in reg.series()]
        assert names == [("a", {}), ("b", {"pe": 1}), ("b", {"pe": 2})]
        recs = reg.as_records()
        assert recs[0] == {"name": "a", "type": "counter", "labels": {},
                           "value": 5}
        json.dumps(recs)

    def test_counter_gauge_basics(self):
        c, g = Counter(), Gauge()
        c.inc()
        c.inc(4)
        g.set(2.5)
        assert c.value == 5 and c.as_record() == 5
        assert g.value == 2.5 and g.as_record() == 2.5


# ===================================================== invisible-when-on
def _fib_fingerprint(backend, telemetry=None, **kwargs):
    from repro.apps.fib import run_fib

    answer, result = run_fib(make_machine("ipsc2", 8, backend=backend),
                             n=12, threshold=6, balancer="random", seed=2,
                             telemetry=telemetry, **kwargs)
    return answer, float(result.time).hex(), result.events


class TestNonPerturbation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_identical_run_with_telemetry(self, backend):
        base = _fib_fingerprint(backend)
        tel = Telemetry(TelemetryConfig(interval=1e-3))
        assert _fib_fingerprint(backend, telemetry=tel) == base
        assert tel.snapshots, "periodic snapshots never flushed"

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("case_id", [
        "queens-ipsc2-central-fifo", "fib-ideal-random-fifo",
        "tree-ncube2-acwn-fifo",
    ])
    def test_golden_fixture_identity_with_telemetry(self, case_id, backend):
        # Telemetry-on runs must reproduce the golden fixtures captured
        # with no telemetry plane at all — the strongest inertness claim.
        from tests.test_golden_trace import (
            CASES,
            _fingerprint,
            _load_fixtures,
            _run_case,
        )

        runner, spec = next((r, s) for cid, r, s in CASES if cid == case_id)
        answer, result = _run_case(
            runner, spec, backend,
            telemetry=Telemetry(TelemetryConfig(interval=1e-4)),
        )
        assert _fingerprint(answer, result) == _load_fixtures()[case_id]

    def test_turn_vs_scalar_equal_metrics(self):
        # The turn loop stays armed under telemetry; its elided executions
        # still hit the hook, so final counters/histograms/snapshots match
        # the scalar path exactly (only host wall time may differ).
        def run(turn_loop):
            from repro.apps.fib import run_fib

            tel = Telemetry()
            run_fib(make_machine("ideal", 1), n=12, threshold=6, seed=2,
                    telemetry=tel, turn_loop=turn_loop)
            payload = tel.payload()
            for snap in payload["snapshots"]:
                snap.pop("wall")
            payload["meta"].pop("backend", None)
            return payload

        assert run(None) == run(False)

    def test_exec_counters_match_snapshot_totals(self):
        from repro.apps.fib import run_fib

        tel = Telemetry()
        run_fib(make_machine("ipsc2", 8), n=12, threshold=6, seed=2,
                telemetry=tel)
        execs = sum(m.value for name, _, m in tel.registry.series()
                    if name == "exec_total")
        final = tel.snapshots[-1]
        assert final["label"] == "final"
        assert execs == final["executions"]
        assert tel.registry.get("exec_duration_seconds").count == execs

    def test_bind_is_once_only(self):
        tel = Telemetry()
        Kernel(make_machine("ideal", 1), telemetry=tel)
        with pytest.raises(ConfigurationError):
            Kernel(make_machine("ideal", 1), telemetry=tel)

    def test_snapshot_before_bind_raises(self):
        with pytest.raises(ConfigurationError):
            Telemetry().snapshot()

    def test_kernel_accepts_config_and_true(self):
        k = Kernel(make_machine("ideal", 1),
                   telemetry=TelemetryConfig(interval=0.5))
        assert k.telemetry.config.interval == 0.5
        assert Kernel(make_machine("ideal", 1), telemetry=True).telemetry \
            is not None
        with pytest.raises(ConfigurationError):
            Kernel(make_machine("ideal", 1), telemetry=42)

    def test_max_snapshots_counts_overflow(self):
        from repro.apps.fib import run_fib

        tel = Telemetry(TelemetryConfig(interval=1e-6, max_snapshots=4))
        run_fib(make_machine("ipsc2", 8), n=12, threshold=6, seed=2,
                telemetry=tel)
        # 4 periodic + the final scrape (on_run_end bypasses the cap).
        assert len(tel.snapshots) == 5
        assert tel.snapshots_dropped > 0
        assert tel.payload()["meta"]["snapshots_dropped"] == \
            tel.snapshots_dropped


# ======================================================== serving online
def _serve(pes=16, count=200, backend="heap", **kwargs):
    from repro.apps.serving import run_serving
    from repro.workloads.arrivals import Poisson

    return run_serving(
        make_machine("ipsc2", pes, backend=backend),
        arrivals=Poisson(rate=2000.0, count=count), hops=2, seed=3,
        balancer="central", **kwargs)


class TestServingOnline:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_head_to_head_within_one_bucket(self, backend):
        tel = Telemetry()
        summary, result = _serve(backend=backend, telemetry=tel)
        online = summary["online"]
        assert online["count"] == summary["completed"]
        h = tel.registry.get("serving_latency_seconds", kind="done")
        for q in ("p50", "p95", "p99"):
            exact, est = summary[q], online[q]
            assert abs(h.bucket_index(exact) - h.bucket_index(est)) <= 1, q
        # Pre-bucketing, the online observations are bit-exact: identical
        # sum/min/max/mean to the trace walk.
        assert online["min"] == summary["min"]
        assert online["max"] == summary["max"]
        assert online["mean"] == pytest.approx(summary["mean"], rel=1e-12)

    def test_trace_free_digest(self):
        summary, result = _serve(telemetry=Telemetry(), trace_events=None)
        assert result.kernel.events is None
        assert summary["p50"] is None  # no log, no trace walk
        online = summary["online"]
        assert online["count"] == summary["completed"] == summary["offered"]
        assert online["p99"] > online["p50"] > 0.0

    def test_shed_requests_counted(self):
        tel = Telemetry()
        summary, _ = _serve(pes=2, count=120, shed_above=2, telemetry=tel)
        assert summary["shed"] > 0
        assert summary["online"]["shed"] == summary["shed"]
        assert summary["online"]["count"] == summary["completed"]

    def test_telemetry_does_not_perturb_serving(self):
        base, base_res = _serve()
        tel_sum, tel_res = _serve(telemetry=Telemetry())
        tel_sum.pop("online")
        assert tel_sum == base
        assert (float(tel_res.time).hex(), tel_res.events) == \
            (float(base_res.time).hex(), base_res.events)


# ============================================================= exporters
def _sample_payload():
    from repro.apps.fib import run_fib

    tel = Telemetry(TelemetryConfig(interval=1e-3))
    run_fib(make_machine("ipsc2", 8), n=12, threshold=6, seed=2,
            telemetry=tel)
    return tel.payload(meta={"app": "fib"})


class TestExporters:
    def test_jsonl_round_trip(self):
        payload = _sample_payload()
        assert parse_jsonl(to_jsonl(payload)) == payload

    def test_jsonl_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            parse_jsonl("")
        with pytest.raises(ConfigurationError):
            parse_jsonl('{"format": "nope"}')
        good = json.dumps({"format": "repro-metrics-v1", "meta": {}})
        with pytest.raises(ConfigurationError):
            parse_jsonl(good + "\n" + json.dumps({"kind": "mystery"}))

    def test_prometheus_shape(self):
        text = to_prometheus(_sample_payload())
        lines = text.splitlines()
        assert "# TYPE repro_exec_total counter" in lines
        assert "# TYPE repro_exec_duration_seconds histogram" in lines
        # Cumulative buckets end at le="+Inf" == _count.
        bucket_counts = [
            int(ln.rsplit(" ", 1)[1]) for ln in lines
            if ln.startswith('repro_exec_duration_seconds_bucket')
        ]
        assert bucket_counts == sorted(bucket_counts)
        inf_line = next(ln for ln in lines if 'le="+Inf"' in ln)
        count_line = next(
            ln for ln in lines
            if ln.startswith("repro_exec_duration_seconds_count"))
        assert inf_line.rsplit(" ", 1)[1] == count_line.rsplit(" ", 1)[1]
        # Label values are double-quoted per the exposition format.
        assert 'kind="app"' in text

    def test_exporters_accept_live_telemetry(self):
        tel = Telemetry()
        Kernel(make_machine("ideal", 1), telemetry=tel).run(_NoopMain)
        assert parse_jsonl(to_jsonl(tel))["meta"]["num_pes"] == 1
        assert to_prometheus(tel).startswith("# TYPE")


# ================================================================= health
def _snap(t, events, wall, in_flight=0, label=""):
    row = {"t": t, "vtime": t, "wall": wall, "events": events,
           "in_flight": in_flight, "busy_pes": 1, "touched_pes": 4,
           "qd_waves": 0, "qd_detected_at": None}
    if label:
        row["label"] = label
    return row


class TestRunHealth:
    def test_no_data(self):
        assert RunHealth([]).report()["status"] == "no-data"
        assert "no snapshots" in RunHealth([]).format()

    def test_running_rates(self):
        h = RunHealth([_snap(1.0, 100, 0.5), _snap(2.0, 300, 1.0)])
        r = h.report()
        assert r["status"] == "running"
        assert r["events_per_s"] == pytest.approx(400.0)
        assert r["vtime_rate"] == pytest.approx(2.0)
        assert h.check()

    def test_stall_detected(self):
        h = RunHealth([_snap(1.0, 100, 0.5, in_flight=3),
                       _snap(1.0, 100, 5.0, in_flight=3)])
        r = h.report()
        assert r["status"] == "stalled" and r["stalled"]
        assert not h.check()
        assert "stalled" in h.format()

    def test_finished_run_is_final_not_stalled(self):
        h = RunHealth([_snap(1.0, 100, 0.5),
                       _snap(1.0, 100, 1.0, label="final")])
        assert h.report()["status"] == "final"
        assert h.check()

    def test_reads_live_plane_and_payload(self):
        payload = _sample_payload()
        live = RunHealth(payload)
        assert live.report()["status"] == "final"
        assert RunHealth(payload["snapshots"]).report() == live.report()


# ============================================================ bench layer
class TestBenchTelemetry:
    def test_describe_default_has_no_metrics_param(self):
        # Historical "run-v1" cache keys must not move when telemetry is
        # off — the same guarantee the backend/tracing knobs give.
        from repro.bench.harness import describe

        desc = describe("fib", "ipsc2", 8)
        assert "metrics" not in dict(desc.params)
        with_metrics = describe("fib", "ipsc2", 8, metrics=0.0)
        assert dict(with_metrics.params)["metrics"] == 0.0
        assert desc.key() != with_metrics.key()

    def test_ambient_use_telemetry(self):
        from repro.bench.harness import (
            current_telemetry,
            describe,
            use_telemetry,
        )

        assert current_telemetry() is None
        with use_telemetry(2e-3):
            assert current_telemetry() == 2e-3
            inherited = describe("fib", "ipsc2", 8)
            forced_off = describe("fib", "ipsc2", 8, metrics=False)
        assert current_telemetry() is None
        assert dict(inherited.params)["metrics"] == 2e-3
        assert "metrics" not in dict(forced_off.params)

    def test_use_telemetry_rejects_negative(self):
        from repro.bench.harness import use_telemetry

        with pytest.raises(ConfigurationError):
            with use_telemetry(-1.0):
                pass

    def test_execute_descriptor_attaches_payload(self):
        from repro.bench.harness import describe, execute_descriptor

        base = execute_descriptor(describe("fib", "ipsc2", 8))
        row = execute_descriptor(describe("fib", "ipsc2", 8, metrics=0.0))
        assert base.telemetry is None
        payload = row.telemetry
        assert payload["format"] == "repro-metrics-v1"
        assert payload["meta"]["app"] == "fib"
        assert payload["meta"]["num_pes"] == 8
        assert payload["snapshots"][-1]["label"] == "final"
        # Same virtual-time row either way.
        assert (row.answer, row.vtime, row.qd_work_end) == \
            (base.answer, base.vtime, base.qd_work_end)

    def test_sweep_executor_writes_metric_streams(self, tmp_path, capsys):
        from repro.bench.harness import describe
        from repro.bench.parallel import SweepExecutor

        out = tmp_path / "metrics"
        with SweepExecutor(jobs=1, metrics_out=str(out)) as ex:
            rows = ex.run_many([describe("fib", "ipsc2", 8, metrics=0.0)])
        assert rows[0].telemetry is not None
        jsonl = list(out.glob("*.metrics.jsonl"))
        prom = list(out.glob("*.prom"))
        assert len(jsonl) == 1 and len(prom) == 1
        parsed = parse_jsonl(jsonl[0].read_text())
        assert parsed == rows[0].telemetry
        assert to_prometheus(parsed).startswith("# TYPE")
        assert "health: final" in capsys.readouterr().err
        assert ex.summary()["metrics_written"] == 1

    def test_perf_telemetry_metric_guarded(self):
        from repro.bench.perf import (
            GUARDED_METRICS,
            _best_rate,
            _kernel_telemetry_messages,
        )

        assert "kernel_telemetry_msgs_per_s" in GUARDED_METRICS
        assert "kernel_batch_telemetry_msgs_per_s" in GUARDED_METRICS
        assert _best_rate(_kernel_telemetry_messages(), repeats=1) > 0

    def test_profile_out_writes_pstats_dump(self, tmp_path, capsys):
        import pstats

        from repro.bench.perf import profile_hot_paths

        out = tmp_path / "prof" / "hot.pstats"
        profile_hot_paths(rounds=1, limit=5, out=str(out))
        assert out.exists()
        stats = pstats.Stats(str(out))
        assert stats.total_calls > 0
        assert "hot.pstats" in capsys.readouterr().out
