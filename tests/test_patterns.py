"""Map-reduce and scatter-gather pattern helpers."""

import pytest

from repro import make_machine
from repro.patterns import map_reduce, scatter_gather


def test_map_reduce_sum():
    total, result = map_reduce(
        make_machine("ipsc2", 8), range(100), lambda x: x * x
    )
    assert total == sum(x * x for x in range(100))
    assert not result.truncated


def test_map_reduce_custom_op_and_initial():
    best, _ = map_reduce(
        make_machine("ideal", 4), [3, 17, 5], lambda x: x, op="max", initial=-1
    )
    assert best == 17


def test_map_reduce_callable_work_costs_time():
    _, cheap = map_reduce(
        make_machine("ipsc2", 4), range(20), lambda x: x, work=10.0
    )
    _, costly = map_reduce(
        make_machine("ipsc2", 4), range(20), lambda x: x,
        work=lambda item: 10_000.0,
    )
    assert costly.time > cheap.time


def test_map_reduce_empty_items():
    total, _ = map_reduce(make_machine("ideal", 2), [], lambda x: x)
    assert total == 0


@pytest.mark.parametrize("balancer", ["random", "acwn", "token"])
def test_map_reduce_balancer_invariant(balancer):
    total, _ = map_reduce(
        make_machine("symmetry", 4), range(40), lambda x: 2 * x,
        balancer=balancer,
    )
    assert total == 2 * sum(range(40))


def test_scatter_gather_preserves_order():
    pairs, _ = scatter_gather(
        make_machine("ipsc2", 8), ["a", "bb", "ccc"], len
    )
    assert pairs == (("a", 1), ("bb", 2), ("ccc", 3))


def test_scatter_gather_empty():
    pairs, _ = scatter_gather(make_machine("ideal", 2), [], len)
    assert pairs == ()


def test_scatter_gather_distributes_work():
    pairs, result = scatter_gather(
        make_machine("ideal", 4), range(32), lambda x: x, work=500.0
    )
    assert pairs == tuple((i, i) for i in range(32))
    busy_pes = sum(1 for r in result.stats.pe_rows if r.busy_time > 0)
    assert busy_pes >= 3
