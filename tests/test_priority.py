"""Unit tests for bitvector priorities and priority normalization."""

import pytest
from hypothesis import given, strategies as st

from repro.util.errors import ConfigurationError
from repro.util.priority import BitVectorPriority, normalize_priority

bits = st.lists(st.integers(min_value=0, max_value=1), max_size=12)


def test_empty_is_highest():
    assert BitVectorPriority() < BitVectorPriority((0,))
    assert BitVectorPriority() < BitVectorPriority((1, 1))


def test_prefix_beats_extension():
    p = BitVectorPriority((1, 0))
    assert p < p.extend(0)
    assert p < p.extend(1)


def test_zero_beats_one_at_first_difference():
    assert BitVectorPriority((0, 1, 1)) < BitVectorPriority((1, 0, 0))


def test_equality_and_hash():
    a = BitVectorPriority((1, 0, 1))
    b = BitVectorPriority([1, 0, 1])
    assert a == b
    assert hash(a) == hash(b)
    assert a != BitVectorPriority((1, 0))


def test_invalid_bits_rejected():
    with pytest.raises(ConfigurationError):
        BitVectorPriority((0, 2))


def test_child_orders_siblings():
    root = BitVectorPriority()
    kids = [root.child(i, 5) for i in range(5)]
    assert kids == sorted(kids)
    assert all(root < k for k in kids)


def test_child_encoding_width():
    root = BitVectorPriority((1,))
    assert len(root.child(0, 2)) == 2      # 1 bit for fanout 2
    assert len(root.child(0, 5)) == 4      # 3 bits for fanout 5
    assert len(root.child(0, 1)) == 2      # at least one bit


def test_child_validates_range():
    root = BitVectorPriority()
    with pytest.raises(ConfigurationError):
        root.child(5, 5)
    with pytest.raises(ConfigurationError):
        root.child(0, 0)


def test_repr_shows_bits():
    assert "101" in repr(BitVectorPriority((1, 0, 1)))


# ------------------------------------------------------------- normalization
def test_normalize_none_sorts_last():
    assert normalize_priority(None) > normalize_priority(10**9)
    assert normalize_priority(None) > normalize_priority(BitVectorPriority((1, 1)))


def test_normalize_ints_and_floats_interleave():
    assert normalize_priority(1) < normalize_priority(2.5)
    assert normalize_priority(-3) < normalize_priority(0)


def test_normalize_sequence_equals_bitvector():
    assert normalize_priority((1, 0)) == normalize_priority(BitVectorPriority((1, 0)))


def test_normalize_rejects_strings():
    with pytest.raises(ConfigurationError):
        normalize_priority("high")


def test_numeric_class_sorts_before_bitvector_class():
    # Deliberate convention: explicit numeric priorities outrank bitvectors.
    assert normalize_priority(10**6) < normalize_priority(BitVectorPriority())


@given(bits, bits)
def test_property_order_matches_tuple_order(a, b):
    pa, pb = BitVectorPriority(a), BitVectorPriority(b)
    assert (pa < pb) == (tuple(a) < tuple(b))
    assert (pa == pb) == (tuple(a) == tuple(b))


@given(bits, st.integers(min_value=1, max_value=8))
def test_property_children_sorted_and_below_parent(base, fanout):
    parent = BitVectorPriority(base)
    kids = [parent.child(i, fanout) for i in range(fanout)]
    assert kids == sorted(kids)
    assert all(parent < k for k in kids)
    assert len(set(kids)) == fanout


@given(bits, bits, bits)
def test_property_normalize_is_total_order(a, b, c):
    ka, kb, kc = (normalize_priority(BitVectorPriority(x)) for x in (a, b, c))
    # transitivity spot-check on normalized keys
    if ka <= kb and kb <= kc:
        assert ka <= kc
