"""Packed priority keys vs the historical tuple-of-bits reference.

PR 4 replaced the per-bit tuple keys that ``normalize_priority`` used to
emit — ``(1, (b0, b1, ...))`` for bitvectors, ``(0, v)`` for numerics,
``(2, 0)`` for None — with packed-integer keys (see
``repro.util.priority``'s module docstring).  These tests pin the
refactor's contract: the packed keys induce *exactly* the ordering the
tuple keys did, on ~10k randomized pairs and on the adversarial shapes
(prefixes, chunk boundaries, trailing zeros) where a packing bug would
hide.  Randomness comes from :class:`repro.util.rng.RngStream`, never the
wall clock, so a failure reproduces bit-for-bit.
"""

import pytest

from repro.core.messages import Envelope, Kind
from repro.queueing.strategies import make_strategy
from repro.util.priority import BitVectorPriority, normalize_priority
from repro.util.rng import RngStream

# ---------------------------------------------------------------- reference


def _reference_key(priority):
    """The pre-PR-4 tuple-of-bits normalized key, re-implemented verbatim."""
    if priority is None:
        return (2, 0)
    if isinstance(priority, BitVectorPriority):
        return (1, priority.bits)
    if isinstance(priority, (int, float)):
        return (0, priority)
    if isinstance(priority, (tuple, list)):
        return _reference_key(BitVectorPriority(priority))
    raise TypeError(priority)


def _random_priority(rng):
    """One random priority drawn from the full user-facing domain."""
    kind = rng.randint(0, 10)
    if kind == 0:
        return None
    if kind <= 3:
        return rng.randint(-(10**6), 10**6)
    if kind == 4:
        return rng.uniform(-1000.0, 1000.0)
    # Bitvectors with lengths clustered around the 63-bit chunk boundary
    # (0..2 chunks) so multi-element packed keys get real coverage.
    length = rng.randint(0, 140)
    return BitVectorPriority(rng.randint(0, 2) for _ in range(length))


# ------------------------------------------------------------------ pairwise


def test_packed_key_matches_reference_pairwise():
    """~10k random pairs: packed-key order == historical tuple-key order."""
    rng = RngStream(20260805, "packed-key-equivalence")
    for trial in range(10_000):
        a = _random_priority(rng)
        b = _random_priority(rng)
        ka, kb = normalize_priority(a), normalize_priority(b)
        ra, rb = _reference_key(a), _reference_key(b)
        assert (ka < kb) == (ra < rb), (a, b)
        assert (ka > kb) == (ra > rb), (a, b)
        assert (ka == kb) == (ra == rb), (a, b)


def test_packed_key_sorted_order_matches_reference():
    """Sorting a mixed batch by packed key == sorting by reference key."""
    rng = RngStream(20260805, "packed-key-sort")
    prios = [_random_priority(rng) for _ in range(2_000)]
    indexed = list(enumerate(prios))
    by_packed = sorted(indexed, key=lambda p: (normalize_priority(p[1]), p[0]))
    by_reference = sorted(indexed, key=lambda p: (_reference_key(p[1]), p[0]))
    assert [i for i, _ in by_packed] == [i for i, _ in by_reference]


# ------------------------------------------------------- adversarial shapes


def test_prefix_beats_extension_across_chunk_boundary():
    """A prefix sorts before every extension, even when the extension
    pushes the string past the 63-bit packing chunk."""
    for plen in (1, 31, 62, 63, 64, 126, 127):
        base = BitVectorPriority([1] * plen)
        for extra in ([0], [1], [0] * 70, [1] * 70):
            ext = base.extend(*extra)
            if all(b == 0 for b in extra):
                # Zero-extensions tie on the padded value; the length field
                # must still rank the prefix first.
                assert normalize_priority(base) < normalize_priority(ext)
            assert normalize_priority(base) < normalize_priority(ext)
            assert _reference_key(base) < _reference_key(ext)


def test_chunk_boundary_lengths_round_trip():
    """Keys at exactly 62/63/64/126/127 bits stay mutually ordered like
    the reference, including equal-prefix trailing-zero ties."""
    rng = RngStream(20260805, "chunk-boundaries")
    prios = []
    for length in (0, 1, 62, 63, 64, 65, 125, 126, 127):
        for _ in range(40):
            prios.append(BitVectorPriority(rng.randint(0, 2)
                                           for _ in range(length)))
    for i, a in enumerate(prios):
        for b in prios[i + 1:]:
            assert ((normalize_priority(a) < normalize_priority(b))
                    == (_reference_key(a) < _reference_key(b)))


def test_key_cached_on_instance():
    """normalize_priority computes a bitvector's key once and caches it."""
    p = BitVectorPriority((1, 0, 1))
    k1 = normalize_priority(p)
    k2 = normalize_priority(p)
    assert k1 is k2


def test_trusted_children_normalize_like_fresh_instances():
    """Keys of extend()/child() products match freshly validated twins."""
    rng = RngStream(20260805, "trusted-children")
    p = BitVectorPriority()
    bits = []
    for depth in range(90):
        fanout = rng.randint(1, 9)
        index = rng.randint(0, fanout)
        p = p.child(index, fanout)
        width = max(1, (fanout - 1).bit_length())
        bits.extend((index >> (width - 1 - i)) & 1 for i in range(width))
        fresh = BitVectorPriority(bits)
        assert p == fresh
        assert normalize_priority(p) == normalize_priority(fresh)


# -------------------------------------------------- envelope key round-trip


def _envelope(priority, prio_key):
    return Envelope(kind=Kind.APP, src_pe=0, dst_pe=0, entry="e",
                    priority=priority, prio_key=prio_key)


def test_envelope_cached_key_round_trips():
    """A send-time cached prio_key equals a fresh normalization, and a
    forwarded copy carries the same key object."""
    rng = RngStream(20260805, "envelope-cache")
    for _ in range(200):
        prio = _random_priority(rng)
        key = None if prio is None else normalize_priority(prio)
        env = _envelope(prio, key)
        if prio is not None:
            assert env.prio_key == normalize_priority(env.priority)
        fwd = Envelope(kind=Kind.SEED, src_pe=0, dst_pe=1, entry="e",
                       priority=prio, prio_key=key).forwarded(2)
        assert fwd.prio_key is key


def test_pool_order_identical_with_and_without_cached_key():
    """Pushing (priority, cached key) pops in the same order as pushing
    the raw priority alone — across all prioritized strategies."""
    rng = RngStream(20260805, "pool-cached-key")
    prios = [_random_priority(rng) for _ in range(600)]
    for name in ("prio", "bitprio", "priolifo"):
        fresh = make_strategy(name)
        cached = make_strategy(name)
        for i, prio in enumerate(prios):
            fresh.push(i, prio)
            key = None if prio is None else normalize_priority(prio)
            cached.push(i, prio, key)
        order_fresh = [fresh.pop() for _ in range(len(prios))]
        order_cached = [cached.pop() for _ in range(len(prios))]
        assert order_fresh == order_cached, name


def test_normalize_rejects_garbage():
    with pytest.raises(Exception):
        normalize_priority(object())
