"""Unit tests for queueing strategies and the two-lane message pool."""

import pytest
from hypothesis import given, strategies as st

from repro.queueing.strategies import (
    BitvectorPriorityStrategy,
    FifoStrategy,
    IntPriorityStrategy,
    LifoStrategy,
    MessagePool,
    make_strategy,
)
from repro.util.errors import ConfigurationError, SchedulingError
from repro.util.priority import BitVectorPriority


def drain(q):
    out = []
    while q:
        out.append(q.pop())
    return out


def test_fifo_order():
    q = FifoStrategy()
    for x in "abc":
        q.push(x)
    assert drain(q) == ["a", "b", "c"]


def test_lifo_order():
    q = LifoStrategy()
    for x in "abc":
        q.push(x)
    assert drain(q) == ["c", "b", "a"]


def test_priority_order_smallest_first():
    q = IntPriorityStrategy()
    q.push("low", 10)
    q.push("high", 1)
    q.push("mid", 5)
    assert drain(q) == ["high", "mid", "low"]


def test_priority_stable_on_ties():
    q = IntPriorityStrategy()
    for i in range(5):
        q.push(i, 7)
    assert drain(q) == [0, 1, 2, 3, 4]


def test_unprioritized_items_run_after_prioritized():
    q = IntPriorityStrategy()
    q.push("none", None)
    q.push("big", 10**9)
    assert drain(q) == ["big", "none"]


def test_bitvector_priorities_order_lexicographically():
    q = BitvectorPriorityStrategy()
    q.push("deep", BitVectorPriority((1, 0, 1)))
    q.push("shallow", BitVectorPriority((1, 0)))
    q.push("left", BitVectorPriority((0, 1)))
    assert drain(q) == ["left", "shallow", "deep"]


def test_pop_empty_raises():
    for name in ("fifo", "lifo", "prio", "bitprio"):
        with pytest.raises(SchedulingError):
            make_strategy(name).pop()


def test_make_strategy_unknown():
    with pytest.raises(ConfigurationError):
        make_strategy("sjf")


def test_pool_system_lane_first():
    pool = MessagePool(LifoStrategy())
    pool.push("app1")
    pool.push("sys1", system=True)
    pool.push("app2")
    pool.push("sys2", system=True)
    assert pool.pop() == "sys1"
    assert pool.pop() == "sys2"
    assert pool.pop() == "app2"  # LIFO app lane
    assert pool.pop() == "app1"


def test_pool_pop_system_only():
    pool = MessagePool()
    pool.push("app")
    assert pool.pop_system() is None
    pool.push("sys", system=True)
    assert pool.pop_system() == "sys"
    assert pool.pop_system() is None
    assert len(pool) == 1


def test_pool_app_len_excludes_system():
    pool = MessagePool()
    pool.push("a")
    pool.push("s", system=True)
    assert pool.app_len() == 1
    assert len(pool) == 2


def test_pool_high_water_mark():
    pool = MessagePool()
    for i in range(5):
        pool.push(i)
    pool.pop()
    pool.push("x")
    assert pool.max_len == 5


def test_pool_default_strategy_is_fifo():
    pool = MessagePool()
    assert pool.strategy_name == "fifo"


@given(st.lists(st.tuples(st.integers(), st.integers(min_value=-100, max_value=100))))
def test_property_priority_pop_is_sorted(items):
    q = IntPriorityStrategy()
    for value, prio in items:
        q.push(value, prio)
    prios_out = []
    while q:
        q_len = len(q)
        item = q.pop()
        assert len(q) == q_len - 1
        # find priority: we can't recover it from item alone; re-push trick:
        prios_out.append(item)
    assert len(prios_out) == len(items)


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=10**6),
                  st.integers(min_value=-50, max_value=50))
    )
)
def test_property_priority_order_matches_stable_sort(items):
    q = IntPriorityStrategy()
    for idx, (value, prio) in enumerate(items):
        q.push((prio, idx, value), prio)
    out = drain(q)
    assert out == sorted(out, key=lambda t: (t[0], t[1]))


@given(st.lists(st.integers()))
def test_property_fifo_lifo_are_reverses(values):
    f, l = FifoStrategy(), LifoStrategy()
    for v in values:
        f.push(v)
        l.push(v)
    assert drain(f) == list(reversed(drain(l)))
