"""Unit tests for queueing strategies and the two-lane message pool."""

import heapq

import pytest
from hypothesis import given, strategies as st

from repro.queueing.strategies import (
    BitvectorPriorityStrategy,
    FifoStrategy,
    IntPriorityStrategy,
    LifoPriorityStrategy,
    LifoStrategy,
    MessagePool,
    make_strategy,
)
from repro.util.errors import ConfigurationError, SchedulingError
from repro.util.priority import BitVectorPriority, normalize_priority
from repro.util.rng import RngStream


def drain(q):
    out = []
    while q:
        out.append(q.pop())
    return out


def test_fifo_order():
    q = FifoStrategy()
    for x in "abc":
        q.push(x)
    assert drain(q) == ["a", "b", "c"]


def test_lifo_order():
    q = LifoStrategy()
    for x in "abc":
        q.push(x)
    assert drain(q) == ["c", "b", "a"]


def test_priority_order_smallest_first():
    q = IntPriorityStrategy()
    q.push("low", 10)
    q.push("high", 1)
    q.push("mid", 5)
    assert drain(q) == ["high", "mid", "low"]


def test_priority_stable_on_ties():
    q = IntPriorityStrategy()
    for i in range(5):
        q.push(i, 7)
    assert drain(q) == [0, 1, 2, 3, 4]


def test_unprioritized_items_run_after_prioritized():
    q = IntPriorityStrategy()
    q.push("none", None)
    q.push("big", 10**9)
    assert drain(q) == ["big", "none"]


def test_bitvector_priorities_order_lexicographically():
    q = BitvectorPriorityStrategy()
    q.push("deep", BitVectorPriority((1, 0, 1)))
    q.push("shallow", BitVectorPriority((1, 0)))
    q.push("left", BitVectorPriority((0, 1)))
    assert drain(q) == ["left", "shallow", "deep"]


def test_pop_empty_raises():
    for name in ("fifo", "lifo", "prio", "bitprio"):
        with pytest.raises(SchedulingError):
            make_strategy(name).pop()


def test_make_strategy_unknown():
    with pytest.raises(ConfigurationError):
        make_strategy("sjf")


def test_pool_system_lane_first():
    pool = MessagePool(LifoStrategy())
    pool.push("app1")
    pool.push("sys1", system=True)
    pool.push("app2")
    pool.push("sys2", system=True)
    assert pool.pop() == "sys1"
    assert pool.pop() == "sys2"
    assert pool.pop() == "app2"  # LIFO app lane
    assert pool.pop() == "app1"


def test_pool_pop_system_only():
    pool = MessagePool()
    pool.push("app")
    assert pool.pop_system() is None
    pool.push("sys", system=True)
    assert pool.pop_system() == "sys"
    assert pool.pop_system() is None
    assert len(pool) == 1


def test_pool_app_len_excludes_system():
    pool = MessagePool()
    pool.push("a")
    pool.push("s", system=True)
    assert pool.app_len() == 1
    assert len(pool) == 2


def test_pool_high_water_mark():
    pool = MessagePool()
    for i in range(5):
        pool.push(i)
    pool.pop()
    pool.push("x")
    assert pool.max_len == 5


def test_pool_default_strategy_is_fifo():
    pool = MessagePool()
    assert pool.strategy_name == "fifo"


@given(st.lists(st.tuples(st.integers(), st.integers(min_value=-100, max_value=100))))
def test_property_priority_pop_is_sorted(items):
    q = IntPriorityStrategy()
    for value, prio in items:
        q.push(value, prio)
    prios_out = []
    while q:
        q_len = len(q)
        item = q.pop()
        assert len(q) == q_len - 1
        # find priority: we can't recover it from item alone; re-push trick:
        prios_out.append(item)
    assert len(prios_out) == len(items)


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=10**6),
                  st.integers(min_value=-50, max_value=50))
    )
)
def test_property_priority_order_matches_stable_sort(items):
    q = IntPriorityStrategy()
    for idx, (value, prio) in enumerate(items):
        q.push((prio, idx, value), prio)
    out = drain(q)
    assert out == sorted(out, key=lambda t: (t[0], t[1]))


@given(st.lists(st.integers()))
def test_property_fifo_lifo_are_reverses(values):
    f, l = FifoStrategy(), LifoStrategy()
    for v in values:
        f.push(v)
        l.push(v)
    assert drain(f) == list(reversed(drain(l)))


# ------------------------------------------------------------------ priolifo


def test_priolifo_smallest_priority_first():
    q = LifoPriorityStrategy()
    q.push("low", 10)
    q.push("high", 1)
    q.push("mid", 5)
    assert drain(q) == ["high", "mid", "low"]


def test_priolifo_lifo_within_equal_priority():
    q = LifoPriorityStrategy()
    for i in range(5):
        q.push(i, 7)
    assert drain(q) == [4, 3, 2, 1, 0]


def test_priolifo_unprioritized_last_and_lifo():
    q = LifoPriorityStrategy()
    q.push("none1", None)
    q.push("big", 10**9)
    q.push("none2", None)
    q.push("small", 1)
    assert drain(q) == ["small", "big", "none2", "none1"]


def test_priolifo_pop_empty_raises():
    with pytest.raises(SchedulingError):
        make_strategy("priolifo").pop()


# ------------------------------------------- mixed priorities, all strategies


def _mixed_items():
    """(item, priority) covering None / ints / floats / bools / bitvectors."""
    return [
        ("none-a", None),
        ("int-5", 5),
        ("float-5", 5.0),
        ("bool", True),
        ("neg", -3),
        ("edge-hi", 4096),       # first value past the bucket fast path
        ("edge-lo", 4095),       # last value inside it
        ("float-frac", 2.5),
        ("bv-10", BitVectorPriority((1, 0))),
        ("bv-101", BitVectorPriority((1, 0, 1))),
        ("bv-01", BitVectorPriority((0, 1))),
        ("none-b", None),
        ("big", 10**9),
    ]


def test_mixed_priorities_order_prio():
    q = IntPriorityStrategy()
    for item, prio in _mixed_items():
        q.push(item, prio)
    # Numerics ascending (ties arrival-order), then bitvectors
    # lexicographically, then unprioritized FIFO.
    assert drain(q) == [
        "neg", "bool", "float-frac", "int-5", "float-5", "edge-lo",
        "edge-hi", "big", "bv-01", "bv-10", "bv-101", "none-a", "none-b",
    ]


def test_mixed_priorities_order_bitprio():
    q = BitvectorPriorityStrategy()
    for item, prio in _mixed_items():
        q.push(item, prio)
    assert drain(q) == [
        "neg", "bool", "float-frac", "int-5", "float-5", "edge-lo",
        "edge-hi", "big", "bv-01", "bv-10", "bv-101", "none-a", "none-b",
    ]


def test_mixed_priorities_order_priolifo():
    q = LifoPriorityStrategy()
    for item, prio in _mixed_items():
        q.push(item, prio)
    # Same priority order, but ties (5 == 5.0 == push order) pop newest
    # first, and unprioritized items pop LIFO.
    assert drain(q) == [
        "neg", "bool", "float-frac", "float-5", "int-5", "edge-lo",
        "edge-hi", "big", "bv-01", "bv-10", "bv-101", "none-b", "none-a",
    ]


def test_mixed_priorities_fifo_lifo_ignore_them():
    items = _mixed_items()
    f, l = FifoStrategy(), LifoStrategy()
    for item, prio in items:
        f.push(item, prio)
        l.push(item, prio)
    names = [item for item, _ in items]
    assert drain(f) == names
    assert drain(l) == list(reversed(names))


# ------------------------------------- randomized pool vs single-heap oracle


def _random_mixed_priority(rng):
    kind = rng.randint(0, 8)
    if kind == 0:
        return None
    if kind == 1:
        return rng.randint(-10, 10)
    if kind == 2:
        return rng.choice([4094, 4095, 4096, 4097])  # bucket-limit edges
    if kind == 3:
        return float(rng.randint(0, 20))              # integral floats
    if kind == 4:
        return bool(rng.randint(0, 2))
    if kind == 5:
        return rng.uniform(-5.0, 5.0)
    return BitVectorPriority(rng.randint(0, 2)
                             for _ in range(rng.randint(0, 8)))


class _OracleHeap:
    """Reference implementation: one heap of (key, seq, item)."""

    def __init__(self, lifo=False):
        self._heap = []
        self._seq = 0
        self._lifo = lifo

    def push(self, item, priority=None):
        self._seq += 1
        seq = -self._seq if self._lifo else self._seq
        heapq.heappush(self._heap, (normalize_priority(priority), seq, item))

    def pop(self):
        return heapq.heappop(self._heap)[2]

    def __len__(self):
        return len(self._heap)


@pytest.mark.parametrize("name", ["prio", "bitprio", "priolifo"])
def test_lane_split_pool_matches_single_heap_oracle(name):
    """Interleaved push/pop: the lane-split pools pop the exact sequence a
    plain normalized-key heap would, across every priority shape."""
    rng = RngStream(20260805, "pool-oracle",
                    ["prio", "bitprio", "priolifo"].index(name))
    pool = make_strategy(name)
    oracle = _OracleHeap(lifo=(name == "priolifo"))
    pushed = 0
    for step in range(3_000):
        if len(oracle) and rng.randint(0, 3) == 0:
            assert pool.pop() == oracle.pop()
        else:
            prio = _random_mixed_priority(rng)
            pool.push(pushed, prio)
            oracle.push(pushed, prio)
            pushed += 1
        assert len(pool) == len(oracle)
    while len(oracle):
        assert pool.pop() == oracle.pop()
    assert not pool
