"""Quiescence detection: correctness, latency, edge cases."""

import pytest

from repro import Chare, Kernel, entry, make_machine
from repro.util.errors import QuiescenceError


class Spawner(Chare):
    """Tree of depth-d chares; nothing reports back — only QD can finish."""

    def __init__(self, depth, fanout):
        self.charge(50)
        if depth > 0:
            for _ in range(fanout):
                self.create(Spawner, depth - 1, fanout)


class QdMain(Chare):
    def __init__(self, depth, fanout):
        self.new_accumulator("n", 0, "sum")
        self.create(Spawner, depth, fanout)
        self.start_quiescence(self.thishandle, "quiet")

    @entry
    def quiet(self):
        self.exit(self.now)


@pytest.mark.parametrize("machine_name,pes", [
    ("ideal", 1), ("ideal", 4), ("symmetry", 8), ("ipsc2", 16),
])
def test_detects_after_tree_finishes(machine_name, pes):
    machine = make_machine(machine_name, pes)
    kernel = Kernel(machine, seed=2)
    result = kernel.run(QdMain, 4, 3)
    assert result.result is not None
    # All 1 + 3 + ... + 3^4 spawner seeds must have executed first.
    total = sum(3**k for k in range(5))
    executed = sum(r.seeds_executed for r in result.stats.pe_rows)
    assert executed == total + 1  # + the main seed? main isn't a seed pool item
    assert kernel.qd.detected_at is not None
    assert kernel.qd.detected_at >= kernel.qd.work_end_at_detection


def test_callback_fires_exactly_once(ideal4):
    hits = []

    class Main(Chare):
        def __init__(self):
            self.create(Spawner, 2, 2)
            self.start_quiescence(self.thishandle, "quiet")

        @entry
        def quiet(self):
            hits.append(self.now)
            self.send(self.thishandle, "after")

        @entry
        def after(self):
            self.exit(len(hits))

    assert Kernel(ideal4).run(Main).result == 1


def test_quiescence_with_no_work(ideal4):
    """A program that does nothing quiesces promptly."""

    class Main(Chare):
        def __init__(self):
            self.start_quiescence(self.thishandle, "quiet")

        @entry
        def quiet(self):
            self.exit("idle")

    assert Kernel(ideal4).run(Main).result == "idle"


def test_double_start_rejected(ideal4):
    class Main(Chare):
        def __init__(self):
            self.start_quiescence(self.thishandle, "quiet")
            self.start_quiescence(self.thishandle, "quiet")

        @entry
        def quiet(self):
            pass

    with pytest.raises(QuiescenceError):
        Kernel(ideal4).run(Main)


def test_restart_after_detection_allowed(ideal4):
    """QD is reusable once the previous detection has fired."""

    class Main(Chare):
        def __init__(self):
            self.rounds = 0
            self.create(Spawner, 2, 2)
            self.start_quiescence(self.thishandle, "quiet")

        @entry
        def quiet(self):
            self.rounds += 1
            if self.rounds == 2:
                self.exit(self.rounds)
            else:
                self.create(Spawner, 2, 2)
                self.start_quiescence(self.thishandle, "quiet")

    assert Kernel(ideal4).run(Main).result == 2


def test_not_fooled_by_long_idle_gaps(ipsc8):
    """A chain with large virtual-time gaps must not trigger early QD."""

    class Relay(Chare):
        def __init__(self, hops, main):
            self.main = main
            self.hops = hops

        @entry
        def step(self):
            self.charge(50_000)  # 100ms on ipsc2: many QD waves pass
            if self.hops == 0:
                self.send(self.main, "done")
            else:
                nxt = self.create(Relay, self.hops - 1, self.main)
                self.send(nxt, "step")

    class Main(Chare):
        def __init__(self):
            self.done_seen = False
            first = self.create(Relay, 3, self.thishandle)
            self.send(first, "step")
            self.start_quiescence(self.thishandle, "quiet")

        @entry
        def done(self):
            self.done_seen = True

        @entry
        def quiet(self):
            self.exit(self.done_seen)

    kernel = Kernel(ipsc8, qd_interval=1e-4)  # waves 1000x shorter than steps
    result = kernel.run(Main)
    assert result.result is True
    assert kernel.qd.waves_run > 3


def test_waves_counted_and_uncounted_separate(ipsc8):
    kernel = Kernel(ipsc8, seed=1)
    result = kernel.run(QdMain, 3, 3)
    # QD ran and its traffic is in system counters, not app counters.
    assert result.stats.qd_waves >= 2
    assert result.stats.counted_sent == result.stats.counted_processed


@pytest.mark.parametrize("machine_name,pes", [
    ("ideal", 4), ("ipsc2", 16),
])
def test_agg_drained_at_shutdown(machine_name, pes):
    """No partial wave-aggregation state may outlive the run."""
    kernel = Kernel(make_machine(machine_name, pes), seed=2)
    result = kernel.run(QdMain, 3, 3)
    assert result.result is not None
    assert kernel.qd._agg == {}


def test_stale_wave_contributions_ignored(ideal4):
    """A straggler from a superseded wave must not fold into the current
    wave's totals, and superseded partial state is purged at wave start."""
    kernel = Kernel(ideal4, seed=0)
    kernel.run(QdMain, 2, 2)
    qd = kernel.qd
    # A late 'up' carrying an old wave number is dropped outright.
    qd._fold(qd._wave - 1, 0, 5, 5, True)
    assert qd._agg == {}
    # Leaked partial state from an abandoned wave is purged on wave start.
    qd._agg[(qd._wave - 2, 1)] = {"sent": 1, "processed": 0, "idle": False,
                                  "have": 1, "need": 2}
    qd._callback = (None, "quiet")   # re-arm so _start_wave proceeds
    qd._start_wave()
    assert (qd._wave - 3, 1) not in qd._agg
    assert all(w == qd._wave for w, _ in qd._agg)
