"""Unit tests for deterministic RNG streams."""

from hypothesis import given, strategies as st

from repro.util.rng import RngStream, derive_seed


def test_derive_seed_deterministic():
    assert derive_seed(42, "x", 1, 2) == derive_seed(42, "x", 1, 2)


def test_derive_seed_sensitive_to_all_inputs():
    base = derive_seed(42, "x", 1)
    assert derive_seed(43, "x", 1) != base
    assert derive_seed(42, "y", 1) != base
    assert derive_seed(42, "x", 2) != base
    assert derive_seed(42, "x") != base


def test_streams_reproducible():
    a = RngStream(7, "test")
    b = RngStream(7, "test")
    assert [a.randint(0, 1000) for _ in range(20)] == [
        b.randint(0, 1000) for _ in range(20)
    ]


def test_streams_with_different_purpose_differ():
    a = RngStream(7, "alpha")
    b = RngStream(7, "beta")
    assert [a.randint(0, 10**9) for _ in range(8)] != [
        b.randint(0, 10**9) for _ in range(8)
    ]


def test_child_streams_independent_of_consumption():
    parent1 = RngStream(1, "p")
    parent2 = RngStream(1, "p")
    parent2.randint(0, 100)  # consume some draws
    c1 = parent1.child("c")
    c2 = parent2.child("c")
    assert [c1.randint(0, 10**9) for _ in range(5)] == [
        c2.randint(0, 10**9) for _ in range(5)
    ]


def test_randint_range():
    rng = RngStream(3, "r")
    vals = [rng.randint(5, 8) for _ in range(100)]
    assert set(vals) <= {5, 6, 7}
    assert len(set(vals)) > 1


def test_random_unit_interval():
    rng = RngStream(3, "u")
    vals = [rng.random() for _ in range(100)]
    assert all(0.0 <= v < 1.0 for v in vals)


def test_choice_and_shuffle_are_permutations():
    rng = RngStream(9, "s")
    seq = list(range(20))
    shuffled = list(seq)
    rng.shuffle(shuffled)
    assert sorted(shuffled) == seq
    assert rng.choice(["a", "b", "c"]) in {"a", "b", "c"}


def test_uniform_bounds():
    rng = RngStream(11, "uni")
    vals = [rng.uniform(-2.0, 3.0) for _ in range(50)]
    assert all(-2.0 <= v <= 3.0 for v in vals)


@given(st.integers(), st.text(max_size=20))
def test_property_derive_seed_is_64bit(seed, purpose):
    value = derive_seed(seed, purpose)
    assert 0 <= value < 2**64


@given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=0, max_value=100))
def test_property_same_keys_same_stream(seed, key):
    a = RngStream(seed, "p", key)
    b = RngStream(seed, "p", key)
    assert a.randint(0, 10**9) == b.randint(0, 10**9)
