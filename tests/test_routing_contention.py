"""Deterministic routing and the link-contention model."""

import pytest
from hypothesis import given, strategies as st

import numpy as np

from repro.machine.network import Machine, MachineParams
from repro.machine.presets import make_machine
from repro.machine.topology import (
    BusTopology,
    HypercubeTopology,
    Mesh2DTopology,
    RingTopology,
    Torus2DTopology,
    TreeTopology,
)

ROUTED = [
    HypercubeTopology(16),
    RingTopology(9),
    Mesh2DTopology(12, rows=3, cols=4),
    Torus2DTopology(16, rows=4, cols=4),
    TreeTopology(13, arity=3),
]


@pytest.mark.parametrize("topo", ROUTED, ids=lambda t: t.name)
def test_routes_are_valid_paths(topo):
    for src in range(topo.num_pes):
        for dst in range(topo.num_pes):
            route = topo.route(src, dst)
            assert len(route) == topo.hops(src, dst)
            cur = src
            for a, b in route:
                assert a == cur
                assert topo.hops(a, b) == 1, "route uses a non-link"
                cur = b
            assert cur == dst


def test_bus_has_no_route():
    assert BusTopology(4).route(0, 1) is None


def test_hypercube_route_is_dimension_ordered():
    topo = HypercubeTopology(8)
    assert topo.route(0b000, 0b101) == [(0b000, 0b001), (0b001, 0b101)]


def test_route_determinism():
    topo = Torus2DTopology(16, rows=4, cols=4)
    assert topo.route(1, 14) == topo.route(1, 14)


# ------------------------------------------------------------------ contention
def _machine(link_bw: float) -> Machine:
    params = MachineParams(
        alpha=10e-6, beta=0.0, per_hop=0.0, link_bandwidth=link_bw
    )
    return Machine("m", HypercubeTopology(8), params)


def test_uncontended_matches_alpha_beta():
    m = _machine(0.0)
    assert m.transit_time(0, 1, 1000, 0.0) == pytest.approx(10e-6)


def test_single_message_contended_cost():
    m = _machine(1e6)  # 1 MB/s links -> 1 ms per 1000 bytes per link
    # 0 -> 3 is two links under e-cube routing.
    t = m.transit_time(0, 3, 1000, 0.0)
    assert t == pytest.approx(10e-6 + 2e-3)


def test_messages_queue_on_shared_link():
    m = _machine(1e6)
    first = m.transit_time(0, 1, 1000, 0.0)
    second = m.transit_time(0, 1, 1000, 0.0)  # same link, same instant
    assert first == pytest.approx(10e-6 + 1e-3)
    assert second == pytest.approx(10e-6 + 2e-3)


def test_disjoint_links_do_not_interfere():
    m = _machine(1e6)
    a = m.transit_time(0, 1, 1000, 0.0)
    b = m.transit_time(2, 3, 1000, 0.0)   # different link entirely
    assert a == pytest.approx(b)


def test_opposite_directions_are_distinct_links():
    m = _machine(1e6)
    a = m.transit_time(0, 1, 1000, 0.0)
    b = m.transit_time(1, 0, 1000, 0.0)
    assert a == pytest.approx(b)  # no queuing across directions


def test_reset_clears_link_state():
    m = _machine(1e6)
    m.transit_time(0, 1, 1000, 0.0)
    m.reset()
    assert m.transit_time(0, 1, 1000, 0.0) == pytest.approx(10e-6 + 1e-3)


def test_contention_slows_alltoall_apps():
    """Sample sort (all-to-all) on contended vs ideal-link hypercubes."""
    from repro.apps.samplesort import run_samplesort

    plain = make_machine("ipsc2", 8)
    contended = make_machine("ipsc2", 8)
    contended.params = contended.params.scaled(link_bandwidth=2.8e6)
    (inp1, out1), r_plain = run_samplesort(plain, n=4096, workers=8)
    (inp2, out2), r_cont = run_samplesort(contended, n=4096, workers=8)
    assert np.array_equal(out1, np.sort(inp1))
    assert np.array_equal(out2, np.sort(inp2))
    assert r_cont.time > r_plain.time


@given(st.integers(min_value=1, max_value=5), st.data())
def test_property_hypercube_routes_span_all_pairs(dim, data):
    n = 2**dim
    topo = HypercubeTopology(n)
    src = data.draw(st.integers(min_value=0, max_value=n - 1))
    dst = data.draw(st.integers(min_value=0, max_value=n - 1))
    route = topo.route(src, dst)
    assert len(route) == bin(src ^ dst).count("1")
